"""Clock faults and the seeded per-node drift distribution (robustness).

Covers :meth:`NodeClock.apply_fault` and the ``clock_drift_ppm_std``
scenario wiring: per-node drifts come from the same seeded ``"clocks"``
stream as the offsets, the draw order (offset, then drift, per node) is a
reproducibility contract, and the shipped distributions keep worst-case
slot skew inside the grid's guard allowance.
"""

from __future__ import annotations

import pytest

from repro.des.simulator import Simulator
from repro.experiments.config import table2_config
from repro.experiments.scenario import Scenario
from repro.net.clock import NodeClock


class TestApplyFault:
    def test_offset_jump_is_discontinuous_but_anchored(self):
        sim = Simulator()
        clock = NodeClock(sim, offset_s=0.1, drift_ppm=20.0)
        sim.schedule(100.0, lambda: None)
        sim.run()
        before = clock.now()
        clock.apply_fault(offset_jump_s=0.05)
        assert clock.now() == pytest.approx(before + 0.05)

    def test_drift_change_preserves_local_continuity(self):
        sim = Simulator()
        clock = NodeClock(sim, offset_s=0.02, drift_ppm=50.0)
        sim.schedule(200.0, lambda: None)
        sim.run()
        before = clock.now()
        clock.apply_fault(drift_ppm=-30.0)
        assert clock.drift_ppm == -30.0
        # No jump requested: local time is continuous through the fault...
        assert clock.now() == pytest.approx(before)

    def test_new_drift_only_affects_the_future(self):
        sim = Simulator()
        clock = NodeClock(sim, drift_ppm=0.0)
        sim.schedule(100.0, lambda: None)
        sim.run()
        clock.apply_fault(drift_ppm=100.0)
        at_fault = clock.to_local(100.0)
        later = clock.to_local(200.0)
        # 100 s of true time after the fault accrues 100 * 1e-4 s of skew;
        # the 100 drift-free seconds before it accrued none.
        assert at_fault == pytest.approx(100.0)
        assert later - at_fault - 100.0 == pytest.approx(100.0 * 1e-4)

    def test_combined_jump_and_drift(self):
        sim = Simulator()
        clock = NodeClock(sim, offset_s=0.01, drift_ppm=10.0)
        sim.schedule(50.0, lambda: None)
        sim.run()
        before = clock.now()
        clock.apply_fault(offset_jump_s=-0.02, drift_ppm=25.0)
        assert clock.now() == pytest.approx(before - 0.02)
        assert clock.drift_ppm == 25.0


def drift_config(**overrides):
    defaults = dict(
        n_sensors=10,
        sim_time_s=20.0,
        side_m=3000.0,
        clock_offset_std_s=0.0005,
        clock_drift_ppm_std=3.0,
    )
    defaults.update(overrides)
    return table2_config(**defaults)


class TestScenarioDriftWiring:
    def test_nonzero_std_draws_distinct_per_node_drifts(self):
        scenario = Scenario(drift_config())
        drifts = [node.clock.drift_ppm for node in scenario.nodes]
        assert any(d != 0.0 for d in drifts)
        assert len(set(drifts)) > 1  # per-node, not a single shared value

    def test_same_seed_reproduces_the_clock_population(self):
        first = Scenario(drift_config(seed=5))
        second = Scenario(drift_config(seed=5))
        assert [n.clock.drift_ppm for n in first.nodes] == [
            n.clock.drift_ppm for n in second.nodes
        ]
        assert [n.clock.offset_s for n in first.nodes] == [
            n.clock.offset_s for n in second.nodes
        ]

    def test_zero_std_keeps_clocks_perfect(self):
        scenario = Scenario(drift_config(clock_offset_std_s=0.0, clock_drift_ppm_std=0.0))
        assert all(node.clock.perfect for node in scenario.nodes)

    def test_draw_order_contract(self):
        """Offset draws first per node; a zero std consumes no RNG at all.

        Draws interleave per node (offset_0, drift_0, offset_1, ...), so
        the first node's offset must be identical whether or not drift is
        enabled, and a drift-free config leaves every drift exactly 0.0
        (no draw) — legacy configs consume the same stream as before the
        drift field existed.
        """
        without = Scenario(drift_config(clock_drift_ppm_std=0.0))
        with_drift = Scenario(drift_config())
        assert without.nodes[0].clock.offset_s == with_drift.nodes[0].clock.offset_s
        assert all(n.clock.drift_ppm == 0.0 for n in without.nodes)

    def test_guard_time_accounting_holds_with_drift(self):
        """Worst-case slot skew over the horizon stays under omega.

        The slotted grid tolerates clock disagreement up to roughly the
        control-packet time omega before negotiated frames start missing
        their slots entirely; the shipped drift/offset distributions must
        keep every node's |local - true| below that through the whole run.
        """
        config = drift_config()
        scenario = Scenario(config)
        horizon = config.warmup_s + config.sim_time_s
        worst = max(
            abs(node.clock.to_local(horizon) - horizon) for node in scenario.nodes
        )
        assert worst < scenario.timing.omega_s

    def test_drifted_scenario_runs_and_delivers(self):
        result = Scenario(drift_config(sim_time_s=30.0)).run_steady_state()
        assert result.throughput.total_bits > 0
