"""Unit tests for application-layer reading aggregation."""

import pytest

from repro.acoustic.geometry import Position
from repro.net.aggregation import ReadingAggregator
from repro.net.node import Node
from repro.phy.channel import AcousticChannel


@pytest.fixture
def node(sim):
    channel = AcousticChannel(sim)
    return Node(sim, 0, Position(0, 0, 100), channel)


def make_aggregator(sim, node, next_hop=1, **kw):
    return ReadingAggregator(sim, node, lambda: next_hop, **kw)


def test_flush_on_size_threshold(sim, node):
    agg = make_aggregator(sim, node, flush_bits=1024, header_bits=64)
    for _ in range(5):
        agg.add_reading(192)  # 5 * 192 = 960; + 64 header = 1024
    assert agg.stats.flushes == 1
    assert agg.stats.size_flushes == 1
    assert node.queue[0].size_bits == 960 + 64
    assert agg.buffered_bits == 0


def test_flush_on_age(sim, node):
    agg = make_aggregator(sim, node, flush_bits=4096, max_age_s=60.0)
    agg.add_reading(100)
    sim.run(until=59.0)
    assert agg.stats.flushes == 0
    sim.run(until=61.0)
    assert agg.stats.flushes == 1
    assert agg.stats.age_flushes == 1
    assert node.queue[0].size_bits == 100 + 64


def test_age_timer_restarts_per_batch(sim, node):
    agg = make_aggregator(sim, node, flush_bits=4096, max_age_s=10.0)
    agg.add_reading(100)
    sim.run(until=11.0)
    assert agg.stats.flushes == 1
    agg.add_reading(100)
    sim.run(until=15.0)
    assert agg.stats.flushes == 1  # second batch is only 4 s old
    sim.run(until=22.0)
    assert agg.stats.flushes == 2


def test_stranded_next_hop_keeps_buffering(sim, node):
    hop = {"value": None}
    agg = ReadingAggregator(
        sim, node, lambda: hop["value"], flush_bits=512, max_age_s=5.0
    )
    agg.add_reading(600)  # would flush, but no next hop
    assert agg.stats.flushes == 0
    assert agg.buffered_bits == 600
    hop["value"] = 2
    sim.run(until=6.0)  # age retry finds the hop
    assert agg.stats.flushes == 1
    assert node.queue[0].dst == 2


def test_flush_now(sim, node):
    agg = make_aggregator(sim, node, flush_bits=4096)
    agg.flush_now()  # empty: no-op
    assert agg.stats.flushes == 0
    agg.add_reading(50)
    agg.flush_now()
    assert agg.stats.flushes == 1


def test_stats_accumulate(sim, node):
    agg = make_aggregator(sim, node, flush_bits=1000, header_bits=8)
    for _ in range(10):
        agg.add_reading(200)
    assert agg.stats.readings == 10
    assert agg.stats.reading_bits == 2000
    assert agg.stats.flushed_bits >= 2000
    assert agg.stats.mean_flush_bits > 0


def test_invalid_parameters(sim, node):
    with pytest.raises(ValueError):
        make_aggregator(sim, node, flush_bits=32, header_bits=64)
    with pytest.raises(ValueError):
        make_aggregator(sim, node, max_age_s=0.0)
    agg = make_aggregator(sim, node)
    with pytest.raises(ValueError):
        agg.add_reading(0)
