"""Unit tests for per-node clocks."""

import pytest

from repro.des.simulator import Simulator
from repro.net.clock import NodeClock


def test_perfect_clock_tracks_simulator():
    sim = Simulator()
    clock = NodeClock(sim)
    assert clock.perfect
    sim.schedule(5.0, lambda: None)
    sim.run()
    assert clock.now() == sim.now == 5.0


def test_offset_shifts_local_time():
    sim = Simulator()
    clock = NodeClock(sim, offset_s=0.25)
    assert not clock.perfect
    assert clock.now() == pytest.approx(0.25)
    assert clock.to_true(0.25) == pytest.approx(0.0)


def test_drift_scales_local_time():
    sim = Simulator()
    clock = NodeClock(sim, drift_ppm=100.0)
    sim.schedule(1000.0, lambda: None)
    sim.run()
    assert clock.now() == pytest.approx(1000.0 * (1 + 1e-4))


def test_round_trip_local_true():
    sim = Simulator()
    clock = NodeClock(sim, offset_s=0.1, drift_ppm=50.0)
    for t in (0.0, 1.0, 123.456):
        assert clock.to_true(clock.to_local(t)) == pytest.approx(t)


def test_delay_until_local_clamps_past():
    sim = Simulator()
    clock = NodeClock(sim)
    sim.schedule(10.0, lambda: None)
    sim.run()
    assert clock.delay_until_local(5.0) == 0.0
    assert clock.delay_until_local(12.5) == pytest.approx(2.5)
