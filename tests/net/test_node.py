"""Unit tests for the Node abstraction."""

import pytest

from repro.acoustic.geometry import Position
from repro.net.node import Node
from repro.phy.channel import AcousticChannel


@pytest.fixture
def node(sim):
    channel = AcousticChannel(sim)
    return Node(sim, 0, Position(0, 0, 100), channel)


def test_enqueue_and_pop(node):
    assert not node.has_pending_data
    assert node.enqueue_data(1, 2048)
    assert node.has_pending_data
    request = node.peek_request()
    assert request.dst == 1 and request.size_bits == 2048
    assert node.pop_request() is request
    assert not node.has_pending_data


def test_request_uids_unique(node):
    node.enqueue_data(1, 100)
    node.enqueue_data(1, 100)
    uids = {r.uid for r in node.queue}
    assert len(uids) == 2


def test_enqueue_to_self_rejected(node):
    with pytest.raises(ValueError):
        node.enqueue_data(0, 100)


def test_enqueue_invalid_size(node):
    with pytest.raises(ValueError):
        node.enqueue_data(1, 0)


def test_queue_limit_drops(sim):
    channel = AcousticChannel(sim)
    node = Node(sim, 0, Position(0, 0, 0), channel, queue_limit=2)
    assert node.enqueue_data(1, 10)
    assert node.enqueue_data(1, 10)
    assert not node.enqueue_data(1, 10)
    assert node.app_stats.queue_drops == 1
    assert node.app_stats.generated == 3


def test_pending_for_finds_by_destination(node):
    node.enqueue_data(1, 10)
    node.enqueue_data(2, 20)
    found = node.pending_for(2)
    assert found is not None and found.size_bits == 20
    assert node.pending_for(9) is None


def test_remove_request_specific(node):
    node.enqueue_data(1, 10)
    node.enqueue_data(2, 20)
    target = node.pending_for(2)
    node.remove_request(target)
    assert node.pending_for(2) is None
    node.remove_request(target)  # removing twice is a no-op


def test_note_sent_updates_stats(sim, node):
    node.enqueue_data(1, 512)
    request = node.pop_request()
    sim.schedule(4.0, lambda: None)
    sim.run()
    node.note_sent(request)
    stats = node.app_stats
    assert stats.sent == 1
    assert stats.sent_bits == 512
    assert stats.delivery_delay_total_s == pytest.approx(4.0)
    assert stats.last_sent_at == pytest.approx(4.0)


def test_note_delivered(node):
    node.note_delivered(2048)
    assert node.app_stats.delivered == 1
    assert node.app_stats.delivered_bits == 2048


def test_sink_flag(sim):
    channel = AcousticChannel(sim)
    sink = Node(sim, 5, Position(0, 0, 0), channel, is_sink=True)
    assert sink.is_sink
    assert "sink" in repr(sink)
