"""Unit tests for one- and two-hop neighbour tables."""

import pytest

from repro.net.neighbors import NeighborTable, TwoHopTable


class TestNeighborTable:
    def test_observe_and_lookup(self):
        table = NeighborTable(owner_id=0)
        table.observe(1, 0.5, now=10.0)
        assert 1 in table
        assert table.delay_to(1) == 0.5
        assert table.delay_to(2) is None
        assert len(table) == 1

    def test_latest_measurement_wins_by_default(self):
        table = NeighborTable(owner_id=0)
        table.observe(1, 0.5, now=1.0)
        table.observe(1, 0.7, now=2.0)
        assert table.delay_to(1) == pytest.approx(0.7)
        assert table.info(1).updates == 2

    def test_ewma_smoothing(self):
        table = NeighborTable(owner_id=0, smoothing=0.5)
        table.observe(1, 1.0, now=1.0)
        table.observe(1, 0.0, now=2.0)
        assert table.delay_to(1) == pytest.approx(0.5)

    def test_self_entry_rejected(self):
        table = NeighborTable(owner_id=3)
        with pytest.raises(ValueError):
            table.observe(3, 0.1, now=0.0)

    def test_negative_delay_rejected(self):
        table = NeighborTable(owner_id=0)
        with pytest.raises(ValueError):
            table.observe(1, -0.1, now=0.0)

    def test_invalid_smoothing(self):
        with pytest.raises(ValueError):
            NeighborTable(owner_id=0, smoothing=0.0)

    def test_staleness_filter(self):
        table = NeighborTable(owner_id=0, staleness_s=10.0)
        table.observe(1, 0.5, now=0.0)
        table.observe(2, 0.6, now=8.0)
        assert sorted(table.fresh_neighbors(now=9.0)) == [1, 2]
        assert table.fresh_neighbors(now=15.0) == [2]
        # without staleness everything stays fresh
        assert sorted(NeighborTable(0).fresh_neighbors(0.0)) == []

    def test_max_delay(self):
        table = NeighborTable(owner_id=0)
        assert table.max_delay_s() == 0.0
        table.observe(1, 0.5, now=0.0)
        table.observe(2, 0.9, now=0.0)
        assert table.max_delay_s() == 0.9

    def test_forget(self):
        table = NeighborTable(owner_id=0)
        table.observe(1, 0.5, now=0.0)
        table.forget(1)
        table.forget(99)  # no-op
        assert 1 not in table


class TestTwoHopTable:
    def test_announcement_replaces_previous(self):
        table = TwoHopTable(owner_id=0)
        table.record_announcement(1, [(2, 0.5), (3, 0.6)], now=1.0)
        assert table.memory_entries() == 2
        table.record_announcement(1, [(4, 0.7)], now=2.0)
        assert table.memory_entries() == 1
        assert table.links_of(1) == {4: 0.7}

    def test_owner_excluded_from_links(self):
        table = TwoHopTable(owner_id=0)
        table.record_announcement(1, [(0, 0.5), (2, 0.6)], now=1.0)
        assert table.links_of(1) == {2: 0.6}

    def test_delay_between_either_direction(self):
        table = TwoHopTable(owner_id=0)
        table.record_announcement(1, [(2, 0.5)], now=1.0)
        assert table.delay_between(1, 2) == 0.5
        assert table.delay_between(2, 1) == 0.5
        assert table.delay_between(2, 3) is None

    def test_two_hop_ids(self):
        table = TwoHopTable(owner_id=0)
        table.record_announcement(1, [(2, 0.5), (3, 0.6)], now=1.0)
        table.record_announcement(4, [(3, 0.2)], now=1.0)
        assert table.two_hop_ids() == [2, 3]
