"""Property tests: grid-culled results are *bit-identical* to the full scan.

The spatial hash and the movement-bounded delta-epoch skip are allowed to
avoid work, never to change answers: a culled broadcast must fan out to
exactly the receivers the full O(n) scan would have picked, with exactly
the same delays and levels, for any geometry — including nodes spread far
outside each other's 3x3x3 cell neighborhoods (where the cull actually
bites) and after arbitrary interleaved moves (where the skip's
displacement bound has to stay conservative).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator
from repro.phy.channel import AcousticChannel

# Wide spread (many cells at the 1500 m cell side) so candidate sets are
# real subsets; depth includes 0 so surface sinks are represented.
coord = st.floats(min_value=-20_000.0, max_value=20_000.0, allow_nan=False)
depth = st.floats(min_value=0.0, max_value=8000.0, allow_nan=False)
positions_st = st.lists(
    st.builds(Position, x=coord, y=coord, z=depth), min_size=2, max_size=10
)
moves_st = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=9),
        st.floats(min_value=-5000.0, max_value=5000.0, allow_nan=False),
        st.floats(min_value=-5000.0, max_value=5000.0, allow_nan=False),
    ),
    max_size=6,
)


def build_pair(positions):
    """Grid+delta channel and full-scan channel over shared mutable geometry."""
    channels = []
    holders = []
    for culled in (True, False):
        sim = Simulator()
        channel = AcousticChannel(
            sim,
            use_link_cache=True,
            use_spatial_grid=culled,
            use_delta_epochs=culled,
            use_inreach_delta=culled,
            interference_range_factor=2.0,
        )
        holder = list(positions)
        for node_id in range(len(holder)):
            channel.create_modem(node_id, lambda i=node_id, h=holder: h[i])
        channels.append(channel)
        holders.append(holder)
    return channels[0], channels[1], holders[0], holders[1]


def fan_out(channel, tx_id):
    """(rx_id, delay, level) triples the broadcast path would schedule."""
    cache = channel.link_cache
    row = cache.broadcast_row(tx_id)
    return [(rx, delay, level) for rx, _, delay, level in cache.deliveries(row)]


def assert_identical(culled, full, n):
    for tx in range(n):
        assert fan_out(culled, tx) == fan_out(full, tx)
        assert culled.neighbors_of(tx) == full.neighbors_of(tx)
        for rx in range(n):
            if tx == rx:
                continue
            a = culled.link_cache.link(tx, rx)
            b = full.link_cache.link(tx, rx)
            assert (a.distance_m, a.delay_s, a.level_db) == (
                b.distance_m,
                b.delay_s,
                b.level_db,
            )
            assert (a.in_reach, a.in_decode_range) == (b.in_reach, b.in_decode_range)


@given(positions=positions_st)
@settings(max_examples=60, deadline=None)
def test_grid_culled_deliveries_equal_full_scan(positions):
    culled, full, _, _ = build_pair(positions)
    assert_identical(culled, full, len(positions))


@given(positions=positions_st, moves=moves_st)
@settings(max_examples=60, deadline=None)
def test_grid_identical_through_interleaved_moves(positions, moves):
    culled, full, holder_c, holder_f = build_pair(positions)
    n = len(positions)
    assert_identical(culled, full, n)  # warm both caches pre-move
    for raw_idx, dx, dy in moves:
        idx = raw_idx % n
        old = holder_c[idx]
        new = Position(old.x + dx, old.y + dy, old.z)
        for channel, holder in ((culled, holder_c), (full, holder_f)):
            holder[idx] = new
            channel.note_position_change(idx)
        assert_identical(culled, full, n)


# Geometry concentrated around the decode (1500 m) and interference
# (3000 m at factor 2) boundaries, with step sizes that routinely carry a
# pair across them in either direction — the regime where the in-reach and
# out-of-reach displacement bounds must hand pairs back to the recompute
# path instead of skipping.
near_coord = st.floats(min_value=-2500.0, max_value=2500.0, allow_nan=False)
near_positions_st = st.lists(
    st.builds(
        Position,
        x=near_coord,
        y=near_coord,
        z=st.floats(min_value=0.0, max_value=2500.0, allow_nan=False),
    ),
    min_size=2,
    max_size=8,
)
boundary_moves_st = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=7),
        st.floats(min_value=-900.0, max_value=900.0, allow_nan=False),
        st.floats(min_value=-900.0, max_value=900.0, allow_nan=False),
    ),
    min_size=2,
    max_size=10,
)


@given(positions=near_positions_st, moves=boundary_moves_st)
@settings(max_examples=60, deadline=None)
def test_inreach_and_delta_skips_identical_across_reach_boundary(positions, moves):
    """Both displacement bounds vs eager recompute, pairs crossing reach.

    Isolates the two delta-epoch bounds (grid off on both sides): small
    hops accumulate until a pair drifts out of decode range, out of
    interference reach, and back in — every crossing must recompute, every
    provably-stable hop may skip, and the fan-out must never differ.
    """
    n = len(positions)
    channels = []
    holders = []
    for skips in (True, False):
        sim = Simulator()
        channel = AcousticChannel(
            sim,
            use_spatial_grid=False,
            use_delta_epochs=skips,
            use_inreach_delta=skips,
            interference_range_factor=2.0,
        )
        holder = list(positions)
        for node_id in range(n):
            channel.create_modem(node_id, lambda i=node_id, h=holder: h[i])
        channels.append(channel)
        holders.append(holder)
    assert_identical(channels[0], channels[1], n)
    for raw_idx, dx, dy in moves:
        idx = raw_idx % n
        old = holders[0][idx]
        new = Position(old.x + dx, old.y + dy, old.z)
        for channel, holder in zip(channels, holders):
            holder[idx] = new
            channel.note_position_change(idx)
        assert_identical(channels[0], channels[1], n)


@given(positions=positions_st, moves=moves_st)
@settings(max_examples=40, deadline=None)
def test_delta_epochs_alone_identical_through_moves(positions, moves):
    """Isolate the displacement-bound skip from the grid cull."""
    n = len(positions)
    channels = []
    holders = []
    for delta in (True, False):
        sim = Simulator()
        channel = AcousticChannel(
            sim, use_spatial_grid=False, use_delta_epochs=delta
        )
        holder = list(positions)
        for node_id in range(n):
            channel.create_modem(node_id, lambda i=node_id, h=holder: h[i])
        channels.append(channel)
        holders.append(holder)
    assert_identical(channels[0], channels[1], n)
    for raw_idx, dx, dy in moves:
        idx = raw_idx % n
        old = holders[0][idx]
        new = Position(old.x + dx, old.y + dy, old.z)
        for channel, holder in zip(channels, holders):
            holder[idx] = new
            channel.note_position_change(idx)
        assert_identical(channels[0], channels[1], n)
