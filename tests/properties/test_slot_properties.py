"""Property-based tests for slot arithmetic (Eqs. 5-6 invariants)."""

import math

from hypothesis import given
from hypothesis import strategies as st

from repro.mac.slots import SlotTiming

timings = st.builds(
    SlotTiming,
    omega_s=st.floats(min_value=1e-4, max_value=0.1),
    tau_max_s=st.floats(min_value=0.1, max_value=5.0),
)


@given(timings, st.floats(min_value=0.0, max_value=1e4))
def test_slot_index_start_roundtrip(timing, time):
    index = timing.slot_index(time)
    assert timing.slot_start(index) <= time + 1e-6
    assert time < timing.slot_start(index + 1) + 1e-6


@given(timings, st.floats(min_value=0.0, max_value=1e4))
def test_next_slot_start_is_at_or_after(timing, time):
    nxt = timing.next_slot_start(time)
    assert nxt >= time - 1e-6
    assert nxt - time <= timing.slot_s + 1e-6


@given(
    timings,
    st.integers(min_value=0, max_value=1000),
    st.floats(min_value=1e-4, max_value=2.0),
    st.floats(min_value=0.0, max_value=5.0),
)
def test_eq5_receiver_finished_by_ack_slot(timing, data_slot, td, tau):
    """Eq. (5) invariant: ack slot starts after the data fully arrived."""
    tau = min(tau, timing.tau_max_s)
    ack = timing.ack_slot(data_slot, td, tau)
    arrival_end = timing.slot_start(data_slot) + tau + td
    assert timing.slot_start(ack) >= arrival_end - 1e-6
    # and Eq. 5 is tight: one slot earlier would be too early, unless
    # the minimum of one slot applies
    slots = ack - data_slot
    if slots > 1:
        assert timing.slot_start(ack - 1) < arrival_end + 1e-6


@given(
    timings,
    st.integers(min_value=0, max_value=1000),
    st.floats(min_value=0.0, max_value=5.0),
)
def test_eq6_exdata_arrival_equals_ack_tx_end(timing, ack_slot, tau_ij):
    start = timing.exdata_start_time(ack_slot, tau_ij)
    arrival = start + tau_ij
    assert math.isclose(
        arrival, timing.slot_start(ack_slot) + timing.omega_s, rel_tol=0, abs_tol=1e-9
    )
