"""Property-based tests for the DES kernel."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.des.events import EventQueue
from repro.des.simulator import Simulator


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=200))
def test_queue_pops_in_nondecreasing_time_order(times):
    q = EventQueue()
    for t in times:
        q.push(t, lambda: None)
    popped = []
    while (event := q.pop()) is not None:
        popped.append(event.time)
    assert popped == sorted(popped)
    assert len(popped) == len(times)


@given(
    st.lists(st.floats(min_value=0.0, max_value=1e6), min_size=1, max_size=100),
    st.data(),
)
def test_cancellation_never_loses_live_events(times, data):
    q = EventQueue()
    events = [q.push(t, lambda: None) for t in times]
    to_cancel = data.draw(
        st.lists(st.integers(min_value=0, max_value=len(events) - 1), unique=True)
    )
    for index in to_cancel:
        events[index].cancel()
        q.note_cancelled()
    survivors = sorted(
        events[i].time for i in range(len(events)) if i not in set(to_cancel)
    )
    popped = []
    while (event := q.pop()) is not None:
        popped.append(event.time)
    assert popped == survivors


@given(st.lists(st.floats(min_value=1e-6, max_value=100.0), min_size=1, max_size=50))
@settings(max_examples=50)
def test_simulator_clock_never_goes_backwards(delays):
    sim = Simulator()
    observed = []
    for delay in delays:
        sim.schedule(delay, lambda: observed.append(sim.now))
    sim.run()
    assert observed == sorted(observed)
    assert sim.now == max(delays)


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1, max_size=20))
def test_derived_seeds_in_range(seed, name):
    from repro.des.rng import derive_seed

    child = derive_seed(seed, name)
    assert 0 <= child < 2**63
