"""Property-based tests for acoustic physics invariants."""

from hypothesis import given
from hypothesis import strategies as st

from repro.acoustic.attenuation import PathLossModel, thorp_absorption_db_per_km
from repro.acoustic.geometry import Position
from repro.acoustic.per import DefaultPerModel, RayleighBerPerModel
from repro.acoustic.sinr import LinkBudget, db_to_linear, linear_to_db
from repro.acoustic.soundspeed import MackenzieProfile

positions = st.builds(
    Position,
    x=st.floats(min_value=-1e5, max_value=1e5),
    y=st.floats(min_value=-1e5, max_value=1e5),
    z=st.floats(min_value=0.0, max_value=1e4),
)


@given(positions, positions)
def test_distance_symmetry_and_nonnegativity(a, b):
    assert a.distance_to(b) >= 0
    assert abs(a.distance_to(b) - b.distance_to(a)) < 1e-9


@given(positions, positions, positions)
def test_triangle_inequality(a, b, c):
    assert a.distance_to(c) <= a.distance_to(b) + b.distance_to(c) + 1e-6


@given(
    st.floats(min_value=0.1, max_value=100.0),
    st.floats(min_value=1.0, max_value=50_000.0),
    st.floats(min_value=1.0, max_value=50_000.0),
)
def test_path_loss_monotone(freq, d1, d2):
    model = PathLossModel(frequency_khz=freq)
    lo, hi = sorted((d1, d2))
    assert model.path_loss_db(lo) <= model.path_loss_db(hi) + 1e-9


@given(st.floats(min_value=0.01, max_value=1000.0))
def test_thorp_positive(freq):
    assert thorp_absorption_db_per_km(freq) > 0


@given(st.floats(min_value=-100.0, max_value=100.0))
def test_db_linear_roundtrip(db):
    assert abs(linear_to_db(db_to_linear(db)) - db) < 1e-6


@given(
    st.floats(min_value=1.0, max_value=3000.0),
    st.lists(st.floats(min_value=1.0, max_value=3000.0), max_size=5),
)
def test_sinr_never_exceeds_snr(signal_d, interferer_ds):
    budget = LinkBudget()
    assert budget.sinr_db(signal_d, interferer_ds) <= budget.snr_db(signal_d) + 1e-9


@given(st.floats(min_value=-20.0, max_value=60.0), st.integers(min_value=0, max_value=10_000))
def test_per_is_probability(sinr, bits):
    for model in (DefaultPerModel(), RayleighBerPerModel()):
        per = model.packet_error_rate(sinr, bits)
        assert 0.0 <= per <= 1.0


@given(st.floats(min_value=0.0, max_value=9000.0))
def test_mackenzie_physical_bounds(depth):
    speed = MackenzieProfile().speed_at(depth)
    assert 1380.0 < speed < 1650.0
