"""Property: resume is bit-identical no matter *where* the run is cut.

The unit tests pin a handful of interruption points; here Hypothesis
drives the checkpoint cadence and which checkpoint the "crash" lands on,
so the equivalence holds for arbitrary cut points — early in warmup
spill-over, mid-traffic, or one window before the end — not just the
points we thought to write down.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.experiments.config import table2_config
from repro.experiments.scenario import Scenario

CONFIG = table2_config(n_sensors=6, sim_time_s=8.0, side_m=3000.0, seed=5)

_BASELINES = {}


def _baseline(protocol: str) -> dict:
    if protocol not in _BASELINES:
        config = CONFIG.with_(protocol=protocol)
        _BASELINES[protocol] = Scenario(config).run_steady_state().to_dict()
    return _BASELINES[protocol]


class _Interrupt(Exception):
    pass


@settings(max_examples=12, deadline=None)
@given(
    every_s=st.floats(min_value=0.5, max_value=6.0, allow_nan=False),
    nth=st.integers(min_value=1, max_value=4),
    protocol=st.sampled_from(["EW-MAC", "S-FAMA"]),
)
def test_resume_bit_identical_at_any_checkpoint(every_s, nth, protocol):
    config = CONFIG.with_(protocol=protocol)
    taken = []

    def hook(scenario: Scenario) -> None:
        taken.append(scenario.snapshot())
        if len(taken) >= nth:
            raise _Interrupt

    scenario = Scenario(config)
    try:
        uninterrupted = scenario.run_steady_state(every_s, hook)
    except _Interrupt:
        resumed = Scenario.restore(taken[-1]).resume().to_dict()
        assert resumed == _baseline(protocol)
    else:
        # Fewer than nth checkpoints fit in the window: the run finished
        # untouched and must still match the plain baseline.
        assert uninterrupted.to_dict() == _baseline(protocol)


@settings(max_examples=6, deadline=None)
@given(
    every_s=st.floats(min_value=5.0, max_value=60.0, allow_nan=False),
    nth=st.integers(min_value=1, max_value=2),
)
def test_batch_resume_bit_identical_at_any_checkpoint(every_s, nth):
    config = CONFIG.with_(max_retries=100)
    key = ("batch", config.protocol)
    if key not in _BASELINES:
        _BASELINES[key] = Scenario(config).run_batch(3, 600.0).to_dict()
    baseline = _BASELINES[key]
    taken = []

    def hook(scenario: Scenario) -> None:
        taken.append(scenario.snapshot())
        if len(taken) >= nth:
            raise _Interrupt

    scenario = Scenario(config)
    try:
        finished = scenario.run_batch(3, 600.0, every_s, hook)
    except _Interrupt:
        resumed = Scenario.restore(taken[-1]).resume().to_dict()
        assert resumed == baseline
        assert resumed["drain_time_s"] == baseline["drain_time_s"]
    else:
        assert finished.to_dict() == baseline
