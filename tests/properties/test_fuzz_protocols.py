"""Fuzz tests: random frame streams must never crash a MAC.

Underwater links corrupt, reorder and surprise; a protocol stack that
throws on an unexpected-but-decodable frame is broken.  These tests
deliver randomized (but structurally valid) frames straight into each
protocol's receive path and assert nothing raises and core invariants
hold afterwards.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustic.geometry import Position
from repro.core.ewmac import EwMac
from repro.des.simulator import Simulator
from repro.mac.aloha import SlottedAloha
from repro.mac.csmac import CsMac
from repro.mac.ropa import Ropa
from repro.mac.sfama import SFama
from repro.mac.slots import make_slot_timing
from repro.net.node import Node
from repro.phy.channel import AcousticChannel
from repro.phy.frame import Frame, FrameType
from repro.phy.modem import Arrival

PROTOCOL_CLASSES = [SFama, Ropa, CsMac, EwMac, SlottedAloha]

frame_types = st.sampled_from(list(FrameType))
node_ids = st.integers(min_value=-1, max_value=6)
info_values = st.dictionaries(
    st.sampled_from(
        ["rp", "data_bits", "exdata_start", "case", "links", "appended", "stolen",
         "ata", "req_uid", "rts_slot"]
    ),
    st.one_of(
        st.floats(min_value=-10.0, max_value=1e4, allow_nan=False),
        st.integers(min_value=-10, max_value=100_000),
        st.booleans(),
        st.just([(2, 0.5), (3, 0.9)]),
    ),
    max_size=4,
)


@st.composite
def frames(draw):
    ftype = draw(frame_types)
    size = draw(st.integers(min_value=1, max_value=8192))
    frame = Frame(
        ftype=ftype,
        src=draw(st.integers(min_value=1, max_value=6)),
        dst=draw(node_ids),
        size_bits=size,
        timestamp=draw(st.floats(min_value=0.0, max_value=50.0)),
        pair_delay_s=draw(st.one_of(st.none(), st.floats(min_value=0.0, max_value=1.0))),
        info=draw(info_values),
    )
    return frame


def build(protocol_cls, seed=0):
    sim = Simulator(seed=seed)
    channel = AcousticChannel(sim)
    timing = make_slot_timing(12_000.0, 64, 1500.0, 1500.0)
    node = Node(sim, 0, Position(0, 0, 100), channel)
    mac = protocol_cls(sim, node, channel, timing)
    mac.start()
    # give it a queued packet so sender-side states can engage
    node.enqueue_data(1, 1024)
    node.neighbors.observe(1, 0.4, 0.0)
    node.neighbors.observe(2, 0.7, 0.0)
    return sim, mac


@given(frame_list=st.lists(frames(), min_size=1, max_size=12), data=st.data())
@settings(max_examples=40, deadline=None)
def test_random_frames_never_crash_any_protocol(frame_list, data):
    for protocol_cls in PROTOCOL_CLASSES:
        sim, mac = build(protocol_cls)
        sim.run(until=5.0)
        for frame in frame_list:
            delay = data.draw(st.floats(min_value=0.0, max_value=1.0))
            now = sim.now
            frame.timestamp = min(frame.timestamp, now)
            arrival = Arrival(
                frame=frame,
                src=frame.src,
                start=now,
                end=now + frame.size_bits / 12_000.0,
                level_db=-30.0,
                delay_s=delay,
            )
            mac._on_modem_receive(frame, arrival)
            sim.run(until=sim.now + data.draw(st.floats(min_value=0.0, max_value=3.0)))
        # the MAC survived; quiet bookkeeping never went backwards
        assert mac.quiet_until >= 0.0
        # received-data accounting is non-negative and consistent
        assert mac.stats.total_data_bits_received >= 0
        sim.run(until=sim.now + 30.0)  # let its timers fire and settle


@given(st.lists(frames(), min_size=1, max_size=8))
@settings(max_examples=30, deadline=None)
def test_ewmac_tracker_survives_arbitrary_overhearing(frame_list):
    sim, mac = build(EwMac)
    sim.run(until=5.0)
    for frame in frame_list:
        frame.timestamp = min(frame.timestamp, sim.now)
        mac._update_tracker(frame)
    # tracker state stays well-formed
    for node_id in mac.tracker.tracked_neighbors():
        for window in mac.tracker.windows_of(node_id):
            assert window.end > window.start
