"""Property tests: the vectorized kernel is *bit-identical* to scalar math.

The whole design contract of :mod:`repro.phy.vectorized` is that routing
geometry through NumPy changes nothing — not "agrees to 1e-9", but equal
to the last bit, so cached and uncached simulations produce identical
event streams.  These properties drive random geometries (including nodes
exactly at the communication-range boundary) through a cached and an
uncached channel and compare with ``==``.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator
from repro.phy.channel import AcousticChannel

coord = st.floats(min_value=-6000.0, max_value=6000.0, allow_nan=False)
depth = st.floats(min_value=0.0, max_value=4000.0, allow_nan=False)
positions_st = st.lists(
    st.builds(Position, x=coord, y=coord, z=depth), min_size=2, max_size=8
)


def build_pair(positions, **kwargs):
    """A cached and an uncached channel over the same frozen geometry."""
    channels = []
    for use_cache in (True, False):
        sim = Simulator()
        channel = AcousticChannel(sim, use_link_cache=use_cache, **kwargs)
        for node_id, pos in enumerate(positions):
            channel.create_modem(node_id, lambda p=pos: p)
        channels.append(channel)
    return channels


def assert_bit_identical(cached, uncached, n):
    reach = uncached.max_range_m * uncached.interference_range_factor
    for a in range(n):
        assert cached.neighbors_of(a) == uncached.neighbors_of(a)
        for b in range(n):
            if a == b:
                continue
            dist = uncached.distance_m(a, b)
            assert cached.distance_m(a, b) == dist
            assert cached.propagation_delay_s(a, b) == uncached.propagation_delay_s(a, b)
            link = cached.link_cache.link(a, b)
            assert link.level_db == uncached.link_budget.received_level_db(dist)
            assert link.in_reach == (dist <= reach)
            assert link.in_decode_range == (dist <= uncached.max_range_m)


@given(positions=positions_st)
@settings(max_examples=60, deadline=None)
def test_random_geometry_bit_identical(positions):
    cached, uncached = build_pair(positions)
    assert_bit_identical(cached, uncached, len(positions))


@given(positions=positions_st)
@settings(max_examples=40, deadline=None)
def test_interference_factor_bit_identical(positions):
    cached, uncached = build_pair(positions, interference_range_factor=2.0)
    assert_bit_identical(cached, uncached, len(positions))


@given(positions=positions_st, mover=st.integers(min_value=0, max_value=7))
@settings(max_examples=40, deadline=None)
def test_bit_identical_after_partial_moves(positions, mover):
    """A per-node invalidation round-trips to the same bits as a cold scan."""
    mover %= len(positions)
    holder = list(positions)
    sim = Simulator()
    cached = AcousticChannel(sim, use_link_cache=True)
    for node_id in range(len(holder)):
        cached.create_modem(node_id, lambda i=node_id: holder[i])
    for node_id in range(len(holder)):  # warm every row pre-move
        cached.link_cache.broadcast_row(node_id)

    moved = holder[mover]
    holder[mover] = Position(moved.x + 123.25, moved.y - 77.5, max(0.0, moved.z))
    cached.note_position_change(mover)

    sim2 = Simulator()
    uncached = AcousticChannel(sim2, use_link_cache=False)
    for node_id in range(len(holder)):
        uncached.create_modem(node_id, lambda i=node_id: holder[i])
    assert_bit_identical(cached, uncached, len(holder))


def test_node_exactly_at_max_range_is_a_neighbor():
    """Boundary pin: distance == max_range_m decodes (<=, not <)."""
    positions = [Position(0, 0, 0), Position(1500.0, 0, 0)]
    cached, uncached = build_pair(positions)
    for channel in (cached, uncached):
        assert channel.distance_m(0, 1) == 1500.0
        assert channel.neighbors_of(0) == (1,)
    link = cached.link_cache.link(0, 1)
    assert link.in_decode_range
    assert link.in_reach


def test_node_one_ulp_past_max_range_is_not_a_neighbor():
    import math

    past = math.nextafter(1500.0, math.inf)
    positions = [Position(0, 0, 0), Position(past, 0, 0)]
    cached, uncached = build_pair(positions)
    for channel in (cached, uncached):
        assert channel.neighbors_of(0) == ()
    assert not cached.link_cache.link(0, 1).in_decode_range


@given(
    offsets=st.lists(
        st.floats(min_value=-400.0, max_value=400.0, allow_nan=False),
        min_size=2,
        max_size=6,
    )
)
@settings(max_examples=40, deadline=None)
def test_boundary_node_among_random_neighbors(offsets):
    """Geometries that always include one node exactly at max_range_m."""
    positions = [Position(0, 0, 0), Position(1500.0, 0, 0)]
    positions += [Position(500.0 + dx, dx, abs(dx)) for dx in offsets]
    cached, uncached = build_pair(positions)
    assert_bit_identical(cached, uncached, len(positions))
    assert 1 in cached.neighbors_of(0)
