"""Property-based tests over topology, neighbour tables and the modem."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.neighbors import NeighborTable
from repro.topology.deployment import DeploymentConfig, connected_column_deployment


@given(
    st.integers(min_value=5, max_value=80),
    st.integers(min_value=0, max_value=10_000),
)
@settings(max_examples=25, deadline=None)
def test_connected_deployment_always_connected(n_sensors, seed):
    dep = connected_column_deployment(DeploymentConfig(n_sensors=n_sensors, seed=seed))
    assert dep.is_connected()
    assert dep.n_nodes == n_sensors + 1
    for pos in dep.positions:
        assert 0.0 <= pos.z <= dep.config.depth_m


@given(
    st.lists(
        st.tuples(
            st.integers(min_value=1, max_value=20),
            st.floats(min_value=0.0, max_value=2.0),
        ),
        min_size=1,
        max_size=100,
    ),
    st.floats(min_value=0.01, max_value=1.0),
)
def test_neighbor_table_delay_within_observed_bounds(observations, smoothing):
    """EWMA keeps each entry inside the [min, max] of its measurements."""
    table = NeighborTable(owner_id=0, smoothing=smoothing)
    seen = {}
    for time, (node_id, delay) in enumerate(observations):
        table.observe(node_id, delay, now=float(time))
        seen.setdefault(node_id, []).append(delay)
    for node_id, delays in seen.items():
        est = table.delay_to(node_id)
        assert min(delays) - 1e-9 <= est <= max(delays) + 1e-9


@given(st.integers(min_value=0, max_value=2**32 - 1))
@settings(max_examples=20, deadline=None)
def test_modem_busy_time_bounded_by_simulation(seed):
    """rx_busy + tx time can never exceed elapsed simulation time."""
    from repro.experiments import Scenario, table2_config

    cfg = table2_config(
        protocol="S-FAMA",
        n_sensors=12,
        sim_time_s=30.0,
        offered_load_kbps=0.8,
        seed=seed,
    )
    scenario = Scenario(cfg)
    scenario.run_steady_state()
    elapsed = scenario.sim.now
    for mac in scenario.macs:
        stats = mac.node.modem.stats
        assert stats.tx_time_s <= elapsed + 1e-6
        assert stats.rx_busy_time_s <= elapsed + 1e-6
