"""Resume-equivalence gate: MAC × mobility × chaos.

Every combination of MAC protocol, mobility, and fault injection must
survive the cut-and-resume cycle bit-identically — the checkpoint layer
pickles the *whole* scenario, so any subsystem that hides unpicklable or
process-local state (a lambda, a cached wall-clock deadline, a global
counter) breaks exactly one of these cells.  This is the acceptance gate
for the fault-tolerance work: if a cell here fails, checkpoint/resume is
silently changing figures for that configuration.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import table2_config
from repro.experiments.scenario import Scenario
from repro.faults.plan import CrashWave, FaultPlan, NoiseBurst

MACS = ("EW-MAC", "S-FAMA", "ALOHA", "CS-MAC")

CHAOS_PLANS = {
    "none": FaultPlan(),
    "crash-wave": FaultPlan(waves=(CrashWave(at_s=12.0, fraction=0.3),)),
    "noise-burst": FaultPlan(
        noise_bursts=(NoiseBurst(at_s=11.0, duration_s=4.0, extra_noise_db=6.0),)
    ),
}


def _config(protocol: str, mobility: bool, chaos: str):
    return table2_config(
        protocol=protocol,
        n_sensors=6,
        sim_time_s=8.0,
        side_m=3000.0,
        seed=7,
        mobility=mobility,
        faults=CHAOS_PLANS[chaos],
    )


class _Interrupt(Exception):
    pass


def _cut_and_resume(config, every_s: float = 3.0, nth: int = 2) -> dict:
    """Baseline + interrupted/resumed runs; returns both summaries."""
    baseline = Scenario(config).run_steady_state().to_dict()
    taken = []

    def hook(scenario: Scenario) -> None:
        taken.append(scenario.snapshot())
        if len(taken) >= nth:
            raise _Interrupt

    try:
        finished = Scenario(config).run_steady_state(every_s, hook)
    except _Interrupt:
        resumed = Scenario.restore(taken[-1]).resume().to_dict()
    else:  # pragma: no cover - window too short for nth checkpoints
        resumed = finished.to_dict()
    return {"baseline": baseline, "resumed": resumed}


@pytest.mark.parametrize("protocol", MACS)
@pytest.mark.parametrize("mobility", [False, True], ids=["static", "mobile"])
@pytest.mark.parametrize("chaos", sorted(CHAOS_PLANS))
def test_resume_bit_identical(protocol, mobility, chaos):
    runs = _cut_and_resume(_config(protocol, mobility, chaos))
    assert runs["resumed"] == runs["baseline"]


def test_faulted_resume_preserves_fault_report_keys():
    """The chaos cells really exercise the injector across the cut."""
    runs = _cut_and_resume(_config("EW-MAC", True, "crash-wave"))
    assert "delivery_ratio" in runs["baseline"]
    assert runs["resumed"]["delivery_ratio"] == runs["baseline"]["delivery_ratio"]
