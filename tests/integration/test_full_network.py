"""Full-network integration tests: every layer wired together."""

import pytest

from repro.experiments import Scenario, table2_config


def small(protocol, **kw):
    defaults = dict(
        protocol=protocol, n_sensors=20, sim_time_s=60.0, offered_load_kbps=0.8, seed=5
    )
    defaults.update(kw)
    return table2_config(**defaults)


@pytest.mark.parametrize("protocol", ["S-FAMA", "ROPA", "CS-MAC", "EW-MAC"])
class TestProtocolInvariants:
    def test_conservation_of_packets(self, protocol):
        """acked + dropped + still-queued + in-flight == generated."""
        scenario = Scenario(small(protocol, forwarding=False))
        scenario.run_steady_state()
        generated = sum(n.app_stats.generated for n in scenario.nodes)
        acked = sum(n.app_stats.sent for n in scenario.nodes)
        dropped = sum(m.stats.drops for m in scenario.macs)
        queue_rejects = sum(n.app_stats.queue_drops for n in scenario.nodes)
        queued = sum(len(n.queue) for n in scenario.nodes)
        # in-flight: at most one per node (the head request being served)
        in_flight_slack = len(scenario.nodes)
        accounted = acked + dropped + queued + queue_rejects
        assert generated - in_flight_slack <= accounted <= generated

    def test_received_bits_never_exceed_sent_bits(self, protocol):
        scenario = Scenario(small(protocol))
        scenario.run_steady_state()
        sent = sum(
            m.stats.data_sent_bits + m.stats.opportunistic_data_bits
            for m in scenario.macs
        )
        received = sum(m.stats.total_data_bits_received for m in scenario.macs)
        assert received <= sent

    def test_acked_packets_were_received(self, protocol):
        """A sender's acked count never exceeds receivers' receptions."""
        scenario = Scenario(small(protocol, forwarding=False))
        scenario.run_steady_state()
        acked = sum(n.app_stats.sent for n in scenario.nodes)
        received = sum(
            m.stats.data_received + m.stats.opportunistic_received
            for m in scenario.macs
        )
        assert acked <= received + sum(m.stats.duplicate_data for m in scenario.macs)

    def test_energy_positive_and_bounded(self, protocol):
        scenario = Scenario(small(protocol))
        result = scenario.run_steady_state()
        assert result.energy.total_j > 0
        # upper bound: every node at full tx power the whole time
        n = len(scenario.nodes)
        upper = 2.0 * n * scenario.config.sim_time_s * 1.1
        assert result.energy.total_j < upper

    def test_no_pending_event_explosion(self, protocol):
        scenario = Scenario(small(protocol))
        scenario.run_steady_state()
        # the event queue must not accumulate unbounded garbage
        assert scenario.sim.pending_events < 5000


class TestCrossProtocolComparisons:
    """Paired comparisons on identical topology + traffic (same seed)."""

    def _results(self, load, seeds=(3, 4, 5), **kw):
        out = {}
        for protocol in ("S-FAMA", "ROPA", "CS-MAC", "EW-MAC"):
            vals = []
            for seed in seeds:
                scenario = Scenario(
                    small(protocol, n_sensors=30, sim_time_s=120.0,
                          offered_load_kbps=load, seed=seed, **kw)
                )
                vals.append(scenario.run_steady_state())
            out[protocol] = vals
        return out

    @pytest.mark.slow
    def test_ewmac_extras_fire_under_load(self):
        results = self._results(0.8)
        extras = sum(r.extra_completed for r in results["EW-MAC"])
        assert extras > 0, "EW-MAC never completed an extra communication"

    @pytest.mark.slow
    def test_overhead_ordering_matches_paper(self):
        """Fig. 10: CS-MAC > EW-MAC > ROPA > S-FAMA in overhead."""
        results = self._results(0.5)
        mean = lambda p: sum(r.overhead_units for r in results[p]) / len(results[p])
        assert mean("S-FAMA") < mean("ROPA")
        assert mean("ROPA") < mean("EW-MAC")
        assert mean("EW-MAC") < mean("CS-MAC")

    @pytest.mark.slow
    def test_sfama_has_zero_opportunistic_traffic(self):
        results = self._results(0.8, seeds=(3,))
        for r in results["S-FAMA"]:
            pass
        scenario = Scenario(small("S-FAMA"))
        scenario.run_steady_state()
        assert all(m.stats.opportunistic_data == 0 for m in scenario.macs)


class TestMobilityIntegration:
    def test_neighbor_delays_track_moving_nodes(self):
        """With mobility on, learned delays stay close to ground truth."""
        scenario = Scenario(small("EW-MAC", sim_time_s=120.0, offered_load_kbps=0.6))
        scenario.run_steady_state()
        checked = 0
        for mac in scenario.macs:
            node = mac.node
            for neighbor in node.neighbors.neighbors():
                if neighbor not in scenario.channel.node_ids:
                    continue
                truth = scenario.channel.propagation_delay_s(node.node_id, neighbor)
                learned = node.neighbors.delay_to(neighbor)
                # tethered drift keeps relations stable (paper Sec. 5 note);
                # tolerate the tether radius worth of drift (300 m ~ 0.2 s)
                if truth <= 1.0:
                    assert abs(learned - truth) < 0.45
                    checked += 1
        assert checked > 10

    def test_static_network_learns_exact_delays(self):
        scenario = Scenario(small("S-FAMA", mobility=False, sim_time_s=60.0))
        scenario.run_steady_state()
        for mac in scenario.macs:
            node = mac.node
            for neighbor in node.neighbors.neighbors():
                truth = scenario.channel.propagation_delay_s(node.node_id, neighbor)
                if truth <= 1.0:  # decodable range
                    assert node.neighbors.delay_to(neighbor) == pytest.approx(
                        truth, abs=1e-6
                    )
