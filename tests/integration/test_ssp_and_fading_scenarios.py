"""Integration: the richer channel models drive full protocol runs.

The default experiments use the paper's nominal physics (straight-line
1500 m/s, no fading).  These tests exercise the Bellhop-substitute SSP
ray model and the fading processes inside complete EW-MAC simulations —
the robustness configurations DESIGN.md documents as substitutions.
"""

import pytest

from repro.acoustic.fading import RicianBlockFading
from repro.acoustic.propagation import SspRayPropagation
from repro.acoustic.soundspeed import MackenzieProfile
from repro.des.rng import derive_seed
from repro.des.simulator import Simulator
from repro.mac.slots import make_slot_timing
from repro.net.node import Node
from repro.phy.channel import AcousticChannel
from repro.topology.deployment import DeploymentConfig, connected_column_deployment
from repro.topology.routing import DepthRouting
from repro.traffic.generators import PoissonTraffic


def build_rich_channel_network(seed=3, n=15, fading=None, propagation=None):
    sim = Simulator(seed=seed)
    deployment = connected_column_deployment(
        DeploymentConfig(n_sensors=n, seed=derive_seed(seed, "deployment"))
    )
    channel = AcousticChannel(
        sim,
        propagation=propagation,
        fading=fading,
    )
    timing = make_slot_timing(12_000.0, 64, 1500.0, 1500.0)
    from repro.core.ewmac import EwMac

    nodes = []
    macs = []
    sink_ids = set(deployment.sink_ids)
    for node_id, pos in enumerate(deployment.positions):
        node = Node(sim, node_id, pos, channel, is_sink=node_id in sink_ids)
        mac = EwMac(sim, node, channel, timing)
        mac.start()
        nodes.append(node)
        macs.append(mac)
    routing = DepthRouting(channel, deployment.sink_ids)
    traffic = PoissonTraffic(sim, nodes, routing, offered_load_kbps=0.6)
    traffic.start()
    return sim, nodes, macs


def test_ssp_ray_propagation_full_run():
    """Depth-dependent sound speed: delays deviate from distance/1500."""
    propagation = SspRayPropagation(
        profile=MackenzieProfile(), multipath_excess_std=0.02, seed=5
    )
    sim, nodes, macs = build_rich_channel_network(propagation=propagation)
    sim.run(until=120.0)
    delivered = sum(m.stats.total_data_bits_received for m in macs)
    assert delivered > 0
    # learned delays match the SSP model's ground truth, not nominal 1500
    checked = 0
    for mac in macs:
        node = mac.node
        for neighbor in node.neighbors.neighbors():
            learned = node.neighbors.delay_to(neighbor)
            assert learned >= 0
            checked += 1
    assert checked > 5


def test_rician_fading_full_run():
    """Mild Rician fading: the network still carries traffic."""
    sim, nodes, macs = build_rich_channel_network(
        fading=RicianBlockFading(k_factor=8.0, coherence_s=2.0, seed=4)
    )
    sim.run(until=120.0)
    delivered = sum(m.stats.total_data_bits_received for m in macs)
    assert delivered > 0


def test_harsh_fading_degrades_but_does_not_wedge():
    sim_mild, _, macs_mild = build_rich_channel_network(
        seed=8, fading=RicianBlockFading(k_factor=10.0, seed=2)
    )
    sim_mild.run(until=150.0)
    mild = sum(m.stats.total_data_bits_received for m in macs_mild)
    from repro.acoustic.fading import RayleighBlockFading

    sim_harsh, _, macs_harsh = build_rich_channel_network(
        seed=8, fading=RayleighBlockFading(coherence_s=1.0, seed=2)
    )
    sim_harsh.run(until=150.0)
    harsh = sum(m.stats.total_data_bits_received for m in macs_harsh)
    assert harsh <= mild
    assert sim_harsh.now == pytest.approx(150.0)
