"""Grid / delta-epoch / arrival-pool equivalence across the full MAC matrix.

Mirrors ``test_cache_equivalence.py``: the spatial-hash reach cull, the
movement-bounded delta-epoch skip and the Arrival free-list are pure
mechanics — every figure metric must come out *exactly* equal with them on
or off, across all five MACs, with and without mobility, under chaos
plans, and composed with block fading at the channel level.
"""

import json

import pytest

from repro.experiments.chaos import chaos_plan
from repro.experiments.config import table2_config
from repro.experiments.scenario import run_scenario


def _flat(result):
    return json.dumps(result.to_dict(), sort_keys=True)


def _pair(config):
    culled = run_scenario(config.with_(spatial_grid=True, delta_epochs=True))
    full = run_scenario(config.with_(spatial_grid=False, delta_epochs=False))
    return culled, full


class TestGridEquivalence:
    @pytest.mark.parametrize("protocol", ["EW-MAC", "S-FAMA", "ROPA", "CS-MAC", "ALOHA"])
    def test_mobile_scenario_identical(self, protocol):
        # Mobility exercises displacement accumulation, cell re-binning and
        # candidate re-gathers on every update tick.
        config = table2_config(
            protocol=protocol,
            sim_time_s=40.0,
            offered_load_kbps=0.8,
            seed=11,
            mobility=True,
        )
        culled, full = _pair(config)
        assert _flat(culled) == _flat(full)

    def test_static_scenario_identical(self):
        config = table2_config(sim_time_s=40.0, seed=12, mobility=False)
        culled, full = _pair(config)
        assert _flat(culled) == _flat(full)

    def test_tiled_deployment_identical(self):
        # The scale sweep's shape: columns spread far beyond one cell
        # neighborhood, so the cull actually drops most of the row.
        config = table2_config(
            n_sensors=150,
            n_sinks=3,
            deployment="tiled",
            side_m=13_000.0,
            sim_time_s=20.0,
            seed=5,
            mobility=True,
        )
        culled, full = _pair(config)
        assert _flat(culled) == _flat(full)
        assert culled.perf.grid_candidates < full.perf.grid_candidates

    @pytest.mark.parametrize("factor", [1.0, 3.0])
    def test_interference_range_factor_identical(self, factor):
        # The factor scales the reach mask *and* the grid cell side.
        config = table2_config(
            sim_time_s=30.0,
            offered_load_kbps=0.8,
            seed=17,
            mobility=True,
            interference_range_factor=factor,
        )
        culled, full = _pair(config)
        assert _flat(culled) == _flat(full)

    @pytest.mark.parametrize("mobility", [True, False])
    def test_chaos_plan_identical(self, mobility):
        plan = chaos_plan(fraction=0.2, warmup_s=10.0, sim_time_s=30.0, n_sensors=60)
        config = table2_config(
            sim_time_s=30.0,
            offered_load_kbps=0.8,
            seed=19,
            mobility=mobility,
            faults=plan,
        )
        culled, full = _pair(config)
        assert _flat(culled) == _flat(full)


class TestBulkScheduleEquivalence:
    """Bulk fan-out + in-reach bound vs scalar scheduling: bit-identical.

    The batched ``push_bulk`` arrival path and the symmetric in-reach
    displacement bound are the other two pure mechanics: same matrix
    coverage as the grid — all five MACs, mobility on/off, chaos plans.
    """

    @staticmethod
    def _bulk_pair(config):
        bulk = run_scenario(config.with_(bulk_schedule=True, inreach_delta=True))
        scalar = run_scenario(config.with_(bulk_schedule=False, inreach_delta=False))
        return bulk, scalar

    @pytest.mark.parametrize("protocol", ["EW-MAC", "S-FAMA", "ROPA", "CS-MAC", "ALOHA"])
    def test_mobile_scenario_identical(self, protocol):
        config = table2_config(
            protocol=protocol,
            sim_time_s=40.0,
            offered_load_kbps=0.8,
            seed=11,
            mobility=True,
        )
        bulk, scalar = self._bulk_pair(config)
        assert _flat(bulk) == _flat(scalar)
        assert bulk.perf.bulk_pushes > 0
        assert scalar.perf.bulk_pushes == 0

    def test_static_scenario_identical(self):
        config = table2_config(sim_time_s=40.0, seed=12, mobility=False)
        bulk, scalar = self._bulk_pair(config)
        assert _flat(bulk) == _flat(scalar)

    @pytest.mark.parametrize("mobility", [True, False])
    def test_chaos_plan_identical(self, mobility):
        plan = chaos_plan(fraction=0.2, warmup_s=10.0, sim_time_s=30.0, n_sensors=60)
        config = table2_config(
            sim_time_s=30.0,
            offered_load_kbps=0.8,
            seed=19,
            mobility=mobility,
            faults=plan,
        )
        bulk, scalar = self._bulk_pair(config)
        assert _flat(bulk) == _flat(scalar)

    def test_mobile_run_exercises_inreach_skip(self):
        config = table2_config(
            sim_time_s=40.0, offered_load_kbps=0.8, seed=11, mobility=True
        )
        bulk, _ = self._bulk_pair(config)
        assert bulk.perf.rows_skipped_inreach > 0


class TestArrivalPoolEquivalence:
    @pytest.mark.parametrize("protocol", ["EW-MAC", "ALOHA"])
    def test_pool_identical(self, protocol):
        config = table2_config(
            protocol=protocol,
            sim_time_s=40.0,
            offered_load_kbps=0.8,
            seed=23,
            mobility=True,
        )
        pooled = run_scenario(config.with_(arrival_pool=True))
        fresh = run_scenario(config.with_(arrival_pool=False))
        assert _flat(pooled) == _flat(fresh)


class TestFadingEquivalence:
    """Channel-level: fading composes with grid-culled levels losslessly."""

    @pytest.mark.parametrize("mobile", [False, True])
    def test_broadcast_arrivals_identical_under_fading(self, mobile):
        from repro.acoustic.fading import RayleighBlockFading
        from repro.acoustic.geometry import Position
        from repro.des.simulator import Simulator
        from repro.phy.channel import AcousticChannel
        from repro.phy.frame import FrameType, control_frame

        captured = {}
        for culled in (True, False):
            sim = Simulator()
            channel = AcousticChannel(
                sim,
                use_spatial_grid=culled,
                use_delta_epochs=culled,
                use_inreach_delta=culled,
                use_bulk_schedule=culled,
                fading=RayleighBlockFading(coherence_s=2.0, seed=5),
                interference_range_factor=2.0,
            )
            # Per-arrival fading draws need the scalar fan-out: the bulk
            # path must disable itself rather than batch around the RNG.
            assert channel._bulk is False
            holder = [
                Position(0, 0, 0),
                Position(1200, 0, 0),
                Position(0, 1400, 100),
                Position(9200, 0, 0),  # outside the 3x3x3 neighborhood
            ]
            seen = []
            for node_id in range(len(holder)):
                modem = channel.create_modem(node_id, lambda i=node_id: holder[i])
                modem.on_receive = lambda f, arr, i=node_id: seen.append(
                    (i, arr.src, arr.start, arr.end, arr.level_db, arr.delay_s)
                )
            for t, tx in ((0.0, 0), (3.0, 1), (6.5, 2)):
                sim.schedule(
                    t,
                    channel.modem_of(tx).transmit,
                    control_frame(FrameType.RTS, tx, (tx + 1) % 4, timestamp=t),
                )
            if mobile:
                def move():
                    holder[1] = Position(1300, 50, 0)
                    channel.note_position_change(1)

                sim.schedule(5.0, move)
            sim.run()
            captured[culled] = (
                seen,
                channel.stats.deliveries,
                channel.stats.out_of_range_skips,
            )
        assert captured[True] == captured[False]
