"""Golden regression ranges: catch gross behavioural regressions.

These pin broad, intentionally loose ranges for the headline metrics at a
fixed configuration and seed.  If a refactor moves a value outside its
range, either the refactor broke something or the calibration genuinely
changed — both deserve a conscious decision (and a range update with a
commit message explaining why).
"""

import pytest

from repro.experiments import run_scenario, table2_config


@pytest.fixture(scope="module")
def golden_results():
    results = {}
    for protocol in ("S-FAMA", "ROPA", "CS-MAC", "EW-MAC"):
        results[protocol] = run_scenario(
            table2_config(
                protocol=protocol,
                offered_load_kbps=0.6,
                sim_time_s=150.0,
                seed=42,
            )
        )
    return results


GOLDEN_THROUGHPUT_KBPS = {
    # broad bands around the calibrated behaviour at seed 42, 0.6 kbps
    "S-FAMA": (0.15, 0.9),
    "ROPA": (0.15, 0.95),
    "CS-MAC": (0.2, 1.2),
    "EW-MAC": (0.15, 1.0),
}


@pytest.mark.parametrize("protocol", sorted(GOLDEN_THROUGHPUT_KBPS))
def test_throughput_in_golden_band(golden_results, protocol):
    lo, hi = GOLDEN_THROUGHPUT_KBPS[protocol]
    assert lo <= golden_results[protocol].throughput_kbps <= hi


def test_power_magnitudes(golden_results):
    """Network power: idle floor ~61 * 80 mW, plus protocol overheads."""
    for protocol, result in golden_results.items():
        assert 4_000 <= result.power_mw <= 60_000, protocol
    assert golden_results["ROPA"].power_mw > golden_results["S-FAMA"].power_mw
    assert golden_results["CS-MAC"].power_mw > golden_results["S-FAMA"].power_mw


def test_overhead_ordering(golden_results):
    """Paper Fig. 10 ordering at the default density."""
    overhead = {p: r.overhead_units for p, r in golden_results.items()}
    assert overhead["S-FAMA"] < overhead["ROPA"]
    assert overhead["S-FAMA"] < overhead["EW-MAC"] < overhead["CS-MAC"]


def test_only_ewmac_completes_extras(golden_results):
    assert golden_results["EW-MAC"].extra_completed >= 0
    for protocol in ("S-FAMA", "ROPA", "CS-MAC"):
        assert golden_results[protocol].extra_completed == 0


def test_determinism_of_golden_run(golden_results):
    repeat = run_scenario(
        table2_config(
            protocol="EW-MAC", offered_load_kbps=0.6, sim_time_s=150.0, seed=42
        )
    )
    assert repeat.throughput_kbps == golden_results["EW-MAC"].throughput_kbps
    assert repeat.collisions == golden_results["EW-MAC"].collisions
    assert repeat.overhead_units == golden_results["EW-MAC"].overhead_units
