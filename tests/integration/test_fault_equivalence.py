"""An empty fault plan must be invisible: bit-identical metrics, no RNG.

The fault subsystem's zero-cost contract: a config whose ``faults`` field
is the (default) empty plan schedules no events, creates no RNG stream,
adds no result keys, and hashes to the same cache key — so the entire
figure pipeline is byte-for-byte unaffected by the subsystem existing.
"""

from __future__ import annotations

from repro.experiments.cache import ResultCache, cell_key
from repro.experiments.config import table2_config
from repro.experiments.scenario import Scenario, run_scenario
from repro.experiments.sweeps import SweepSpec, run_sweep
from repro.faults.plan import CrashWave, FaultPlan, NoiseBurst


def quick_config(**overrides):
    defaults = dict(n_sensors=10, sim_time_s=15.0, side_m=3000.0)
    defaults.update(overrides)
    return table2_config(**defaults)


class TestEmptyPlanEquivalence:
    def test_metrics_bit_identical_to_default_config(self):
        base = quick_config()
        explicit = base.with_(faults=FaultPlan())
        assert run_scenario(base).to_dict() == run_scenario(explicit).to_dict()

    def test_no_injector_no_faults_stream(self):
        scenario = Scenario(quick_config().with_(faults=FaultPlan()))
        assert scenario.injector is None
        scenario.run_steady_state()
        assert "faults" not in scenario.sim.streams._streams

    def test_faulted_run_does_create_the_stream(self):
        plan = FaultPlan(waves=(CrashWave(at_s=20.0, fraction=0.2),))
        scenario = Scenario(quick_config(sim_time_s=20.0).with_(faults=plan))
        assert scenario.injector is not None
        scenario.run_steady_state()
        assert "faults" in scenario.sim.streams._streams

    def test_no_fault_keys_in_summary(self):
        summary = run_scenario(quick_config()).to_dict()
        assert "delivery_ratio" not in summary
        assert "fault_events" not in summary

    def test_cache_on_and_off_agree(self, tmp_path):
        spec = SweepSpec(
            x_values=[0.4],
            configure=lambda base, x, protocol, seed: base.with_(
                offered_load_kbps=x,
                protocol=protocol,
                seed=seed,
                faults=FaultPlan(),
            ),
        )
        base = quick_config()
        plain = run_sweep(spec, base, protocols=("EW-MAC",), seeds=(1,))
        cached = run_sweep(
            spec,
            base,
            protocols=("EW-MAC",),
            seeds=(1,),
            cache=ResultCache(tmp_path / "cache"),
        )
        assert [r.to_dict() for r in plain[(0.4, "EW-MAC")]] == [
            r.to_dict() for r in cached[(0.4, "EW-MAC")]
        ]


class TestCacheKeySeparation:
    def test_plans_separate_otherwise_equal_configs(self):
        base = quick_config()
        noisy = base.with_(
            faults=FaultPlan(
                noise_bursts=(NoiseBurst(at_s=20.0, duration_s=5.0, extra_noise_db=6.0),)
            )
        )
        assert cell_key(base, None) != cell_key(noisy, None)

    def test_cache_never_serves_a_faulted_result_to_a_clean_config(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        base = quick_config(sim_time_s=10.0)
        faulted = base.with_(
            faults=FaultPlan(waves=(CrashWave(at_s=15.0, fraction=0.3),))
        )
        result = run_scenario(faulted)
        cache.put(cell_key(faulted, None), result)
        assert cache.get(cell_key(base, None)) is None

    def test_faulted_results_round_trip_through_the_cache(self, tmp_path):
        cache = ResultCache(tmp_path / "cache")
        config = quick_config(sim_time_s=10.0).with_(
            faults=FaultPlan(
                waves=(CrashWave(at_s=15.0, fraction=0.3, recover_after_s=3.0),),
                strict_audit=False,
            )
        )
        result = run_scenario(config)
        key = cell_key(config, None)
        cache.put(key, result)
        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()
        assert loaded.faults.events == result.faults.events
