"""Failure injection: nodes dying mid-simulation.

Sensors flood, sink, or exhaust batteries; the network must keep
operating: routing resolves around dead relays and the MAC layer's
timeouts clean up exchanges that died with a peer.
"""

import pytest

from repro.experiments import Scenario, table2_config


def build(protocol="EW-MAC", **kw):
    defaults = dict(
        protocol=protocol,
        n_sensors=25,
        sim_time_s=120.0,
        offered_load_kbps=0.8,
        seed=6,
        mobility=False,
    )
    defaults.update(kw)
    return Scenario(table2_config(**defaults))


@pytest.mark.parametrize("protocol", ["S-FAMA", "ROPA", "CS-MAC", "EW-MAC"])
def test_network_survives_relay_death(protocol):
    scenario = Scenario(
        table2_config(
            protocol=protocol,
            n_sensors=25,
            sim_time_s=150.0,
            offered_load_kbps=0.8,
            seed=6,
            mobility=False,
        )
    )
    # kill the busiest relay (the sink's closest neighbour) mid-run
    sink = scenario.deployment.sink_ids[0]
    victim_id = scenario.channel.neighbors_of(sink)[0]
    victim = scenario.nodes[victim_id]
    scenario.sim.schedule(60.0, victim.fail)
    result = scenario.run_steady_state()
    assert not victim.alive
    # the network kept delivering after the failure
    assert result.throughput_kbps > 0.0
    # and the dead node is no longer a routing candidate
    assert victim_id not in scenario.channel.neighbors_of(sink)


def test_dead_node_sends_and_receives_nothing():
    scenario = build()
    victim = scenario.nodes[5]
    scenario.sim.schedule(30.0, victim.fail)
    scenario.run_steady_state()
    tx_before_death = victim.modem.stats.tx_frames
    # rerun bookkeeping: no transmissions can have been recorded after 30 s
    # (tx counter can only have grown before the failure); verify the modem
    # is inert by attempting an arrival
    from repro.phy.frame import FrameType, control_frame
    from repro.phy.modem import Arrival

    frame = control_frame(FrameType.RTS, 1, victim.node_id, timestamp=0.0)
    arrival = Arrival(frame, 1, scenario.sim.now, scenario.sim.now + 0.005, -30.0, 0.1)
    before = victim.modem.stats.rx_ok
    victim.modem.begin_arrival(arrival)
    scenario.sim.run(until=scenario.sim.now + 1.0)
    assert victim.modem.stats.rx_ok == before
    assert tx_before_death == victim.modem.stats.tx_frames


def test_transmit_on_dead_modem_raises():
    scenario = build()
    victim = scenario.nodes[3]
    victim.fail()
    from repro.phy.frame import FrameType, control_frame

    with pytest.raises(RuntimeError):
        victim.modem.transmit(control_frame(FrameType.RTS, 3, 1, timestamp=0.0))


def test_routing_recovers_alternative_path():
    scenario = build()
    # find a node with at least two shallower neighbours
    routing = scenario.routing
    for node_id in scenario.deployment.sensor_ids:
        first = routing.next_hop(node_id)
        if first is None or first == scenario.deployment.sink_ids[0]:
            continue
        scenario.nodes[first].fail()
        second = routing.next_hop(node_id)
        assert second != first
        scenario.nodes[first].modem.enabled = True  # restore for next iter
        if second is not None:
            return
    pytest.skip("topology offered no redundant paths at this seed")


def test_mass_failure_degrades_gracefully():
    """Half the sensors die at once; the simulation must not wedge."""
    scenario = build(n_sensors=30)
    victims = [scenario.nodes[i] for i in scenario.deployment.sensor_ids[::2]]

    def massacre():
        for victim in victims:
            victim.fail()

    scenario.sim.schedule(50.0, massacre)
    result = scenario.run_steady_state()
    assert all(not v.alive for v in victims)
    assert result.throughput.total_bits >= 0
