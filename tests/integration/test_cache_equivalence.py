"""Link-state cache equivalence: cached and uncached runs are bit-identical.

The cache is a pure memoization layer, so every figure metric must come out
*exactly* equal — not approximately — with ``link_cache`` on or off.  Runs
with mobility enabled exercise epoch invalidation on every position-update
tick; the static run exercises the compute-each-pair-exactly-once path.
"""

import json

import pytest

from repro.experiments.chaos import chaos_plan
from repro.experiments.config import table2_config
from repro.experiments.scenario import run_batch_scenario, run_scenario


def _flat(result):
    """Canonical JSON of every figure metric (raises on non-serialisable)."""
    return json.dumps(result.to_dict(), sort_keys=True)


def _pair(config):
    cached = run_scenario(config.with_(link_cache=True))
    uncached = run_scenario(config.with_(link_cache=False))
    return cached, uncached


class TestSteadyStateEquivalence:
    @pytest.mark.parametrize("protocol", ["EW-MAC", "S-FAMA", "ROPA", "CS-MAC", "ALOHA"])
    def test_mobile_scenario_identical(self, protocol):
        # Mobility forces an epoch bump every update period; identical
        # results prove invalidation never serves stale geometry.
        config = table2_config(
            protocol=protocol,
            sim_time_s=40.0,
            offered_load_kbps=0.8,
            seed=11,
            mobility=True,
        )
        cached, uncached = _pair(config)
        assert _flat(cached) == _flat(uncached)

    def test_static_scenario_identical(self):
        config = table2_config(sim_time_s=40.0, seed=12, mobility=False)
        cached, uncached = _pair(config)
        assert _flat(cached) == _flat(uncached)
        # Static deployments compute each queried pair exactly once.
        perf = cached.perf
        assert perf.cache_hits > 0
        n = config.n_sensors + 1
        assert perf.cache_misses <= n * (n - 1)

    def test_mobility_run_actually_invalidates(self):
        config = table2_config(sim_time_s=40.0, seed=13, mobility=True)
        mobile = run_scenario(config)
        static = run_scenario(config.with_(mobility=False))
        n = config.n_sensors + 1
        # With epoch bumps every mobility tick the cache recomputes pairs;
        # without them it cannot exceed the one-shot pair budget.
        assert mobile.perf.cache_misses > n * (n - 1)
        assert static.perf.cache_misses <= n * (n - 1)


class TestVariantEquivalence:
    """Knobs that reshape the geometry pipeline must not break identity."""

    @pytest.mark.parametrize("factor", [1.0, 3.0])
    def test_interference_range_factor_identical(self, factor):
        # The factor scales the delivery-reach mask inside the vector
        # kernel; both extremes must agree with the scalar scan.
        config = table2_config(
            sim_time_s=30.0,
            offered_load_kbps=0.8,
            seed=17,
            mobility=True,
            interference_range_factor=factor,
        )
        cached, uncached = _pair(config)
        assert _flat(cached) == _flat(uncached)

    @pytest.mark.parametrize("mobility", [True, False])
    def test_chaos_plan_identical(self, mobility):
        # Fault injection moves nothing but flips modem liveness, jumps
        # clocks and raises the noise floor mid-run — none of which is
        # cached state, so identity must survive a full chaos plan.
        plan = chaos_plan(fraction=0.2, warmup_s=10.0, sim_time_s=30.0, n_sensors=60)
        config = table2_config(
            sim_time_s=30.0,
            offered_load_kbps=0.8,
            seed=19,
            mobility=mobility,
            faults=plan,
        )
        cached, uncached = _pair(config)
        assert _flat(cached) == _flat(uncached)


class TestFadingEquivalence:
    """Channel-level check: fading composes with cached levels losslessly.

    ``ScenarioConfig`` has no fading knob, so this exercises the channel
    directly: the kernel caches the *pre-fading* level and the fan-out adds
    the block fade per delivery, identically on both paths.
    """

    @pytest.mark.parametrize("mobile", [False, True])
    def test_broadcast_arrivals_identical_under_fading(self, mobile):
        from repro.acoustic.fading import RayleighBlockFading
        from repro.acoustic.geometry import Position
        from repro.des.simulator import Simulator
        from repro.phy.channel import AcousticChannel
        from repro.phy.frame import FrameType, control_frame

        captured = {}
        for use_cache in (True, False):
            sim = Simulator()
            channel = AcousticChannel(
                sim,
                use_link_cache=use_cache,
                fading=RayleighBlockFading(coherence_s=2.0, seed=5),
                interference_range_factor=2.0,
            )
            holder = [
                Position(0, 0, 0),
                Position(1200, 0, 0),
                Position(0, 1400, 100),
                Position(2200, 0, 0),
            ]
            seen = []
            for node_id in range(len(holder)):
                modem = channel.create_modem(node_id, lambda i=node_id: holder[i])
                modem.on_receive = lambda f, arr, i=node_id: seen.append(
                    (i, arr.src, arr.start, arr.end, arr.level_db, arr.delay_s)
                )
            for t, tx in ((0.0, 0), (3.0, 1), (6.5, 2)):
                sim.schedule(
                    t,
                    channel.modem_of(tx).transmit,
                    control_frame(FrameType.RTS, tx, (tx + 1) % 4, timestamp=t),
                )
            if mobile:
                def move():
                    holder[1] = Position(1300, 50, 0)
                    channel.note_position_change(1)

                sim.schedule(5.0, move)
            sim.run()
            captured[use_cache] = (
                seen,
                channel.stats.deliveries,
                channel.stats.out_of_range_skips,
            )
        assert captured[True] == captured[False]


class TestBatchEquivalence:
    def test_batch_drain_identical(self):
        config = table2_config(
            sim_time_s=40.0, seed=7, offered_load_kbps=0.4, max_retries=100
        )
        cached = run_batch_scenario(
            config.with_(link_cache=True), n_packets=6, max_time_s=1200.0
        )
        uncached = run_batch_scenario(
            config.with_(link_cache=False), n_packets=6, max_time_s=1200.0
        )
        assert _flat(cached) == _flat(uncached)
