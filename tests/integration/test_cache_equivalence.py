"""Link-state cache equivalence: cached and uncached runs are bit-identical.

The cache is a pure memoization layer, so every figure metric must come out
*exactly* equal — not approximately — with ``link_cache`` on or off.  Runs
with mobility enabled exercise epoch invalidation on every position-update
tick; the static run exercises the compute-each-pair-exactly-once path.
"""

import json

import pytest

from repro.experiments.config import table2_config
from repro.experiments.scenario import run_batch_scenario, run_scenario


def _flat(result):
    """Canonical JSON of every figure metric (raises on non-serialisable)."""
    return json.dumps(result.to_dict(), sort_keys=True)


def _pair(config):
    cached = run_scenario(config.with_(link_cache=True))
    uncached = run_scenario(config.with_(link_cache=False))
    return cached, uncached


class TestSteadyStateEquivalence:
    @pytest.mark.parametrize("protocol", ["EW-MAC", "S-FAMA", "ROPA", "CS-MAC"])
    def test_mobile_scenario_identical(self, protocol):
        # Mobility forces an epoch bump every update period; identical
        # results prove invalidation never serves stale geometry.
        config = table2_config(
            protocol=protocol,
            sim_time_s=40.0,
            offered_load_kbps=0.8,
            seed=11,
            mobility=True,
        )
        cached, uncached = _pair(config)
        assert _flat(cached) == _flat(uncached)

    def test_static_scenario_identical(self):
        config = table2_config(sim_time_s=40.0, seed=12, mobility=False)
        cached, uncached = _pair(config)
        assert _flat(cached) == _flat(uncached)
        # Static deployments compute each queried pair exactly once.
        perf = cached.perf
        assert perf.cache_hits > 0
        n = config.n_sensors + 1
        assert perf.cache_misses <= n * (n - 1)

    def test_mobility_run_actually_invalidates(self):
        config = table2_config(sim_time_s=40.0, seed=13, mobility=True)
        mobile = run_scenario(config)
        static = run_scenario(config.with_(mobility=False))
        n = config.n_sensors + 1
        # With epoch bumps every mobility tick the cache recomputes pairs;
        # without them it cannot exceed the one-shot pair budget.
        assert mobile.perf.cache_misses > n * (n - 1)
        assert static.perf.cache_misses <= n * (n - 1)


class TestBatchEquivalence:
    def test_batch_drain_identical(self):
        config = table2_config(
            sim_time_s=40.0, seed=7, offered_load_kbps=0.4, max_retries=100
        )
        cached = run_batch_scenario(
            config.with_(link_cache=True), n_packets=6, max_time_s=1200.0
        )
        uncached = run_batch_scenario(
            config.with_(link_cache=False), n_packets=6, max_time_s=1200.0
        )
        assert _flat(cached) == _flat(uncached)
