"""Unit tests for replication statistics and ASCII charts."""

import math

import pytest

from repro.analysis.charts import ascii_chart, figure_chart
from repro.analysis.statistics import (
    Estimate,
    estimate,
    mean,
    paired_comparison,
    replicate_until,
    sample_std,
)
from repro.experiments.figures import FigureData


class TestBasics:
    def test_mean_and_std(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert sample_std([2.0, 4.0]) == pytest.approx(math.sqrt(2.0))
        assert sample_std([5.0]) == 0.0
        with pytest.raises(ValueError):
            mean([])


class TestEstimate:
    def test_interval_contains_mean(self):
        est = estimate([1.0, 2.0, 3.0, 4.0])
        assert est.low < est.mean < est.high
        assert est.n == 4

    def test_single_value_has_infinite_width(self):
        est = estimate([5.0])
        assert est.half_width == math.inf

    def test_zero_variance_zero_width(self):
        est = estimate([2.0, 2.0, 2.0])
        assert est.half_width == 0.0

    def test_higher_confidence_wider(self):
        values = [1.0, 2.0, 3.0, 4.0, 5.0]
        assert estimate(values, 0.99).half_width > estimate(values, 0.90).half_width

    def test_more_samples_tighter(self):
        narrow = estimate([1.0, 2.0] * 10)
        wide = estimate([1.0, 2.0] * 2)
        assert narrow.half_width < wide.half_width

    def test_overlap(self):
        a = Estimate(1.0, 0.5, 3, 0.95)
        b = Estimate(1.4, 0.2, 3, 0.95)
        c = Estimate(3.0, 0.2, 3, 0.95)
        assert a.overlaps(b)
        assert not a.overlaps(c)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            estimate([])
        with pytest.raises(ValueError):
            estimate([1.0], confidence=1.5)


class TestPaired:
    def test_clear_difference_is_significant(self):
        a = [10.0, 11.0, 10.5, 10.2, 10.8]
        b = [5.0, 5.5, 5.2, 5.1, 5.4]
        cmp = paired_comparison(a, b)
        assert cmp.mean_difference > 0
        assert cmp.significant

    def test_noise_is_not_significant(self):
        a = [1.0, 2.0, 3.0, 4.0]
        b = [1.1, 1.9, 3.2, 3.7]
        assert not paired_comparison(a, b).significant

    def test_length_mismatch(self):
        with pytest.raises(ValueError):
            paired_comparison([1.0], [1.0, 2.0])


class TestReplicateUntil:
    def test_stops_when_tight(self):
        est, values = replicate_until(
            lambda seed: 10.0 + 0.01 * seed, target_relative_half_width=0.05
        )
        assert est.relative_half_width <= 0.05
        assert len(values) >= 3

    def test_honours_max_seeds(self):
        # wildly noisy: never converges, must stop at max
        est, values = replicate_until(
            lambda seed: (-100.0) ** seed,
            target_relative_half_width=0.01,
            max_seeds=5,
        )
        assert len(values) == 5

    def test_min_seeds_validated(self):
        with pytest.raises(ValueError):
            replicate_until(lambda s: 1.0, min_seeds=1)


class TestCharts:
    def _series(self):
        return [0.1, 0.2, 0.3], {"A": [1.0, 2.0, 3.0], "B": [3.0, 2.0, 1.0]}

    def test_chart_contains_markers_and_legend(self):
        x, series = self._series()
        chart = ascii_chart(x, series)
        assert "o A" in chart and "x B" in chart
        assert "o" in chart and "x" in chart

    def test_axis_labels_present(self):
        x, series = self._series()
        chart = ascii_chart(x, series, y_label="kbps", x_label="load")
        assert "kbps" in chart and "load" in chart

    def test_validation(self):
        with pytest.raises(ValueError):
            ascii_chart([], {})
        with pytest.raises(ValueError):
            ascii_chart([1.0, 2.0], {"A": [1.0]})

    def test_flat_series_renders(self):
        chart = ascii_chart([0.0, 1.0], {"A": [2.0, 2.0]})
        assert "o" in chart

    def test_figure_chart_wraps_figure_data(self):
        data = FigureData(
            figure_id="fig6",
            title="Throughput",
            x_label="Offered load (kbps)",
            y_label="Throughput (kbps)",
            x_values=[0.2, 0.6, 1.0],
            series={"S-FAMA": [0.3, 0.4, 0.45], "EW-MAC": [0.31, 0.45, 0.52]},
        )
        chart = figure_chart(data)
        assert "fig6" in chart and "S-FAMA" in chart
