"""Unit tests for the analytical models, including simulator validation."""

import math

import pytest

from repro.analysis.theory import (
    HandshakeModel,
    contention_success_probability,
    expected_contention_rounds,
    offered_load_saturation_point_kbps,
    propagation_limited_rtt_s,
    slotted_aloha_peak_utilization,
)
from repro.mac.slots import make_slot_timing


@pytest.fixture
def timing():
    return make_slot_timing(12_000.0, 64, 1500.0, 1500.0)


class TestHandshakeModel:
    def test_exchange_slots_for_table2_defaults(self, timing):
        # 2048 bits at tau_max: RTS + CTS + ceil((0.171+1.0)/1.005)=2 + Ack
        model = HandshakeModel(timing, 2048, 12_000.0)
        assert model.exchange_slots() == 2 + 2 + 1

    def test_nearby_pair_needs_fewer_slots(self, timing):
        far = HandshakeModel(timing, 2048, 12_000.0, tau_s=1.0)
        near = HandshakeModel(timing, 2048, 12_000.0, tau_s=0.1)
        assert near.exchange_slots() < far.exchange_slots()

    def test_single_pair_throughput_magnitude(self, timing):
        # ~2048 bits per 5 slots of ~1.005 s: ~0.41 kbps — the saturation
        # scale the paper's Fig. 6 curves sit at.
        model = HandshakeModel(timing, 2048, 12_000.0)
        assert model.single_pair_throughput_bps() == pytest.approx(
            2048 / (5 * timing.slot_s)
        )
        assert 300 < model.single_pair_throughput_bps() < 500

    def test_utilization_below_one(self, timing):
        model = HandshakeModel(timing, 4096, 12_000.0)
        assert 0.0 < model.channel_utilization() < 0.15

    def test_larger_packets_better_utilization(self, timing):
        """The paper's Sec. 2 point: large packets amortize the handshake."""
        small = HandshakeModel(timing, 1024, 12_000.0)
        large = HandshakeModel(timing, 4096, 12_000.0)
        assert large.channel_utilization() > small.channel_utilization()


class TestContentionMath:
    def test_success_probability_bounds(self):
        assert contention_success_probability(1, 4) == 1.0
        assert contention_success_probability(2, 4) == pytest.approx(0.75)
        assert 0.0 < contention_success_probability(10, 4) < 0.1

    def test_expected_rounds_inverse(self):
        p = contention_success_probability(3, 4)
        assert expected_contention_rounds(3, 4) == pytest.approx(1.0 / p)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            contention_success_probability(0, 4)
        with pytest.raises(ValueError):
            contention_success_probability(2, 0)

    def test_aloha_peak(self):
        assert slotted_aloha_peak_utilization() == pytest.approx(1 / math.e)


class TestBounds:
    def test_rtt_floor(self):
        assert propagation_limited_rtt_s(1500.0) == pytest.approx(2.0)
        with pytest.raises(ValueError):
            propagation_limited_rtt_s(-1.0)

    def test_saturation_point_scales(self, timing):
        base = offered_load_saturation_point_kbps(timing, 2048, 12_000.0)
        doubled = offered_load_saturation_point_kbps(
            timing, 2048, 12_000.0, parallel_domains=2.0
        )
        hopped = offered_load_saturation_point_kbps(
            timing, 2048, 12_000.0, mean_hops=2.0
        )
        assert doubled == pytest.approx(2 * base)
        assert hopped == pytest.approx(base / 2)
        with pytest.raises(ValueError):
            offered_load_saturation_point_kbps(timing, 2048, 12_000.0, mean_hops=0)


class TestSimulatorAgainstTheory:
    def test_single_pair_simulation_respects_bound(self, timing):
        """An isolated saturated pair must stay at/below the closed form."""
        from repro.acoustic.geometry import Position
        from repro.des.simulator import Simulator
        from repro.mac.sfama import SFama
        from repro.net.node import Node
        from repro.phy.channel import AcousticChannel

        sim = Simulator(seed=1)
        channel = AcousticChannel(sim)
        a = Node(sim, 0, Position(0, 0, 100), channel)
        b = Node(sim, 1, Position(1400, 0, 100), channel)
        mac_a = SFama(sim, a, channel, timing)
        mac_b = SFama(sim, b, channel, timing)
        mac_a.start()
        mac_b.start()
        for _ in range(200):
            a.enqueue_data(1, 2048)
        sim.run(until=310.0)
        measured_bps = mac_b.stats.data_received_bits / 300.0
        tau = 1400.0 / 1500.0
        bound = HandshakeModel(timing, 2048, 12_000.0, tau_s=tau)
        assert measured_bps <= bound.single_pair_throughput_bps() * 1.02
        # and the protocol should achieve a solid fraction of the bound
        assert measured_bps >= bound.single_pair_throughput_bps() * 0.7
