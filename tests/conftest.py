"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator
from repro.des.trace import Tracer
from repro.mac.slots import SlotTiming, make_slot_timing
from repro.phy.channel import AcousticChannel


@pytest.fixture
def sim() -> Simulator:
    """A fresh simulator with tracing enabled."""
    return Simulator(seed=42, tracer=Tracer())


@pytest.fixture
def timing() -> SlotTiming:
    """The paper's Table 2 slot grid: 64 b / 12 kbps, 1.5 km / 1.5 km/s."""
    return make_slot_timing(
        bitrate_bps=12_000.0, control_bits=64, max_range_m=1500.0, speed_mps=1500.0
    )


@pytest.fixture
def channel(sim: Simulator) -> AcousticChannel:
    """A Table 2 channel on the fresh simulator."""
    return AcousticChannel(sim)


def make_line_positions(spacing_m: float, count: int, depth_step_m: float = 0.0):
    """Positions in a line along x, optionally descending in depth."""
    return [
        Position(i * spacing_m, 0.0, 100.0 + i * depth_step_m) for i in range(count)
    ]
