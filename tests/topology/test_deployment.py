"""Unit tests for deployments."""

import pytest

from repro.topology.deployment import (
    DeploymentConfig,
    connected_column_deployment,
    density_link_scale,
    uniform_deployment,
)


def test_uniform_deployment_bounds_and_counts():
    config = DeploymentConfig(n_sensors=50, n_sinks=2, seed=1)
    dep = uniform_deployment(config)
    assert dep.n_nodes == 52
    assert dep.sink_ids == [0, 1]
    assert len(dep.sensor_ids) == 50
    for pos in dep.positions:
        assert 0 <= pos.x <= config.side_x_m
        assert 0 <= pos.y <= config.side_y_m
        assert 0 <= pos.z <= config.depth_m
    for sink in dep.sink_ids:
        assert dep.positions[sink].z == 0.0


def test_connected_deployment_is_connected():
    for seed in range(5):
        dep = connected_column_deployment(DeploymentConfig(n_sensors=60, seed=seed))
        assert dep.is_connected(), f"seed {seed} produced a disconnected deployment"


def test_connected_deployment_links_within_range():
    config = DeploymentConfig(n_sensors=80, seed=3)
    dep = connected_column_deployment(config)
    # every sensor has at least one in-range neighbour (its parent)
    for node_id in dep.sensor_ids:
        assert dep.neighbors_of(node_id), f"node {node_id} isolated"


def test_density_scaling_shrinks_links():
    sparse = connected_column_deployment(DeploymentConfig(n_sensors=60, seed=7))
    dense = connected_column_deployment(DeploymentConfig(n_sensors=140, seed=7))
    assert dense.mean_link_distance_m() < sparse.mean_link_distance_m()


def test_density_link_scale_formula():
    assert density_link_scale(60) == pytest.approx(1.0)
    assert density_link_scale(480) == pytest.approx(0.5)
    with pytest.raises(ValueError):
        density_link_scale(0)


def test_mean_degree_grows_with_density():
    sparse = connected_column_deployment(DeploymentConfig(n_sensors=60, seed=2))
    dense = connected_column_deployment(DeploymentConfig(n_sensors=140, seed=2))
    assert dense.mean_degree() > sparse.mean_degree()


def test_deterministic_per_seed():
    a = connected_column_deployment(DeploymentConfig(n_sensors=30, seed=11))
    b = connected_column_deployment(DeploymentConfig(n_sensors=30, seed=11))
    assert [p.as_tuple() for p in a.positions] == [p.as_tuple() for p in b.positions]


def test_volume_km3():
    assert DeploymentConfig().volume_km3() == pytest.approx(1000.0)
