"""Unit tests for mobility models and depth routing."""

import numpy as np
import pytest

from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator
from repro.net.node import Node
from repro.phy.channel import AcousticChannel
from repro.topology.deployment import DeploymentConfig, connected_column_deployment
from repro.topology.mobility import (
    HorizontalDriftModel,
    MobilityManager,
    StaticModel,
    VerticalOscillationModel,
)
from repro.topology.routing import DepthRouting


class TestModels:
    def test_static_never_moves(self):
        model = StaticModel()
        p = Position(1, 2, 3)
        assert model.step(p, 100.0) is p

    def test_horizontal_keeps_depth(self):
        rng = np.random.default_rng(0)
        model = HorizontalDriftModel(rng, speed_mps=0.5)
        p = Position(0, 0, 500)
        moved = model.step(p, 10.0)
        assert moved.z == 500
        assert p.horizontal_distance_to(moved) == pytest.approx(5.0)

    def test_vertical_keeps_xy_and_is_bounded(self):
        rng = np.random.default_rng(0)
        model = VerticalOscillationModel(rng, amplitude_m=50.0, period_s=60.0)
        p = Position(10, 20, 500)
        max_dev = 0.0
        for _ in range(100):
            p = model.step(p, 5.0)
            assert (p.x, p.y) == (10, 20)
            max_dev = max(max_dev, abs(p.z - 500))
        assert max_dev <= 100.0 + 1e-6  # 2 * amplitude


class TestManager:
    def _build(self, seed=0, model_mix=(1 / 3, 1 / 3, 1 / 3)):
        sim = Simulator(seed=seed)
        config = DeploymentConfig(n_sensors=20, seed=seed)
        dep = connected_column_deployment(config)
        channel = AcousticChannel(sim)
        nodes = [
            Node(sim, i, pos, channel, is_sink=(i in dep.sink_ids))
            for i, pos in enumerate(dep.positions)
        ]
        manager = MobilityManager(sim, nodes, config, model_mix=model_mix)
        return sim, nodes, manager

    def test_sinks_stay_static(self):
        sim, nodes, manager = self._build()
        assert manager.assignments[0] == "static"

    def test_tether_bounds_wander(self):
        sim, nodes, manager = self._build(model_mix=(0, 1, 0))
        anchors = {n.node_id: n.position for n in nodes}
        for _ in range(200):
            manager.step(10.0)
        for node in nodes:
            assert node.position.distance_to(anchors[node.node_id]) <= manager.tether_m + 1e-6

    def test_periodic_updates_via_simulator(self):
        sim, nodes, manager = self._build(model_mix=(0, 1, 0))
        start = [n.position for n in nodes if not n.is_sink]
        manager.start()
        sim.run(until=30.0)
        moved = [
            n.position.distance_to(s)
            for n, s in zip([n for n in nodes if not n.is_sink], start)
        ]
        assert any(d > 0 for d in moved)
        manager.stop()

    def test_invalid_mix_rejected(self):
        sim, nodes, _ = self._build()
        config = DeploymentConfig(n_sensors=5)
        with pytest.raises(ValueError):
            MobilityManager(sim, nodes, config, model_mix=(1, 1))
        with pytest.raises(ValueError):
            MobilityManager(sim, nodes, config, model_mix=(0, 0, 0))


class TestRouting:
    def _build(self, n=40, seed=0):
        sim = Simulator(seed=seed)
        config = DeploymentConfig(n_sensors=n, seed=seed)
        dep = connected_column_deployment(config)
        channel = AcousticChannel(sim)
        for i, pos in enumerate(dep.positions):
            Node(sim, i, pos, channel, is_sink=(i in dep.sink_ids))
        return channel, dep

    def test_next_hop_is_shallower(self):
        channel, dep = self._build()
        routing = DepthRouting(channel, dep.sink_ids)
        for node_id in dep.sensor_ids:
            nxt = routing.next_hop(node_id)
            if nxt is None:
                continue
            if nxt not in dep.sink_ids:
                assert channel.position_of(nxt).z < channel.position_of(node_id).z

    def test_routes_reach_sink_in_connected_deployment(self):
        channel, dep = self._build(seed=1)
        routing = DepthRouting(channel, dep.sink_ids)
        reached = 0
        for node_id in dep.sensor_ids:
            path = routing.route_to_sink(node_id)
            if path[-1] in dep.sink_ids:
                reached += 1
        assert reached >= len(dep.sensor_ids) * 0.9

    def test_sink_in_range_preferred(self):
        channel, dep = self._build(seed=2)
        routing = DepthRouting(channel, dep.sink_ids)
        for node_id in dep.sensor_ids:
            neighbors = channel.neighbors_of(node_id)
            in_range_sinks = [s for s in dep.sink_ids if s in neighbors]
            if in_range_sinks:
                assert routing.next_hop(node_id) in in_range_sinks

    def test_requires_sinks(self):
        channel, dep = self._build()
        with pytest.raises(ValueError):
            DepthRouting(channel, [])

    def test_stranded_nodes_listed(self):
        channel, dep = self._build(seed=3)
        routing = DepthRouting(channel, dep.sink_ids)
        stranded = routing.stranded_nodes()
        for node_id in stranded:
            assert routing.next_hop(node_id) is None
