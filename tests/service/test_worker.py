"""Worker pool liveness: heartbeats, graceful drain, chaos injection.

Runners are injected (no simulation) and leases are short, so every
scenario here is deterministic and fast: a live pool keeps its lease
fresh through long jobs, a draining pool releases unfinished work with
the attempt refunded, and a chaos-wounded worker turns into a clean
failure without wedging the queue.
"""

from __future__ import annotations

import threading
import time

import pytest

from repro.experiments.engine import (
    EngineError,
    FigureData,
    SweepRequest,
    SweepResult,
    request_key,
)
from repro.service.store import DONE, FAILED, QUEUED, RUNNING, JobStore
from repro.service.worker import WorkerPool

REQUEST_BODY = {
    "target": "fig6",
    "quick": True,
    "seeds": [1],
    "overrides": {"n_sensors": 6, "sim_time_s": 3.0, "warmup_s": 2.0},
}


def _result(request: SweepRequest) -> SweepResult:
    figure = FigureData(
        figure_id=request.target,
        title="stub",
        x_label="x",
        y_label="y",
        x_values=[1.0],
        series={"EW-MAC": [0.5]},
    )
    return SweepResult(
        request=request,
        figure=figure,
        summary_lines=["ok"],
        cells_total=1,
        cache_misses=1,
        cache_stores=1,
    )


def _submit(store: JobStore) -> str:
    request = SweepRequest.from_dict(REQUEST_BODY)
    key = request_key(request)
    store.submit(key, request.to_dict())
    return key


def _wait(predicate, timeout_s=10.0, message="condition never held"):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        if predicate():
            return
        time.sleep(0.01)
    raise AssertionError(message)


def test_heartbeat_keeps_long_job_leased(tmp_path):
    """A job several leases long survives because the pool heartbeats it."""
    store = JobStore(tmp_path / "jobs.sqlite", lease_s=0.2)
    release = threading.Event()

    def slow_runner(request, progress):
        progress("working")
        assert release.wait(timeout=10.0)
        return _result(request)

    pool = WorkerPool(store, runner=slow_runner, poll_interval_s=0.01)
    key = _submit(store)
    pool.start()
    try:
        _wait(lambda: store.get(key).state == RUNNING, message="never claimed")
        time.sleep(0.6)  # three lease durations
        record = store.get(key)
        assert record.state == RUNNING
        assert record.lease_expires_at > time.time()  # heartbeat renewed it
        assert store.expire_leases() == 0
        release.set()
        _wait(lambda: store.get(key).state == DONE, message="never finished")
        assert pool.completed == 1
        assert pool.lease_losses == 0
    finally:
        release.set()
        pool.stop()
        store.close()


def test_stop_releases_unfinished_job_with_attempt_refunded(tmp_path):
    store = JobStore(tmp_path / "jobs.sqlite", lease_s=60.0)
    release = threading.Event()

    def stuck_runner(request, progress):
        release.wait(timeout=30.0)
        return _result(request)

    pool = WorkerPool(store, runner=stuck_runner, poll_interval_s=0.01)
    key = _submit(store)
    pool.start()
    try:
        _wait(lambda: store.get(key).state == RUNNING, message="never claimed")
        pool.stop(timeout_s=0.2)  # drain: worker is mid-job, give up fast
        record = store.get(key)
        assert record.state == QUEUED
        assert record.attempts == 0  # refunded — drain is not a crash
        assert record.owner is None
        # The zombie thread's late finish is rejected by the owner guard.
        release.set()
        time.sleep(0.2)
        assert store.get(key).state == QUEUED
        assert pool.lease_losses == 1
    finally:
        release.set()
        store.close()


def test_chaos_hook_exception_fails_job_cleanly(tmp_path):
    """A hook that raises mid-progress turns into a normal job failure."""
    store = JobStore(tmp_path / "jobs.sqlite")

    def runner(request, progress):
        progress("cell 1/2")
        progress("cell 2/2")
        return _result(request)

    def wound(key, lines):
        if lines >= 2:
            raise EngineError("chaos: injected fault")

    pool = WorkerPool(store, runner=runner, poll_interval_s=0.01, chaos_hook=wound)
    key = _submit(store)
    pool.start()
    try:
        _wait(lambda: store.get(key).state == FAILED, message="never failed")
        record = store.get(key)
        assert "chaos: injected fault" in record.error
        assert pool.completed == 1
    finally:
        pool.stop()
        store.close()


def test_lost_lease_settle_is_not_counted_as_completed(tmp_path):
    """A worker that outlives its lease cannot clobber the requeued job."""
    store = JobStore(tmp_path / "jobs.sqlite", lease_s=60.0)
    claimed = threading.Event()
    release = threading.Event()

    def slow_runner(request, progress):
        claimed.set()
        assert release.wait(timeout=10.0)
        return _result(request)

    pool = WorkerPool(store, runner=slow_runner, poll_interval_s=0.01)
    key = _submit(store)
    pool.start()
    try:
        assert claimed.wait(timeout=10.0)
        # Simulate a lease takeover: the job is released and immediately
        # re-leased by another worker while ours is still running it.
        store.release(key)
        takeover = store.claim(owner="interloper", lease_s=60.0)
        assert takeover is not None and takeover.owner == "interloper"
        release.set()
        _wait(lambda: pool.lease_losses == 1, message="guard never tripped")
        record = store.get(key)
        assert record.state == RUNNING  # untouched by the zombie
        assert record.owner == "interloper"
        assert pool.completed == 0
    finally:
        release.set()
        pool.stop()
        store.close()


def test_two_pools_share_store_without_double_running(tmp_path):
    """Distinct owners: every job settles exactly once across two pools."""
    store_a = JobStore(tmp_path / "jobs.sqlite", lease_s=5.0)
    store_b = JobStore(tmp_path / "jobs.sqlite", lease_s=5.0, requeue=False)
    assert store_a.owner != store_b.owner
    executed = []
    lock = threading.Lock()

    def runner(request, progress):
        with lock:
            executed.append(request.target)
        return _result(request)

    pool_a = WorkerPool(store_a, runner=runner, poll_interval_s=0.01)
    pool_b = WorkerPool(store_b, runner=runner, poll_interval_s=0.01)
    keys = []
    for target in ("fig6", "fig7", "fig8", "fig11"):
        request = SweepRequest.from_dict(dict(REQUEST_BODY, target=target))
        key = request_key(request)
        store_a.submit(key, request.to_dict())
        keys.append(key)
    pool_a.start()
    pool_b.start()
    try:
        _wait(
            lambda: all(store_a.get(k).state == DONE for k in keys),
            message="jobs never drained",
        )
        assert sorted(executed) == ["fig11", "fig6", "fig7", "fig8"]
        assert pool_a.completed + pool_b.completed == 4
    finally:
        pool_a.stop()
        pool_b.stop()
        store_a.close()
        store_b.close()


@pytest.mark.parametrize("n_workers", [1, 3])
def test_pool_drains_queue(tmp_path, n_workers):
    store = JobStore(tmp_path / "jobs.sqlite")

    def runner(request, progress):
        progress("running")
        return _result(request)

    pool = WorkerPool(store, n_workers=n_workers, runner=runner, poll_interval_s=0.01)
    keys = []
    for target in ("fig6", "fig7", "fig8"):
        request = SweepRequest.from_dict(dict(REQUEST_BODY, target=target))
        key = request_key(request)
        store.submit(key, request.to_dict())
        keys.append(key)
    pool.start()
    try:
        _wait(
            lambda: all(store.get(k).state == DONE for k in keys),
            message="queue never drained",
        )
        assert pool.completed == 3
    finally:
        pool.stop()
        store.close()
