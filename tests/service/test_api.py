"""REST front-end + worker pool against an in-process server.

The engine call is replaced by tiny injected runners (instant results,
deliberate crashes) so these tests exercise the HTTP/store/worker wiring
without running any simulation.
"""

from __future__ import annotations

import json
import threading
import time
import urllib.error
import urllib.request

import pytest

from repro.experiments.engine import FigureData, SweepRequest, SweepResult, request_key
from repro.service.api import make_server
from repro.service.store import JobStore
from repro.service.worker import WorkerPool

REQUEST_BODY = {
    "target": "fig6",
    "quick": True,
    "seeds": [1],
    "overrides": {"n_sensors": 6, "sim_time_s": 3.0, "warmup_s": 2.0},
}


def _figure(request: SweepRequest) -> FigureData:
    return FigureData(
        figure_id=request.target,
        title="stub",
        x_label="x",
        y_label="y",
        x_values=[1.0],
        series={"EW-MAC": [0.5]},
    )


def _instant_runner(request: SweepRequest, progress) -> SweepResult:
    progress("cell 1/1")
    return SweepResult(
        request=request,
        figure=_figure(request),
        summary_lines=["ok"],
        cells_total=1,
        cache_misses=1,
        cache_stores=1,
    )


def _crashing_runner(request: SweepRequest, progress) -> SweepResult:
    raise RuntimeError("worker exploded mid-sweep")


def _partial_failure_runner(request: SweepRequest, progress) -> SweepResult:
    return SweepResult(
        request=request,
        figure=_figure(request),
        failures=[{"cell": "x=0.2/seed=1", "error": "TimeoutError: cell budget"}],
        cells_total=12,
        cache_misses=12,
        cache_stores=11,
    )


@pytest.fixture
def service(tmp_path):
    """(base_url, store, pool) with a started server; runner set per-test."""
    store = JobStore(tmp_path / "jobs.sqlite")
    holder = {"runner": _instant_runner}

    def dispatch(request, progress):
        return holder["runner"](request, progress)

    pool = WorkerPool(store, n_workers=1, runner=dispatch, poll_interval_s=0.01)
    server = make_server(store, pool, port=0)
    pool.start()
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.02}, daemon=True
    )
    thread.start()
    try:
        yield server.url, store, holder
    finally:
        server.shutdown()
        server.server_close()
        pool.stop()
        store.close()
        thread.join(timeout=5)


def _get(url):
    try:
        with urllib.request.urlopen(url, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _post(url, payload):
    data = json.dumps(payload).encode("utf-8")
    request = urllib.request.Request(
        url, data=data, method="POST", headers={"Content-Type": "application/json"}
    )
    try:
        with urllib.request.urlopen(request, timeout=10) as response:
            return response.status, json.loads(response.read())
    except urllib.error.HTTPError as exc:
        return exc.code, json.loads(exc.read())


def _wait_terminal(base, key, timeout_s=10.0):
    deadline = time.monotonic() + timeout_s
    while time.monotonic() < deadline:
        _, payload = _get(f"{base}/jobs/{key}?wait=1")
        if payload["job"]["state"] in ("done", "failed", "quarantined"):
            return payload["job"]
    raise AssertionError(f"job {key} never finished")


def test_healthz_and_targets(service):
    base, _, _ = service
    status, health = _get(f"{base}/healthz")
    assert status == 200
    assert health["ok"] is True
    assert health["workers_alive"] is True
    assert set(health["jobs"]) == {
        "queued",
        "running",
        "done",
        "failed",
        "quarantined",
    }
    status, targets = _get(f"{base}/targets")
    assert status == 200
    assert "fig6" in targets["targets"]
    assert "chaos" in targets["targets"]


def test_submit_run_fetch_roundtrip(service):
    base, _, _ = service
    status, submitted = _post(f"{base}/jobs", REQUEST_BODY)
    assert status == 202
    assert submitted["deduped"] is False
    key = submitted["job"]["key"]
    assert key == request_key(SweepRequest.from_dict(REQUEST_BODY))

    job = _wait_terminal(base, key)
    assert job["state"] == "done"
    assert job["attempts"] == 1

    status, result = _get(f"{base}/jobs/{key}/result")
    assert status == 200
    assert result["result"]["figure"]["figure_id"] == "fig6"
    assert result["result"]["summary_lines"] == ["ok"]

    status, listing = _get(f"{base}/jobs")
    assert status == 200
    assert [entry["key"] for entry in listing["jobs"]] == [key]


def test_identical_submission_dedupes_without_rerun(service):
    base, _, _ = service
    _, first = _post(f"{base}/jobs", REQUEST_BODY)
    key = first["job"]["key"]
    _wait_terminal(base, key)

    status, second = _post(f"{base}/jobs", REQUEST_BODY)
    assert status == 200  # not 202: nothing new was queued
    assert second["deduped"] is True
    assert second["job"]["state"] == "done"
    assert second["job"]["attempts"] == 1

    # Same sweep, different aggregation target: distinct job.
    other = dict(REQUEST_BODY, target="fig11")
    status, third = _post(f"{base}/jobs", other)
    assert status == 202
    assert third["job"]["key"] != key


def test_bad_requests_are_400(service):
    base, _, _ = service
    for payload in (
        {"target": "not-a-figure"},
        {"target": "fig6", "seeds": []},
        {"target": "fig6", "seeds": ["one"]},
        {"target": "fig6", "quick": "yes"},
        {"target": "fig6", "unknown_field": 1},
        {"target": "fig6", "overrides": {"n": [1, 2]}},
    ):
        status, body = _post(f"{base}/jobs", payload)
        assert status == 400, payload
        assert "error" in body
    status, _ = _get(f"{base}/jobs/{'0' * 64}")
    assert status == 404
    status, _ = _get(f"{base}/nope")
    assert status == 404
    status, _ = _post(f"{base}/shutdown", {})
    assert status == 403  # allow_shutdown off by default


def test_worker_crash_surfaces_error_via_api(service):
    base, _, holder = service
    holder["runner"] = _crashing_runner
    _, submitted = _post(f"{base}/jobs", REQUEST_BODY)
    key = submitted["job"]["key"]
    job = _wait_terminal(base, key)
    assert job["state"] == "failed"
    assert "worker exploded mid-sweep" in job["error"]

    status, body = _get(f"{base}/jobs/{key}/result")
    assert status == 500
    assert "worker exploded mid-sweep" in body["error"]

    # Resubmission is the retry button: requeued with a clean slate
    # (fresh retry budget, old error and partial result cleared).
    holder["runner"] = _instant_runner
    status, retried = _post(f"{base}/jobs", REQUEST_BODY)
    assert status == 202
    assert retried["deduped"] is False
    job = _wait_terminal(base, key)
    assert job["state"] == "done"
    assert job["attempts"] == 1


def test_permanent_cell_failures_fail_the_job(service):
    base, _, holder = service
    holder["runner"] = _partial_failure_runner
    _, submitted = _post(f"{base}/jobs", REQUEST_BODY)
    key = submitted["job"]["key"]
    job = _wait_terminal(base, key)
    assert job["state"] == "failed"
    assert "x=0.2/seed=1" in job["error"]
    # The partial result is preserved for inspection on the failure body.
    status, body = _get(f"{base}/jobs/{key}/result")
    assert status == 500
    assert body["result"]["cells_total"] == 12


def test_result_conflict_while_queued(tmp_path):
    # No worker pool: the job can never leave 'queued'.
    store = JobStore(tmp_path / "jobs.sqlite")
    server = make_server(store, pool=None, port=0)
    thread = threading.Thread(
        target=server.serve_forever, kwargs={"poll_interval": 0.02}, daemon=True
    )
    thread.start()
    try:
        base = server.url
        status, submitted = _post(f"{base}/jobs", REQUEST_BODY)
        assert status == 202
        key = submitted["job"]["key"]
        status, body = _get(f"{base}/jobs/{key}/result")
        assert status == 409
        status, health = _get(f"{base}/healthz")
        assert health["workers_alive"] is False
        assert health["jobs"]["queued"] == 1
    finally:
        server.shutdown()
        server.server_close()
        store.close()
        thread.join(timeout=5)


def test_sse_replays_progress_of_finished_job(service):
    base, _, _ = service
    _, submitted = _post(f"{base}/jobs", REQUEST_BODY)
    key = submitted["job"]["key"]
    _wait_terminal(base, key)
    with urllib.request.urlopen(f"{base}/jobs/{key}/events", timeout=10) as response:
        assert response.headers["Content-Type"] == "text/event-stream"
        body = response.read().decode("utf-8")
    assert "data: cell 1/1" in body
    assert "data: done" in body
    assert "event: end" in body
