"""Job-store state machine: dedupe, transitions, crash-requeue, errors."""

from __future__ import annotations

import pytest

from repro.service.store import DONE, FAILED, QUEUED, RUNNING, JobStore

REQUEST = {"target": "fig6", "quick": True, "seeds": [1], "overrides": []}


@pytest.fixture
def store(tmp_path):
    js = JobStore(tmp_path / "jobs.sqlite")
    yield js
    js.close()


def test_submit_queues_new_job(store):
    record, deduped = store.submit("a" * 64, REQUEST)
    assert not deduped
    assert record.state == QUEUED
    assert record.attempts == 0
    assert record.request == REQUEST


def test_identical_submissions_dedupe_to_one_job(store):
    key = "a" * 64
    first, deduped_first = store.submit(key, REQUEST)
    second, deduped_second = store.submit(key, REQUEST)
    assert not deduped_first
    assert deduped_second
    assert second.key == first.key
    assert len(store.list_jobs()) == 1
    # Dedupe holds across the whole lifecycle, not just while queued.
    store.claim()
    third, deduped_third = store.submit(key, REQUEST)
    assert deduped_third and third.state == RUNNING
    store.finish(key, {"figure": {}})
    fourth, deduped_fourth = store.submit(key, REQUEST)
    assert deduped_fourth and fourth.state == DONE
    assert fourth.attempts == 1


def test_queued_running_done_transitions(store):
    key = "b" * 64
    store.submit(key, REQUEST)
    claimed = store.claim()
    assert claimed.key == key
    assert claimed.state == RUNNING
    assert claimed.attempts == 1
    assert claimed.started_at is not None
    assert store.claim() is None  # nothing else queued
    store.finish(key, {"figure": {"x": 1}})
    done = store.get(key)
    assert done.state == DONE
    assert done.terminal
    assert done.finished_at is not None
    assert done.result == {"figure": {"x": 1}}


def test_claim_order_is_oldest_first(store):
    store.submit("c" * 64, REQUEST)
    store.submit("d" * 64, REQUEST)
    assert store.claim().key == "c" * 64
    assert store.claim().key == "d" * 64


def test_crash_requeue_on_reopen(tmp_path):
    path = tmp_path / "jobs.sqlite"
    store = JobStore(path)
    store.submit("e" * 64, REQUEST)
    store.submit("f" * 64, REQUEST)
    store.claim()  # worker takes the first job ...
    store.close()  # ... and the process dies mid-run

    reopened = JobStore(path)
    assert reopened.requeued_on_open == 1
    record = reopened.get("e" * 64)
    assert record.state == QUEUED
    # The retry still counts the first attempt.
    assert reopened.claim().attempts == 2
    reopened.close()


def test_reopen_without_requeue_leaves_running(tmp_path):
    path = tmp_path / "jobs.sqlite"
    store = JobStore(path)
    store.submit("g" * 64, REQUEST)
    store.claim()
    store.close()
    observer = JobStore(path, requeue=False)
    assert observer.requeued_on_open == 0
    assert observer.get("g" * 64).state == RUNNING
    observer.close()


def test_failed_job_captures_error_and_partial_result(store):
    key = "1" * 64
    store.submit(key, REQUEST)
    store.claim()
    store.fail(key, "2 sweep cell(s) failed permanently: x=0.2/s1", result={"partial": True})
    record = store.get(key)
    assert record.state == FAILED
    assert record.terminal
    assert "failed permanently" in record.error
    assert record.result == {"partial": True}


def test_resubmitting_failed_job_requeues(store):
    key = "2" * 64
    store.submit(key, REQUEST)
    store.claim()
    store.fail(key, "boom")
    record, deduped = store.submit(key, REQUEST)
    assert not deduped  # retry, not a cache hit
    assert record.state == QUEUED
    assert record.error == ""
    assert record.attempts == 1  # history preserved
    assert store.claim().attempts == 2


def test_counts_zero_filled(store):
    assert store.counts() == {"queued": 0, "running": 0, "done": 0, "failed": 0}
    store.submit("3" * 64, REQUEST)
    store.submit("4" * 64, REQUEST)
    store.claim()
    counts = store.counts()
    assert counts["queued"] == 1
    assert counts["running"] == 1


def test_progress_stream_is_incremental(store):
    key = "5" * 64
    store.submit(key, REQUEST)
    store.add_progress(key, "cell 1/12")
    store.add_progress(key, "cell 2/12")
    lines = store.progress_since(key)
    assert [line for _, line in lines] == ["cell 1/12", "cell 2/12"]
    last_id = lines[-1][0]
    assert store.progress_since(key, after_id=last_id) == []
    store.add_progress(key, "cell 3/12")
    fresh = store.progress_since(key, after_id=last_id)
    assert [line for _, line in fresh] == ["cell 3/12"]
