"""Job-store state machine: dedupe, leases, retry budgets, quarantine."""

from __future__ import annotations

import time

import pytest

from repro.service.store import (
    DONE,
    FAILED,
    QUARANTINED,
    QUEUED,
    RUNNING,
    JobStore,
)

REQUEST = {"target": "fig6", "quick": True, "seeds": [1], "overrides": []}


@pytest.fixture
def store(tmp_path):
    js = JobStore(tmp_path / "jobs.sqlite", backoff_base_s=0.0)
    yield js
    js.close()


def test_submit_queues_new_job(store):
    record, deduped = store.submit("a" * 64, REQUEST)
    assert not deduped
    assert record.state == QUEUED
    assert record.attempts == 0
    assert record.request == REQUEST
    assert record.owner is None


def test_identical_submissions_dedupe_to_one_job(store):
    key = "a" * 64
    first, deduped_first = store.submit(key, REQUEST)
    second, deduped_second = store.submit(key, REQUEST)
    assert not deduped_first
    assert deduped_second
    assert second.key == first.key
    assert len(store.list_jobs()) == 1
    # Dedupe holds across the whole lifecycle, not just while queued.
    store.claim()
    third, deduped_third = store.submit(key, REQUEST)
    assert deduped_third and third.state == RUNNING
    store.finish(key, {"figure": {}})
    fourth, deduped_fourth = store.submit(key, REQUEST)
    assert deduped_fourth and fourth.state == DONE
    assert fourth.attempts == 1


def test_queued_running_done_transitions(store):
    key = "b" * 64
    store.submit(key, REQUEST)
    claimed = store.claim()
    assert claimed.key == key
    assert claimed.state == RUNNING
    assert claimed.attempts == 1
    assert claimed.started_at is not None
    assert claimed.owner == store.owner
    assert claimed.lease_expires_at is not None
    assert store.claim() is None  # nothing else queued
    store.finish(key, {"figure": {"x": 1}})
    done = store.get(key)
    assert done.state == DONE
    assert done.terminal
    assert done.finished_at is not None
    assert done.result == {"figure": {"x": 1}}
    assert done.owner is None  # lease cleared on settle


def test_claim_order_is_oldest_first(store):
    store.submit("c" * 64, REQUEST)
    store.submit("d" * 64, REQUEST)
    assert store.claim().key == "c" * 64
    assert store.claim().key == "d" * 64


def test_wal_mode_and_busy_timeout_enabled(store):
    mode = store._conn.execute("PRAGMA journal_mode").fetchone()[0]
    assert mode == "wal"
    timeout = store._conn.execute("PRAGMA busy_timeout").fetchone()[0]
    assert timeout >= 30000


# ----------------------------------------------------------------------
# Leases
# ----------------------------------------------------------------------
def test_crash_requeue_on_reopen_after_lease_expiry(tmp_path):
    path = tmp_path / "jobs.sqlite"
    store = JobStore(path, lease_s=0.05)
    store.submit("e" * 64, REQUEST)
    store.submit("f" * 64, REQUEST)
    store.claim()  # worker takes the first job ...
    store.close()  # ... and the process dies mid-run
    time.sleep(0.1)  # the orphaned lease times out

    reopened = JobStore(path, backoff_base_s=0.0)
    assert reopened.expired_on_open == 1
    record = reopened.get("e" * 64)
    assert record.state == QUEUED
    assert "lease expired" in record.error
    # The retry still counts the first attempt.
    assert reopened.claim().attempts == 2
    reopened.close()


def test_reopen_before_lease_expiry_never_steals_live_job(tmp_path):
    """A second store opening must not requeue a job whose worker is alive."""
    path = tmp_path / "jobs.sqlite"
    store = JobStore(path, lease_s=60.0)
    store.submit("g" * 64, REQUEST)
    store.claim()

    sibling = JobStore(path)  # requeue on by default — but lease is live
    assert sibling.expired_on_open == 0
    assert sibling.get("g" * 64).state == RUNNING
    assert sibling.get("g" * 64).owner == store.owner
    sibling.close()
    store.close()


def test_reopen_without_requeue_leaves_running(tmp_path):
    path = tmp_path / "jobs.sqlite"
    store = JobStore(path, lease_s=0.01)
    store.submit("h" * 64, REQUEST)
    store.claim()
    store.close()
    time.sleep(0.05)
    observer = JobStore(path, requeue=False)
    assert observer.expired_on_open == 0
    assert observer.get("h" * 64).state == RUNNING
    observer.close()


def test_heartbeat_extends_lease_and_blocks_expiry(tmp_path):
    store = JobStore(tmp_path / "jobs.sqlite", lease_s=0.08)
    try:
        key = "i" * 64
        store.submit(key, REQUEST)
        store.claim()
        for _ in range(4):
            time.sleep(0.04)
            assert store.heartbeat(key)
            assert store.expire_leases() == 0  # lease kept fresh
        assert store.get(key).state == RUNNING
    finally:
        store.close()


def test_heartbeat_refuses_foreign_or_settled_job(store):
    key = "j" * 64
    store.submit(key, REQUEST)
    store.claim()
    assert not store.heartbeat(key, owner="someone-else")
    store.finish(key, {"figure": {}})
    assert not store.heartbeat(key)  # terminal: nothing to extend


def test_expired_lease_requeued_exactly_once(tmp_path):
    store = JobStore(tmp_path / "jobs.sqlite", lease_s=0.02, backoff_base_s=0.0)
    try:
        key = "k" * 64
        store.submit(key, REQUEST)
        store.claim()
        time.sleep(0.05)
        assert store.expire_leases() == 1
        assert store.get(key).state == QUEUED
        # A second reap (another process's heartbeat tick) finds nothing.
        assert store.expire_leases() == 0
        assert store.get(key).state == QUEUED
    finally:
        store.close()


def test_backoff_delays_reclaim_of_crashed_job(tmp_path):
    store = JobStore(tmp_path / "jobs.sqlite", lease_s=0.02, backoff_base_s=30.0)
    try:
        key = "l" * 64
        store.submit(key, REQUEST)
        store.claim()
        time.sleep(0.05)
        store.expire_leases()
        record = store.get(key)
        assert record.state == QUEUED
        assert record.not_before > time.time()  # backing off
        assert store.claim() is None  # invisible until not_before passes
    finally:
        store.close()


def test_quarantine_after_max_attempts_with_error_chain(tmp_path):
    store = JobStore(
        tmp_path / "jobs.sqlite", lease_s=0.02, max_attempts=2, backoff_base_s=0.0
    )
    try:
        key = "m" * 64
        store.submit(key, REQUEST)
        for attempt in (1, 2):
            claimed = store.claim()
            assert claimed.attempts == attempt
            time.sleep(0.05)
            assert store.expire_leases() == 1
        record = store.get(key)
        assert record.state == QUARANTINED
        assert record.terminal
        # Every crashed attempt is preserved in the chain.
        assert record.error.count("lease expired") == 2
        assert "attempt 1" in record.error and "attempt 2" in record.error
        # Quarantined jobs are never claimed again.
        assert store.claim() is None
        assert store.expire_leases() == 0
    finally:
        store.close()


def test_resubmission_revives_quarantined_job(tmp_path):
    store = JobStore(
        tmp_path / "jobs.sqlite", lease_s=0.02, max_attempts=1, backoff_base_s=0.0
    )
    try:
        key = "n" * 64
        store.submit(key, REQUEST)
        store.claim()
        time.sleep(0.05)
        store.expire_leases()
        assert store.get(key).state == QUARANTINED
        record, deduped = store.submit(key, REQUEST)
        assert not deduped
        assert record.state == QUEUED
        assert record.attempts == 0  # fresh retry budget
        assert record.error == ""
    finally:
        store.close()


def test_release_refunds_attempt_for_graceful_drain(store):
    key = "o" * 64
    store.submit(key, REQUEST)
    claimed = store.claim()
    assert claimed.attempts == 1
    assert store.release(key)
    record = store.get(key)
    assert record.state == QUEUED
    assert record.attempts == 0  # drain is not a crash
    assert record.owner is None
    assert store.claim().attempts == 1
    assert not store.release(key, owner="someone-else")  # owner-guarded


def test_settle_is_owner_guarded(store):
    key = "p" * 64
    store.submit(key, REQUEST)
    store.claim(owner="worker-1", lease_s=60.0)
    # A worker whose lease was lost cannot settle the re-leased job.
    assert not store.finish(key, {"figure": {}}, owner="worker-2")
    assert not store.fail(key, "boom", owner="worker-2")
    assert store.get(key).state == RUNNING
    assert store.finish(key, {"figure": {}}, owner="worker-1")
    assert store.get(key).state == DONE


# ----------------------------------------------------------------------
# Failures and resubmission
# ----------------------------------------------------------------------
def test_failed_job_captures_error_and_partial_result(store):
    key = "1" * 64
    store.submit(key, REQUEST)
    store.claim()
    store.fail(key, "2 sweep cell(s) failed permanently: x=0.2/s1", result={"partial": True})
    record = store.get(key)
    assert record.state == FAILED
    assert record.terminal
    assert "failed permanently" in record.error
    assert record.result == {"partial": True}


def test_resubmitting_failed_job_requeues_with_clean_slate(store):
    key = "2" * 64
    store.submit(key, REQUEST)
    store.claim()
    store.fail(key, "boom", result={"partial": True})
    record, deduped = store.submit(key, REQUEST)
    assert not deduped  # retry, not a cache hit
    assert record.state == QUEUED
    assert record.error == ""
    # The stale partial result must not leak into the retry: a crash of
    # the retrying worker would otherwise serve the old blob as current.
    assert record.result is None
    assert record.attempts == 0
    assert store.claim().attempts == 1


def test_counts_zero_filled(store):
    assert store.counts() == {
        "queued": 0,
        "running": 0,
        "done": 0,
        "failed": 0,
        "quarantined": 0,
    }
    store.submit("3" * 64, REQUEST)
    store.submit("4" * 64, REQUEST)
    store.claim()
    counts = store.counts()
    assert counts["queued"] == 1
    assert counts["running"] == 1


# ----------------------------------------------------------------------
# Progress stream
# ----------------------------------------------------------------------
def test_progress_stream_is_incremental(store):
    key = "5" * 64
    store.submit(key, REQUEST)
    store.add_progress(key, "cell 1/12")
    store.add_progress(key, "cell 2/12")
    lines = store.progress_since(key)
    assert [line for _, line in lines] == ["cell 1/12", "cell 2/12"]
    last_id = lines[-1][0]
    assert store.progress_since(key, after_id=last_id) == []
    store.add_progress(key, "cell 3/12")
    fresh = store.progress_since(key, after_id=last_id)
    assert [line for _, line in fresh] == ["cell 3/12"]


def test_stale_progress_of_terminal_jobs_pruned_on_open(tmp_path):
    path = tmp_path / "jobs.sqlite"
    store = JobStore(path)
    done_key, live_key = "6" * 64, "7" * 64
    store.submit(done_key, REQUEST)
    store.submit(live_key, REQUEST)
    store.claim()
    store.add_progress(done_key, "old line")
    store.add_progress(live_key, "keep me")
    store.finish(done_key, {"figure": {}})
    store.close()

    reopened = JobStore(path, progress_ttl_s=0.0)
    assert reopened.pruned_on_open == 1
    assert reopened.progress_since(done_key) == []
    # Non-terminal jobs keep their stream regardless of age.
    assert [line for _, line in reopened.progress_since(live_key)] == ["keep me"]
    reopened.close()


def test_v1_store_file_migrates_in_place(tmp_path):
    """A pre-lease store file gains the new columns transparently."""
    import sqlite3

    path = tmp_path / "old.sqlite"
    conn = sqlite3.connect(str(path))
    conn.executescript(
        """
        CREATE TABLE jobs (
            key TEXT PRIMARY KEY, request TEXT NOT NULL, state TEXT NOT NULL,
            submitted_at REAL NOT NULL, started_at REAL, finished_at REAL,
            attempts INTEGER NOT NULL DEFAULT 0,
            error TEXT NOT NULL DEFAULT '', result TEXT
        );
        CREATE TABLE progress (
            id INTEGER PRIMARY KEY AUTOINCREMENT,
            key TEXT NOT NULL, at REAL NOT NULL, line TEXT NOT NULL
        );
        """
    )
    conn.execute(
        "INSERT INTO jobs (key, request, state, submitted_at) VALUES (?, ?, ?, ?)",
        ("9" * 64, '{"target": "fig6"}', "queued", time.time()),
    )
    conn.commit()
    conn.close()

    store = JobStore(path, backoff_base_s=0.0)
    try:
        record = store.get("9" * 64)
        assert record.state == QUEUED
        assert record.not_before == 0
        claimed = store.claim()
        assert claimed.key == "9" * 64
        assert claimed.owner == store.owner
    finally:
        store.close()
