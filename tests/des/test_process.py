"""Unit tests for generator processes and signals."""

import pytest

from repro.des.errors import SimulationError
from repro.des.process import Delay, Process, Signal, WaitSignal
from repro.des.simulator import Simulator


def test_process_runs_with_delays():
    sim = Simulator()
    ticks = []

    def proc():
        for _ in range(3):
            ticks.append(sim.now)
            yield Delay(2.0)

    Process(sim, proc())
    sim.run()
    assert ticks == [0.0, 2.0, 4.0]


def test_numeric_yield_is_delay():
    sim = Simulator()
    times = []

    def proc():
        yield 1.5
        times.append(sim.now)
        yield 2
        times.append(sim.now)

    Process(sim, proc())
    sim.run()
    assert times == [1.5, 3.5]


def test_process_terminates_on_return():
    sim = Simulator()

    def proc():
        yield 1.0

    p = Process(sim, proc())
    sim.run()
    assert not p.alive


def test_interrupt_stops_process():
    sim = Simulator()
    ticks = []

    def proc():
        while True:
            ticks.append(sim.now)
            yield 1.0

    p = Process(sim, proc())
    sim.schedule(2.5, p.interrupt)
    sim.run(until=10.0)
    assert ticks == [0.0, 1.0, 2.0]
    assert not p.alive


def test_signal_wakes_waiters_with_payload():
    sim = Simulator()
    signal = Signal(sim, "data-ready")
    received = []

    def waiter():
        payload = yield WaitSignal(signal)
        received.append((sim.now, payload))

    Process(sim, waiter())
    Process(sim, waiter())
    sim.schedule(3.0, signal.fire, "hello")
    sim.run()
    assert received == [(3.0, "hello"), (3.0, "hello")]
    assert signal.fire_count == 1


def test_signal_fire_returns_waiter_count():
    sim = Simulator()
    signal = Signal(sim)
    assert signal.fire() == 0


def test_negative_delay_kills_process():
    sim = Simulator()

    def proc():
        yield -1.0

    Process(sim, proc())
    with pytest.raises(SimulationError):
        sim.run()


def test_bad_yield_value_kills_process():
    sim = Simulator()

    def proc():
        yield "nonsense"

    Process(sim, proc())
    with pytest.raises(SimulationError):
        sim.run()
