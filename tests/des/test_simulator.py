"""Unit tests for the simulator core."""

import pytest

from repro.des.errors import SchedulingError, WallClockExceeded
from repro.des.simulator import Simulator


def test_run_advances_clock_in_event_order():
    sim = Simulator()
    seen = []
    sim.schedule(2.0, lambda: seen.append(sim.now))
    sim.schedule(1.0, lambda: seen.append(sim.now))
    end = sim.run()
    assert seen == [1.0, 2.0]
    assert end == 2.0


def test_run_until_stops_at_boundary():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(5.0, fired.append, 5)
    sim.run(until=3.0)
    assert fired == [1]
    assert sim.now == 3.0
    sim.run(until=10.0)
    assert fired == [1, 5]


def test_run_until_with_empty_queue_sets_clock():
    sim = Simulator()
    sim.run(until=7.5)
    assert sim.now == 7.5


def test_negative_delay_rejected():
    sim = Simulator()
    with pytest.raises(SchedulingError):
        sim.schedule(-0.1, lambda: None)


def test_schedule_at_past_rejected():
    sim = Simulator()
    sim.schedule(1.0, lambda: None)
    sim.run()
    with pytest.raises(SchedulingError):
        sim.schedule_at(0.5, lambda: None)


def test_events_scheduled_during_run_are_processed():
    sim = Simulator()
    seen = []

    def chain(n):
        seen.append((sim.now, n))
        if n < 3:
            sim.schedule(1.0, chain, n + 1)

    sim.schedule(0.0, chain, 0)
    sim.run()
    assert seen == [(0.0, 0), (1.0, 1), (2.0, 2), (3.0, 3)]


def test_cancel_via_simulator_prevents_firing():
    sim = Simulator()
    fired = []
    event = sim.schedule(1.0, fired.append, "x")
    sim.cancel(event)
    sim.cancel(None)  # no-op
    sim.run()
    assert fired == []
    assert sim.pending_events == 0


def test_stop_halts_run():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, sim.stop)
    sim.schedule(3.0, fired.append, 3)
    sim.run()
    assert fired == [1]
    assert sim.now == 2.0
    # remaining event still runs on resume
    sim.run()
    assert fired == [1, 3]


def test_step_processes_one_event():
    sim = Simulator()
    fired = []
    sim.schedule(1.0, fired.append, 1)
    sim.schedule(2.0, fired.append, 2)
    assert sim.step()
    assert fired == [1]
    assert sim.step()
    assert not sim.step()


def test_reset_clears_state():
    sim = Simulator(seed=1)
    sim.schedule(5.0, lambda: None)
    sim.run(until=2.0)
    sim.reset(seed=2)
    assert sim.now == 0.0
    assert sim.pending_events == 0
    assert sim.streams.seed == 2


def test_events_processed_counter():
    sim = Simulator()
    for i in range(5):
        sim.schedule(float(i), lambda: None)
    sim.run()
    assert sim.events_processed == 5


def test_wall_deadline_unwinds_runaway_run():
    sim = Simulator()

    def reschedule():
        sim.schedule(1.0, reschedule)  # never drains

    sim.schedule(0.0, reschedule)
    sim.set_wall_deadline(0.0)  # already expired: first check trips it
    with pytest.raises(WallClockExceeded):
        sim.run()
    # the cooperative check fires every _WALL_CHECK_EVERY events
    assert sim.events_processed == Simulator._WALL_CHECK_EVERY


def test_wall_deadline_disarmed_and_generous_budgets_pass():
    sim = Simulator()
    for i in range(2 * Simulator._WALL_CHECK_EVERY):
        sim.schedule(float(i), lambda: None)
    sim.set_wall_deadline(3600.0)
    sim.run()  # far under budget: completes normally
    sim.set_wall_deadline(None)
    assert sim._wall_deadline is None


def test_reset_clears_wall_deadline():
    sim = Simulator()
    sim.set_wall_deadline(0.0)
    sim.reset()
    assert sim._wall_deadline is None
    sim.schedule(1.0, lambda: None)
    sim.run()  # no deadline left armed


def test_deterministic_rng_streams():
    a = Simulator(seed=7).streams.get("traffic").random(5)
    b = Simulator(seed=7).streams.get("traffic").random(5)
    c = Simulator(seed=8).streams.get("traffic").random(5)
    assert list(a) == list(b)
    assert list(a) != list(c)
