"""Unit tests for the event queue."""

import pytest

from repro.des.errors import EventStateError
from repro.des.events import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL, EventQueue


def test_pop_orders_by_time():
    q = EventQueue()
    fired = []
    q.push(3.0, fired.append, ("c",))
    q.push(1.0, fired.append, ("a",))
    q.push(2.0, fired.append, ("b",))
    while True:
        event = q.pop()
        if event is None:
            break
        event._fire()
    assert fired == ["a", "b", "c"]


def test_same_time_orders_by_priority_then_sequence():
    q = EventQueue()
    fired = []
    q.push(1.0, fired.append, ("normal-1",), priority=PRIORITY_NORMAL)
    q.push(1.0, fired.append, ("low",), priority=PRIORITY_LOW)
    q.push(1.0, fired.append, ("high",), priority=PRIORITY_HIGH)
    q.push(1.0, fired.append, ("normal-2",), priority=PRIORITY_NORMAL)
    order = []
    while (event := q.pop()) is not None:
        order.append(event)
        event._fire()
    assert fired == ["high", "normal-1", "normal-2", "low"]


def test_cancel_skips_event():
    q = EventQueue()
    fired = []
    keep = q.push(1.0, fired.append, ("keep",))
    drop = q.push(0.5, fired.append, ("drop",))
    drop.cancel()
    q.note_cancelled()
    while (event := q.pop()) is not None:
        event._fire()
    assert fired == ["keep"]
    assert drop.cancelled and not drop.fired
    assert keep.fired


def test_cancel_fired_event_raises():
    q = EventQueue()
    q.push(0.0, lambda: None)
    popped = q.pop()
    popped._fire()
    with pytest.raises(EventStateError):
        popped.cancel()


def test_len_tracks_live_events():
    q = EventQueue()
    events = [q.push(float(i), lambda: None) for i in range(10)]
    assert len(q) == 10
    for event in events[:4]:
        event.cancel()
        q.note_cancelled()
    assert len(q) == 6
    q.pop()
    assert len(q) == 5


def test_peek_time_skips_cancelled():
    q = EventQueue()
    first = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    first.cancel()
    q.note_cancelled()
    assert q.peek_time() == 2.0


def test_compaction_keeps_pending_events():
    q = EventQueue()
    keepers = [q.push(1000.0 + i, lambda: None) for i in range(10)]
    for _ in range(20):
        victims = [q.push(float(i), lambda: None) for i in range(50)]
        for v in victims:
            v.cancel()
            q.note_cancelled()
    assert len(q) == 10
    times = []
    while (event := q.pop()) is not None:
        times.append(event.time)
    assert times == sorted(e.time for e in keepers)


def test_clear_empties_queue():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.clear()
    assert len(q) == 0
    assert q.pop() is None


def drain(q):
    fired = []
    while (event := q.pop()) is not None:
        event._fire()
        fired.append(event)
    return fired


class TestPushBulk:
    def test_matches_push_plain_loop_exactly(self):
        times = [3.0, 1.0, 2.0, 1.0, 5.0]
        bulk_fired, plain_fired = [], []
        bulk, plain = EventQueue(), EventQueue()
        bulk.push_bulk(
            times,
            [bulk_fired.append] * len(times),
            [(f"e{i}",) for i in range(len(times))],
            priority=PRIORITY_HIGH,
        )
        for i, t in enumerate(times):
            plain.push_plain(t, plain_fired.append, (f"e{i}",), priority=PRIORITY_HIGH)
        bulk_events = drain(bulk)
        plain_events = drain(plain)
        assert bulk_fired == plain_fired
        assert [(e.time, e.priority, e.seq) for e in bulk_events] == [
            (e.time, e.priority, e.seq) for e in plain_events
        ]

    def test_same_time_ties_fire_in_batch_order(self):
        q = EventQueue()
        fired = []
        q.push_bulk([1.0] * 4, [fired.append] * 4, [(i,) for i in range(4)])
        drain(q)
        assert fired == [0, 1, 2, 3]

    def test_interleaves_with_scalar_pushes_by_time_and_priority(self):
        q = EventQueue()
        fired = []
        q.push(1.0, fired.append, ("scalar-normal",), priority=PRIORITY_NORMAL)
        q.push_bulk(
            [1.0, 0.5], [fired.append] * 2, [("bulk-high",), ("bulk-early",)],
            priority=PRIORITY_HIGH,
        )
        q.push(0.75, fired.append, ("scalar-mid",))
        drain(q)
        assert fired == ["bulk-early", "scalar-mid", "bulk-high", "scalar-normal"]

    def test_seq_counter_shared_with_scalar_pushes(self):
        # The batch consumes exactly len(times) sequence numbers, so a later
        # same-time scalar push still loses the tie to every batch entry.
        q = EventQueue()
        fired = []
        q.push_bulk([2.0, 2.0], [fired.append] * 2, [("b0",), ("b1",)])
        q.push(2.0, fired.append, ("after",))
        drain(q)
        assert fired == ["b0", "b1", "after"]

    def test_live_count_and_empty_batch(self):
        q = EventQueue()
        q.push_bulk([], [], [])
        assert len(q) == 0
        q.push_bulk([1.0, 2.0, 3.0], [lambda x: None] * 3, [(0,), (1,), (2,)])
        assert len(q) == 3
        q.pop()
        assert len(q) == 2
