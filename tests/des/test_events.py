"""Unit tests for the event queue."""

import pytest

from repro.des.errors import EventStateError
from repro.des.events import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL, EventQueue


def test_pop_orders_by_time():
    q = EventQueue()
    fired = []
    q.push(3.0, fired.append, ("c",))
    q.push(1.0, fired.append, ("a",))
    q.push(2.0, fired.append, ("b",))
    while True:
        event = q.pop()
        if event is None:
            break
        event._fire()
    assert fired == ["a", "b", "c"]


def test_same_time_orders_by_priority_then_sequence():
    q = EventQueue()
    fired = []
    q.push(1.0, fired.append, ("normal-1",), priority=PRIORITY_NORMAL)
    q.push(1.0, fired.append, ("low",), priority=PRIORITY_LOW)
    q.push(1.0, fired.append, ("high",), priority=PRIORITY_HIGH)
    q.push(1.0, fired.append, ("normal-2",), priority=PRIORITY_NORMAL)
    order = []
    while (event := q.pop()) is not None:
        order.append(event)
        event._fire()
    assert fired == ["high", "normal-1", "normal-2", "low"]


def test_cancel_skips_event():
    q = EventQueue()
    fired = []
    keep = q.push(1.0, fired.append, ("keep",))
    drop = q.push(0.5, fired.append, ("drop",))
    drop.cancel()
    q.note_cancelled()
    while (event := q.pop()) is not None:
        event._fire()
    assert fired == ["keep"]
    assert drop.cancelled and not drop.fired
    assert keep.fired


def test_cancel_fired_event_raises():
    q = EventQueue()
    q.push(0.0, lambda: None)
    popped = q.pop()
    popped._fire()
    with pytest.raises(EventStateError):
        popped.cancel()


def test_len_tracks_live_events():
    q = EventQueue()
    events = [q.push(float(i), lambda: None) for i in range(10)]
    assert len(q) == 10
    for event in events[:4]:
        event.cancel()
        q.note_cancelled()
    assert len(q) == 6
    q.pop()
    assert len(q) == 5


def test_peek_time_skips_cancelled():
    q = EventQueue()
    first = q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    first.cancel()
    q.note_cancelled()
    assert q.peek_time() == 2.0


def test_compaction_keeps_pending_events():
    q = EventQueue()
    keepers = [q.push(1000.0 + i, lambda: None) for i in range(10)]
    for _ in range(20):
        victims = [q.push(float(i), lambda: None) for i in range(50)]
        for v in victims:
            v.cancel()
            q.note_cancelled()
    assert len(q) == 10
    times = []
    while (event := q.pop()) is not None:
        times.append(event.time)
    assert times == sorted(e.time for e in keepers)


def test_clear_empties_queue():
    q = EventQueue()
    q.push(1.0, lambda: None)
    q.push(2.0, lambda: None)
    q.clear()
    assert len(q) == 0
    assert q.pop() is None
