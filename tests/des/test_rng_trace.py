"""Unit tests for RNG streams and tracing."""

from repro.des.rng import RandomStreams, derive_seed
from repro.des.trace import NullTracer, Tracer


class TestRandomStreams:
    def test_same_name_returns_same_generator(self):
        streams = RandomStreams(1)
        assert streams.get("a") is streams.get("a")

    def test_streams_are_independent_of_each_other(self):
        one = RandomStreams(1)
        two = RandomStreams(1)
        # draw from "a" before "b" in one registry, after in the other
        one.get("a").random(100)
        assert list(one.get("b").random(3)) == list(two.get("b").random(3))

    def test_derive_seed_is_stable_and_distinct(self):
        assert derive_seed(1, "x") == derive_seed(1, "x")
        assert derive_seed(1, "x") != derive_seed(1, "y")
        assert derive_seed(1, "x") != derive_seed(2, "x")

    def test_spawn_namespaces_children(self):
        parent = RandomStreams(5)
        child_a = parent.spawn("a")
        child_b = parent.spawn("b")
        assert child_a.seed != child_b.seed
        assert parent.spawn("a").seed == child_a.seed


class TestTracer:
    def test_records_and_selects_by_prefix(self):
        tracer = Tracer()
        tracer.emit(1.0, "mac.tx", 3, frame="RTS")
        tracer.emit(2.0, "phy.rx", 4, frame="CTS")
        assert len(tracer) == 2
        assert [r.category for r in tracer.select("mac")] == ["mac.tx"]
        assert tracer.select("phy", node=4)[0].detail["frame"] == "CTS"
        assert tracer.select("phy", node=9) == []

    def test_category_filter(self):
        tracer = Tracer(categories=["mac"])
        tracer.emit(1.0, "mac.tx", 1)
        tracer.emit(1.0, "phy.rx", 1)
        assert len(tracer) == 1

    def test_format_is_readable(self):
        tracer = Tracer()
        tracer.emit(1.5, "mac.tx", 7, frame="RTS 7->3")
        text = tracer.format()
        assert "mac.tx" in text and "RTS 7->3" in text

    def test_clear(self):
        tracer = Tracer()
        tracer.emit(0.0, "x", 0)
        tracer.clear()
        assert len(tracer) == 0

    def test_null_tracer_is_inert(self):
        tracer = NullTracer()
        tracer.emit(1.0, "mac.tx", 1)
        assert len(tracer) == 0
        assert not tracer.enabled
        assert tracer.format() == ""
        assert list(tracer) == []
