"""Unit tests for the acoustic channel physics."""


import pytest

from repro.acoustic.attenuation import (
    PathLossModel,
    thorp_absorption_db_per_km,
)
from repro.acoustic.geometry import Position, bounding_box
from repro.acoustic.noise import AmbientNoiseModel
from repro.acoustic.per import DefaultPerModel, RayleighBerPerModel
from repro.acoustic.propagation import (
    SspRayPropagation,
    StraightLinePropagation,
    nominal_propagation_delay_s,
)
from repro.acoustic.sinr import LinkBudget
from repro.acoustic.soundspeed import MackenzieProfile, UniformSoundSpeed


class TestGeometry:
    def test_distance(self):
        a = Position(0, 0, 0)
        b = Position(3, 4, 0)
        assert a.distance_to(b) == pytest.approx(5.0)
        assert a.distance_to(b) == b.distance_to(a)

    def test_horizontal_distance_ignores_depth(self):
        a = Position(0, 0, 0)
        b = Position(3, 4, 1000)
        assert a.horizontal_distance_to(b) == pytest.approx(5.0)

    def test_clamped(self):
        p = Position(-5, 50, 200).clamped((0, 10), (0, 10), (0, 100))
        assert (p.x, p.y, p.z) == (0, 10, 100)

    def test_midpoint_and_translate(self):
        a = Position(0, 0, 0)
        b = Position(2, 4, 6)
        assert a.midpoint(b).as_tuple() == (1, 2, 3)
        assert a.translated(dz=5).z == 5

    def test_bounding_box(self):
        box = bounding_box([Position(0, 1, 2), Position(3, -1, 5)])
        assert box == ((0, 3), (-1, 1), (2, 5))

    def test_bounding_box_empty_raises(self):
        with pytest.raises(ValueError):
            bounding_box([])


class TestThorp:
    def test_absorption_at_10khz_is_about_1db_per_km(self):
        # Classic Thorp value: ~1.1 dB/km at 10 kHz.
        assert thorp_absorption_db_per_km(10.0) == pytest.approx(1.1, abs=0.3)

    def test_absorption_increases_with_frequency_in_band(self):
        values = [thorp_absorption_db_per_km(f) for f in (1.0, 5.0, 10.0, 50.0)]
        assert values == sorted(values)

    def test_invalid_frequency(self):
        with pytest.raises(ValueError):
            thorp_absorption_db_per_km(0.0)

    def test_path_loss_monotone_in_distance(self):
        model = PathLossModel()
        losses = [model.path_loss_db(d) for d in (10, 100, 1000, 10_000)]
        assert losses == sorted(losses)

    def test_short_range_clamped(self):
        model = PathLossModel()
        assert model.path_loss_db(0.001) == model.path_loss_db(1.0)

    def test_max_range_bisection(self):
        model = PathLossModel()
        sl = 160.0
        min_rl = model.received_level_db(sl, 2000.0)
        found = model.max_range_m(sl, min_rl)
        assert found == pytest.approx(2000.0, rel=1e-3)


class TestNoise:
    def test_band_level_exceeds_density(self):
        noise = AmbientNoiseModel()
        assert noise.band_level_db(10.0, 10_000) > noise.spectral_density_db(10.0)

    def test_wind_raises_noise(self):
        calm = AmbientNoiseModel(wind_mps=0.0).spectral_density_db(10.0)
        stormy = AmbientNoiseModel(wind_mps=20.0).spectral_density_db(10.0)
        assert stormy > calm

    def test_shipping_raises_low_frequency_noise(self):
        quiet = AmbientNoiseModel(shipping=0.0).spectral_density_db(0.3)
        busy = AmbientNoiseModel(shipping=1.0).spectral_density_db(0.3)
        assert busy > quiet

    def test_invalid_bandwidth(self):
        with pytest.raises(ValueError):
            AmbientNoiseModel().band_level_db(10.0, 0.0)


class TestLinkBudget:
    def test_snr_decreases_with_distance(self):
        budget = LinkBudget()
        snrs = [budget.snr_db(d) for d in (100, 500, 1500, 3000)]
        assert snrs == sorted(snrs, reverse=True)

    def test_sinr_below_snr_with_interference(self):
        budget = LinkBudget()
        snr = budget.snr_db(1000.0)
        sinr = budget.sinr_db(1000.0, [1200.0])
        assert sinr < snr

    def test_equal_interferer_gives_near_zero_sinr(self):
        budget = LinkBudget()
        sinr = budget.sinr_db(1000.0, [1000.0])
        assert sinr < 0.1

    def test_communication_range_consistent(self):
        budget = LinkBudget()
        rng = budget.communication_range_m(min_snr_db=10.0)
        assert budget.snr_db(rng * 0.99) > 10.0
        assert budget.snr_db(rng * 1.01) < 10.0


class TestPerModels:
    def test_default_model_is_threshold(self):
        model = DefaultPerModel(threshold_db=10.0)
        assert model.packet_error_rate(10.0, 1000) == 0.0
        assert model.packet_error_rate(9.99, 1000) == 1.0

    def test_default_model_success_decision(self):
        model = DefaultPerModel(threshold_db=10.0)
        assert model.is_successful(15.0, 100, uniform_draw=0.999)
        assert not model.is_successful(5.0, 100, uniform_draw=0.999)

    def test_rayleigh_per_monotone_in_size_and_snr(self):
        model = RayleighBerPerModel()
        assert model.packet_error_rate(20.0, 2048) < model.packet_error_rate(10.0, 2048)
        assert model.packet_error_rate(20.0, 1024) < model.packet_error_rate(20.0, 4096)

    def test_rayleigh_zero_bits(self):
        assert RayleighBerPerModel().packet_error_rate(10.0, 0) == 0.0

    def test_negative_bits_rejected(self):
        with pytest.raises(ValueError):
            DefaultPerModel().packet_error_rate(10.0, -1)


class TestSoundSpeed:
    def test_uniform_profile(self):
        profile = UniformSoundSpeed(1500.0)
        assert profile.speed_at(0) == 1500.0
        assert profile.mean_speed(0, 5000) == 1500.0

    def test_mackenzie_plausible_range(self):
        profile = MackenzieProfile()
        for depth in (0, 100, 1000, 5000):
            assert 1400.0 < profile.speed_at(depth) < 1600.0

    def test_mackenzie_deep_water_pressure_effect(self):
        profile = MackenzieProfile()
        # Below the thermocline, pressure dominates: speed rises with depth.
        assert profile.speed_at(6000) > profile.speed_at(3000)

    def test_mean_speed_between_extremes(self):
        profile = MackenzieProfile()
        mean = profile.mean_speed(0.0, 2000.0)
        speeds = [profile.speed_at(d) for d in range(0, 2001, 100)]
        assert min(speeds) <= mean <= max(speeds)


class TestPropagation:
    def test_straight_line_delay(self):
        model = StraightLinePropagation(1500.0)
        a, b = Position(0, 0, 0), Position(1500, 0, 0)
        assert model.delay_s(a, b) == pytest.approx(1.0)

    def test_nominal_delay_helper(self):
        # Paper: 0.67 s/km.
        assert nominal_propagation_delay_s(1000.0) == pytest.approx(0.667, abs=0.01)
        with pytest.raises(ValueError):
            nominal_propagation_delay_s(-1.0)

    def test_ssp_ray_deterministic_per_pair(self):
        model = SspRayPropagation(seed=3)
        a, b = Position(0, 0, 100), Position(1000, 0, 900)
        d1 = model.delay_s(a, b, pair=(1, 2))
        d2 = model.delay_s(a, b, pair=(2, 1))
        assert d1 == d2  # symmetric pair key

    def test_ssp_ray_excess_is_nonnegative(self):
        base = SspRayPropagation(seed=3, multipath_excess_std=0.0)
        noisy = SspRayPropagation(seed=3, multipath_excess_std=0.05)
        a, b = Position(0, 0, 100), Position(1400, 0, 500)
        assert noisy.delay_s(a, b, pair=(1, 2)) >= base.delay_s(a, b, pair=(1, 2))

    def test_speed_mps_is_conservative(self):
        model = SspRayPropagation(seed=0)
        a, b = Position(0, 0, 0), Position(1500, 0, 0)
        tau_max = 1500.0 / model.speed_mps()
        assert model.delay_s(a, b, pair=(1, 2)) <= tau_max
