"""Unit tests for the fading processes and channel integration."""

import statistics

import pytest

from repro.acoustic.fading import NoFading, RayleighBlockFading, RicianBlockFading


class TestNoFading:
    def test_always_zero(self):
        fading = NoFading()
        assert fading.fade_db((1, 2), 0.0) == 0.0
        assert fading.fade_db((3, 4), 1e6) == 0.0


class TestRayleigh:
    def test_constant_within_block(self):
        fading = RayleighBlockFading(coherence_s=2.0, seed=1)
        assert fading.fade_db((1, 2), 0.1) == fading.fade_db((1, 2), 1.9)

    def test_changes_between_blocks(self):
        fading = RayleighBlockFading(coherence_s=2.0, seed=1)
        values = {fading.fade_db((1, 2), 2.0 * b + 0.5) for b in range(10)}
        assert len(values) > 1

    def test_symmetric_pair_key(self):
        fading = RayleighBlockFading(seed=3)
        assert fading.fade_db((1, 2), 0.5) == fading.fade_db((2, 1), 0.5)

    def test_unit_mean_power(self):
        fading = RayleighBlockFading(coherence_s=1.0, seed=7)
        powers = [
            10 ** (fading.fade_db((1, 2), float(b) + 0.5) / 10.0) for b in range(3000)
        ]
        assert statistics.mean(powers) == pytest.approx(1.0, rel=0.1)

    def test_invalid_coherence(self):
        fading = RayleighBlockFading(coherence_s=0.0)
        with pytest.raises(ValueError):
            fading.fade_db((1, 2), 0.0)


class TestRician:
    def test_higher_k_means_milder_fades(self):
        mild = RicianBlockFading(k_factor=20.0, seed=5)
        harsh = RicianBlockFading(k_factor=0.5, seed=5)
        mild_fades = [mild.fade_db((1, 2), b + 0.5) for b in range(500)]
        harsh_fades = [harsh.fade_db((1, 2), b + 0.5) for b in range(500)]
        assert statistics.pstdev(mild_fades) < statistics.pstdev(harsh_fades)

    def test_k_zero_is_rayleigh_like(self):
        fading = RicianBlockFading(k_factor=0.0, seed=2)
        powers = [
            10 ** (fading.fade_db((1, 2), b + 0.5) / 10.0) for b in range(3000)
        ]
        assert statistics.mean(powers) == pytest.approx(1.0, rel=0.15)

    def test_invalid_k(self):
        fading = RicianBlockFading(k_factor=-1.0)
        with pytest.raises(ValueError):
            fading.fade_db((1, 2), 0.0)


class TestChannelIntegration:
    def test_fading_channel_loses_some_frames(self):
        from repro.acoustic.geometry import Position
        from repro.des.simulator import Simulator
        from repro.phy.channel import AcousticChannel
        from repro.phy.frame import FrameType, control_frame

        sim = Simulator(seed=1)
        # deep Rayleigh fades on a link near the decode threshold
        channel = AcousticChannel(
            sim, fading=RayleighBlockFading(coherence_s=0.5, seed=9)
        )
        pos_a, pos_b = Position(0, 0, 0), Position(1400, 0, 0)
        a = channel.create_modem(0, lambda: pos_a)
        b = channel.create_modem(1, lambda: pos_b)
        outcomes = []
        b.on_receive = lambda f, arr: outcomes.append(True)
        b.on_rx_failure = lambda arr, out: outcomes.append(False)
        for i in range(200):
            sim.schedule(
                i * 2.0, a.transmit, control_frame(FrameType.RTS, 0, 1, timestamp=0.0)
            )
        sim.run()
        assert len(outcomes) == 200
        assert any(outcomes) and not all(outcomes)
