"""Unit tests for the neighbour-schedule tracker (interference safety)."""

import pytest

from repro.core.ewmac.schedule import NeighborScheduleTracker, ProtectedInterval


@pytest.fixture
def tracker():
    return NeighborScheduleTracker(owner_id=0)


def test_protect_and_query(tracker):
    tracker.protect(1, 10.0, 12.0, "data-rx")
    windows = tracker.windows_of(1)
    assert len(windows) == 1
    assert windows[0].reason == "data-rx"
    assert tracker.tracked_neighbors() == [1]
    assert tracker.total_windows() == 1


def test_own_windows_ignored(tracker):
    tracker.protect(0, 10.0, 12.0)
    assert tracker.total_windows() == 0


def test_empty_or_inverted_interval_ignored(tracker):
    tracker.protect(1, 5.0, 5.0)
    tracker.protect(1, 6.0, 4.0)
    assert tracker.total_windows() == 0


def test_send_hitting_window_is_unsafe(tracker):
    tracker.protect(1, 10.0, 12.0)
    delays = {1: 0.5}
    # arrival 10.5..10.6 inside [10,12) -> unsafe
    assert not tracker.is_send_safe(10.0, 0.1, delays)
    # arrival 12.5..12.6 after window -> safe
    assert tracker.is_send_safe(12.0, 0.1, delays)
    # arrival 9.3..9.4 before window -> safe
    assert tracker.is_send_safe(8.8, 0.1, delays)


def test_adjacent_arrival_is_safe(tracker):
    tracker.protect(1, 10.0, 12.0)
    delays = {1: 0.0}
    # arrival exactly [12.0, 12.1): adjacency is not overlap
    assert tracker.is_send_safe(12.0, 0.1, delays)
    # arrival [9.9, 10.0): ends exactly at window start
    assert tracker.is_send_safe(9.9, 0.1, delays)


def test_unknown_delay_cannot_be_checked(tracker):
    tracker.protect(1, 10.0, 12.0)
    assert tracker.is_send_safe(10.0, 0.1, {})  # no delay known -> unchecked


def test_excluded_peer_skipped(tracker):
    tracker.protect(1, 10.0, 12.0)
    delays = {1: 0.5}
    assert tracker.is_send_safe(10.0, 0.1, delays, exclude=(1,))


def test_multiple_neighbors_all_checked(tracker):
    tracker.protect(1, 10.0, 11.0)
    tracker.protect(2, 20.0, 21.0)
    delays = {1: 0.0, 2: 10.0}
    # send at 10.2: arrival at 1 inside its window -> unsafe
    assert not tracker.is_send_safe(10.2, 0.1, delays)
    # send at 15: arrival at 1 is past, at 2 it is 25 (past its window end 21)... safe
    assert tracker.is_send_safe(15.0, 0.1, delays)
    # send at 10.2 toward neighbor 2 only: arrival at 20.2 inside [20,21) -> unsafe
    assert not tracker.is_send_safe(10.2, 0.1, {2: 10.0})


def test_blocking_conflicts_lists_hits(tracker):
    tracker.protect(1, 10.0, 12.0, "data-rx")
    tracker.protect(2, 10.0, 12.0, "ack-rx")
    conflicts = tracker.blocking_conflicts(10.0, 0.5, {1: 0.5, 2: 0.5})
    assert {nid for nid, _ in conflicts} == {1, 2}


def test_purge_drops_past_windows(tracker):
    tracker.protect(1, 10.0, 12.0)
    tracker.protect(1, 30.0, 31.0)
    tracker.protect(2, 5.0, 6.0)
    tracker.purge(now=20.0)
    assert tracker.tracked_neighbors() == [1]
    assert tracker.total_windows() == 1


def test_negative_duration_rejected(tracker):
    with pytest.raises(ValueError):
        tracker.is_send_safe(0.0, -1.0, {})


def test_protected_interval_overlap_logic():
    window = ProtectedInterval(10.0, 12.0)
    assert window.overlaps(11.0, 13.0)
    assert window.overlaps(9.0, 10.5)
    assert not window.overlaps(12.0, 13.0)
    assert not window.overlaps(8.0, 10.0)
