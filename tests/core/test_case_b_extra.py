"""EW-MAC case B: the busy target is itself a *sender* (overheard RTS).

Paper Sec. 4.2: "if j is a sender in another negotiated communication, i
sends the extra request after j sends RTS and before it receives CTS"
(period III), and the extra data arrives after j finishes its exchange.
"""

import pytest

from repro.acoustic.geometry import Position
from repro.core.ewmac.protocol import EwMac, ExtraCase
from repro.des.simulator import Simulator
from repro.des.trace import Tracer
from repro.mac.slots import make_slot_timing
from repro.net.node import Node
from repro.phy.channel import AcousticChannel
from repro.phy.frame import FrameType, control_frame


def build_chain(seed=0):
    """i -> j -> k chain: j relays to k; i wants to send to j.

    When i's RTS(i,j) coincides with j's own RTS(j,k), i overhears a
    negotiation *from* j as a sender — the case B trigger.
    """
    sim = Simulator(seed=seed, tracer=Tracer())
    channel = AcousticChannel(sim)
    timing = make_slot_timing(12_000.0, 64, 1500.0, 1500.0)
    positions = [
        Position(0, 0, 100),     # k: j's receiver
        Position(600, 0, 100),   # j: relay (tau_jk = 0.4)
        Position(600, 450, 100), # i: contender toward j (tau_ij = 0.3)
    ]
    nodes, macs = [], []
    for node_id, pos in enumerate(positions):
        node = Node(sim, node_id, pos, channel)
        mac = EwMac(sim, node, channel, timing)
        mac.config.hello_window_s = 2.0
        mac.start()
        nodes.append(node)
        macs.append(mac)
    return sim, nodes, macs, timing


def test_case_b_planning_from_overheard_rts():
    """Unit-level: an overheard RTS(j,k) plans a TARGET_IS_SENDER extra."""
    sim, nodes, macs, timing = build_chain()
    sim.run(until=3.0)  # hello phase done; neighbours learned
    mac_i = macs[2]
    # put i into WAIT_CTS toward j
    nodes[2].enqueue_data(1, 2048)
    from repro.mac.base import MacState

    mac_i._current_request = nodes[2].peek_request()
    mac_i._target = 1
    mac_i._rts_slot = timing.slot_index(sim.now)
    mac_i.state = MacState.WAIT_CTS
    rts_jk = control_frame(
        FrameType.RTS,
        1,
        0,
        timestamp=timing.slot_start(timing.slot_index(sim.now)),
        pair_delay_s=0.4,
        data_bits=2048,
    )
    context = mac_i._plan_extra_request(1, rts_jk)
    assert context is not None
    assert context.case is ExtraCase.TARGET_IS_SENDER
    # EXData is scheduled to arrive after j finishes receiving Ack(k,j):
    # ack slot start + tau_jk (ack propagation) + omega (ack duration)
    arrival = context.exdata_start + context.tau_ij
    ack_arrival_end = timing.slot_start(context.ack_slot) + 0.4 + timing.omega_s
    assert arrival >= ack_arrival_end


def test_case_b_extra_completes_end_to_end():
    """Integration: some seed completes a sender-case extra communication."""
    for seed in range(60):
        sim, nodes, macs, timing = build_chain(seed)
        # j relays continuously toward k; i keeps trying to reach j
        for _ in range(6):
            nodes[1].enqueue_data(0, 2048)
        nodes[2].enqueue_data(1, 2048)
        sim.run(until=150.0)
        completed = sum(m.extra_stats.completed for m in macs)
        if completed >= 1:
            # i's packet was delivered to j through the extra path
            assert nodes[2].app_stats.sent == 1
            return
    pytest.fail("case B extra never completed in 60 seeds")
