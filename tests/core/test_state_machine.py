"""Tests for the Fig. 3 state machine (paper's state transfer diagram)."""

import pytest

from repro.core.ewmac.states import (
    TRANSITIONS,
    EwState,
    Fig3StateMachine,
    InvalidTransition,
)


def test_all_nine_states_exist():
    assert len(EwState) == 9


def test_all_states_reachable_from_idle():
    assert Fig3StateMachine.reachable_states() == frozenset(EwState)


def test_initial_state_is_idle():
    assert Fig3StateMachine().state is EwState.IDLE


def test_paper_happy_path_sender():
    """Idle -> WaitingCTS -> WaitingAck -> Idle (successful handshake)."""
    machine = Fig3StateMachine()
    machine.transition(EwState.WAITING_CTS, 1.0)
    machine.transition(EwState.WAITING_ACK, 2.0)
    machine.transition(EwState.IDLE, 3.0)
    assert [s.value for _, _, s in machine.history] == [
        "Waiting CTS",
        "Waiting Ack",
        "Idle",
    ]


def test_paper_happy_path_receiver():
    """Idle -> CheckingScheduling -> WaitingData -> CheckingData -> Idle."""
    machine = Fig3StateMachine()
    for state in (
        EwState.CHECKING_SCHEDULING,
        EwState.WAITING_DATA,
        EwState.CHECKING_DATA,
        EwState.IDLE,
    ):
        machine.transition(state)
    assert machine.state is EwState.IDLE


def test_extra_communication_paths():
    """Asking (contention loser) and Asked (busy peer) paths per Fig. 3."""
    asker = Fig3StateMachine()
    asker.transition(EwState.WAITING_CTS)
    asker.transition(EwState.ASKING_EXTRA)  # received CTS(j,k)
    asker.transition(EwState.IDLE)          # extra completed
    asked = Fig3StateMachine()
    asked.transition(EwState.CHECKING_SCHEDULING)
    asked.transition(EwState.WAITING_DATA)
    asked.transition(EwState.ASKED_EXTRA)   # received EXR(l,i)
    asked.transition(EwState.IDLE)


def test_asking_extra_gives_up_to_quiet():
    """Paper: 'i gives up the extra transmission and returns to Quiet'."""
    machine = Fig3StateMachine()
    machine.transition(EwState.WAITING_CTS)
    machine.transition(EwState.ASKING_EXTRA)
    machine.transition(EwState.QUIET)
    machine.transition(EwState.IDLE)


def test_invalid_transition_raises_when_strict():
    machine = Fig3StateMachine(strict=True)
    with pytest.raises(InvalidTransition):
        machine.transition(EwState.WAITING_ACK)  # Idle -> WaitingAck illegal


def test_lenient_mode_records_but_allows():
    machine = Fig3StateMachine(strict=False)
    machine.transition(EwState.WAITING_ACK)
    assert machine.state is EwState.WAITING_ACK


def test_self_transition_is_noop():
    machine = Fig3StateMachine()
    machine.transition(EwState.IDLE)
    assert machine.history == []


def test_can_transition_matches_table():
    for (src, dst) in TRANSITIONS:
        m = Fig3StateMachine()
        m.state = src
        assert m.can_transition(dst), f"{src} -> {dst} should be allowed"


def test_quiet_loops_on_more_neighbor_packets():
    machine = Fig3StateMachine()
    machine.transition(EwState.QUIET)
    machine.transition(EwState.QUIET)  # allowed self-loop (recorded as no-op)
    assert machine.state is EwState.QUIET
