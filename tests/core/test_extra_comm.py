"""Integration tests for EW-MAC's extra communications (paper Figs. 2, 4, 5).

The deterministic scenario: hub j with two contenders i and k that send
RTS in the same slot.  j grants one (highest rp); the loser must request an
extra communication and complete it inside the winner's exchange windows.
"""

import pytest

from repro.acoustic.geometry import Position
from repro.core.ewmac.protocol import EwMac
from repro.core.ewmac.states import EwState
from repro.des.simulator import Simulator
from repro.des.trace import Tracer
from repro.mac.slots import make_slot_timing
from repro.net.node import Node
from repro.phy.channel import AcousticChannel


def build_triangle(seed=0):
    """Hub j=0 plus contenders i=1, k=2, all mutually in range."""
    sim = Simulator(seed=seed, tracer=Tracer())
    channel = AcousticChannel(sim)
    timing = make_slot_timing(12_000.0, 64, 1500.0, 1500.0)
    positions = [
        Position(0, 0, 100),      # j: hub / receiver
        Position(0, 450, 100),    # i: tau_ij = 0.3
        Position(600, 0, 100),    # k: tau_jk = 0.4; i-k 750 m
    ]
    nodes = []
    macs = []
    for node_id, pos in enumerate(positions):
        node = Node(sim, node_id, pos, channel)
        mac = EwMac(sim, node, channel, timing)
        mac.config.hello_window_s = 2.0
        nodes.append(node)
        macs.append(mac)
    return sim, nodes, macs, timing


def run_contention(seed=0, bits=2048, until=120.0):
    sim, nodes, macs, timing = build_triangle(seed)
    for mac in macs:
        mac.start()
    nodes[1].enqueue_data(0, bits)
    nodes[2].enqueue_data(0, bits)
    sim.run(until=until)
    return sim, nodes, macs, timing


def find_seed_with_extra(max_seed=40, **kwargs):
    """Some seeds resolve by plain backoff; find one exercising the extra path."""
    for seed in range(max_seed):
        sim, nodes, macs, timing = run_contention(seed=seed, **kwargs)
        total_extra = sum(m.extra_stats.completed for m in macs)
        if total_extra >= 1:
            return sim, nodes, macs, timing
    pytest.fail("no seed produced a completed extra communication")


class TestExtraCommunication:
    def test_extra_communication_completes(self):
        sim, nodes, macs, timing = find_seed_with_extra()
        assert nodes[1].app_stats.sent == 1
        assert nodes[2].app_stats.sent == 1
        assert nodes[0].app_stats.delivered == 2

    def test_extra_packet_sequence_matches_paper_fig4_fig5(self):
        """EXR -> EXC -> EXData -> EXAck, all off the slot grid."""
        sim, nodes, macs, timing = find_seed_with_extra()
        extra_tx = [
            (r.detail["frame"].split()[0], r.time)
            for r in sim.trace.select("phy.tx")
            if r.detail["frame"].split()[0] in ("EXR", "EXC", "EXDATA", "EXACK")
        ]
        kinds = [k for k, _ in extra_tx]
        assert kinds[:4] == ["EXR", "EXC", "EXDATA", "EXACK"]
        times = [t for _, t in extra_tx]
        assert times == sorted(times)

    def test_exdata_arrives_after_ack_transmission(self):
        """The Eq. (6) invariant: EXData reaches j only after Ack(j,k) ends."""
        sim, nodes, macs, timing = find_seed_with_extra()
        ack_tx = [
            r.time for r in sim.trace.select("phy.tx", node=0)
            if r.detail["frame"].startswith("ACK")
        ]
        exdata_rx = [
            r.time for r in sim.trace.select("phy.rx", node=0)
            if r.detail["frame"].startswith("EXDATA")
        ]
        assert ack_tx and exdata_rx
        omega = timing.omega_s
        # The EXData reception completes after the Ack transmission ended.
        assert exdata_rx[0] > ack_tx[0] + omega

    def test_extra_does_not_disturb_negotiated_exchange(self):
        """The winner's Data must be received intact despite the extra."""
        sim, nodes, macs, timing = find_seed_with_extra()
        hub_failures = [
            r for r in sim.trace.select("phy.rx_fail", node=0)
            if r.detail["frame"].startswith("DATA")
        ]
        assert hub_failures == []

    def test_extra_stats_funnel_consistency(self):
        sim, nodes, macs, timing = find_seed_with_extra()
        for mac in macs:
            es = mac.extra_stats
            assert es.completed <= es.granted_received <= es.requested
            assert es.grants_issued >= 0

    def test_loser_visits_asking_extra_state(self):
        sim, nodes, macs, timing = find_seed_with_extra()
        asking_visits = [
            m for m in macs
            if any(to is EwState.ASKING_EXTRA for _, _, to in m.fig3.history)
        ]
        assert asking_visits, "no MAC ever entered Asking Extra Commu"

    def test_hub_visits_asked_extra_state(self):
        sim, nodes, macs, timing = find_seed_with_extra()
        hub_states = [to for _, _, to in macs[0].fig3.history]
        assert EwState.ASKED_EXTRA in hub_states


class TestExtraFailureModes:
    def test_unknown_peer_exdata_ignored(self):
        sim, nodes, macs, timing = build_triangle()
        from repro.phy.frame import data_frame
        from repro.phy.modem import Arrival

        frame = data_frame(2, 0, 0.0, extra=True)
        arrival = Arrival(frame, 2, 0.0, 0.17, -30.0, 0.4)
        macs[0]._on_exdata_received(frame, arrival)  # no _asked context
        assert macs[0].stats.opportunistic_received == 0

    def test_give_up_sets_quiet(self):
        """Paper: on EXC timeout the asker returns to Quiet."""
        from repro.core.ewmac.protocol import AskingContext, ExtraCase

        sim, nodes, macs, timing = build_triangle()
        mac = macs[1]
        context = AskingContext(
            target=0,
            case=ExtraCase.TARGET_IS_RECEIVER,
            tau_ij=0.3,
            ack_slot=5,
            exr_send_time=1.0,
            exdata_start=4.0,
            data_bits=2048,
            exchange_end=9.0,
        )
        mac._asking = context
        mac._give_up_extra()
        assert mac._asking is None
        assert mac.quiet_until == pytest.approx(9.0)
        assert mac.extra_stats.given_up == 1
