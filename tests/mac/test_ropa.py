"""Integration tests for ROPA's two-phase reverse appending."""

import pytest

from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator
from repro.des.trace import Tracer
from repro.mac.ropa import Ropa
from repro.mac.slots import make_slot_timing
from repro.net.node import Node
from repro.phy.channel import AcousticChannel


def build(positions, seed=0):
    sim = Simulator(seed=seed, tracer=Tracer())
    channel = AcousticChannel(sim)
    timing = make_slot_timing(12_000.0, 64, 1500.0, 1500.0)
    nodes, macs = [], []
    for node_id, pos in enumerate(positions):
        node = Node(sim, node_id, pos, channel)
        mac = Ropa(sim, node, channel, timing)
        mac.config.hello_window_s = 2.0
        nodes.append(node)
        macs.append(mac)
    return sim, nodes, macs, timing


def run_append_scenario(seed=0, until=120.0):
    """s=1 sends to r=0; neighbour n=2 has reverse traffic for s."""
    positions = [
        Position(0, 0, 100),      # r: s's receiver
        Position(900, 0, 100),    # s: the waiting sender
        Position(900, 700, 100),  # n: s's neighbour with data for s
    ]
    sim, nodes, macs, timing = build(positions, seed)
    for mac in macs:
        mac.start()
    nodes[1].enqueue_data(0, 2048)   # s -> r (primary)
    nodes[2].enqueue_data(1, 2048)   # n -> s (reverse append candidate)
    sim.run(until=until)
    return sim, nodes, macs, timing


def find_append_seed(max_seed=30):
    for seed in range(max_seed):
        sim, nodes, macs, timing = run_append_scenario(seed=seed)
        if macs[2].appends_completed >= 1:
            return sim, nodes, macs, timing
    pytest.fail("no seed produced a completed append")


class TestAppending:
    def test_append_completes_and_delivers(self):
        sim, nodes, macs, timing = find_append_seed()
        assert nodes[2].app_stats.sent == 1
        assert macs[1].stats.opportunistic_received == 1
        assert nodes[1].app_stats.delivered >= 1

    def test_rta_lands_in_senders_wait_window(self):
        """The RTA must arrive at s between its RTS and the CTS arrival."""
        sim, nodes, macs, timing = find_append_seed()
        rts_times = [
            r.time for r in sim.trace.select("phy.tx", node=1)
            if r.detail["frame"].startswith("RTS")
        ]
        rta_rx = [
            r.time for r in sim.trace.select("phy.rx", node=1)
            if r.detail["frame"].startswith("RTA")
        ]
        assert rta_rx, "s never decoded the RTA"
        # the append rides whichever RTS preceded it (s may have retried)
        trigger_rts = max(t for t in rts_times if t < rta_rx[0])
        slot = timing.slot_index(trigger_rts)
        tau_sr = 900.0 / 1500.0
        cts_arrival = timing.slot_start(slot + 1) + tau_sr
        assert trigger_rts < rta_rx[0] < cts_arrival + 1e-6

    def test_appended_data_comes_after_primary_exchange(self):
        """Two-phase model: the appended DATA follows s's own exchange."""
        sim, nodes, macs, timing = find_append_seed()
        primary_ack_rx = [
            r.time for r in sim.trace.select("phy.rx", node=1)
            if r.detail["frame"].startswith("ACK 0->1")
        ]
        appended_tx = [
            r.time for r in sim.trace.select("phy.tx", node=2)
            if r.detail["frame"].startswith("DATA")
        ]
        if primary_ack_rx:  # primary succeeded: append strictly after it
            assert appended_tx[0] > primary_ack_rx[0]

    def test_no_append_without_reverse_traffic(self):
        positions = [
            Position(0, 0, 100),
            Position(900, 0, 100),
            Position(900, 700, 100),
        ]
        sim, nodes, macs, timing = build(positions)
        for mac in macs:
            mac.start()
        nodes[1].enqueue_data(0, 2048)  # only the primary transfer
        sim.run(until=60.0)
        assert macs[2].appends_attempted == 0

    def test_append_only_toward_the_waiting_sender(self):
        """Traffic for a third party must not be appended."""
        positions = [
            Position(0, 0, 100),
            Position(900, 0, 100),
            Position(900, 700, 100),
        ]
        sim, nodes, macs, timing = build(positions)
        for mac in macs:
            mac.start()
        nodes[1].enqueue_data(0, 2048)
        nodes[2].enqueue_data(0, 2048)  # destined to r, not to s
        sim.run(until=30.0)
        assert macs[2].appends_attempted == 0


class TestRopaState:
    def test_two_hop_table_from_neigh(self):
        positions = [Position(0, 0, 100), Position(900, 0, 100)]
        sim, nodes, macs, timing = build(positions)
        for mac in macs:
            mac.config.maintenance_period_s = 5.0
            mac.start()
            mac._next_maintenance = 5.0  # constructed before the override
        sim.run(until=40.0)
        assert macs[0].stats.maintenance_tx_bits > 0
        # node 1 announced its one-hop table; node 0 recorded it (node 0
        # itself is excluded from the stored links, so it may be empty here,
        # but the announcement must have been registered).
        assert 1 in macs[0].two_hop._last_announce

    def test_maintenance_bits_grow_with_neighbors(self):
        positions = [Position(0, 0, 100), Position(900, 0, 100)]
        sim, nodes, macs, timing = build(positions)
        base = macs[0].maintenance_frame_bits()
        macs[0].node.neighbors.observe(1, 0.6, 0.0)
        assert macs[0].maintenance_frame_bits() > base

    def test_uses_two_hop_flag(self):
        assert Ropa.uses_two_hop_info
