"""Integration tests for the shared slotted handshake engine (S-FAMA)."""

import pytest

from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator
from repro.des.trace import Tracer
from repro.mac.base import MacState
from repro.mac.sfama import SFama
from repro.mac.slots import make_slot_timing
from repro.net.node import Node
from repro.phy.channel import AcousticChannel


def build_network(positions, seed=0, protocol=SFama, hello_window=2.0):
    """Wire nodes+macs at given positions; returns (sim, nodes, macs, timing)."""
    sim = Simulator(seed=seed, tracer=Tracer())
    channel = AcousticChannel(sim)
    timing = make_slot_timing(12_000.0, 64, 1500.0, 1500.0)
    nodes = []
    macs = []
    for node_id, pos in enumerate(positions):
        node = Node(sim, node_id, pos, channel)
        mac = protocol(sim, node, channel, timing)
        mac.config.hello_window_s = hello_window
        nodes.append(node)
        macs.append(mac)
    return sim, nodes, macs, timing


def frame_sequence(sim, node_id=None):
    """Transmitted frame descriptions in time order, optionally per node."""
    return [
        r.detail["frame"]
        for r in sim.trace.select("phy.tx", node=node_id)
    ]


class TestHelloPhase:
    def test_neighbors_learned_with_true_delays(self):
        positions = [Position(0, 0, 100), Position(900, 0, 100), Position(0, 1200, 100)]
        sim, nodes, macs, timing = build_network(positions)
        for mac in macs:
            mac.start()
        sim.run(until=5.0)
        assert nodes[0].neighbors.delay_to(1) == pytest.approx(0.6, abs=1e-6)
        assert nodes[0].neighbors.delay_to(2) == pytest.approx(0.8, abs=1e-6)
        assert nodes[1].neighbors.delay_to(2) == pytest.approx(1.0, abs=1e-6)

    def test_out_of_range_node_not_learned(self):
        positions = [Position(0, 0, 100), Position(5000, 0, 100)]
        sim, nodes, macs, timing = build_network(positions)
        for mac in macs:
            mac.start()
        sim.run(until=5.0)
        assert nodes[0].neighbors.delay_to(1) is None


class TestFourWayHandshake:
    def _run_single_transfer(self, distance=900.0, bits=2048):
        positions = [Position(0, 0, 100), Position(distance, 0, 100)]
        sim, nodes, macs, timing = build_network(positions)
        for mac in macs:
            mac.start()
        nodes[0].enqueue_data(1, bits)
        sim.run(until=60.0)
        return sim, nodes, macs, timing

    def test_packet_delivered_and_acked(self):
        sim, nodes, macs, timing = self._run_single_transfer()
        assert nodes[0].app_stats.sent == 1
        assert nodes[1].app_stats.delivered == 1
        assert macs[0].stats.handshakes_completed == 1
        assert macs[1].stats.data_received_bits == 2048

    def test_frame_order_is_rts_cts_data_ack(self):
        sim, nodes, macs, timing = self._run_single_transfer()
        sent0 = [f.split()[0] for f in frame_sequence(sim, 0) if "HELLO" not in f]
        sent1 = [f.split()[0] for f in frame_sequence(sim, 1) if "HELLO" not in f]
        assert sent0 == ["RTS", "DATA"]
        assert sent1 == ["CTS", "ACK"]

    def test_slot_alignment(self):
        """RTS at slot t, CTS at t+1, Data at t+2 (paper Sec. 4.1)."""
        sim, nodes, macs, timing = self._run_single_transfer()
        tx = [
            (r.detail["frame"].split()[0], r.time)
            for r in sim.trace.select("phy.tx")
            if "HELLO" not in r.detail["frame"]
        ]
        by_type = dict((name, time) for name, time in tx)
        rts_slot = timing.slot_index(by_type["RTS"])
        assert timing.time_into_slot(by_type["RTS"]) == pytest.approx(0.0, abs=1e-9)
        assert timing.slot_index(by_type["CTS"]) == rts_slot + 1
        assert timing.slot_index(by_type["DATA"]) == rts_slot + 2

    def test_ack_slot_follows_equation5(self):
        sim, nodes, macs, timing = self._run_single_transfer(distance=1400.0, bits=4096)
        tx = {
            r.detail["frame"].split()[0]: r.time
            for r in sim.trace.select("phy.tx")
            if "HELLO" not in r.detail["frame"]
        }
        data_slot = timing.slot_index(tx["DATA"])
        tau = 1400.0 / 1500.0
        expected = timing.ack_slot(data_slot, 4096 / 12_000.0, tau)
        assert timing.slot_index(tx["ACK"]) == expected

    def test_multiple_packets_serialized(self):
        positions = [Position(0, 0, 100), Position(900, 0, 100)]
        sim, nodes, macs, timing = build_network(positions)
        for mac in macs:
            mac.start()
        for _ in range(3):
            nodes[0].enqueue_data(1, 1024)
        sim.run(until=120.0)
        assert nodes[0].app_stats.sent == 3
        assert macs[0].state is MacState.IDLE


class TestContention:
    def test_receiver_grants_highest_rp(self):
        # two contenders close enough to the hub for same-slot RTS arrivals
        positions = [
            Position(0, 0, 100),      # hub (receiver)
            Position(800, 0, 100),    # contender A
            Position(0, 900, 100),    # contender B
        ]
        sim, nodes, macs, timing = build_network(positions)
        for mac in macs:
            mac.start()
        nodes[1].enqueue_data(0, 1024)
        nodes[2].enqueue_data(0, 1024)
        sim.run(until=200.0)
        # Both eventually deliver; the hub granted them one at a time.
        assert nodes[1].app_stats.sent == 1
        assert nodes[2].app_stats.sent == 1
        assert macs[0].stats.cts_sent >= 2

    def test_overhearing_neighbor_stays_quiet(self):
        """A bystander hears the negotiation and defers (paper Sec. 4.1)."""
        positions = [
            Position(0, 0, 100),
            Position(900, 0, 100),
            Position(450, 300, 100),  # bystander in range of both
        ]
        sim, nodes, macs, timing = build_network(positions)
        for mac in macs:
            mac.start()
        nodes[0].enqueue_data(1, 2048)
        sim.run(until=40.0)
        assert macs[2].quiet_until > 0.0

    def test_cts_timeout_backs_off_and_retries(self):
        """Receiver out of range: sender retries then drops."""
        positions = [Position(0, 0, 100), Position(900, 0, 100)]
        sim, nodes, macs, timing = build_network(positions)
        for mac in macs:
            mac.start()
        macs[0].config.max_retries = 2
        nodes[0].enqueue_data(1, 1024)
        # silence the receiver so no CTS ever comes
        macs[1].stop()
        nodes[1].modem.on_receive = None
        sim.run(until=120.0)
        assert macs[0].stats.contention_failures >= 3
        assert macs[0].stats.drops == 1
        assert not nodes[0].has_pending_data


class TestDuplicateSuppression:
    def test_duplicate_data_not_double_counted(self):
        from repro.phy.frame import data_frame

        positions = [Position(0, 0, 100), Position(900, 0, 100)]
        sim, nodes, macs, timing = build_network(positions)
        frame1 = data_frame(0, 1, 0.0, size_bits=1024, req_uid=77)
        frame2 = data_frame(0, 1, 0.0, size_bits=1024, req_uid=77)
        assert macs[1].register_data_reception(frame1)
        assert not macs[1].register_data_reception(frame2)
        assert macs[1].stats.duplicate_data == 1

    def test_frames_without_uid_always_count(self):
        from repro.phy.frame import data_frame

        positions = [Position(0, 0, 100), Position(900, 0, 100)]
        sim, nodes, macs, timing = build_network(positions)
        frame = data_frame(0, 1, 0.0, size_bits=1024)
        assert macs[1].register_data_reception(frame)
        assert macs[1].register_data_reception(frame)
