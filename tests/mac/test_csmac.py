"""Integration tests for CS-MAC channel stealing."""

import pytest

from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator
from repro.des.trace import Tracer
from repro.mac.csmac import CsMac
from repro.mac.slots import make_slot_timing
from repro.net.node import Node
from repro.phy.channel import AcousticChannel


def build(positions, seed=0):
    sim = Simulator(seed=seed, tracer=Tracer())
    channel = AcousticChannel(sim)
    timing = make_slot_timing(12_000.0, 64, 1500.0, 1500.0)
    nodes, macs = [], []
    for node_id, pos in enumerate(positions):
        node = Node(sim, node_id, pos, channel)
        mac = CsMac(sim, node, channel, timing)
        mac.config.hello_window_s = 2.0
        nodes.append(node)
        macs.append(mac)
    return sim, nodes, macs, timing


def steal_scenario(seed=0, until=200.0):
    """Pair (0,1) negotiates repeatedly; bystander 2 steals toward 3.

    Node 3 is in range of node 2 but far from the negotiating pair, so the
    stolen data cannot collide with the exchange.  The stealer's packet is
    enqueued only after the pair is already negotiating, so quiet rules
    keep it from winning the channel normally — stealing is its only way
    into the waiting period.
    """
    positions = [
        Position(0, 0, 100),       # receiver of the negotiated pair
        Position(900, 0, 100),     # sender of the negotiated pair
        Position(0, 1200, 100),    # stealer (hears 0's CTS)
        Position(0, 2600, 100),    # stealer's target (out of pair's range)
    ]
    sim, nodes, macs, timing = build(positions, seed)
    for mac in macs:
        mac.start()
    for _ in range(8):  # keep the pair busy for many exchanges
        nodes[1].enqueue_data(0, 2048)
    sim.schedule(5.5, nodes[2].enqueue_data, 3, 1024)
    sim.run(until=until)
    return sim, nodes, macs, timing


def find_steal_seed(max_seed=30):
    for seed in range(max_seed):
        sim, nodes, macs, timing = steal_scenario(seed=seed)
        if macs[2].steals_completed >= 1:
            return sim, nodes, macs, timing
    pytest.fail("no seed produced a completed steal")


class TestStealing:
    def test_steal_completes_without_handshake(self):
        sim, nodes, macs, timing = find_steal_seed()
        assert nodes[2].app_stats.sent == 1
        # the stealer sent no RTS for this packet
        stealer_tx = [
            r.detail["frame"].split()[0]
            for r in sim.trace.select("phy.tx", node=2)
        ]
        assert "DATA" in stealer_tx
        assert macs[3].stats.opportunistic_received == 1

    def test_stolen_data_is_mid_slot(self):
        """Stolen data starts off the slot grid (it steals waiting time)."""
        sim, nodes, macs, timing = find_steal_seed()
        data_tx = [
            r.time for r in sim.trace.select("phy.tx", node=2)
            if r.detail["frame"].startswith("DATA")
        ]
        assert any(timing.time_into_slot(t) > 1e-6 for t in data_tx)

    def test_no_steal_when_target_in_negotiating_pair(self):
        positions = [
            Position(0, 0, 100),
            Position(900, 0, 100),
            Position(0, 1200, 100),
        ]
        sim, nodes, macs, timing = build(positions)
        for mac in macs:
            mac.start()
        nodes[1].enqueue_data(0, 2048)
        nodes[2].enqueue_data(0, 1024)  # target IS the busy receiver
        sim.run(until=15.0)
        assert macs[2].steals_attempted == 0

    def test_failed_steal_consumes_attempt(self):
        """A steal whose ack never returns burns one delivery attempt."""
        positions = [
            Position(0, 0, 100),
            Position(900, 0, 100),
            Position(0, 1200, 100),
            Position(0, 2600, 100),
        ]
        sim, nodes, macs, timing = build(positions)
        for mac in macs:
            mac.start()
        macs[3].stop()  # target never acks
        nodes[3].modem.on_receive = None
        nodes[1].enqueue_data(0, 2048)
        nodes[2].enqueue_data(3, 1024)
        sim.run(until=60.0)
        if macs[2].steals_attempted:
            request = nodes[2].peek_request()
            assert request is None or request.attempts >= 1

    def test_two_hop_digest_grows_maintenance(self):
        positions = [Position(0, 0, 100), Position(900, 0, 100)]
        sim, nodes, macs, timing = build(positions)
        base = macs[0].maintenance_frame_bits()
        macs[0].two_hop.record_announcement(1, [(2, 0.4), (3, 0.5)], now=0.0)
        assert macs[0].maintenance_frame_bits() > base

    def test_busy_tracking_from_overheard_cts(self):
        sim, nodes, macs, timing = steal_scenario(seed=0)
        # after the exchange the stealer learned the pair was busy at some point
        assert 0 in macs[2]._busy_until or 1 in macs[2]._busy_until
