"""Unit tests for the slot arithmetic (paper Eqs. 5-6)."""

import math

import pytest

from repro.mac.slots import SlotTiming, make_slot_timing


@pytest.fixture
def table2() -> SlotTiming:
    return make_slot_timing(12_000.0, 64, 1500.0, 1500.0)


def test_table2_slot_duration(table2):
    # |ts| = omega + tau_max = 64/12000 + 1.0
    assert table2.omega_s == pytest.approx(64 / 12_000)
    assert table2.tau_max_s == pytest.approx(1.0)
    assert table2.slot_s == pytest.approx(1.0 + 64 / 12_000)


def test_invalid_timing():
    with pytest.raises(ValueError):
        SlotTiming(omega_s=0.0, tau_max_s=1.0)
    with pytest.raises(ValueError):
        SlotTiming(omega_s=0.01, tau_max_s=-1.0)


def test_slot_grid_navigation(table2):
    assert table2.slot_start(0) == 0.0
    assert table2.slot_index(0.0) == 0
    assert table2.slot_index(table2.slot_s * 3 + 0.1) == 3
    # exact boundary belongs to the starting slot
    assert table2.slot_index(table2.slot_s * 2) == 2
    assert table2.next_slot_index(table2.slot_s * 2) == 2
    assert table2.next_slot_index(table2.slot_s * 2 + 1e-6) == 3
    assert table2.next_slot_start(0.5) == pytest.approx(table2.slot_s)


def test_time_into_slot(table2):
    t = table2.slot_s * 4 + 0.25
    assert table2.time_into_slot(t) == pytest.approx(0.25)


def test_negative_times_rejected(table2):
    with pytest.raises(ValueError):
        table2.slot_index(-0.1)
    with pytest.raises(ValueError):
        table2.slot_start(-1)


class TestEquation5:
    """ts(Ack) = ts(Data) + ceil((TD + tau_sr) / |ts|)."""

    def test_small_data_nearby_receiver_is_one_slot(self, table2):
        # 1024 bits -> 0.085 s; tau 0.1 s; sum < |ts| -> 1 slot
        assert table2.ack_slot(10, 1024 / 12_000, 0.1) == 11

    def test_max_data_max_delay_is_two_slots(self, table2):
        # 4096 bits -> 0.341 s; tau 1.0 -> 1.341 / 1.005 -> ceil = 2
        assert table2.ack_slot(10, 4096 / 12_000, 1.0) == 12

    def test_matches_formula_exactly(self, table2):
        for bits in (1024, 2048, 4096):
            for tau in (0.05, 0.4, 0.9, 1.0):
                td = bits / 12_000
                expected = 10 + max(1, math.ceil((td + tau) / table2.slot_s - 1e-9))
                assert table2.ack_slot(10, td, tau) == expected

    def test_ack_slot_start_not_before_data_arrival_end(self, table2):
        """Eq. 5 invariant: the receiver has finished receiving by ts(Ack)."""
        for bits in (1024, 2048, 4096):
            for tau in (0.1, 0.5, 1.0):
                td = bits / 12_000
                data_slot = 7
                ack = table2.ack_slot(data_slot, td, tau)
                arrival_end = table2.slot_start(data_slot) + tau + td
                assert table2.slot_start(ack) >= arrival_end - 1e-9

    def test_invalid_inputs(self, table2):
        with pytest.raises(ValueError):
            table2.data_slots(0.0, 0.5)
        with pytest.raises(ValueError):
            table2.data_slots(0.1, -0.5)


class TestEquation6:
    """t(EXData) = ts(Ack_jk) * |ts| + omega - tau_ij."""

    def test_exdata_arrives_as_ack_ends(self, table2):
        ack_slot = 12
        tau_ij = 0.3
        start = table2.exdata_start_time(ack_slot, tau_ij)
        arrival = start + tau_ij
        ack_tx_end = table2.slot_start(ack_slot) + table2.omega_s
        assert arrival == pytest.approx(ack_tx_end)

    def test_closer_askers_send_later(self, table2):
        near = table2.exdata_start_time(10, 0.1)
        far = table2.exdata_start_time(10, 0.9)
        assert far < near

    def test_negative_tau_rejected(self, table2):
        with pytest.raises(ValueError):
            table2.exdata_start_time(10, -0.1)


class TestExchangeSpan:
    def test_exchange_ack_slot_offsets_handshake(self, table2):
        # RTS at t, CTS t+1, Data t+2, Ack per Eq. 5.
        td = 2048 / 12_000
        assert table2.exchange_ack_slot(5, td, 0.5) == table2.ack_slot(7, td, 0.5)

    def test_exchange_end_covers_ack_propagation(self, table2):
        td = 2048 / 12_000
        end = table2.exchange_end_time(5, td, 0.5)
        ack_slot = table2.exchange_ack_slot(5, td, 0.5)
        assert end == pytest.approx(
            table2.slot_start(ack_slot) + table2.omega_s + table2.tau_max_s
        )
