"""Tests for the slotted-ALOHA extension baseline."""


from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator
from repro.des.trace import Tracer
from repro.mac.aloha import SlottedAloha
from repro.mac.registry import get_protocol
from repro.mac.slots import make_slot_timing
from repro.net.node import Node
from repro.phy.channel import AcousticChannel


def build_pair(seed=0, distance=900.0):
    sim = Simulator(seed=seed, tracer=Tracer())
    channel = AcousticChannel(sim)
    timing = make_slot_timing(12_000.0, 64, 1500.0, 1500.0)
    nodes, macs = [], []
    for node_id, pos in enumerate([Position(0, 0, 100), Position(distance, 0, 100)]):
        node = Node(sim, node_id, pos, channel)
        mac = SlottedAloha(sim, node, channel, timing)
        mac.config.hello_window_s = 1.0
        mac.start()
        nodes.append(node)
        macs.append(mac)
    return sim, nodes, macs, timing


def test_registered_in_registry():
    assert get_protocol("aloha") is SlottedAloha
    assert not SlottedAloha.requires_neighbor_info


def test_direct_data_no_control_handshake():
    sim, nodes, macs, timing = build_pair()
    nodes[0].enqueue_data(1, 2048)
    sim.run(until=40.0)
    assert nodes[0].app_stats.sent == 1
    sent_types = {
        r.detail["frame"].split()[0]
        for r in sim.trace.select("phy.tx", node=0)
    }
    assert "DATA" in sent_types
    assert "RTS" not in sent_types and "CTS" not in sent_types


def test_ack_completes_transfer():
    sim, nodes, macs, timing = build_pair()
    nodes[0].enqueue_data(1, 1024)
    sim.run(until=40.0)
    assert macs[1].stats.data_received == 1
    assert macs[1].stats.ack_sent == 1
    assert macs[0].stats.handshakes_completed == 1


def test_retransmits_until_acked():
    sim, nodes, macs, timing = build_pair()
    macs[0].config.max_retries = 3
    # silence the receiver: no acks ever
    macs[1].stop()
    nodes[1].modem.on_receive = None
    nodes[0].enqueue_data(1, 1024)
    sim.run(until=120.0)
    assert macs[0].stats.data_sent >= 2
    assert macs[0].stats.retransmissions >= 1
    assert macs[0].stats.drops == 1


def test_ignores_overheard_negotiations():
    """ALOHA has no NAV: overhearing sets no quiet period."""
    sim, nodes, macs, timing = build_pair()
    from repro.phy.frame import FrameType, control_frame
    from repro.phy.modem import Arrival

    frame = control_frame(FrameType.RTS, 5, 6, timestamp=0.0)
    arrival = Arrival(frame, 5, 0.0, 0.005, -30.0, 0.4)
    macs[0]._handle_overheard(frame, arrival)
    assert macs[0].quiet_until == 0.0


def test_sustained_traffic_delivers():
    sim, nodes, macs, timing = build_pair(seed=3)
    for _ in range(10):
        nodes[0].enqueue_data(1, 2048)
    sim.run(until=200.0)
    assert nodes[0].app_stats.sent == 10
    assert macs[0].stats.duplicate_data == 0 or macs[1].stats.duplicate_data >= 0
