"""Tests for the NAV/quiet bookkeeping (paper Sec. 4.1 deference rules)."""

import pytest

from repro.acoustic.geometry import Position
from repro.mac.sfama import SFama
from repro.net.node import Node
from repro.phy.channel import AcousticChannel
from repro.phy.frame import FrameType, control_frame, data_frame
from repro.phy.modem import Arrival


@pytest.fixture
def mac(sim, timing):
    channel = AcousticChannel(sim)
    node = Node(sim, 9, Position(0, 0, 100), channel)
    return SFama(sim, node, channel, timing)


def overhear(mac, frame, delay=0.3):
    arrival = Arrival(frame, frame.src, frame.timestamp + delay,
                      frame.timestamp + delay + 0.005, -30.0, delay)
    mac._handle_overheard(frame, arrival)


class TestQuietSpans:
    def test_overheard_rts_quiets_through_grant_slot(self, mac, timing):
        frame = control_frame(FrameType.RTS, 1, 2, timestamp=0.0)
        overhear(mac, frame)
        assert mac.quiet_until == pytest.approx(timing.slot_start(2))

    def test_overheard_cts_quiets_through_exchange(self, mac, timing):
        frame = control_frame(
            FrameType.CTS, 2, 1, timestamp=timing.slot_start(1),
            pair_delay_s=0.5, data_bits=2048,
        )
        overhear(mac, frame)
        duration = 2048 / 12_000.0
        ack_slot = timing.ack_slot(2, duration, 0.5)
        expected = timing.slot_start(ack_slot) + timing.omega_s + timing.tau_max_s
        assert mac.quiet_until == pytest.approx(expected)

    def test_overheard_data_quiets_until_ack_heard_everywhere(self, mac, timing):
        frame = data_frame(1, 2, timing.slot_start(4), size_bits=4096)
        frame.timestamp = timing.slot_start(4)
        overhear(mac, frame)
        assert mac.quiet_until > timing.slot_start(5)

    def test_quiet_only_extends_never_shrinks(self, mac, timing):
        long_cts = control_frame(
            FrameType.CTS, 2, 1, timestamp=timing.slot_start(1),
            pair_delay_s=1.0, data_bits=4096,
        )
        overhear(mac, long_cts)
        long_quiet = mac.quiet_until
        short_rts = control_frame(FrameType.RTS, 3, 4, timestamp=timing.slot_start(1))
        overhear(mac, short_rts)
        assert mac.quiet_until == long_quiet

    def test_exc_with_schedule_quiets_through_extra(self, mac, timing):
        exdata_start = timing.slot_start(6) + timing.omega_s
        frame = control_frame(
            FrameType.EXC, 2, 1, timestamp=timing.slot_start(4) + 0.5,
            exdata_start=exdata_start, data_bits=2048,
        )
        overhear(mac, frame)
        duration = 2048 / 12_000.0
        expected = (
            exdata_start + timing.tau_max_s + duration
            + timing.omega_s + timing.tau_max_s
        )
        assert mac.quiet_until == pytest.approx(expected)

    def test_exr_quiets_briefly(self, mac, timing, sim):
        frame = control_frame(FrameType.EXR, 2, 1, timestamp=0.5)
        overhear(mac, frame)
        assert 0.0 < mac.quiet_until <= sim.now + timing.slot_s + 1.0


class TestQuietBehaviour:
    def test_quiet_node_does_not_contend(self, sim, timing):
        channel = AcousticChannel(sim)
        a = Node(sim, 0, Position(0, 0, 100), channel)
        b = Node(sim, 1, Position(900, 0, 100), channel)
        mac_a = SFama(sim, a, channel, timing)
        mac_b = SFama(sim, b, channel, timing)
        mac_a.start()
        mac_b.start()
        a.enqueue_data(1, 1024)
        mac_a.quiet_until = 50.0  # forced quiet
        sim.run(until=45.0)
        assert mac_a.stats.rts_sent == 0
        sim.run(until=80.0)
        assert mac_a.stats.rts_sent >= 1

    def test_quiet_node_ignores_rts_requests(self, sim, timing):
        channel = AcousticChannel(sim)
        a = Node(sim, 0, Position(0, 0, 100), channel)
        b = Node(sim, 1, Position(900, 0, 100), channel)
        mac_a = SFama(sim, a, channel, timing)
        mac_b = SFama(sim, b, channel, timing)
        mac_a.start()
        mac_b.start()
        mac_b.quiet_until = 1e9  # the receiver is permanently deferring
        a.enqueue_data(1, 1024)
        sim.run(until=60.0)
        assert mac_b.stats.cts_sent == 0
        assert mac_a.stats.contention_failures >= 1
