"""Unit tests for the energy model."""

import pytest

from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator
from repro.energy.model import EnergyReport, PowerModel, network_energy
from repro.mac.sfama import SFama
from repro.mac.slots import make_slot_timing
from repro.net.node import Node
from repro.phy.channel import AcousticChannel


def build_mac(sim, node_id=0, pos=None):
    channel = AcousticChannel(sim)
    node = Node(sim, node_id, pos or Position(0, 0, 100), channel)
    timing = make_slot_timing(12_000.0, 64, 1500.0, 1500.0)
    return SFama(sim, node, channel, timing)


def test_idle_node_consumes_idle_power():
    sim = Simulator()
    mac = build_mac(sim)
    power = PowerModel(tx_w=2.0, rx_w=0.8, idle_w=0.08, entry_w=0.0)
    energy = power.node_energy_j(mac, duration_s=100.0)
    assert energy == pytest.approx(0.08 * 100.0)


def test_tx_time_charged_at_tx_power():
    sim = Simulator()
    mac = build_mac(sim)
    mac.node.modem.stats.tx_time_s = 10.0
    power = PowerModel(tx_w=2.0, rx_w=0.8, idle_w=0.08, entry_w=0.0)
    energy = power.node_energy_j(mac, duration_s=100.0)
    assert energy == pytest.approx(2.0 * 10 + 0.08 * 90)


def test_rx_time_charged_at_rx_power():
    sim = Simulator()
    mac = build_mac(sim)
    mac.node.modem.stats.rx_busy_time_s = 20.0
    power = PowerModel(tx_w=2.0, rx_w=0.8, idle_w=0.08, entry_w=0.0)
    energy = power.node_energy_j(mac, duration_s=100.0)
    assert energy == pytest.approx(0.8 * 20 + 0.08 * 80)


def test_entry_power_counts_neighbor_tables():
    sim = Simulator()
    mac = build_mac(sim)
    mac.node.neighbors.observe(1, 0.5, 0.0)
    mac.node.neighbors.observe(2, 0.5, 0.0)
    power = PowerModel(tx_w=0, rx_w=0, idle_w=0, entry_w=0.001)
    assert power.node_energy_j(mac, 100.0) == pytest.approx(0.001 * 2 * 100)


def test_two_hop_tables_increase_energy():
    from repro.mac.csmac import CsMac

    sim = Simulator()
    channel = AcousticChannel(sim)
    node = Node(sim, 0, Position(0, 0, 100), channel)
    timing = make_slot_timing(12_000.0, 64, 1500.0, 1500.0)
    mac = CsMac(sim, node, channel, timing)
    power = PowerModel(tx_w=0, rx_w=0, idle_w=0, entry_w=0.001)
    before = power.node_energy_j(mac, 100.0)
    mac.two_hop.record_announcement(1, [(2, 0.5), (3, 0.4)], now=0.0)
    after = power.node_energy_j(mac, 100.0)
    assert after == pytest.approx(before + 0.001 * 2 * 100)


def test_invalid_duration():
    sim = Simulator()
    mac = build_mac(sim)
    with pytest.raises(ValueError):
        PowerModel().node_energy_j(mac, 0.0)


def test_network_energy_aggregates():
    sim = Simulator()
    macs = [build_mac(sim, node_id=i, pos=Position(i * 100.0, 0, 100)) for i in range(3)]
    power = PowerModel(tx_w=0, rx_w=0, idle_w=0.1, entry_w=0.0)
    report = network_energy(macs, 50.0, power)
    assert report.total_j == pytest.approx(3 * 0.1 * 50)
    assert report.average_power_mw == pytest.approx(300.0)
    assert report.mean_node_power_mw == pytest.approx(100.0)
    assert len(report.per_node_j) == 3


def test_empty_report_mean():
    report = EnergyReport(total_j=0.0, duration_s=10.0, per_node_j=[])
    assert report.mean_node_power_mw == 0.0
