"""Tests for the timeline rendering, asserting the paper's grid claim."""

import pytest

from repro.acoustic.geometry import Position
from repro.core.ewmac import EwMac
from repro.des.simulator import Simulator
from repro.des.trace import Tracer
from repro.experiments.timeline import (
    TimelineEntry,
    extra_exploitation_summary,
    extract_timeline,
    format_timeline,
)
from repro.mac.slots import make_slot_timing
from repro.net.node import Node
from repro.phy.channel import AcousticChannel


def run_triangle(seed):
    sim = Simulator(seed=seed, tracer=Tracer())
    channel = AcousticChannel(sim)
    timing = make_slot_timing(12_000.0, 64, 1500.0, 1500.0)
    positions = [Position(0, 0, 100), Position(0, 450, 100), Position(600, 0, 100)]
    nodes = []
    for node_id, pos in enumerate(positions):
        node = Node(sim, node_id, pos, channel)
        mac = EwMac(sim, node, channel, timing)
        mac.config.hello_window_s = 2.0
        mac.start()
        nodes.append((node, mac))
    nodes[1][0].enqueue_data(0, 2048)
    nodes[2][0].enqueue_data(0, 2048)
    sim.run(until=120.0)
    extras = sum(m.extra_stats.completed for _, m in nodes)
    return sim, timing, extras


@pytest.fixture(scope="module")
def traced_run():
    for seed in range(40):
        sim, timing, extras = run_triangle(seed)
        if extras >= 1:
            return sim, timing
    pytest.fail("no seed exercised the extra path")


def test_extract_skips_hello(traced_run):
    sim, timing = traced_run
    entries = extract_timeline(sim, timing)
    assert entries
    assert all(e.kind != "HELLO" for e in entries)


def test_negotiated_frames_on_grid_extras_off(traced_run):
    """The paper's Sec. 4.1 rule, checked mechanically."""
    sim, timing = traced_run
    summary = extra_exploitation_summary(extract_timeline(sim, timing))
    assert summary["negotiated_on_grid"] >= 4  # RTS, CTS, DATA, ACK at least
    assert summary["negotiated_off_grid"] == 0
    assert summary["extra_off_grid"] >= 4      # EXR, EXC, EXDATA, EXACK
    assert summary["extra_on_grid"] == 0


def test_entries_sorted_by_time(traced_run):
    sim, timing = traced_run
    entries = extract_timeline(sim, timing)
    times = [e.time for e in entries]
    assert times == sorted(times)


def test_format_timeline_readable(traced_run):
    sim, timing = traced_run
    entries = extract_timeline(sim, timing)
    text = format_timeline(entries, labels={0: "hub"})
    assert "hub" in text
    assert "on-grid" in text
    assert "sends RTS" in text


def test_entry_properties():
    entry = TimelineEntry(time=4.02, slot=4, slot_offset=0.0, node=1, frame="RTS 1->0")
    assert entry.on_grid
    assert entry.kind == "RTS"
    off = TimelineEntry(time=4.52, slot=4, slot_offset=0.5, node=1, frame="EXR 1->0")
    assert not off.on_grid
