"""Tests for the ablation runners and clock-skew injection."""

import pytest

from repro.experiments import Scenario, table2_config
from repro.experiments.ablations import ALL_ABLATIONS


class TestClockSkewInjection:
    def test_zero_skew_gives_perfect_clocks(self):
        scenario = Scenario(table2_config(n_sensors=10, sim_time_s=10.0))
        assert all(n.clock.perfect for n in scenario.nodes)

    def test_skew_offsets_are_injected(self):
        scenario = Scenario(
            table2_config(n_sensors=10, sim_time_s=10.0, clock_offset_std_s=0.05)
        )
        offsets = [n.clock.offset_s for n in scenario.nodes]
        assert any(o != 0.0 for o in offsets)
        # plausible normal draws around 0 with std 0.05
        assert max(abs(o) for o in offsets) < 0.5

    def test_skewed_network_still_runs(self):
        result = Scenario(
            table2_config(
                n_sensors=15,
                sim_time_s=40.0,
                offered_load_kbps=0.6,
                clock_offset_std_s=0.02,
                seed=4,
            )
        ).run_steady_state()
        assert result.throughput_kbps >= 0.0

    def test_large_skew_hurts_throughput(self):
        """Slot misalignment beyond omega must cost real throughput."""
        base = []
        skewed = []
        for seed in (1, 2, 3):
            base.append(
                Scenario(
                    table2_config(
                        n_sensors=25, sim_time_s=120.0, offered_load_kbps=0.8, seed=seed
                    )
                ).run_steady_state().throughput_kbps
            )
            skewed.append(
                Scenario(
                    table2_config(
                        n_sensors=25,
                        sim_time_s=120.0,
                        offered_load_kbps=0.8,
                        seed=seed,
                        clock_offset_std_s=0.3,
                    )
                ).run_steady_state().throughput_kbps
            )
        assert sum(skewed) < sum(base)


class TestAblationRunners:
    def test_registry_ids_match_figure_ids(self):
        for ablation_id, runner in ALL_ABLATIONS.items():
            assert ablation_id.startswith("abl-")

    @pytest.mark.slow
    @pytest.mark.parametrize("ablation_id", sorted(ALL_ABLATIONS))
    def test_quick_mode_runs(self, ablation_id):
        data = ALL_ABLATIONS[ablation_id](quick=True)
        assert data.figure_id == ablation_id
        assert data.x_values
        for name, series in data.series.items():
            assert len(series) == len(data.x_values), name
            assert all(v >= 0.0 for v in series)


class TestCliIntegration:
    def test_cli_accepts_ablation_targets(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(["abl-clock-skew", "--quick"])
        assert args.target == "abl-clock-skew"

    def test_cli_chart_flag(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(["fig6", "--chart"])
        assert args.chart
