"""Tests for paper-reference data and the comparison report generator."""

import pytest

from repro.experiments.comparison import (
    MeasuredFigure,
    build_comparison_markdown,
    check_claims,
    comparison_table,
    load_measured,
)
from repro.experiments.paper_reference import (
    PAPER_FIGURES,
    PROTOCOLS,
    orderings_at,
    paper_series,
)


class TestPaperReference:
    def test_every_paper_figure_present(self):
        assert set(PAPER_FIGURES) == {
            "fig6", "fig7", "fig8", "fig9a", "fig9b", "fig10a", "fig10b", "fig11",
        }

    def test_series_lengths_match_axes(self):
        for figure in PAPER_FIGURES.values():
            for protocol in PROTOCOLS:
                assert len(figure.series[protocol]) == len(figure.x_values)

    def test_fig6_encodes_the_crossover(self):
        """Paper claim: CS best at 0.6, EW best at 1.0."""
        assert orderings_at("fig6", 0.6)[-1] == "CS-MAC"
        assert orderings_at("fig6", 1.0)[-1] == "EW-MAC"

    def test_fig9_encodes_power_ordering(self):
        assert orderings_at("fig9a", 0.8) == ["EW-MAC", "S-FAMA", "CS-MAC", "ROPA"]

    def test_fig10_encodes_overhead_ordering(self):
        assert orderings_at("fig10a", 100) == ["S-FAMA", "ROPA", "EW-MAC", "CS-MAC"]

    def test_paper_series_lookup(self):
        assert paper_series("fig6", "EW-MAC")[-1] == pytest.approx(0.365)


class TestComparison:
    def _measured(self):
        return MeasuredFigure(
            "fig6",
            [0.1, 0.2, 0.4, 0.6, 0.8, 1.0],
            {
                "S-FAMA": [0.17, 0.33, 0.40, 0.43, 0.44, 0.38],
                "ROPA": [0.16, 0.33, 0.41, 0.44, 0.47, 0.48],
                "CS-MAC": [0.16, 0.32, 0.51, 0.62, 0.60, 0.62],
                "EW-MAC": [0.17, 0.33, 0.47, 0.48, 0.49, 0.50],
            },
        )

    def test_comparison_table_pairs_values(self):
        table = comparison_table(PAPER_FIGURES["fig6"], self._measured())
        assert "0.365 / 0.5" in table  # paper vs ours at 1.0 for EW-MAC
        assert table.count("|") > 10

    def test_check_claims_fig6(self):
        checks = check_claims("fig6", self._measured())
        by_claim = {c.claim: c for c in checks}
        assert by_claim["EW-MAC >= S-FAMA at the highest load"].holds
        # CS-MAC still leads at the top load in this sample: EW claim fails
        assert not by_claim["EW-MAC leads at the highest load"].holds

    def test_load_measured_roundtrip(self, tmp_path):
        path = tmp_path / "fig6.csv"
        path.write_text(
            "Offered load (kbps),S-FAMA,EW-MAC\n0.2,0.3,0.31\n0.4,0.4,0.45\n"
        )
        measured = load_measured(path)
        assert measured.figure_id == "fig6"
        assert measured.x_values == [0.2, 0.4]
        assert measured.series["EW-MAC"] == [0.31, 0.45]

    def test_build_markdown_handles_missing_files(self, tmp_path):
        text = build_comparison_markdown(tmp_path)
        assert "no measured data" in text

    def test_build_markdown_with_one_csv(self, tmp_path):
        (tmp_path / "fig6.csv").write_text(
            "Offered load (kbps),S-FAMA,ROPA,CS-MAC,EW-MAC\n"
            "0.1,0.17,0.16,0.16,0.17\n"
            "1.0,0.38,0.48,0.62,0.50\n"
        )
        text = build_comparison_markdown(tmp_path)
        assert "### fig6" in text
        assert "[PASS]" in text or "[FAIL]" in text
