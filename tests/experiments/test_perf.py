"""Tests for the perf instrumentation layer (repro.perf + CLI --profile)."""

import pytest

from repro.experiments.cli import main
from repro.experiments.config import table2_config
from repro.experiments.scenario import run_scenario
from repro.perf import GLOBAL_PERF, PerfAccumulator, PerfReport


def make_report(**overrides):
    base = dict(
        sim_time_s=300.0,
        wall_time_s=2.0,
        events=100_000,
        broadcasts=4_000,
        deliveries=20_000,
        out_of_range_skips=1_000,
        cache_hits=18_000,
        cache_misses=2_000,
    )
    base.update(overrides)
    return PerfReport(**base)


class TestPerfReport:
    def test_derived_rates(self):
        report = make_report()
        assert report.events_per_second == pytest.approx(50_000.0)
        assert report.broadcasts_per_second == pytest.approx(2_000.0)
        assert report.cache_hit_rate == pytest.approx(0.9)
        assert report.speedup_factor == pytest.approx(150.0)

    def test_zero_wall_time_is_safe(self):
        report = make_report(wall_time_s=0.0, cache_hits=0, cache_misses=0)
        assert report.events_per_second == 0.0
        assert report.broadcasts_per_second == 0.0
        assert report.cache_hit_rate == 0.0
        assert report.speedup_factor == 0.0

    def test_to_dict_round_trip(self):
        data = make_report().to_dict()
        assert data["events"] == 100_000
        assert data["cache_hit_rate"] == pytest.approx(0.9)
        assert all(isinstance(v, (int, float)) for v in data.values())

    def test_summary_lines_mention_key_counters(self):
        text = "\n".join(make_report().summary_lines())
        assert "events" in text
        assert "link cache" in text
        assert "90.0%" in text

    def test_capture_from_scenario_run(self):
        result = run_scenario(table2_config(sim_time_s=20.0, seed=3))
        perf = result.perf
        assert perf is not None
        assert perf.sim_time_s == pytest.approx(20.0)
        assert perf.wall_time_s > 0.0
        assert perf.events > 0
        assert perf.broadcasts > 0
        assert perf.cache_hits + perf.cache_misses > 0

    def test_bulk_and_inreach_counters_surface(self):
        report = make_report(
            rows_skipped_inreach=7, bulk_pushes=3, bulk_events=42
        )
        data = report.to_dict()
        assert data["rows_skipped_inreach"] == 7
        assert data["bulk_pushes"] == 3
        assert data["bulk_events"] == 42
        text = "\n".join(report.summary_lines())
        assert "7 in-reach skips" in text
        assert "bulk schedule: 3 pushes, 42 events (14.0 per push)" in text

    def test_capture_counts_bulk_fanout_on_mobile_run(self):
        result = run_scenario(
            table2_config(sim_time_s=20.0, seed=3, mobility=True)
        )
        perf = result.perf
        assert perf.bulk_pushes > 0
        assert perf.bulk_events >= perf.bulk_pushes
        assert perf.rows_skipped_inreach > 0

    def test_perf_excluded_from_to_dict(self):
        # Figure metrics must stay machine-independent and identical with
        # the cache on/off; wall time in to_dict would break both.
        result = run_scenario(table2_config(sim_time_s=20.0, seed=3))
        assert not any("wall" in key or "cache" in key for key in result.to_dict())


class TestPerfAccumulator:
    def test_merge_adds_counters_and_recomputes_rates(self):
        acc = PerfAccumulator()
        acc.add(make_report(bulk_pushes=2, bulk_events=10, rows_skipped_inreach=5))
        acc.add(
            make_report(
                wall_time_s=6.0,
                events=300_000,
                bulk_pushes=3,
                bulk_events=20,
                rows_skipped_inreach=7,
            )
        )
        merged = acc.merged()
        assert acc.runs == 2
        assert merged.events == 400_000
        assert merged.wall_time_s == pytest.approx(8.0)
        assert merged.events_per_second == pytest.approx(50_000.0)
        assert merged.bulk_pushes == 5
        assert merged.bulk_events == 30
        assert merged.rows_skipped_inreach == 12

    def test_empty_accumulator_merges_to_zeros(self):
        merged = PerfAccumulator().merged()
        assert merged.events == 0
        assert merged.events_per_second == 0.0

    def test_reset(self):
        acc = PerfAccumulator()
        acc.add(make_report())
        acc.reset()
        assert acc.runs == 0
        assert acc.merged().events == 0

    def test_global_accumulator_fed_by_scenarios(self):
        GLOBAL_PERF.reset()
        run_scenario(table2_config(sim_time_s=20.0, seed=3))
        run_scenario(table2_config(sim_time_s=20.0, seed=4))
        assert GLOBAL_PERF.runs == 2
        assert GLOBAL_PERF.merged().events > 0


class TestProfileFlag:
    def test_profile_prints_counters_and_hotspots(self, capsys, tmp_path, monkeypatch):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert main(["fig6", "--quick", "--seeds", "1", "--profile"]) == 0
        out = capsys.readouterr().out
        assert "perf counters" in out
        assert "link cache" in out
        assert "cProfile (top 25 by cumulative time)" in out
        assert "cumulative" in out
