"""Tests for the figure runners, sweeps, reporting and CLI."""

import pytest

from repro.experiments.config import table2_config
from repro.experiments.figures import ALL_FIGURES, PAPER_EXPECTATIONS, FigureData
from repro.experiments.report import format_figure, write_csv
from repro.experiments.sweeps import (
    PAPER_PROTOCOLS,
    SweepSpec,
    aggregate,
    aggregate_relative,
    mean,
    run_sweep,
)


def tiny_sweep(metric=lambda r: r.throughput_kbps):
    """A very small sweep for fast structural tests."""
    base = table2_config(n_sensors=10, sim_time_s=20.0)
    spec = SweepSpec(
        x_values=[0.3, 0.6],
        configure=lambda b, x, p, s: b.with_(
            offered_load_kbps=x, protocol=p, seed=s
        ),
    )
    protocols = ("S-FAMA", "EW-MAC")
    results = run_sweep(spec, base, protocols=protocols, seeds=(1,))
    return results, spec, protocols


class TestSweeps:
    def test_mean(self):
        assert mean([1.0, 2.0, 3.0]) == 2.0
        assert mean([]) == 0.0

    def test_run_sweep_covers_grid(self):
        results, spec, protocols = tiny_sweep()
        assert set(results) == {(x, p) for x in spec.x_values for p in protocols}
        for cell in results.values():
            assert len(cell) == 1

    def test_aggregate_shapes(self):
        results, spec, protocols = tiny_sweep()
        series = aggregate(results, spec.x_values, protocols, lambda r: r.throughput_kbps)
        assert set(series) == set(protocols)
        assert all(len(v) == 2 for v in series.values())

    def test_aggregate_relative_baseline_is_one(self):
        results, spec, protocols = tiny_sweep()
        series = aggregate_relative(
            results, spec.x_values, protocols, lambda r: r.overhead_units
        )
        assert series["S-FAMA"] == pytest.approx([1.0, 1.0])

    def test_aggregate_relative_rejects_missing_baseline(self):
        results, spec, protocols = tiny_sweep()
        with pytest.raises(ValueError, match="baseline protocol 'ALOHA'"):
            aggregate_relative(
                results,
                spec.x_values,
                protocols,
                lambda r: r.overhead_units,
                baseline_protocol="ALOHA",
            )

    def test_aggregate_relative_default_baseline_must_be_swept(self):
        results, spec, protocols = tiny_sweep()
        # drop the default S-FAMA baseline from the protocol set
        with pytest.raises(ValueError, match="S-FAMA"):
            aggregate_relative(
                results, spec.x_values, ("EW-MAC",), lambda r: r.overhead_units
            )

    def test_progress_callback_called(self):
        messages = []
        base = table2_config(n_sensors=8, sim_time_s=10.0)
        spec = SweepSpec(
            x_values=[0.5],
            configure=lambda b, x, p, s: b.with_(offered_load_kbps=x, protocol=p, seed=s),
        )
        run_sweep(spec, base, protocols=("S-FAMA",), seeds=(1,), progress=messages.append)
        assert len(messages) == 1


class TestFigureRunners:
    def test_registry_covers_every_figure(self):
        assert set(ALL_FIGURES) == {
            "fig6", "fig7", "fig8", "fig9a", "fig9b", "fig10a", "fig10b", "fig11",
        }
        assert set(PAPER_EXPECTATIONS) == set(ALL_FIGURES)

    @pytest.mark.slow
    @pytest.mark.parametrize("figure_id", sorted(ALL_FIGURES))
    def test_quick_mode_produces_full_series(self, figure_id):
        data = ALL_FIGURES[figure_id](quick=True)
        assert isinstance(data, FigureData)
        assert data.figure_id == figure_id
        assert set(data.series) == set(PAPER_PROTOCOLS)
        for series in data.series.values():
            assert len(series) == len(data.x_values)
        assert data.notes


class TestReporting:
    def _data(self):
        return FigureData(
            figure_id="figX",
            title="Example",
            x_label="Load",
            y_label="Throughput",
            x_values=[0.1, 0.2],
            series={"S-FAMA": [1.0, 2.0], "EW-MAC": [1.5, 2.5]},
            notes="paper says something",
        )

    def test_format_figure_contains_everything(self):
        text = format_figure(self._data())
        assert "figX" in text and "Example" in text
        assert "S-FAMA" in text and "EW-MAC" in text
        assert "2.5" in text
        assert "paper says" in text

    def test_value_lookup(self):
        data = self._data()
        assert data.value("EW-MAC", 0.2) == 2.5
        with pytest.raises(ValueError):
            data.value("EW-MAC", 9.9)

    def test_write_csv_roundtrip(self, tmp_path):
        path = write_csv(self._data(), tmp_path / "sub" / "figX.csv")
        content = path.read_text().strip().splitlines()
        assert content[0] == "Load,S-FAMA,EW-MAC"
        assert content[1] == "0.1,1.0,1.5"
        assert content[2] == "0.2,2.0,2.5"


class TestCli:
    def test_table2_prints(self, capsys):
        from repro.experiments.cli import main

        assert main(["table2"]) == 0
        out = capsys.readouterr().out
        assert "Table 2" in out
        assert "number_of_sensors" in out

    def test_parser_rejects_unknown_target(self):
        from repro.experiments.cli import build_parser

        with pytest.raises(SystemExit):
            build_parser().parse_args(["nonsense"])

    def test_parser_accepts_options(self):
        from repro.experiments.cli import build_parser

        args = build_parser().parse_args(["fig6", "--quick", "--seeds", "2"])
        assert args.target == "fig6" and args.quick and args.seeds == 2
