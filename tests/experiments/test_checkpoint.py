"""Checkpoint/resume: bit-identity, format guards, uid floors, cell files.

The contract under test is absolute: a run interrupted at any checkpoint
and resumed — in this process or a fresh one — produces a result
byte-for-byte identical to the uninterrupted run.  Anything weaker would
let the recovery machinery silently change figures.
"""

from __future__ import annotations

import json
import os
import pickle
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.cache import cell_key, code_version
from repro.experiments.checkpoint import (
    MAGIC,
    SNAPSHOT_VERSION,
    CheckpointError,
    read_checkpoint,
    restore_scenario,
    snapshot_scenario,
    write_checkpoint,
)
from repro.experiments.config import table2_config
from repro.experiments.parallel import execute_cell, expand_cells
from repro.experiments.scenario import Scenario
from repro.experiments.sweeps import SweepSpec
from repro.net.node import sample_request_uid_floor
from repro.phy.frame import sample_frame_uid_floor


def _quick_config(**overrides):
    defaults = dict(n_sensors=8, sim_time_s=10.0, side_m=3000.0, seed=3)
    defaults.update(overrides)
    return table2_config(**defaults)


class _Interrupt(Exception):
    """Raised by checkpoint hooks to simulate dying mid-run."""


def _snapshot_at(config, nth: int, run):
    """Run until the nth checkpoint, capture it, and abandon the run."""
    taken = []

    def hook(scenario: Scenario) -> None:
        taken.append(scenario.snapshot())
        if len(taken) >= nth:
            raise _Interrupt

    scenario = Scenario(config)
    with pytest.raises(_Interrupt):
        run(scenario, hook)
    return taken[-1]


class TestBitIdentity:
    def test_steady_state_resume_is_bit_identical(self):
        config = _quick_config()
        baseline = Scenario(config).run_steady_state().to_dict()
        blob = _snapshot_at(
            config, 2, lambda s, hook: s.run_steady_state(3.0, hook)
        )
        resumed = Scenario.restore(blob).resume().to_dict()
        assert resumed == baseline

    def test_batch_resume_reports_identical_drain_time(self):
        config = _quick_config(max_retries=100)
        baseline = Scenario(config).run_batch(4, 600.0).to_dict()
        assert "drain_time_s" in baseline
        blob = _snapshot_at(
            config, 1, lambda s, hook: s.run_batch(4, 600.0, 5.0, hook)
        )
        resumed = Scenario.restore(blob).resume().to_dict()
        assert resumed == baseline

    def test_checkpointing_on_without_interruption_changes_nothing(self):
        config = _quick_config()
        plain = Scenario(config).run_steady_state()
        checkpointed = Scenario(config).run_steady_state(2.0)
        assert checkpointed.to_dict() == plain.to_dict()
        assert checkpointed.perf.checkpoints_taken > 0
        assert plain.perf.checkpoints_taken == 0

    def test_restore_in_fresh_process_is_bit_identical(self, tmp_path):
        config = _quick_config(n_sensors=6, sim_time_s=6.0)
        baseline = Scenario(config).run_steady_state().to_dict()
        blob = _snapshot_at(
            config, 1, lambda s, hook: s.run_steady_state(2.0, hook)
        )
        blob_path = tmp_path / "mid.ckpt"
        blob_path.write_bytes(blob)
        script = tmp_path / "resume_child.py"
        script.write_text(
            "import json, pathlib, sys\n"
            "from repro.experiments.scenario import Scenario\n"
            "blob = pathlib.Path(sys.argv[1]).read_bytes()\n"
            "result = Scenario.restore(blob).resume()\n"
            "print(json.dumps(result.to_dict()))\n"
        )
        env = dict(os.environ)
        src = str(Path(__file__).resolve().parents[2] / "src")
        env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
        completed = subprocess.run(
            [sys.executable, str(script), str(blob_path)],
            capture_output=True,
            text=True,
            env=env,
            timeout=300,
        )
        assert completed.returncode == 0, completed.stderr
        assert json.loads(completed.stdout) == json.loads(json.dumps(baseline))


class TestFormatGuards:
    def _blob(self):
        return _snapshot_at(
            _quick_config(n_sensors=6, sim_time_s=4.0),
            1,
            lambda s, hook: s.run_steady_state(2.0, hook),
        )

    def test_bad_magic_rejected(self):
        with pytest.raises(CheckpointError, match="magic"):
            restore_scenario(b"NOT-A-CHECKPOINT" + b"\x00" * 32)

    def test_truncated_blob_rejected(self):
        blob = self._blob()
        with pytest.raises(CheckpointError):
            restore_scenario(blob[: len(blob) // 2])

    def test_wrong_snapshot_version_rejected(self):
        blob = self._blob()
        payload = pickle.loads(blob[len(MAGIC):])
        payload["version"] = SNAPSHOT_VERSION + 1
        forged = MAGIC + pickle.dumps(payload)
        with pytest.raises(CheckpointError, match="version"):
            restore_scenario(forged)

    def test_code_drift_rejected_unless_overridden(self):
        blob = self._blob()
        payload = pickle.loads(blob[len(MAGIC):])
        payload["code"] = "0123456789abcdef"
        forged = MAGIC + pickle.dumps(payload)
        with pytest.raises(CheckpointError, match="different simulation code"):
            restore_scenario(forged)
        scenario = restore_scenario(forged, check_code=False)
        assert scenario.resumes == 1

    def test_resume_without_plan_refuses(self):
        with pytest.raises(RuntimeError, match="never started"):
            Scenario(_quick_config()).resume()

    def test_snapshot_carries_current_code_version(self):
        blob = self._blob()
        payload = pickle.loads(blob[len(MAGIC):])
        assert payload["code"] == code_version()


class TestUidFloors:
    def test_restore_advances_uid_counters_past_snapshot(self):
        blob = _snapshot_at(
            _quick_config(n_sensors=6, sim_time_s=4.0),
            1,
            lambda s, hook: s.run_steady_state(2.0, hook),
        )
        payload = pickle.loads(blob[len(MAGIC):])
        restore_scenario(blob)
        # Fresh draws after the restore can never collide with any uid
        # the snapshotted run already issued.
        assert sample_request_uid_floor() > payload["request_uid_floor"]
        assert sample_frame_uid_floor() > payload["frame_uid_floor"]


class TestCheckpointFiles:
    def test_write_read_round_trip(self, tmp_path):
        config = _quick_config(n_sensors=6, sim_time_s=4.0)
        baseline = Scenario(config).run_steady_state().to_dict()

        def hook(scenario: Scenario) -> None:
            write_checkpoint(tmp_path / "cell.ckpt", scenario)
            raise _Interrupt

        with pytest.raises(_Interrupt):
            Scenario(config).run_steady_state(2.0, hook)
        restored = read_checkpoint(tmp_path / "cell.ckpt")
        assert restored.resumes == 1
        assert restored.resume().to_dict() == baseline

    def test_corrupt_file_raises_checkpoint_error(self, tmp_path):
        path = tmp_path / "bad.ckpt"
        path.write_bytes(b"garbage")
        with pytest.raises(CheckpointError):
            read_checkpoint(path)
        with pytest.raises(CheckpointError, match="cannot read"):
            read_checkpoint(tmp_path / "missing.ckpt")

    def test_execute_cell_resumes_and_cleans_up(self, tmp_path):
        spec = SweepSpec(
            x_values=[0.4],
            configure=lambda base, x, protocol, seed: base.with_(
                offered_load_kbps=x, protocol=protocol, seed=seed
            ),
        )
        cell = expand_cells(spec, _quick_config(), ("EW-MAC",), (1,))[0]
        baseline = execute_cell(cell).to_dict()

        # Die mid-run after writing one checkpoint for this exact cell.
        key = cell_key(cell.config, cell.batch, code_version())
        ckpt = tmp_path / f"{key}.ckpt"

        def hook(scenario: Scenario) -> None:
            write_checkpoint(ckpt, scenario)
            raise _Interrupt

        with pytest.raises(_Interrupt):
            Scenario(cell.config).run_steady_state(3.0, hook)
        assert ckpt.exists()

        result = execute_cell(
            cell, checkpoint_path=ckpt, checkpoint_every_s=3.0
        )
        assert result.to_dict() == baseline
        assert result.perf.resumes == 1
        assert not ckpt.exists()  # consumed on success

    def test_execute_cell_ignores_checkpoint_for_other_config(self, tmp_path):
        spec = SweepSpec(
            x_values=[0.4],
            configure=lambda base, x, protocol, seed: base.with_(
                offered_load_kbps=x, protocol=protocol, seed=seed
            ),
        )
        mine, other = expand_cells(spec, _quick_config(), ("EW-MAC",), (1, 2))

        def hook(scenario: Scenario) -> None:
            write_checkpoint(tmp_path / "wrong.ckpt", scenario)
            raise _Interrupt

        with pytest.raises(_Interrupt):
            Scenario(other.config).run_steady_state(3.0, hook)
        baseline = execute_cell(mine).to_dict()
        # A checkpoint whose config is not exactly this cell's config is
        # ignored: the cell reruns from zero with an identical result.
        result = execute_cell(mine, checkpoint_path=tmp_path / "wrong.ckpt")
        assert result.to_dict() == baseline
        assert result.perf.resumes == 0
