"""Tests for EXPERIMENTS.md assembly and the report CLI target."""


import pytest

from repro.experiments.experiments_doc import build_experiments_md


@pytest.fixture
def results_dir(tmp_path):
    (tmp_path / "fig6.csv").write_text(
        "Offered load (kbps),S-FAMA,ROPA,CS-MAC,EW-MAC\n"
        "0.1,0.17,0.16,0.16,0.17\n"
        "0.6,0.43,0.44,0.62,0.48\n"
        "1.0,0.38,0.48,0.62,0.50\n"
    )
    (tmp_path / "fig11.csv").write_text(
        "Offered load (kbps),S-FAMA,ROPA,CS-MAC,EW-MAC\n"
        "0.1,1.0,0.9,0.8,1.0\n"
        "1.0,1.0,0.7,0.5,1.27\n"
    )
    return tmp_path


def test_document_structure(results_dir):
    text = build_experiments_md(results_dir)
    assert text.startswith("# EXPERIMENTS")
    assert "## Summary of reproduction status" in text
    assert "Known divergences" in text
    assert "### fig6" in text
    assert "### fig11" in text
    # figures without CSVs are marked missing, not dropped
    assert text.count("no measured data") == 6


def test_mechanical_checks_present(results_dir):
    text = build_experiments_md(results_dir)
    assert "[PASS]" in text
    assert "EW-MAC index above 1 at high load" in text


def test_cli_report_roundtrip(results_dir, tmp_path, capsys):
    from repro.experiments.cli import main

    out = tmp_path / "EXP.md"
    assert main(["report", "--csv", str(results_dir), "--out", str(out)]) == 0
    assert out.exists()
    assert "paper vs measured" in out.read_text()


def test_cli_report_requires_csv(capsys):
    from repro.experiments.cli import main

    assert main(["report"]) == 2
