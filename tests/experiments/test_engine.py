"""The pure engine layer: purity, request keys, and service equivalence."""

from __future__ import annotations

import json
import os
import subprocess
import sys
from pathlib import Path

import pytest

from repro.experiments.engine import (
    EngineError,
    SweepRequest,
    apply_overrides,
    observe_sweeps,
    request_key,
    request_plan,
    run_request,
    service_targets,
)
from repro.experiments.figures import fig6

SRC = Path(__file__).resolve().parents[2] / "src"

#: Small enough for tier-1: 12 cells of a 6-node, 3-second scenario.
TINY = {"n_sensors": 6, "sim_time_s": 3.0, "warmup_s": 2.0}


def test_importing_engine_is_pure(tmp_path):
    """Importing the engine writes nothing, prints nothing, reads no argv."""
    code = (
        "import sys\n"
        "sys.argv = ['weird-binary', '--definitely-not-a-flag', 'fig999']\n"
        "import repro.experiments.engine\n"
        "import repro.experiments\n"
    )
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env["PYTHONDONTWRITEBYTECODE"] = "1"
    result = subprocess.run(
        [sys.executable, "-c", code],
        cwd=tmp_path,
        env=env,
        capture_output=True,
        text=True,
        timeout=60,
    )
    assert result.returncode == 0, result.stderr
    assert result.stdout == ""
    assert result.stderr == ""
    assert list(tmp_path.iterdir()) == [], "import created files in cwd"


class TestSweepRequest:
    def test_from_dict_normalizes(self):
        request = SweepRequest.from_dict(
            {"target": "fig6", "quick": True, "seeds": [2, 1], "overrides": TINY}
        )
        assert request.target == "fig6"
        assert request.seeds == (2, 1)
        assert dict(request.overrides) == TINY
        round_tripped = SweepRequest.from_dict(request.to_dict())
        assert round_tripped == request

    @pytest.mark.parametrize(
        "payload",
        [
            {},
            {"target": "fig6", "seeds": []},
            {"target": "fig6", "seeds": ["one"]},
            {"target": "fig6", "quick": "yes"},
            {"target": "fig6", "surprise": 1},
            {"target": "fig6", "overrides": {"n": [1, 2]}},
            {"target": "fig6", "overrides": "n_sensors=6"},
        ],
    )
    def test_from_dict_rejects_bad_payloads(self, payload):
        with pytest.raises(EngineError):
            SweepRequest.from_dict(payload)

    def test_unknown_target_rejected_at_planning(self):
        request = SweepRequest(target="fig999", quick=True, seeds=(1,))
        with pytest.raises(EngineError, match="unknown target"):
            request_plan(request)
        with pytest.raises(EngineError, match="unknown target"):
            request_key(request)

    def test_service_targets_cover_figures_and_chaos(self):
        targets = service_targets()
        assert "fig6" in targets
        assert "chaos" in targets
        for target in targets:
            plan = request_plan(SweepRequest(target=target, quick=True, seeds=(1,)))
            assert plan.n_cells > 0


class TestRequestKey:
    def test_stable_under_override_ordering(self):
        a = SweepRequest.from_dict(
            {"target": "fig6", "overrides": {"n_sensors": 6, "sim_time_s": 3.0}}
        )
        b = SweepRequest.from_dict(
            {"target": "fig6", "overrides": {"sim_time_s": 3.0, "n_sensors": 6}}
        )
        assert request_key(a) == request_key(b)

    def test_sensitive_to_target_and_params(self):
        base = {"target": "fig6", "quick": True, "seeds": [1], "overrides": TINY}
        key = request_key(SweepRequest.from_dict(base))
        # fig11 sweeps the same cells but aggregates differently: new key.
        for variant in (
            dict(base, target="fig11"),
            dict(base, quick=False),
            dict(base, seeds=[2]),
            dict(base, overrides=dict(TINY, n_sensors=7)),
        ):
            assert request_key(SweepRequest.from_dict(variant)) != key

    def test_key_shape(self):
        key = request_key(SweepRequest(target="fig6", quick=True, seeds=(1,)))
        assert len(key) == 64
        assert set(key) <= set("0123456789abcdef")


def test_apply_overrides_validates_fields():
    from repro.experiments.config import table2_config

    base = table2_config()
    assert apply_overrides(base, None) is base
    small = apply_overrides(base, {"n_sensors": 6})
    assert small.n_sensors == 6
    with pytest.raises(EngineError, match="unknown config override"):
        apply_overrides(base, {"bogus_field": 1})
    with pytest.raises(EngineError, match="bad config override"):
        apply_overrides(base, {"n_sensors": -5})


def test_run_request_matches_direct_figure_call():
    """The service path must be bit-identical to calling the runner directly."""
    request = SweepRequest.from_dict(
        {"target": "fig6", "quick": True, "seeds": [1], "overrides": TINY}
    )
    result = run_request(request, workers=1, cache=None)
    direct = fig6(seeds=(1,), quick=True, cache=None, overrides=TINY)
    assert json.dumps(result.to_dict()["figure"], sort_keys=True) == json.dumps(
        direct.to_dict(), sort_keys=True
    )
    assert result.failures == []
    assert result.cells_total == 12
    # The whole document round-trips through JSON (the service wire format).
    assert json.loads(json.dumps(result.to_dict())) == result.to_dict()


def test_observer_collects_cache_traffic(tmp_path):
    request = SweepRequest.from_dict(
        {"target": "fig6", "quick": True, "seeds": [1], "overrides": TINY}
    )
    with observe_sweeps() as cold:
        run_request(request, workers=1, cache=tmp_path / "cache")
    assert cold.cache_hits == 0
    assert cold.cache_misses == 12
    assert cold.cache_stores == 12
    with observe_sweeps() as warm:
        run_request(request, workers=1, cache=tmp_path / "cache")
    assert warm.cache_hits == 12
    assert warm.cache_misses == 0
    assert "12 hit(s)" in warm.cache_line()
