"""Unit tests for the experiment configuration and scenario assembly."""

import pytest

from repro.experiments.config import TABLE2, ScenarioConfig, table2_config
from repro.experiments.scenario import Scenario, run_batch_scenario, run_scenario


class TestConfig:
    def test_defaults_match_table2(self):
        config = table2_config()
        assert config.n_sensors == TABLE2["number_of_sensors"] == 60
        assert config.bitrate_bps == TABLE2["bandwidth_kbps"] * 1000
        assert config.comm_range_m == TABLE2["communication_range_km"] * 1000
        assert config.sound_speed_mps == TABLE2["acoustic_speed_km_s"] * 1000
        assert config.sim_time_s == TABLE2["simulation_time_s"]
        assert config.control_bits == TABLE2["control_packet_bits"]
        assert config.data_packet_bits == TABLE2["data_packet_bits_default"]
        lo, hi = TABLE2["data_packet_bits_range"]
        assert lo <= config.data_packet_bits <= hi
        # 1000 km^3 deployment region
        assert (config.side_m / 1000.0) ** 3 == pytest.approx(
            TABLE2["deployment_area_km3"]
        )

    def test_derived_slot_parameters(self):
        config = table2_config()
        assert config.tau_max_s == pytest.approx(1.0)
        assert config.omega_s == pytest.approx(64 / 12_000)
        assert config.slot_s == pytest.approx(1.0 + 64 / 12_000)

    def test_with_overrides(self):
        config = table2_config(offered_load_kbps=0.9, n_sensors=80)
        assert config.offered_load_kbps == 0.9
        assert config.n_sensors == 80
        assert config.sim_time_s == 300.0  # untouched default

    def test_invalid_configs(self):
        with pytest.raises(ValueError):
            ScenarioConfig(n_sensors=0)
        with pytest.raises(ValueError):
            ScenarioConfig(data_packet_bits=0)
        with pytest.raises(ValueError):
            ScenarioConfig(sim_time_s=-1.0)


class TestScenario:
    def _quick(self, **kw):
        defaults = dict(n_sensors=15, sim_time_s=40.0, offered_load_kbps=0.6, seed=3)
        defaults.update(kw)
        return table2_config(**defaults)

    def test_builds_all_components(self):
        scenario = Scenario(self._quick())
        assert len(scenario.nodes) == 16  # 15 sensors + 1 sink
        assert len(scenario.macs) == 16
        assert scenario.nodes[0].is_sink
        assert scenario.deployment.is_connected()

    @pytest.mark.parametrize("protocol", ["S-FAMA", "ROPA", "CS-MAC", "EW-MAC"])
    def test_every_protocol_runs_and_carries_traffic(self, protocol):
        result = run_scenario(self._quick(protocol=protocol))
        assert result.protocol == protocol
        assert result.throughput_kbps > 0.0
        assert result.power_mw > 0.0
        assert result.overhead_units > 0.0
        assert result.offered_bits > 0

    def test_same_seed_is_reproducible(self):
        a = run_scenario(self._quick())
        b = run_scenario(self._quick())
        assert a.throughput_kbps == b.throughput_kbps
        assert a.energy.total_j == b.energy.total_j
        assert a.collisions == b.collisions

    def test_different_seeds_differ(self):
        a = run_scenario(self._quick(seed=1))
        b = run_scenario(self._quick(seed=2))
        assert a.throughput_kbps != b.throughput_kbps

    def test_forwarding_relays_toward_sink(self):
        result = run_scenario(self._quick(sim_time_s=80.0))
        scenario_sink_delivered = result.throughput.total_bits
        assert scenario_sink_delivered > 0

    def test_forwarding_can_be_disabled(self):
        with_fw = run_scenario(self._quick(sim_time_s=80.0, forwarding=True))
        without_fw = run_scenario(self._quick(sim_time_s=80.0, forwarding=False))
        # multi-hop relaying multiplies MAC-level receptions (Eq. 2)
        assert with_fw.throughput.total_bits >= without_fw.throughput.total_bits

    def test_mobility_can_be_disabled(self):
        scenario = Scenario(self._quick(mobility=False))
        assert scenario.mobility is None

    def test_batch_mode_records_execution(self):
        result = run_batch_scenario(self._quick(), n_packets=5, max_time_s=400.0)
        assert result.execution is not None
        assert result.execution.injected == 5
        if not result.execution.timed_out:
            assert result.execution.drain_time_s > 0
            assert result.execution.completed >= 5

    def test_scenario_cannot_start_twice(self):
        scenario = Scenario(self._quick())
        scenario.run_steady_state()
        with pytest.raises(RuntimeError):
            scenario.run_steady_state()
