"""Tests for the parallel sweep engine and the on-disk result cache."""

from __future__ import annotations

import os
import time

from repro.des.errors import WallClockExceeded
from repro.experiments.cache import ResultCache, cell_key, code_version
from repro.experiments.config import table2_config
from repro.experiments.parallel import (
    ParallelSweepRunner,
    SweepCell,
    expand_cells,
    execute_cell,
)
from repro.experiments.sweeps import SweepSpec, run_sweep


def _configure(base, x, protocol, seed):
    return base.with_(offered_load_kbps=x, protocol=protocol, seed=seed)


def _quick_base(**overrides):
    defaults = dict(n_sensors=10, sim_time_s=15.0, side_m=3000.0)
    defaults.update(overrides)
    return table2_config(**defaults)


def _quick_spec(x_values=(0.2, 0.6), batch=None):
    return SweepSpec(x_values=list(x_values), configure=_configure, batch=batch)


PROTOCOLS = ("S-FAMA", "EW-MAC")
SEEDS = (1, 2)


def _grid_dicts(grid):
    """Per-cell, per-seed flat summaries keyed like the grid."""
    return {
        key: [result.to_dict() for result in cell] for key, cell in grid.items()
    }


class TestExpandCells:
    def test_serial_loop_order_and_indices(self):
        cells = expand_cells(_quick_spec(), _quick_base(), PROTOCOLS, SEEDS)
        assert len(cells) == 8
        assert [cell.index for cell in cells] == list(range(8))
        # x-major, then protocol, then seed: the serial loop's order
        assert [(c.x, c.protocol, c.seed) for c in cells[:3]] == [
            (0.2, "S-FAMA", 1),
            (0.2, "S-FAMA", 2),
            (0.2, "EW-MAC", 1),
        ]

    def test_configs_resolved_in_parent(self):
        cells = expand_cells(_quick_spec(), _quick_base(), PROTOCOLS, SEEDS)
        for cell in cells:
            assert cell.config.offered_load_kbps == cell.x
            assert cell.config.protocol == cell.protocol
            assert cell.config.seed == cell.seed
            assert cell.batch is None

    def test_batch_params_evaluated(self):
        spec = _quick_spec(x_values=(0.1,), batch=lambda x, config: (3, 600.0))
        cells = expand_cells(spec, _quick_base(), ("EW-MAC",), (1,))
        assert cells[0].batch == (3, 600.0)

    def test_cells_are_picklable(self):
        import pickle

        cells = expand_cells(_quick_spec(), _quick_base(), PROTOCOLS, SEEDS)
        clone = pickle.loads(pickle.dumps(cells[0]))
        assert clone == cells[0]


class TestSerialParallelEquivalence:
    def test_workers4_matches_serial_per_cell_per_seed(self):
        spec, base = _quick_spec(), _quick_base()
        serial = run_sweep(spec, base, protocols=PROTOCOLS, seeds=SEEDS)
        parallel = run_sweep(
            spec, base, protocols=PROTOCOLS, seeds=SEEDS, workers=4
        )
        assert list(serial) == list(parallel)  # same insertion order
        assert _grid_dicts(serial) == _grid_dicts(parallel)

    def test_batch_mode_matches_serial(self):
        spec = _quick_spec(x_values=(0.1,), batch=lambda x, config: (3, 600.0))
        base = _quick_base(max_retries=100)
        serial = run_sweep(spec, base, protocols=("EW-MAC",), seeds=(1,))
        parallel = run_sweep(
            spec, base, protocols=("EW-MAC",), seeds=(1,), workers=2
        )
        assert _grid_dicts(serial) == _grid_dicts(parallel)

    def test_engine_with_one_worker_matches_serial(self):
        spec, base = _quick_spec(x_values=(0.4,)), _quick_base()
        serial = run_sweep(spec, base, protocols=PROTOCOLS, seeds=(1,))
        runner = ParallelSweepRunner(workers=1)
        engine = runner.run(spec, base, protocols=PROTOCOLS, seeds=(1,))
        assert _grid_dicts(serial) == _grid_dicts(engine)

    def test_progress_reports_every_cell_with_wall_clock(self):
        messages = []
        run_sweep(
            _quick_spec(x_values=(0.4,)),
            _quick_base(),
            protocols=("EW-MAC",),
            seeds=SEEDS,
            workers=2,
            progress=messages.append,
        )
        assert len(messages) == 2
        assert all("done in" in message for message in messages)


class TestResultCache:
    def test_warm_rerun_executes_zero_scenarios(self, tmp_path, monkeypatch):
        spec, base = _quick_spec(), _quick_base()
        cache = ResultCache(tmp_path / "cache")
        cold = run_sweep(
            spec, base, protocols=PROTOCOLS, seeds=SEEDS, cache=cache
        )
        assert cache.stats.misses == 8 and cache.stats.stores == 8

        def boom(cell, wall_budget_s=None):
            raise AssertionError(f"cache-hit rerun executed {cell.label}")

        monkeypatch.setattr("repro.experiments.parallel.execute_cell", boom)
        warm_cache = ResultCache(tmp_path / "cache")
        warm = run_sweep(
            spec, base, protocols=PROTOCOLS, seeds=SEEDS, cache=warm_cache
        )
        assert warm_cache.stats.hits == 8 and warm_cache.stats.misses == 0
        assert _grid_dicts(cold) == _grid_dicts(warm)

    def test_cache_results_match_uncached(self, tmp_path):
        spec, base = _quick_spec(x_values=(0.4,)), _quick_base()
        plain = run_sweep(spec, base, protocols=("EW-MAC",), seeds=(1,))
        cached = run_sweep(
            spec,
            base,
            protocols=("EW-MAC",),
            seeds=(1,),
            cache=ResultCache(tmp_path / "cache"),
        )
        assert _grid_dicts(plain) == _grid_dicts(cached)

    def test_key_covers_config_batch_and_code_version(self):
        config = _quick_base()
        key = cell_key(config, None)
        assert key == cell_key(config, None)  # stable
        assert key != cell_key(config.with_(seed=2), None)
        assert key != cell_key(config, (3, 600.0))
        assert key != cell_key(config, None, version="different-code")

    def test_corrupt_entry_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        config = _quick_base(n_sensors=5, sim_time_s=5.0)
        key = cell_key(config, None)
        path = cache._path(key)
        path.parent.mkdir(parents=True)
        path.write_bytes(b"not a pickle")
        assert cache.get(key) is None
        assert cache.stats.misses == 1
        assert not path.exists()  # corrupt entry dropped

    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        cell = expand_cells(
            _quick_spec(x_values=(0.2,)), _quick_base(), ("EW-MAC",), (1,)
        )[0]
        result = execute_cell(cell)
        key = cell_key(cell.config, cell.batch)
        cache.put(key, result)
        loaded = cache.get(key)
        assert loaded is not None
        assert loaded.to_dict() == result.to_dict()
        assert len(cache) == 1
        assert cache.clear() == 1

    def test_code_version_is_stable_within_process(self):
        assert code_version() == code_version()
        assert len(code_version()) == 16


# Fault-injection pool workers for TestRecovery.  They must be
# module-level (ProcessPoolExecutor pickles the callable by reference
# even with a fork context) and are installed via monkeypatch with
# mp_context="fork" so the children see the patched module state.
from repro.experiments.parallel import _pool_worker as _real_pool_worker


def _crashing_worker(cell, wall_budget_s):
    if cell.index == 1:
        raise RuntimeError("synthetic worker crash")
    return _real_pool_worker(cell, wall_budget_s)


def _timing_out_worker(cell, wall_budget_s):
    if cell.index == 0:
        raise WallClockExceeded("synthetic cell timeout")
    return _real_pool_worker(cell, wall_budget_s)


class TestRecovery:
    def test_crashed_worker_cell_is_requeued_serially(self, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "_pool_worker", _crashing_worker)
        spec, base = _quick_spec(x_values=(0.4,)), _quick_base()
        serial = run_sweep(spec, base, protocols=PROTOCOLS, seeds=(1,))
        runner = ParallelSweepRunner(workers=2, mp_context="fork")
        recovered = runner.run(spec, base, protocols=PROTOCOLS, seeds=(1,))
        assert [cell.index for cell in runner.requeued] == [1]
        assert _grid_dicts(serial) == _grid_dicts(recovered)

    def test_timed_out_cell_is_requeued_serially(self, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "_pool_worker", _timing_out_worker)
        spec, base = _quick_spec(x_values=(0.4,)), _quick_base()
        serial = run_sweep(spec, base, protocols=PROTOCOLS, seeds=(1,))
        runner = ParallelSweepRunner(
            workers=2, mp_context="fork", cell_timeout_s=120.0
        )
        recovered = runner.run(spec, base, protocols=PROTOCOLS, seeds=(1,))
        assert [cell.index for cell in runner.requeued] == [0]
        assert _grid_dicts(serial) == _grid_dicts(recovered)


def _poisoned_execute_cell(cell, wall_budget_s=None):
    """Fails one specific cell every time (pool *and* serial retry)."""
    if cell.protocol == "EW-MAC" and cell.seed == 1:
        raise RuntimeError("synthetic permanent failure")
    return execute_cell(cell, wall_budget_s)


class TestPermanentFailure:
    """A cell that fails even serially is recorded, not sweep-fatal."""

    def test_serial_sweep_survives_a_crashing_cell(self, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "execute_cell", _poisoned_execute_cell)
        spec, base = _quick_spec(x_values=(0.4,)), _quick_base()
        runner = ParallelSweepRunner(workers=1)
        grid = runner.run(spec, base, protocols=PROTOCOLS, seeds=(1, 2))
        assert len(runner.failures) == 1
        failure = runner.failures[0]
        assert failure.cell.protocol == "EW-MAC" and failure.cell.seed == 1
        assert "RuntimeError: synthetic permanent failure" in failure.error
        assert "synthetic permanent failure" in failure.traceback
        # The failed cell's slot is simply missing; its siblings survived.
        assert len(grid[(0.4, "EW-MAC")]) == 1
        assert len(grid[(0.4, "S-FAMA")]) == 2

    def test_failed_cells_keep_an_empty_grid_entry(self, monkeypatch):
        import repro.experiments.parallel as parallel_mod
        from repro.experiments.sweeps import aggregate

        monkeypatch.setattr(parallel_mod, "execute_cell", _poisoned_execute_cell)
        spec, base = _quick_spec(x_values=(0.4,)), _quick_base()
        runner = ParallelSweepRunner(workers=1)
        grid = runner.run(spec, base, protocols=PROTOCOLS, seeds=(1,))
        assert grid[(0.4, "EW-MAC")] == []  # present, empty: no KeyError
        series = aggregate(
            grid, [0.4], PROTOCOLS, lambda r: r.throughput_kbps
        )
        assert series["EW-MAC"] == [0.0]  # lost cell means "no samples"
        assert series["S-FAMA"][0] > 0.0

    def test_failure_summary_reported_through_progress(self, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "execute_cell", _poisoned_execute_cell)
        messages = []
        runner = ParallelSweepRunner(workers=1, progress=messages.append)
        runner.run(_quick_spec(x_values=(0.4,)), _quick_base(), PROTOCOLS, (1,))
        assert any("failed permanently" in m for m in messages)
        assert any("1 failed cell(s)" in m for m in messages)

    def test_run_cells_marks_failed_slots_none(self, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "execute_cell", _poisoned_execute_cell)
        cells = expand_cells(
            _quick_spec(x_values=(0.4,)), _quick_base(), PROTOCOLS, (1,)
        )
        runner = ParallelSweepRunner(workers=1)
        results = runner.run_cells(cells)
        assert [r is None for r in results] == [
            cell.protocol == "EW-MAC" for cell in cells
        ]

    def test_pool_path_records_permanent_failures(self, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        # Fork context: children inherit the monkeypatched module, so the
        # poisoned cell crashes in the pool AND on the serial retry.
        monkeypatch.setattr(parallel_mod, "execute_cell", _poisoned_execute_cell)
        spec, base = _quick_spec(x_values=(0.4,)), _quick_base()
        runner = ParallelSweepRunner(workers=2, mp_context="fork")
        grid = runner.run(spec, base, protocols=PROTOCOLS, seeds=(1,))
        assert [cell.seed for cell in runner.requeued] == [1]
        assert len(runner.failures) == 1
        assert grid[(0.4, "EW-MAC")] == []
        assert len(grid[(0.4, "S-FAMA")]) == 1


def _hanging_worker(cell, wall_budget_s):
    if cell.index == 0:
        time.sleep(30.0)  # never returns within the guard window
    return _real_pool_worker(cell, wall_budget_s)


def _dying_worker(cell, wall_budget_s):
    if cell.index == 1:
        os._exit(17)  # hard death: no exception, no result, broken pool
    return _real_pool_worker(cell, wall_budget_s)


class TestFaultRecovery:
    """The bounded recovery paths: hung pools, dead workers, retry caps."""

    def test_hung_pool_guard_requeues_unfinished_cells(self, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "_pool_worker", _hanging_worker)
        spec, base = _quick_spec(x_values=(0.4,)), _quick_base()
        serial = run_sweep(spec, base, protocols=PROTOCOLS, seeds=(1,))
        messages = []
        runner = ParallelSweepRunner(
            workers=2,
            mp_context="fork",
            pool_guard_s=1.0,
            progress=messages.append,
        )
        recovered = runner.run(spec, base, protocols=PROTOCOLS, seeds=(1,))
        assert [cell.index for cell in runner.requeued] == [0]
        assert any("pool hung" in m for m in messages)
        assert runner.failures == []
        assert _grid_dicts(serial) == _grid_dicts(recovered)

    def test_dead_worker_breaks_pool_and_cells_recover(self, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        monkeypatch.setattr(parallel_mod, "_pool_worker", _dying_worker)
        spec, base = _quick_spec(x_values=(0.4,)), _quick_base()
        serial = run_sweep(spec, base, protocols=PROTOCOLS, seeds=(1,))
        messages = []
        runner = ParallelSweepRunner(
            workers=2, mp_context="fork", progress=messages.append
        )
        recovered = runner.run(spec, base, protocols=PROTOCOLS, seeds=(1,))
        # The dying cell is requeued for sure; pool breakage may take its
        # in-flight siblings with it — recovery must replay all of them.
        assert 1 in [cell.index for cell in runner.requeued]
        assert any("dead worker" in m or "crashed" in m for m in messages)
        assert runner.failures == []
        assert _grid_dicts(serial) == _grid_dicts(recovered)

    def test_recovery_attempts_are_capped(self, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        calls = []

        def always_crashing(cell, wall_budget_s=None):
            calls.append(cell.index)
            raise RuntimeError("still broken")

        monkeypatch.setattr(parallel_mod, "execute_cell", always_crashing)
        cells = expand_cells(
            _quick_spec(x_values=(0.4,)), _quick_base(), ("EW-MAC",), (1,)
        )
        messages = []
        runner = ParallelSweepRunner(
            workers=1, max_serial_attempts=3, progress=messages.append
        )
        results: list = [None]
        runner._run_serial(cells, results, keys={}, recovery=True)
        assert len(calls) == 3  # the cap, not forever
        assert len(runner.failures) == 1
        assert "still broken" in runner.failures[0].error
        assert sum("retrying" in m for m in messages) == 2

    def test_recovery_timeouts_are_bounded_and_reported(self, monkeypatch):
        import repro.experiments.parallel as parallel_mod

        budgets = []

        def timing_out(cell, wall_budget_s=None):
            budgets.append(wall_budget_s)
            raise WallClockExceeded("over budget")

        monkeypatch.setattr(parallel_mod, "execute_cell", timing_out)
        cells = expand_cells(
            _quick_spec(x_values=(0.4,)), _quick_base(), ("EW-MAC",), (1,)
        )
        runner = ParallelSweepRunner(
            workers=1, cell_timeout_s=10.0, max_serial_attempts=2
        )
        results: list = [None]
        runner._run_serial(cells, results, keys={}, recovery=True)
        # Recovery re-runs get double the pooled budget, but stay bounded.
        assert budgets == [20.0, 20.0]
        assert len(runner.failures) == 1
        assert runner.failures[0].error.startswith("WallClockExceeded")

    def test_max_serial_attempts_validated(self):
        import pytest

        with pytest.raises(ValueError, match="max_serial_attempts"):
            ParallelSweepRunner(max_serial_attempts=0)


class TestCheckpointedSweeps:
    """Layer-2 recovery: sweeps resume cells from their checkpoints."""

    def test_checkpointed_serial_sweep_is_bit_identical(self):
        spec, base = _quick_spec(x_values=(0.4,)), _quick_base()
        plain = run_sweep(spec, base, protocols=PROTOCOLS, seeds=(1,))
        runner = ParallelSweepRunner(workers=1, checkpoint_every_s=4.0)
        checkpointed = runner.run(spec, base, protocols=PROTOCOLS, seeds=(1,))
        assert _grid_dicts(plain) == _grid_dicts(checkpointed)
        assert runner.checkpoints_taken > 0
        assert runner.cells_resumed == 0  # nothing was interrupted

    def test_interrupted_cell_resumes_from_persistent_checkpoint_dir(
        self, tmp_path
    ):
        from repro.experiments.checkpoint import write_checkpoint
        from repro.experiments.scenario import Scenario

        spec, base = _quick_spec(x_values=(0.4,)), _quick_base()
        cells = expand_cells(spec, base, ("EW-MAC",), (1,))
        baseline = execute_cell(cells[0]).to_dict()

        # Simulate a previous sweep that died mid-cell: one checkpoint
        # exists in the persistent dir under the cell's cache key.
        key = cell_key(cells[0].config, cells[0].batch, code_version())

        class Interrupt(Exception):
            pass

        def hook(scenario: Scenario) -> None:
            write_checkpoint(tmp_path / f"{key}.ckpt", scenario)
            raise Interrupt

        try:
            Scenario(cells[0].config).run_steady_state(5.0, hook)
        except Interrupt:
            pass
        assert (tmp_path / f"{key}.ckpt").exists()

        runner = ParallelSweepRunner(
            workers=1, checkpoint_every_s=5.0, checkpoint_dir=tmp_path
        )
        results = runner.run_cells(cells)
        assert results[0].to_dict() == baseline  # resumed, not diverged
        assert runner.cells_resumed == 1
        assert not (tmp_path / f"{key}.ckpt").exists()  # consumed
        assert tmp_path.exists()  # caller-owned dir is kept

    def test_pooled_checkpointed_sweep_is_bit_identical(self):
        spec, base = _quick_spec(x_values=(0.4,)), _quick_base()
        plain = run_sweep(spec, base, protocols=PROTOCOLS, seeds=(1, 2))
        runner = ParallelSweepRunner(workers=2, checkpoint_every_s=4.0)
        pooled = runner.run(spec, base, protocols=PROTOCOLS, seeds=(1, 2))
        assert _grid_dicts(plain) == _grid_dicts(pooled)
        assert runner.checkpoints_taken > 0


class TestWorkItem:
    def test_label(self):
        cell = SweepCell(0, 0.5, "EW-MAC", 3, _quick_base())
        assert cell.label == "EW-MAC x=0.5 seed=3"
