"""CLI exit codes: engine-level failures must never exit 0.

These shell out to ``python -m repro.experiments.cli`` — the same
surface CI and users invoke — rather than calling ``main()`` in-process.
"""

from __future__ import annotations

import os
import subprocess
import sys
from pathlib import Path

SRC = Path(__file__).resolve().parents[2] / "src"


def _run_cli(*argv: str, cwd: Path) -> subprocess.CompletedProcess:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC)
    env["REPRO_CACHE_DIR"] = str(cwd / ".cache")
    return subprocess.run(
        [sys.executable, "-m", "repro.experiments.cli", *argv],
        cwd=cwd,
        env=env,
        capture_output=True,
        text=True,
        timeout=300,
    )


def test_invalid_override_value_exits_2(tmp_path):
    result = _run_cli(
        "fig6", "--quick", "--no-cache", "--override", "n_sensors=-5", cwd=tmp_path
    )
    assert result.returncode == 2
    assert "error:" in result.stderr
    assert "at least one sensor" in result.stderr


def test_unknown_override_field_exits_2(tmp_path):
    result = _run_cli(
        "fig6", "--quick", "--no-cache", "--override", "bogus_field=1", cwd=tmp_path
    )
    assert result.returncode == 2
    assert "unknown config override" in result.stderr


def test_malformed_override_exits_2(tmp_path):
    result = _run_cli("fig6", "--quick", "--override", "oops", cwd=tmp_path)
    assert result.returncode == 2
    assert "expected FIELD=VALUE" in result.stderr


def test_good_tiny_run_exits_0_and_reports_cache(tmp_path):
    overrides = ["--override", "n_sensors=6", "--override", "sim_time_s=3.0",
                 "--override", "warmup_s=2.0"]
    result = _run_cli("fig6", "--quick", *overrides, cwd=tmp_path)
    assert result.returncode == 0, result.stderr
    assert "cache: 0 hit(s), 12 miss(es), 12 store(s)" in result.stdout
    again = _run_cli("fig6", "--quick", *overrides, cwd=tmp_path)
    assert again.returncode == 0
    assert "cache: 12 hit(s), 0 miss(es), 0 store(s)" in again.stdout
