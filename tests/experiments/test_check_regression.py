"""Tests for the benchmark regression gate script (benchmarks/check_regression.py).

The script is not an installed module; load it straight from the
``benchmarks/`` directory so the gate's behaviour — especially the
missing-benchmark FAIL path and malformed-entry tolerance — is pinned by
the tier-1 suite.
"""

from __future__ import annotations

import importlib.util
import json
from pathlib import Path

import pytest

SCRIPT = Path(__file__).resolve().parents[2] / "benchmarks" / "check_regression.py"

spec = importlib.util.spec_from_file_location("check_regression", SCRIPT)
check_regression = importlib.util.module_from_spec(spec)
spec.loader.exec_module(check_regression)


def export(path, benchmarks):
    """Write a minimal pytest-benchmark JSON export."""
    path.write_text(
        json.dumps(
            {
                "benchmarks": [
                    {"fullname": name, "stats": {"mean": mean}}
                    if mean is not None
                    else {"fullname": name}  # malformed: no stats at all
                    for name, mean in benchmarks
                ]
            }
        )
    )
    return path


class TestLoadMeans:
    def test_reads_means_by_fullname(self, tmp_path):
        path = export(tmp_path / "b.json", [("bench_a", 1.5), ("bench_b", 0.25)])
        assert check_regression.load_means(path) == {"bench_a": 1.5, "bench_b": 0.25}

    def test_malformed_entry_skipped_not_fatal(self, tmp_path, capsys):
        path = export(tmp_path / "b.json", [("bench_a", 1.0), ("broken", None)])
        means = check_regression.load_means(path)
        assert means == {"bench_a": 1.0}
        assert "SKIP  broken: malformed benchmark entry" in capsys.readouterr().out

    def test_non_numeric_mean_skipped(self, tmp_path):
        path = tmp_path / "b.json"
        path.write_text(
            json.dumps(
                {"benchmarks": [{"fullname": "bad", "stats": {"mean": "fast"}}]}
            )
        )
        assert check_regression.load_means(path) == {}


class TestCompare:
    def test_within_threshold_passes(self, capsys):
        count = check_regression.compare({"a": 1.1}, {"a": 1.0}, threshold=0.25)
        assert count == 0
        assert "ok" in capsys.readouterr().out

    def test_regression_detected(self, capsys):
        count = check_regression.compare({"a": 1.5}, {"a": 1.0}, threshold=0.25)
        assert count == 1
        assert "FAIL" in capsys.readouterr().out

    def test_new_benchmark_skipped(self, capsys):
        count = check_regression.compare({"new": 1.0}, {}, threshold=0.25)
        assert count == 0
        assert "not in baseline" in capsys.readouterr().out

    def test_missing_benchmark_is_a_clear_fail(self, capsys):
        """A baseline benchmark absent from the candidate fails loudly.

        Before the fix this was a silent pass (or a KeyError in callers
        indexing the candidate dict): a deleted/renamed benchmark made the
        gate pretend the suite was healthy.
        """
        count = check_regression.compare({}, {"gone": 1.0}, threshold=0.25)
        assert count == 1
        out = capsys.readouterr().out
        assert "FAIL  gone" in out
        assert "missing from the candidate" in out

    def test_missing_and_regressed_both_counted(self):
        count = check_regression.compare(
            {"slow": 2.0}, {"slow": 1.0, "gone": 1.0}, threshold=0.25
        )
        assert count == 2

    def test_unusable_baseline_mean_skipped(self, capsys):
        count = check_regression.compare({"a": 1.0}, {"a": 0.0}, threshold=0.25)
        assert count == 0
        assert "unusable" in capsys.readouterr().out


class TestMain:
    def test_missing_benchmark_exits_nonzero(self, tmp_path, capsys):
        current = export(tmp_path / "current.json", [("kept", 1.0)])
        baseline = export(
            tmp_path / "baseline.json", [("kept", 1.0), ("gone", 1.0)]
        )
        code = check_regression.main([str(current), str(baseline)])
        assert code == 1
        assert "went missing" in capsys.readouterr().out

    def test_clean_run_exits_zero(self, tmp_path):
        current = export(tmp_path / "current.json", [("a", 1.0)])
        baseline = export(tmp_path / "baseline.json", [("a", 1.0)])
        assert check_regression.main([str(current), str(baseline)]) == 0

    def test_missing_baseline_file_unarms_the_gate(self, tmp_path, capsys):
        current = export(tmp_path / "current.json", [("a", 1.0)])
        code = check_regression.main([str(current), str(tmp_path / "none.json")])
        assert code == 0
        assert "unarmed" in capsys.readouterr().out

    def test_missing_current_file_is_an_error(self, tmp_path):
        baseline = export(tmp_path / "baseline.json", [("a", 1.0)])
        code = check_regression.main([str(tmp_path / "none.json"), str(baseline)])
        assert code == 2

    def test_empty_current_export_is_an_error(self, tmp_path):
        current = export(tmp_path / "current.json", [])
        baseline = export(tmp_path / "baseline.json", [("a", 1.0)])
        assert check_regression.main([str(current), str(baseline)]) == 2

    def test_threshold_flag_respected(self, tmp_path):
        current = export(tmp_path / "current.json", [("a", 1.2)])
        baseline = export(tmp_path / "baseline.json", [("a", 1.0)])
        assert check_regression.main([str(current), str(baseline)]) == 0
        assert (
            check_regression.main(
                [str(current), str(baseline), "--threshold", "0.1"]
            )
            == 1
        )


@pytest.mark.parametrize("direction", ["missing", "regressed"])
def test_summary_names_the_failure_class(tmp_path, capsys, direction):
    if direction == "missing":
        current = export(tmp_path / "c.json", [("kept", 1.0)])
        baseline = export(tmp_path / "b.json", [("kept", 1.0), ("gone", 1.0)])
    else:
        current = export(tmp_path / "c.json", [("kept", 2.0)])
        baseline = export(tmp_path / "b.json", [("kept", 1.0)])
    assert check_regression.main([str(current), str(baseline)]) == 1
    assert "regressed more than" in capsys.readouterr().out
