"""Unit tests for workload generators."""

import pytest

from repro.des.simulator import Simulator
from repro.net.node import Node
from repro.phy.channel import AcousticChannel
from repro.topology.deployment import DeploymentConfig, connected_column_deployment
from repro.topology.routing import DepthRouting
from repro.traffic.generators import (
    BatchWorkload,
    CbrTraffic,
    PoissonTraffic,
    offered_load_to_rate,
)


def build_network(sim, n=20, seed=0):
    config = DeploymentConfig(n_sensors=n, seed=seed)
    dep = connected_column_deployment(config)
    channel = AcousticChannel(sim)
    nodes = [
        Node(sim, i, pos, channel, is_sink=(i in dep.sink_ids))
        for i, pos in enumerate(dep.positions)
    ]
    routing = DepthRouting(channel, dep.sink_ids)
    return nodes, routing


class TestRateCalibration:
    def test_paper_fig8_calibration(self):
        # "20 packets per 300 s, i.e. offer load of approximately 0.136":
        rate = offered_load_to_rate(0.136, 2048)
        assert rate * 300 == pytest.approx(20.0, rel=0.03)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            offered_load_to_rate(-0.1, 2048)
        with pytest.raises(ValueError):
            offered_load_to_rate(0.1, 0)


class TestPoisson:
    def test_generated_load_matches_offered(self):
        sim = Simulator(seed=1)
        nodes, routing = build_network(sim)
        traffic = PoissonTraffic(sim, nodes, routing, offered_load_kbps=0.5)
        traffic.start()
        sim.run(until=2000.0)
        measured_kbps = traffic.stats.bits / 2000.0 / 1000.0
        assert measured_kbps == pytest.approx(0.5, rel=0.15)

    def test_zero_load_generates_nothing(self):
        sim = Simulator(seed=1)
        nodes, routing = build_network(sim)
        traffic = PoissonTraffic(sim, nodes, routing, offered_load_kbps=0.0)
        traffic.start()
        sim.run(until=100.0)
        assert traffic.stats.packets == 0

    def test_destinations_are_next_hops(self):
        sim = Simulator(seed=2)
        nodes, routing = build_network(sim)
        traffic = PoissonTraffic(sim, nodes, routing, offered_load_kbps=1.0)
        traffic.start()
        sim.run(until=300.0)
        for node in nodes:
            for request in node.queue:
                assert request.dst == routing.next_hop(node.node_id)

    def test_sinks_generate_nothing(self):
        sim = Simulator(seed=3)
        nodes, routing = build_network(sim)
        traffic = PoissonTraffic(sim, nodes, routing, offered_load_kbps=1.0)
        traffic.start()
        sim.run(until=300.0)
        sinks = [n for n in nodes if n.is_sink]
        assert all(n.app_stats.generated == 0 for n in sinks)

    def test_stop_halts_generation(self):
        sim = Simulator(seed=4)
        nodes, routing = build_network(sim)
        traffic = PoissonTraffic(sim, nodes, routing, offered_load_kbps=1.0)
        traffic.start()
        sim.run(until=100.0)
        count = traffic.stats.packets
        traffic.stop()
        sim.run(until=200.0)
        assert traffic.stats.packets == count

    def test_all_sinks_rejected(self):
        sim = Simulator()
        channel = AcousticChannel(sim)
        from repro.acoustic.geometry import Position

        only_sink = [Node(sim, 0, Position(0, 0, 0), channel, is_sink=True)]
        with pytest.raises(ValueError):
            PoissonTraffic(sim, only_sink, None, 0.5)


class TestCbr:
    def test_constant_rate_per_node(self):
        sim = Simulator(seed=1)
        nodes, routing = build_network(sim, n=10)
        traffic = CbrTraffic(sim, nodes, routing, per_node_interval_s=10.0)
        traffic.start()
        sim.run(until=100.0)
        sources = [n for n in nodes if not n.is_sink]
        # each source fires about 10 times in 100 s
        total = sum(n.app_stats.generated for n in sources)
        assert total == pytest.approx(10 * len(sources), abs=len(sources))

    def test_invalid_interval(self):
        sim = Simulator()
        nodes, routing = build_network(sim, n=5)
        with pytest.raises(ValueError):
            CbrTraffic(sim, nodes, routing, per_node_interval_s=0.0)


class TestBatch:
    def test_injects_exact_count_over_window(self):
        sim = Simulator(seed=1)
        nodes, routing = build_network(sim)
        batch = BatchWorkload(sim, nodes, routing, n_packets=25, inject_window_s=50.0)
        batch.start()
        sim.run(until=60.0)
        assert batch.stats.packets == 25
        queued = sum(len(n.queue) for n in nodes)
        assert queued == 25

    def test_injections_are_staggered(self):
        sim = Simulator(seed=1)
        nodes, routing = build_network(sim)
        batch = BatchWorkload(sim, nodes, routing, n_packets=20, inject_window_s=100.0)
        batch.start()
        sim.run(until=50.0)
        mid_count = batch.stats.packets
        sim.run(until=110.0)
        assert 0 < mid_count < batch.stats.packets

    def test_drained_when_queues_empty_after_window(self):
        sim = Simulator(seed=1)
        nodes, routing = build_network(sim)
        batch = BatchWorkload(sim, nodes, routing, n_packets=3, inject_window_s=10.0)
        batch.start()
        assert not batch.all_drained()  # injections still pending
        sim.run(until=15.0)
        assert not batch.all_drained()  # queued packets remain
        for node in nodes:
            while node.queue:
                node.note_sent(node.pop_request())
        assert batch.all_drained()

    def test_negative_count_rejected(self):
        sim = Simulator()
        nodes, routing = build_network(sim, n=5)
        with pytest.raises(ValueError):
            BatchWorkload(sim, nodes, routing, n_packets=-1)
        with pytest.raises(ValueError):
            BatchWorkload(sim, nodes, routing, n_packets=1, inject_window_s=-1.0)
