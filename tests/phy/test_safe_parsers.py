"""Unit tests for the hardened frame-field parsers (fuzz-derived)."""


from hypothesis import given
from hypothesis import strategies as st

from repro.phy.frame import CONTROL_PACKET_BITS, safe_bits, safe_float, safe_links


class TestSafeBits:
    def test_valid_int_passthrough(self):
        assert safe_bits(2048) == 2048
        assert safe_bits("1024") == 1024
        assert safe_bits(64.9) == 64

    def test_malformed_falls_back(self):
        assert safe_bits(None) == CONTROL_PACKET_BITS
        assert safe_bits([1, 2]) == CONTROL_PACKET_BITS
        assert safe_bits("garbage") == CONTROL_PACKET_BITS
        assert safe_bits({"x": 1}, default=7) == 7

    def test_below_minimum_falls_back(self):
        assert safe_bits(0) == CONTROL_PACKET_BITS
        assert safe_bits(-5, default=99) == 99
        assert safe_bits(0, default=0, minimum=0) == 0

    @given(st.one_of(st.integers(), st.floats(allow_nan=False), st.text(),
                     st.lists(st.integers()), st.none(), st.booleans()))
    def test_never_raises(self, value):
        result = safe_bits(value)
        assert isinstance(result, int)


class TestSafeFloat:
    def test_valid(self):
        assert safe_float(1.5) == 1.5
        assert safe_float(3) == 3.0
        assert safe_float("2.5") == 2.5

    def test_invalid(self):
        assert safe_float(None) is None
        assert safe_float([1.0]) is None
        assert safe_float("xyz") is None
        assert safe_float(True) is None  # booleans are not measurements
        assert safe_float(float("nan")) is None

    @given(st.one_of(st.integers(), st.floats(), st.text(),
                     st.lists(st.floats()), st.none(), st.booleans()))
    def test_never_raises(self, value):
        result = safe_float(value)
        assert result is None or isinstance(result, float)


class TestSafeLinks:
    def test_valid_links(self):
        assert safe_links([(1, 0.5), (2, 0.9)]) == [(1, 0.5), (2, 0.9)]

    def test_scalar_is_empty(self):
        assert safe_links(42) == []
        assert safe_links("nope") == []
        assert safe_links(None) == []

    def test_bad_entries_skipped(self):
        links = safe_links([(1, 0.5), "junk", (2,), (3, -0.1), (-4, 0.2), (5, 0.3)])
        assert links == [(1, 0.5), (5, 0.3)]

    @given(st.one_of(
        st.lists(st.one_of(
            st.tuples(st.integers(), st.floats(allow_nan=False)),
            st.text(),
            st.integers(),
        )),
        st.integers(),
        st.none(),
    ))
    def test_never_raises(self, value):
        result = safe_links(value)
        assert isinstance(result, list)
        for node_id, delay in result:
            assert node_id >= 0 and delay >= 0.0
