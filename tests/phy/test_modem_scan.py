"""Vectorized interferer scan and Arrival free-list behavior.

``_decode_outcome`` switches from a Python comprehension to a NumPy
overlap-window scan once the live-arrival list reaches ``VECTOR_SCAN_MIN``.
Both paths must pick exactly the same interferer levels — the scan is an
implementation detail, not a model change — and the channel-owned Arrival
pool must recycle records without perturbing any delivered frame.
"""

import json

import pytest

from repro.experiments.config import table2_config
from repro.experiments.scenario import run_scenario
from repro.phy import modem as modem_mod


def _flat(result):
    return json.dumps(result.to_dict(), sort_keys=True)


def _config(seed):
    # High load in a dense column so arrival lists routinely exceed the
    # vector-scan threshold and interference actually decides outcomes.
    return table2_config(
        protocol="ALOHA",
        sim_time_s=40.0,
        offered_load_kbps=1.5,
        seed=seed,
        mobility=True,
    )


class TestVectorScanEquivalence:
    @pytest.mark.parametrize("seed", [3, 29])
    def test_scan_paths_identical(self, monkeypatch, seed):
        vectorized = run_scenario(_config(seed))
        # Force the list-comprehension path for every decode.
        monkeypatch.setattr(modem_mod, "VECTOR_SCAN_MIN", 10**9)
        scalar = run_scenario(_config(seed))
        assert _flat(vectorized) == _flat(scalar)

    def test_scan_arrays_grow_past_initial_capacity(self):
        result = run_scenario(_config(seed=3))
        # The run is only a meaningful scan test if lists actually crossed
        # the threshold; collisions prove overlapping arrivals existed.
        assert result.collisions > 0


class TestArrivalPool:
    def test_pool_fills_after_prune(self):
        from repro.acoustic.geometry import Position
        from repro.des.simulator import Simulator
        from repro.phy.channel import AcousticChannel
        from repro.phy.frame import FrameType, control_frame

        sim = Simulator()
        channel = AcousticChannel(sim, pool_arrivals=True)
        positions = [Position(0, 0, 0), Position(900, 0, 0), Position(0, 900, 0)]
        for node_id in range(len(positions)):
            channel.create_modem(node_id, lambda i=node_id: positions[i])
        for k in range(6):
            sim.schedule(
                3.0 * k,
                channel.modem_of(k % 3).transmit,
                control_frame(FrameType.RTS, k % 3, (k + 1) % 3, timestamp=3.0 * k),
            )
        sim.run()
        # Widely spaced transmissions: every arrival ends long before the
        # next begins, so prune recycles each record into the pool.
        assert channel.arrival_pool is not None
        assert len(channel.arrival_pool) > 0
        assert len(channel.arrival_pool) <= modem_mod.ARRIVAL_POOL_CAP

    def test_pool_capacity_is_bounded(self):
        from repro.acoustic.geometry import Position
        from repro.des.simulator import Simulator
        from repro.phy.channel import AcousticChannel
        from repro.phy.frame import FrameType, control_frame

        # The cap is a channel-level knob now (surfaced as
        # ScenarioConfig.arrival_pool_cap), not a module constant patch.
        sim = Simulator()
        channel = AcousticChannel(sim, pool_arrivals=True, arrival_pool_cap=2)
        positions = [Position(0, 0, 0), Position(900, 0, 0), Position(0, 900, 0)]
        for node_id in range(len(positions)):
            channel.create_modem(node_id, lambda i=node_id: positions[i])
        for k in range(12):
            sim.schedule(
                3.0 * k,
                channel.modem_of(k % 3).transmit,
                control_frame(FrameType.RTS, k % 3, (k + 1) % 3, timestamp=3.0 * k),
            )
        sim.run()
        assert 0 < len(channel.arrival_pool) <= 2

    @pytest.mark.parametrize("seed", [7, 31])
    def test_pooled_run_identical_to_fresh_allocation(self, seed):
        config = _config(seed)
        pooled = run_scenario(config.with_(arrival_pool=True))
        fresh = run_scenario(config.with_(arrival_pool=False))
        assert _flat(pooled) == _flat(fresh)

    def test_config_cap_bounds_live_recycled_objects(self):
        from repro.experiments.scenario import Scenario

        # End-to-end through ScenarioConfig: a tiny cap must bound the
        # free list for the whole run without changing any figure metric.
        config = _config(seed=7).with_(arrival_pool=True, arrival_pool_cap=3)
        scenario = Scenario(config)
        assert scenario.channel.arrival_pool_cap == 3
        capped = scenario.run_steady_state()
        assert scenario.channel.arrival_pool is not None
        assert len(scenario.channel.arrival_pool) <= 3
        default = run_scenario(_config(seed=7).with_(arrival_pool=True))
        assert _flat(capped) == _flat(default)

    def test_cap_zero_disables_recycling(self):
        config = _config(seed=7).with_(arrival_pool=True, arrival_pool_cap=0)
        from repro.experiments.scenario import Scenario

        scenario = Scenario(config)
        result = scenario.run_steady_state()
        assert len(scenario.channel.arrival_pool) == 0
        assert _flat(result) == _flat(
            run_scenario(_config(seed=7).with_(arrival_pool=False))
        )

    def test_negative_cap_rejected(self):
        with pytest.raises(ValueError):
            _config(seed=7).with_(arrival_pool_cap=-1)
