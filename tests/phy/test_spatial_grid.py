"""Spatial-hash reach culling and delta-epoch edge cases.

The grid and the movement-bounded skip are pure *culls*: they may only
avoid computing entries whose masks are provably ``False``, never change a
computed value.  These tests pin the edges where that proof has to hold —
cell boundaries, nodes outside the nominal deployment volume, membership
changes (registration, cell crossings, neighborhood departures) — plus the
on-demand point-query path and the new counters.
"""

import pytest

from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator
from repro.phy.channel import AcousticChannel


def build_channel(positions, **channel_kwargs):
    sim = Simulator()
    channel = AcousticChannel(sim, **channel_kwargs)
    holder = list(positions)
    for node_id in range(len(holder)):
        channel.create_modem(node_id, lambda i=node_id: holder[i])
    return sim, channel, holder


def delivered_ids(channel, tx_id):
    cache = channel.link_cache
    row = cache.broadcast_row(tx_id)
    return [t[0] for t in cache.deliveries(row)]


class TestCellBoundaries:
    def test_receiver_exactly_at_reach_is_delivered(self):
        # reach == max_range == cell side == 1500: the pair distance sits
        # exactly on both the cell boundary and the mask boundary.
        _, channel, _ = build_channel([Position(0, 0, 0), Position(1500.0, 0, 0)])
        assert delivered_ids(channel, 0) == [1]
        assert channel.neighbors_of(0) == (1,)

    def test_receiver_one_ulp_past_reach_is_culled(self):
        import math

        past = math.nextafter(1500.0, 2000.0)
        _, channel, _ = build_channel([Position(0, 0, 0), Position(past, 0, 0)])
        assert delivered_ids(channel, 0) == []
        assert channel.link_cache.link(0, 1).in_reach is False

    def test_node_on_cell_corner_is_binned_once(self):
        # (1500, 1500, 0) sits on a corner shared by four cells; floor
        # binning must place it in exactly one, and the 3x3x3 gather from a
        # neighbor cell must still see it.
        _, channel, _ = build_channel(
            [Position(1499.0, 1499.0, 0), Position(1500.0, 1500.0, 0)]
        )
        kernel = channel.link_cache._kernel
        assert sum(len(v) for v in kernel._cells.values()) == 2
        assert delivered_ids(channel, 0) == [1]

    def test_nodes_outside_deployment_volume(self):
        # Negative coordinates and far-out positions must bin fine (floor
        # division handles negatives) and stay bit-exact.
        positions = [
            Position(-4000.0, -250.0, 0),
            Position(-3000.0, 0, 0),
            Position(50_000.0, 0, 0),
        ]
        _, channel, _ = build_channel(positions)
        assert delivered_ids(channel, 0) == [1]
        assert channel.distance_m(0, 2) == pytest.approx(
            positions[0].distance_to(positions[2])
        )


class TestMembershipChanges:
    def test_grid_rebuild_after_add_node(self):
        _, channel, holder = build_channel([Position(0, 0, 0), Position(800, 0, 0)])
        assert delivered_ids(channel, 0) == [1]
        holder.append(Position(0, 900, 0))
        channel.create_modem(2, lambda: holder[2])
        assert delivered_ids(channel, 0) == [1, 2]
        kernel = channel.link_cache._kernel
        assert sum(len(v) for v in kernel._cells.values()) == 3

    def test_departure_from_neighborhood_clears_reach(self):
        # A node whose cell leaves the 3x3x3 neighborhood must stop being
        # delivered to even though its pair entry is never recomputed.
        _, channel, holder = build_channel([Position(0, 0, 0), Position(1000, 0, 0)])
        assert delivered_ids(channel, 0) == [1]
        holder[1] = Position(20_000.0, 0, 0)
        channel.note_position_change(1)
        assert delivered_ids(channel, 0) == []
        # And re-entry recomputes from the never-computed sentinel.
        holder[1] = Position(1200.0, 0, 0)
        channel.note_position_change(1)
        assert delivered_ids(channel, 0) == [1]
        assert channel.distance_m(0, 1) == pytest.approx(1200.0)

    def test_cell_crossing_within_neighborhood(self):
        _, channel, holder = build_channel([Position(0, 0, 0), Position(1400, 0, 0)])
        assert delivered_ids(channel, 0) == [1]
        # Crossing into the next cell (cells are 1500 m) while staying in
        # reach must keep the delivery and update the pair exactly.
        holder[1] = Position(1501.0, 0, 0)
        channel.note_position_change(1)
        assert delivered_ids(channel, 0) == []  # 1501 > reach: culled by mask
        holder[1] = Position(1499.0, 0, 0)
        channel.note_position_change(1)
        assert delivered_ids(channel, 0) == [1]
        assert channel.distance_m(0, 1) == pytest.approx(1499.0)

    def test_global_invalidate_rebins_everyone(self):
        _, channel, holder = build_channel(
            [Position(0, 0, 0), Position(1000, 0, 0), Position(0, 1000, 0)]
        )
        assert delivered_ids(channel, 0) == [1, 2]
        holder[1] = Position(30_000.0, 0, 0)
        holder[2] = Position(0, 1100.0, 0)
        channel.note_position_change()  # out-of-band: no node id known
        assert delivered_ids(channel, 0) == [2]
        assert channel.distance_m(0, 2) == pytest.approx(1100.0)


class TestDeltaEpochs:
    def build(self, positions):
        # Grid off isolates the delta-epoch skip: with the grid on, far
        # nodes leave the candidate set entirely and the skip never fires.
        return build_channel(
            positions, use_spatial_grid=False, use_delta_epochs=True
        )

    def test_small_motion_of_far_pair_is_skipped(self):
        _, channel, holder = self.build([Position(0, 0, 0), Position(5000.0, 0, 0)])
        assert delivered_ids(channel, 0) == []
        misses = channel.stats.cache_misses
        holder[1] = Position(5010.0, 0, 0)  # 10 m of motion, 3500 m margin
        channel.note_position_change(1)
        assert delivered_ids(channel, 0) == []
        assert channel.stats.rows_skipped_delta == 1
        assert channel.stats.cache_misses == misses  # no recompute happened

    def test_point_query_after_skip_recomputes_on_demand(self):
        _, channel, holder = self.build([Position(0, 0, 0), Position(5000.0, 0, 0)])
        delivered_ids(channel, 0)
        holder[1] = Position(5010.0, 0, 0)
        channel.note_position_change(1)
        delivered_ids(channel, 0)  # skip leaves the pair's scalars stale
        assert channel.distance_m(0, 1) == pytest.approx(5010.0)
        assert channel.propagation_delay_s(0, 1) == pytest.approx(5010.0 / 1500.0)

    def test_accumulated_motion_forces_recompute(self):
        _, channel, holder = self.build([Position(0, 0, 0), Position(5000.0, 0, 0)])
        delivered_ids(channel, 0)
        # Many small hops: each individually under the margin, the sum not.
        for step in range(1, 40):
            holder[1] = Position(5000.0 - step * 100.0, 0, 0)
            channel.note_position_change(1)
            assert (delivered_ids(channel, 0) == [1]) == (
                holder[1].x <= 1500.0
            )
        assert channel.distance_m(0, 1) == pytest.approx(1100.0)

    def test_in_reach_pairs_never_skipped(self):
        _, channel, holder = self.build([Position(0, 0, 0), Position(1000.0, 0, 0)])
        delivered_ids(channel, 0)
        holder[1] = Position(1001.0, 0, 0)
        channel.note_position_change(1)
        assert delivered_ids(channel, 0) == [1]
        assert channel.stats.rows_skipped_delta == 0
        assert channel.distance_m(0, 1) == pytest.approx(1001.0)


class TestInReachDelta:
    """Symmetric in-reach bound: near pairs whose motion cannot cross the
    reach boundary skip the refresh recompute, deferring scalars until
    :meth:`deliveries` (or a point query) needs them."""

    def test_small_motion_of_near_pair_is_skipped(self):
        _, channel, holder = build_channel([Position(0, 0, 0), Position(500.0, 0, 0)])
        assert delivered_ids(channel, 0) == [1]
        holder[1] = Position(510.0, 0, 0)  # 10 m motion, ~1000 m of margin
        channel.note_position_change(1)
        assert delivered_ids(channel, 0) == [1]
        assert channel.stats.rows_skipped_inreach >= 1
        assert channel.stats.rows_skipped_delta == 0

    def test_skip_defers_but_never_discards_the_recompute(self):
        _, channel, holder = build_channel([Position(0, 0, 0), Position(500.0, 0, 0)])
        cache = channel.link_cache
        cache.deliveries(cache.broadcast_row(0))
        misses = channel.stats.cache_misses
        holder[1] = Position(510.0, 0, 0)
        channel.note_position_change(1)
        # The refresh itself skips: masks are proven stable, no recompute.
        row = cache.broadcast_row(0)
        assert channel.stats.rows_skipped_inreach == 1
        assert channel.stats.cache_misses == misses
        # Building the fan-out list fixes up exactly the stale scalar.
        targets = cache.deliveries(row)
        assert [t[0] for t in targets] == [1]
        assert channel.stats.cache_misses == misses + 1
        assert targets[0][2] == pytest.approx(510.0 / 1500.0)  # exact delay

    def test_point_query_after_skip_is_exact(self):
        _, channel, holder = build_channel([Position(0, 0, 0), Position(800.0, 0, 0)])
        delivered_ids(channel, 0)
        holder[1] = Position(790.0, 0, 0)
        channel.note_position_change(1)
        assert channel.distance_m(0, 1) == pytest.approx(790.0)
        assert channel.propagation_delay_s(0, 1) == pytest.approx(790.0 / 1500.0)

    def test_annulus_skip_with_interference_range(self):
        # reach = 2 x 1500 = 3000: a pair at 2000 m is in interference reach
        # but not decodable.  Small motion cannot cross either boundary, so
        # the annulus arm of the bound skips while both masks hold.
        _, channel, holder = build_channel(
            [Position(0, 0, 0), Position(2000.0, 0, 0)],
            interference_range_factor=2.0,
        )
        assert delivered_ids(channel, 0) == [1]  # interference-only target
        assert channel.link_cache.link(0, 1).in_decode_range is False
        holder[1] = Position(2010.0, 0, 0)
        channel.note_position_change(1)
        assert delivered_ids(channel, 0) == [1]
        assert channel.stats.rows_skipped_inreach >= 1
        assert channel.link_cache.link(0, 1).in_decode_range is False
        assert channel.distance_m(0, 1) == pytest.approx(2010.0)

    def test_boundary_crossing_forces_recompute(self):
        _, channel, holder = build_channel([Position(0, 0, 0), Position(1400.0, 0, 0)])
        assert delivered_ids(channel, 0) == [1]
        # 300 m of motion against 100 m of margin: the bound cannot prove
        # the masks stable, so the pair recomputes and leaves reach.
        holder[1] = Position(1700.0, 0, 0)
        channel.note_position_change(1)
        assert delivered_ids(channel, 0) == []
        # And crossing back in recomputes again (margin 200 < motion 300).
        holder[1] = Position(1450.0, 0, 0)
        channel.note_position_change(1)
        assert delivered_ids(channel, 0) == [1]
        assert channel.distance_m(0, 1) == pytest.approx(1450.0)

    def test_disabled_flag_restores_eager_recompute(self):
        _, channel, holder = build_channel(
            [Position(0, 0, 0), Position(500.0, 0, 0)], use_inreach_delta=False
        )
        delivered_ids(channel, 0)
        misses = channel.stats.cache_misses
        holder[1] = Position(510.0, 0, 0)
        channel.note_position_change(1)
        channel.link_cache.broadcast_row(0)
        assert channel.stats.rows_skipped_inreach == 0
        assert channel.stats.cache_misses == misses + 1


class TestGridCounters:
    def test_grid_candidates_accumulates_per_broadcast(self):
        from repro.phy.frame import FrameType, control_frame

        positions = [Position(0, 0, 0), Position(1000, 0, 0), Position(40_000, 0, 0)]
        sim, channel, _ = build_channel(positions)
        sim.schedule(
            0.0, channel.modem_of(0).transmit, control_frame(FrameType.RTS, 0, 1, timestamp=0.0)
        )
        sim.run()
        # Node 2 is far outside the 3x3x3 neighborhood of node 0's cell:
        # candidate set is {0, 1} -> 1 candidate excluding self.
        assert channel.stats.broadcasts == 1
        assert channel.stats.grid_candidates == 1
        assert channel.stats.grid_cells == 2

    def test_grid_disabled_counts_full_scan_width(self):
        from repro.phy.frame import FrameType, control_frame

        positions = [Position(0, 0, 0), Position(1000, 0, 0), Position(40_000, 0, 0)]
        sim, channel, _ = build_channel(positions, use_spatial_grid=False)
        sim.schedule(
            0.0, channel.modem_of(0).transmit, control_frame(FrameType.RTS, 0, 1, timestamp=0.0)
        )
        sim.run()
        assert channel.stats.grid_candidates == len(positions) - 1
        assert channel.stats.grid_cells == 0
