"""Unit tests for the epoch-invalidated link-state cache."""

import pytest

from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator
from repro.net.node import Node
from repro.phy.channel import AcousticChannel
from repro.phy.frame import FrameType, control_frame


def build_channel(positions, **channel_kwargs):
    sim = Simulator()
    channel = AcousticChannel(sim, **channel_kwargs)
    holder = list(positions)
    for node_id in range(len(holder)):
        channel.create_modem(node_id, lambda i=node_id: holder[i])
    return sim, channel, holder


class TestCacheCounters:
    def test_first_lookup_misses_then_hits(self):
        _, channel, _ = build_channel([Position(0, 0, 0), Position(1000, 0, 0)])
        assert channel.stats.cache_misses == 0
        d1 = channel.distance_m(0, 1)
        assert channel.stats.cache_misses == 1
        assert channel.stats.cache_hits == 0
        d2 = channel.distance_m(0, 1)
        assert d2 == d1 == pytest.approx(1000.0)
        assert channel.stats.cache_hits == 1
        assert channel.stats.cache_misses == 1

    def test_hit_rate_property(self):
        _, channel, _ = build_channel([Position(0, 0, 0), Position(1000, 0, 0)])
        assert channel.stats.cache_hit_rate == 0.0
        channel.distance_m(0, 1)
        channel.distance_m(0, 1)
        channel.distance_m(0, 1)
        assert channel.stats.cache_hit_rate == pytest.approx(2 / 3)

    def test_directed_pairs_cached_separately(self):
        _, channel, _ = build_channel([Position(0, 0, 0), Position(1000, 0, 0)])
        channel.propagation_delay_s(0, 1)
        channel.propagation_delay_s(1, 0)
        assert channel.stats.cache_misses == 2

    def test_disabled_cache_counts_nothing(self):
        _, channel, _ = build_channel(
            [Position(0, 0, 0), Position(1000, 0, 0)], use_link_cache=False
        )
        assert channel.link_cache is None
        channel.distance_m(0, 1)
        channel.neighbors_of(0)
        assert channel.stats.cache_hits == 0
        assert channel.stats.cache_misses == 0


class TestEpochInvalidation:
    def test_position_change_is_seen_on_next_query(self):
        _, channel, holder = build_channel([Position(0, 0, 0), Position(1000, 0, 0)])
        assert channel.distance_m(0, 1) == pytest.approx(1000.0)
        holder[1] = Position(2000, 0, 0)
        channel.note_position_change()
        assert channel.distance_m(0, 1) == pytest.approx(2000.0)
        # The stale entry was recomputed, not served.
        assert channel.stats.cache_misses == 2

    def test_node_position_setter_bumps_epoch(self):
        sim = Simulator()
        channel = AcousticChannel(sim)
        node = Node(sim, 0, Position(0, 0, 0), channel)
        other = Node(sim, 1, Position(1000, 0, 0), channel)
        epoch = channel.link_cache.epoch
        node.position = Position(0, 0, 100)
        assert channel.link_cache.epoch == epoch + 1
        assert channel.distance_m(0, 1) == pytest.approx(
            node.position.distance_to(other.position)
        )

    def test_assigning_equal_position_keeps_cache_warm(self):
        sim = Simulator()
        channel = AcousticChannel(sim)
        node = Node(sim, 0, Position(0, 0, 0), channel)
        Node(sim, 1, Position(1000, 0, 0), channel)
        channel.distance_m(0, 1)
        epoch = channel.link_cache.epoch
        node.position = Position(0, 0, 0)
        assert channel.link_cache.epoch == epoch
        channel.distance_m(0, 1)
        assert channel.stats.cache_hits == 1

    def test_create_modem_invalidates(self):
        _, channel, holder = build_channel([Position(0, 0, 0), Position(1000, 0, 0)])
        assert channel.neighbors_of(0) == (1,)
        holder.append(Position(0, 500, 0))
        channel.create_modem(2, lambda: holder[2])
        assert channel.neighbors_of(0) == (1, 2)


class TestNeighborSemantics:
    def test_failure_injection_filters_without_epoch_bump(self):
        _, channel, _ = build_channel(
            [Position(0, 0, 0), Position(1000, 0, 0), Position(0, 1000, 0)]
        )
        assert channel.neighbors_of(0) == (1, 2)
        epoch = channel.link_cache.epoch
        channel.modem_of(1).enabled = False
        # Liveness is read fresh: no invalidation needed, no stale neighbour.
        assert channel.link_cache.epoch == epoch
        assert channel.neighbors_of(0) == (2,)
        channel.modem_of(1).enabled = True
        assert channel.neighbors_of(0) == (1, 2)

    def test_matches_uncached_neighbor_set(self):
        positions = [
            Position(0, 0, 0),
            Position(1400, 0, 0),
            Position(0, 1600, 0),
            Position(900, 900, 0),
        ]
        _, cached, _ = build_channel(positions)
        _, uncached, _ = build_channel(positions, use_link_cache=False)
        for node_id in range(len(positions)):
            assert cached.neighbors_of(node_id) == uncached.neighbors_of(node_id)


class TestBroadcastThroughCache:
    def test_broadcast_delivery_identical_to_uncached(self):
        positions = [Position(0, 0, 0), Position(1500, 0, 0), Position(0, 4000, 0)]
        arrivals = {}
        for flag in (True, False):
            sim, channel, _ = build_channel(positions, use_link_cache=flag)
            seen = []
            channel.modem_of(1).on_receive = lambda f, arr: seen.append(
                (arr.start, arr.end, arr.level_db, arr.delay_s)
            )
            frame = control_frame(FrameType.RTS, 0, 1, timestamp=0.0)
            sim.schedule(0.0, channel.modem_of(0).transmit, frame)
            sim.run()
            arrivals[flag] = (seen, channel.stats.deliveries, channel.stats.out_of_range_skips)
        assert arrivals[True] == arrivals[False]

    def test_repeat_broadcasts_hit_cache(self):
        sim, channel, _ = build_channel([Position(0, 0, 0), Position(1000, 0, 0)])
        for t in (0.0, 5.0):
            sim.schedule(
                t, channel.modem_of(0).transmit,
                control_frame(FrameType.RTS, 0, 1, timestamp=t),
            )
        sim.run()
        assert channel.stats.broadcasts == 2
        assert channel.stats.cache_misses == 1
        assert channel.stats.cache_hits == 1
