"""Half-duplex boundary conditions and outage-flag edge cases.

Complements ``test_modem_channel.py``: exact interval boundaries (a TX
that *touches* an arrival without overlapping must not kill it), the
TX/RX outage flags used by fault injection, and the interval pruning that
keeps the overlap scans cheap.
"""

from __future__ import annotations

import pytest

from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator
from repro.phy.channel import AcousticChannel
from repro.phy.frame import FrameType, control_frame, data_frame
from repro.phy.modem import RxOutcome

CONTROL_S = 64 / 12_000  # control frame on-air time at the Table 2 bitrate


def build_pair(sim, distance_m=1500.0, **channel_kwargs):
    channel = AcousticChannel(sim, **channel_kwargs)
    pos_a, pos_b = Position(0, 0, 0), Position(distance_m, 0, 0)
    a = channel.create_modem(0, lambda: pos_a)
    b = channel.create_modem(1, lambda: pos_b)
    return channel, a, b


class TestExactBoundaries:
    """Intervals are half-open: touching is not overlapping."""

    def test_tx_ending_exactly_at_arrival_start_does_not_kill_it(self):
        sim = Simulator()
        channel, a, b = build_pair(sim)
        received = []
        b.on_receive = lambda f, arr: received.append(f.src)
        b.on_rx_failure = lambda arr, out: received.append(out)
        # a's control frame arrives at b over [1.0, 1.0 + CONTROL_S];
        # b's own TX occupies [1.0 - CONTROL_S, 1.0] — adjacent, disjoint.
        sim.schedule(0.0, a.transmit, control_frame(FrameType.RTS, 0, 1, timestamp=0.0))
        sim.schedule(1.0 - CONTROL_S, b.transmit, control_frame(FrameType.CTS, 1, 0, timestamp=0.0))
        sim.run()
        assert received == [0]
        assert b.stats.rx_half_duplex == 0

    def test_tx_starting_exactly_at_arrival_end_does_not_kill_it(self):
        sim = Simulator()
        channel, a, b = build_pair(sim)
        received = []
        b.on_receive = lambda f, arr: received.append(f.src)
        arrival_end = 1.0 + CONTROL_S
        sim.schedule(0.0, a.transmit, control_frame(FrameType.RTS, 0, 1, timestamp=0.0))
        sim.schedule(arrival_end, b.transmit, control_frame(FrameType.CTS, 1, 0, timestamp=0.0))
        sim.run()
        assert received == [0]
        assert b.stats.rx_half_duplex == 0

    def test_one_tick_of_overlap_kills_the_arrival(self):
        sim = Simulator()
        channel, a, b = build_pair(sim)
        failures = []
        b.on_receive = lambda f, arr: pytest.fail("should not decode")
        b.on_rx_failure = lambda arr, out: failures.append(out)
        # TX starts one microsecond before the arrival's trailing edge.
        sim.schedule(0.0, a.transmit, data_frame(0, 1, 0.0, size_bits=2048))
        data_end = 1.0 + 2048 / 12_000
        sim.schedule(data_end - 1e-6, b.transmit, control_frame(FrameType.CTS, 1, 0, timestamp=0.0))
        sim.run()
        assert failures == [RxOutcome.HALF_DUPLEX]


class TestOutageFlags:
    def test_dead_modem_transmit_still_raises(self):
        sim = Simulator()
        channel, a, b = build_pair(sim)
        a.enabled = False
        with pytest.raises(RuntimeError, match="failed modem"):
            a.transmit(control_frame(FrameType.RTS, 0, 1, timestamp=0.0))

    def test_tx_outage_swallows_silently(self):
        sim = Simulator()
        channel, a, b = build_pair(sim)
        b.on_receive = lambda f, arr: pytest.fail("suppressed frame delivered")
        a.tx_enabled = False
        duration = a.transmit(control_frame(FrameType.RTS, 0, 1, timestamp=0.0))
        sim.run()
        assert duration == 0.0
        assert a.stats.tx_suppressed == 1
        assert a.stats.tx_frames == 0  # never made it onto the air
        assert not a.transmitting

    def test_tx_outage_end_restores_normal_service(self):
        sim = Simulator()
        channel, a, b = build_pair(sim)
        received = []
        b.on_receive = lambda f, arr: received.append(f.src)
        a.tx_enabled = False
        sim.schedule(0.0, a.transmit, control_frame(FrameType.RTS, 0, 1, timestamp=0.0))
        def restore():
            a.tx_enabled = True
        sim.schedule(5.0, restore)
        sim.schedule(6.0, a.transmit, control_frame(FrameType.RTS, 0, 1, timestamp=0.0))
        sim.run()
        assert received == [0]
        assert a.stats.tx_suppressed == 1

    def test_rx_outage_drops_the_leading_edge(self):
        sim = Simulator()
        channel, a, b = build_pair(sim)
        b.on_receive = lambda f, arr: pytest.fail("outage frame decoded")
        b.rx_enabled = False
        sim.schedule(0.0, a.transmit, control_frame(FrameType.RTS, 0, 1, timestamp=0.0))
        # Re-enabling mid-flight must not resurrect a never-begun arrival.
        def restore():
            b.rx_enabled = True
        sim.schedule(1.0 + CONTROL_S / 2, restore)
        sim.run()
        assert b.stats.rx_outage == 1
        assert b.stats.rx_ok == 0

    def test_rx_outage_mid_flight_is_offline_not_failure_callback(self):
        sim = Simulator()
        channel, a, b = build_pair(sim)
        callbacks = []
        b.on_receive = lambda f, arr: callbacks.append("rx")
        b.on_rx_failure = lambda arr, out: callbacks.append(out)
        def cut():
            b.rx_enabled = False
        sim.schedule(0.0, a.transmit, data_frame(0, 1, 0.0, size_bits=2048))
        sim.schedule(1.05, cut)  # arrival in flight over [1.0, ~1.17]
        sim.run()
        # The OFFLINE path is silent toward the MAC: no decode, no
        # failure callback (the MAC must recover by timeout, not signal).
        assert callbacks == []
        assert b.stats.rx_outage == 1

    def test_node_death_mid_flight_is_offline(self):
        sim = Simulator()
        channel, a, b = build_pair(sim)
        b.on_receive = lambda f, arr: pytest.fail("dead modem decoded")
        def kill():
            b.enabled = False
        sim.schedule(0.0, a.transmit, data_frame(0, 1, 0.0, size_bits=2048))
        sim.schedule(1.05, kill)
        sim.run()
        assert b.stats.rx_outage == 1
        assert b.stats.outcome_count(RxOutcome.OFFLINE) == 1


class TestPruning:
    def test_stale_tx_intervals_are_pruned(self):
        sim = Simulator()
        channel, a, b = build_pair(sim)
        for t in (0.0, 10.0, 20.0):
            sim.schedule(t, a.transmit, control_frame(FrameType.RTS, 0, 1, timestamp=0.0))
        sim.run()
        # Each new TX prunes intervals past the retention horizon
        # (now - longest duration seen), so only the latest survives.
        assert len(a._tx_intervals) == 1
        assert a._tx_intervals[0].start == pytest.approx(20.0)

    def test_stale_arrivals_are_pruned_after_decode(self):
        sim = Simulator()
        channel, a, b = build_pair(sim)
        for t in (0.0, 50.0):
            sim.schedule(t, a.transmit, data_frame(0, 1, 0.0, size_bits=2048))
        sim.run()
        assert b.stats.rx_ok + b.stats.rx_noise == 2  # both resolved
        assert len(b._arrivals) <= 1  # the first one aged out

    def test_retention_horizon_tracks_longest_frame(self):
        sim = Simulator()
        channel, a, b = build_pair(sim)
        sim.schedule(0.0, a.transmit, data_frame(0, 1, 0.0, size_bits=4096))
        sim.run()
        assert a._max_duration_s == pytest.approx(4096 / 12_000)
        sim2 = Simulator()
        channel2, a2, b2 = build_pair(sim2)
        sim2.schedule(0.0, a2.transmit, control_frame(FrameType.RTS, 0, 1, timestamp=0.0))
        sim2.run()
        assert a2._max_duration_s == pytest.approx(CONTROL_S)
