"""Unit tests for the vectorized kernel's per-node epoch semantics.

Complements ``test_linkcache.py`` (which covers the facade API): these
tests pin the *granularity* of invalidation — moving one node must dirty
exactly that node's row and column, a static deployment must compute each
pair exactly once, and mid-run registration must match the uncached path.
"""

import numpy as np
import pytest

from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator
from repro.phy.channel import AcousticChannel


def build_channel(positions, **channel_kwargs):
    sim = Simulator()
    channel = AcousticChannel(sim, **channel_kwargs)
    holder = list(positions)
    for node_id in range(len(holder)):
        channel.create_modem(node_id, lambda i=node_id: holder[i])
    return sim, channel, holder


def warm_all_rows(channel):
    for node_id in channel.node_ids:
        channel.link_cache.broadcast_row(node_id)


class TestPerNodeEpochs:
    # The in-reach delta bound is disabled here: these tests pin the exact
    # per-pair recompute arithmetic of the epoch machinery, which the
    # in-reach skip deliberately defers (covered in test_spatial_grid.py).
    def test_moving_one_node_dirties_exactly_its_row_and_column(self):
        positions = [
            Position(0, 0, 0),
            Position(1000, 0, 0),
            Position(0, 1000, 0),
            Position(700, 700, 0),
        ]
        _, channel, holder = build_channel(positions, use_inreach_delta=False)
        warm_all_rows(channel)
        stats = channel.stats
        n = len(positions)
        assert stats.cache_misses == n * (n - 1)
        assert stats.vector_batches == n
        assert stats.rows_refreshed == 0

        holder[2] = Position(0, 1200, 0)
        channel.note_position_change(2)

        # Row 0: only the (0, 2) pair is stale -> one miss, n-2 hits.
        misses0, hits0 = stats.cache_misses, stats.cache_hits
        channel.link_cache.broadcast_row(0)
        assert stats.cache_misses == misses0 + 1
        assert stats.cache_hits == hits0 + (n - 2)
        assert stats.rows_refreshed == 1

        # Row 2 (the moved node): every pair is stale -> n-1 misses.
        misses2 = stats.cache_misses
        channel.link_cache.broadcast_row(2)
        assert stats.cache_misses == misses2 + (n - 1)
        assert stats.rows_refreshed == 2

        # Second query of row 0 with nothing moved: pure fast-path hits.
        hits_before = stats.cache_hits
        misses_before = stats.cache_misses
        channel.link_cache.broadcast_row(0)
        assert stats.cache_hits == hits_before + (n - 1)
        assert stats.cache_misses == misses_before
        assert stats.rows_refreshed == 2

    def test_refresh_leaves_unmoved_entries_bit_identical(self):
        positions = [
            Position(0, 0, 0),
            Position(900, 100, 50),
            Position(100, 1100, 0),
            Position(650, 720, 10),
        ]
        _, channel, holder = build_channel(positions, use_inreach_delta=False)
        row = channel.link_cache.broadcast_row(0)
        before_dist = row.distance_m.copy()
        before_delay = row.delay_s.copy()
        before_level = row.level_db.copy()

        holder[2] = Position(100, 1300, 0)
        channel.note_position_change(2)
        row = channel.link_cache.broadcast_row(0)

        for j in (1, 3):  # pairs not touching the moved node: exact reuse
            assert row.distance_m[j] == before_dist[j]
            assert row.delay_s[j] == before_delay[j]
            assert row.level_db[j] == before_level[j]
        assert row.distance_m[2] != before_dist[2]
        assert row.distance_m[2] == pytest.approx(
            Position(0, 0, 0).distance_to(holder[2])
        )

    def test_static_deployment_computes_each_pair_exactly_once(self):
        positions = [Position(0, 0, 0), Position(800, 0, 0), Position(0, 900, 100)]
        _, channel, _ = build_channel(positions)
        n = len(positions)
        for _ in range(4):  # repeated broadcasts from every node
            warm_all_rows(channel)
        stats = channel.stats
        assert stats.cache_misses == n * (n - 1)  # one compute per directed pair
        assert stats.vector_batches == n  # one build per row, no refreshes
        assert stats.rows_refreshed == 0
        assert stats.cache_hits == 3 * n * (n - 1)

    def test_global_invalidate_dirties_everything(self):
        positions = [Position(0, 0, 0), Position(1000, 0, 0), Position(0, 500, 0)]
        _, channel, holder = build_channel(positions, use_inreach_delta=False)
        warm_all_rows(channel)
        holder[0] = Position(10, 0, 0)
        holder[1] = Position(990, 0, 0)
        channel.note_position_change()  # out-of-band move: no node_id known
        misses = channel.stats.cache_misses
        n = len(positions)
        warm_all_rows(channel)
        assert channel.stats.cache_misses == misses + n * (n - 1)
        assert channel.distance_m(0, 1) == pytest.approx(980.0)


class TestMidRunRegistration:
    def test_new_modem_visible_on_next_broadcast(self):
        positions = [Position(0, 0, 0), Position(1000, 0, 0)]
        _, channel, holder = build_channel(positions)
        row = channel.link_cache.broadcast_row(0)
        assert row.n == 2

        holder.append(Position(0, 700, 0))
        channel.create_modem(2, lambda: holder[2])
        row = channel.link_cache.broadcast_row(0)
        assert row.n == 3
        assert channel.neighbors_of(0) == (1, 2)

    def test_registration_matches_uncached_channel(self):
        positions = [Position(0, 0, 0), Position(1200, 0, 0)]
        _, cached, cached_holder = build_channel(positions)
        _, uncached, uncached_holder = build_channel(positions, use_link_cache=False)
        warm_all_rows(cached)

        late = Position(300, 800, 40)
        for channel, holder in ((cached, cached_holder), (uncached, uncached_holder)):
            holder.append(late)
            channel.create_modem(2, lambda h=holder: h[2])

        for a in range(3):
            for b in range(3):
                if a == b:
                    continue
                assert cached.distance_m(a, b) == uncached.distance_m(a, b)
                assert cached.propagation_delay_s(a, b) == uncached.propagation_delay_s(a, b)
            assert cached.neighbors_of(a) == uncached.neighbors_of(a)


class TestKernelGrowth:
    def test_array_growth_past_initial_capacity(self):
        # The kernel starts with capacity 64; registering past it must
        # preserve coordinates and epochs across the array doubling.
        positions = [Position(float(i), 0, 0) for i in range(100)]
        _, channel, _ = build_channel(positions)
        kernel = channel.link_cache._kernel
        assert kernel._n == 100
        assert channel.distance_m(0, 99) == pytest.approx(99.0)
        np.testing.assert_array_equal(kernel._epoch[:100], np.zeros(100))

    def test_self_pair_never_delivered(self):
        positions = [Position(0, 0, 0), Position(100, 0, 0)]
        _, channel, _ = build_channel(positions)
        row = channel.link_cache.broadcast_row(0)
        targets = channel.link_cache.deliveries(row)
        assert [t[0] for t in targets] == [1]
        assert not row.in_reach[0]
        assert not row.in_decode[0]
