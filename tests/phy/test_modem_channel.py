"""Unit tests for the half-duplex modem and the broadcast channel."""

import pytest

from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator
from repro.phy.channel import AcousticChannel
from repro.phy.frame import FrameType, control_frame, data_frame
from repro.phy.modem import RxOutcome


def build_pair(sim, distance_m=1500.0, **channel_kwargs):
    channel = AcousticChannel(sim, **channel_kwargs)
    pos_a, pos_b = Position(0, 0, 0), Position(distance_m, 0, 0)
    a = channel.create_modem(0, lambda: pos_a)
    b = channel.create_modem(1, lambda: pos_b)
    return channel, a, b


class TestDelivery:
    def test_frame_arrives_after_propagation_delay(self):
        sim = Simulator()
        channel, a, b = build_pair(sim, distance_m=1500.0)
        received = []
        b.on_receive = lambda f, arr: received.append((sim.now, f, arr))
        frame = control_frame(FrameType.RTS, 0, 1, timestamp=0.0)
        sim.schedule(0.0, a.transmit, frame)
        sim.run()
        assert len(received) == 1
        time, rx_frame, arrival = received[0]
        # 1500 m at 1500 m/s = 1.0 s, plus 64/12000 s on-air time.
        assert time == pytest.approx(1.0 + 64 / 12_000)
        assert arrival.delay_s == pytest.approx(1.0)
        assert rx_frame.uid == frame.uid

    def test_out_of_range_not_delivered(self):
        sim = Simulator()
        channel, a, b = build_pair(sim, distance_m=5000.0)
        received = []
        b.on_receive = lambda f, arr: received.append(f)
        sim.schedule(0.0, a.transmit, control_frame(FrameType.RTS, 0, 1, timestamp=0.0))
        sim.run()
        assert received == []
        assert channel.stats.out_of_range_skips == 1

    def test_sender_does_not_hear_itself(self):
        sim = Simulator()
        channel, a, b = build_pair(sim)
        a.on_receive = lambda f, arr: pytest.fail("sender heard itself")
        sim.schedule(0.0, a.transmit, control_frame(FrameType.RTS, 0, 1, timestamp=0.0))
        sim.run()

    def test_timestamp_stamped_at_transmission(self):
        sim = Simulator()
        channel, a, b = build_pair(sim)
        seen = []
        b.on_receive = lambda f, arr: seen.append(arr.start - f.timestamp)
        frame = control_frame(FrameType.RTS, 0, 1, timestamp=-99.0)
        sim.schedule(2.5, a.transmit, frame)
        sim.run()
        # measured delay == true propagation delay, regardless of the stale stamp
        assert seen[0] == pytest.approx(1.0)


class TestHalfDuplex:
    def test_reception_fails_while_transmitting(self):
        sim = Simulator()
        channel, a, b = build_pair(sim, distance_m=1500.0)
        failures = []
        b.on_rx_failure = lambda arr, out: failures.append(out)
        b.on_receive = lambda f, arr: pytest.fail("should not decode")
        # a's data arrives at b during [1.0, 1.17]; b transmits at 1.05.
        sim.schedule(0.0, a.transmit, data_frame(0, 1, 0.0, size_bits=2048))
        sim.schedule(1.05, b.transmit, control_frame(FrameType.RTS, 1, 0, timestamp=0.0))
        sim.run()
        assert failures == [RxOutcome.HALF_DUPLEX]
        assert b.stats.rx_half_duplex == 1

    def test_transmit_while_transmitting_raises(self):
        sim = Simulator()
        channel, a, b = build_pair(sim)
        sim.schedule(0.0, a.transmit, data_frame(0, 1, 0.0, size_bits=4096))
        def second():
            with pytest.raises(RuntimeError):
                a.transmit(control_frame(FrameType.RTS, 0, 1, timestamp=0.0))
        sim.schedule(0.1, second)
        sim.run()

    def test_transmitting_property(self):
        sim = Simulator()
        channel, a, b = build_pair(sim)
        assert not a.transmitting
        checks = []
        sim.schedule(0.0, a.transmit, data_frame(0, 1, 0.0, size_bits=2048))
        sim.schedule(0.1, lambda: checks.append(a.transmitting))
        sim.schedule(0.2, lambda: checks.append(a.transmitting))
        sim.run()
        assert checks == [True, False]  # 2048/12000 = 0.171 s


class TestCollision:
    def test_overlapping_equal_power_arrivals_collide(self):
        sim = Simulator()
        channel = AcousticChannel(sim)
        positions = {
            0: Position(0, 0, 0),
            1: Position(1000, 0, 0),
            2: Position(2000, 0, 0),
        }
        modems = {
            nid: channel.create_modem(nid, lambda p=pos: p)
            for nid, pos in positions.items()
        }
        outcomes = []
        modems[1].on_rx_failure = lambda arr, out: outcomes.append(out)
        modems[1].on_receive = lambda f, arr: outcomes.append("ok")
        # both at 1000 m from node 1: identical delay, full overlap
        sim.schedule(0.0, modems[0].transmit, data_frame(0, 1, 0.0, size_bits=2048))
        sim.schedule(0.0, modems[2].transmit, data_frame(2, 1, 0.0, size_bits=2048))
        sim.run()
        assert outcomes == [RxOutcome.COLLISION, RxOutcome.COLLISION]
        assert modems[1].stats.rx_collision == 2

    def test_non_overlapping_arrivals_both_decode(self):
        sim = Simulator()
        channel = AcousticChannel(sim)
        positions = {
            0: Position(0, 0, 0),
            1: Position(750, 0, 0),
            2: Position(2000, 0, 0),
        }
        modems = {
            nid: channel.create_modem(nid, lambda p=pos: p)
            for nid, pos in positions.items()
        }
        received = []
        modems[1].on_receive = lambda f, arr: received.append(f.src)
        # delays to node 1: 0.5 s and ~0.83 s; control frames are 5.3 ms,
        # so the arrivals do not overlap.
        sim.schedule(0.0, modems[0].transmit, control_frame(FrameType.RTS, 0, 1, timestamp=0.0))
        sim.schedule(0.0, modems[2].transmit, control_frame(FrameType.RTS, 2, 1, timestamp=0.0))
        sim.run()
        assert sorted(received) == [0, 2]


class TestChannelQueries:
    def test_neighbors_and_delay(self):
        sim = Simulator()
        channel, a, b = build_pair(sim, distance_m=1200.0)
        assert channel.neighbors_of(0) == (1,)
        assert channel.distance_m(0, 1) == pytest.approx(1200.0)
        assert channel.propagation_delay_s(0, 1) == pytest.approx(0.8)

    def test_max_propagation_delay_and_omega(self):
        sim = Simulator()
        channel = AcousticChannel(sim)
        assert channel.max_propagation_delay_s() == pytest.approx(1.0)
        assert channel.control_duration_s(64) == pytest.approx(64 / 12_000)

    def test_duplicate_node_id_rejected(self):
        sim = Simulator()
        channel = AcousticChannel(sim)
        channel.create_modem(0, lambda: Position(0, 0, 0))
        with pytest.raises(ValueError):
            channel.create_modem(0, lambda: Position(1, 1, 1))

    def test_invalid_parameters_rejected(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            AcousticChannel(sim, bitrate_bps=0.0)
        with pytest.raises(ValueError):
            AcousticChannel(sim, max_range_m=-1.0)
        with pytest.raises(ValueError):
            AcousticChannel(sim, interference_range_factor=0.5)

    def test_interference_range_delivers_but_does_not_decode(self):
        sim = Simulator()
        channel, a, b = build_pair(sim, distance_m=2500.0, interference_range_factor=2.0)
        outcomes = []
        b.on_receive = lambda f, arr: outcomes.append("ok")
        b.on_rx_failure = lambda arr, out: outcomes.append(out)
        sim.schedule(0.0, a.transmit, data_frame(0, 1, 0.0))
        sim.run()
        # Beyond decode range (threshold calibrated to 1.5 km) the lone
        # frame fails as noise, but the energy was delivered (it can jam).
        assert outcomes == [RxOutcome.NOISE]
