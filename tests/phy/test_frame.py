"""Unit tests for frames."""

import pytest

from repro.phy.frame import (
    BROADCAST,
    CONTROL_PACKET_BITS,
    FrameType,
    control_frame,
    data_frame,
)


def test_control_frame_has_table2_size():
    frame = control_frame(FrameType.RTS, 1, 2, timestamp=0.0)
    assert frame.size_bits == CONTROL_PACKET_BITS == 64


def test_control_frame_rejects_data_types():
    with pytest.raises(ValueError):
        control_frame(FrameType.DATA, 1, 2, timestamp=0.0)


def test_data_frame_flags_extra():
    normal = data_frame(1, 2, 0.0)
    extra = data_frame(1, 2, 0.0, extra=True)
    assert normal.ftype is FrameType.DATA
    assert extra.ftype is FrameType.EXDATA
    assert extra.ftype.is_extra and extra.ftype.is_data


def test_data_frame_size_positive():
    with pytest.raises(ValueError):
        data_frame(1, 2, 0.0, size_bits=0)


def test_duration_at_table2_bitrate():
    frame = control_frame(FrameType.CTS, 1, 2, timestamp=0.0)
    # 64 bits at 12 kbps = 5.333 ms (the paper's omega).
    assert frame.duration_s(12_000.0) == pytest.approx(64 / 12_000)
    with pytest.raises(ValueError):
        frame.duration_s(0.0)


def test_frame_uids_unique():
    frames = [control_frame(FrameType.RTS, 1, 2, timestamp=0.0) for _ in range(10)]
    assert len({f.uid for f in frames}) == 10


def test_copy_for_retry_gets_new_uid():
    frame = data_frame(1, 2, 0.0, foo="bar")
    retry = frame.copy_for_retry()
    assert retry.uid != frame.uid
    assert retry.info == frame.info
    assert retry.info is not frame.info


def test_describe_broadcast():
    frame = control_frame(FrameType.HELLO, 3, BROADCAST, timestamp=0.0)
    assert frame.describe() == "HELLO 3->bcast"


def test_frame_type_classification():
    assert FrameType.RTS.is_control and not FrameType.RTS.is_data
    assert FrameType.EXDATA.is_data and FrameType.EXDATA.is_extra
    assert FrameType.DATA.is_data and not FrameType.DATA.is_extra
    assert FrameType.EXR.is_control and FrameType.EXR.is_extra
    assert FrameType.NEIGH.is_control
