"""Unit tests for the bandwidth-utilization metrics."""

import pytest

from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator
from repro.mac.sfama import SFama
from repro.mac.slots import make_slot_timing
from repro.metrics.utilization import network_utilization
from repro.net.node import Node
from repro.phy.channel import AcousticChannel


def build_macs(sim, n=2):
    channel = AcousticChannel(sim)
    timing = make_slot_timing(12_000.0, 64, 1500.0, 1500.0)
    return [
        SFama(sim, Node(sim, i, Position(i * 300.0, 0, 100), channel), channel, timing)
        for i in range(n)
    ]


def test_data_utilization_fraction_of_capacity():
    sim = Simulator()
    macs = build_macs(sim)
    macs[0].stats.data_received_bits = 120_000  # of 12kbps * 100 s = 1.2 Mb
    report = network_utilization(macs, duration_s=100.0, bitrate_bps=12_000.0)
    assert report.data_utilization == pytest.approx(0.1)
    assert report.received_bits == 120_000
    assert report.capacity_bits == pytest.approx(1.2e6)


def test_airtime_averages_over_nodes():
    sim = Simulator()
    macs = build_macs(sim, n=2)
    macs[0].node.modem.stats.tx_time_s = 10.0
    macs[1].node.modem.stats.rx_busy_time_s = 30.0
    report = network_utilization(macs, duration_s=100.0, bitrate_bps=12_000.0)
    assert report.airtime_utilization == pytest.approx(0.2)


def test_spatial_reuse_can_exceed_one():
    sim = Simulator()
    macs = build_macs(sim)
    macs[0].stats.data_received_bits = 2_400_000
    report = network_utilization(macs, duration_s=100.0, bitrate_bps=12_000.0)
    assert report.data_utilization == pytest.approx(2.0)


def test_invalid_inputs():
    sim = Simulator()
    macs = build_macs(sim)
    with pytest.raises(ValueError):
        network_utilization(macs, 0.0, 12_000.0)
    with pytest.raises(ValueError):
        network_utilization(macs, 10.0, 0.0)


def test_scenario_result_exposes_utilization_and_dict():
    from repro.experiments import run_scenario, table2_config

    result = run_scenario(
        table2_config(n_sensors=12, sim_time_s=40.0, offered_load_kbps=0.8, seed=2)
    )
    assert result.utilization.data_utilization > 0.0
    assert 0.0 <= result.utilization.airtime_utilization <= 1.0
    summary = result.to_dict()
    assert summary["protocol"] == "EW-MAC"
    assert summary["throughput_kbps"] == result.throughput_kbps
    assert "drain_time_s" not in summary  # steady-state run
