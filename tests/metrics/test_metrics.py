"""Unit tests for the metrics layer (paper Eqs. 2-4 and overhead)."""

import pytest

from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator
from repro.energy.model import EnergyReport
from repro.mac.sfama import SFama
from repro.mac.slots import make_slot_timing
from repro.metrics.efficiency import EfficiencyIndex, efficiency_index
from repro.metrics.execution import mean_delivery_delay_s
from repro.metrics.overhead import (
    MEMORY_BITS_PER_ENTRY,
    network_overhead,
    overhead_ratio,
)
from repro.metrics.throughput import (
    ThroughputReport,
    network_throughput,
    offered_vs_carried,
)
from repro.net.node import Node
from repro.phy.channel import AcousticChannel


def build_macs(sim, n=3):
    channel = AcousticChannel(sim)
    timing = make_slot_timing(12_000.0, 64, 1500.0, 1500.0)
    macs = []
    for i in range(n):
        node = Node(sim, i, Position(i * 200.0, 0, 100), channel)
        macs.append(SFama(sim, node, channel, timing))
    return macs


class TestThroughput:
    def test_eq3_sums_received_bits_over_t(self):
        sim = Simulator()
        macs = build_macs(sim)
        macs[0].stats.data_received_bits = 10_000
        macs[1].stats.opportunistic_received_bits = 5_000
        report = network_throughput(macs, duration_s=300.0)
        assert report.total_bits == 15_000
        assert report.kbps == pytest.approx(15_000 / 300.0 / 1000.0)
        assert report.bps == pytest.approx(50.0)

    def test_invalid_duration(self):
        sim = Simulator()
        with pytest.raises(ValueError):
            network_throughput(build_macs(sim), 0.0)

    def test_offered_vs_carried(self):
        sim = Simulator()
        macs = build_macs(sim)
        macs[0].stats.data_received_bits = 600
        assert offered_vs_carried(macs, offered_bits=1200, duration_s=10.0) == 0.5
        assert offered_vs_carried(macs, offered_bits=0, duration_s=10.0) == 0.0


class TestOverhead:
    def test_components_summed(self):
        sim = Simulator()
        macs = build_macs(sim, n=2)
        macs[0].stats.ctrl_sent_bits = 100
        macs[0].stats.piggyback_bits = 20
        macs[0].stats.maintenance_tx_bits = 30
        macs[1].stats.retransmitted_bits = 50
        macs[1].stats.computation_units = 10.0
        macs[1].node.neighbors.observe(0, 0.1, 0.0)
        report = network_overhead(macs)
        assert report.control_bits == 100
        assert report.piggyback_bits == 20
        assert report.maintenance_bits == 30
        assert report.retransmitted_bits == 50
        assert report.computation_units == 10.0
        # S-FAMA requires no neighbour info: no memory charge (Sec. 5.3)
        assert report.memory_units == 0.0
        assert report.total_units == 210

    def test_memory_charged_for_neighbor_info_protocols(self):
        from repro.core.ewmac import EwMac
        from repro.acoustic.geometry import Position
        from repro.phy.channel import AcousticChannel
        from repro.net.node import Node
        from repro.mac.slots import make_slot_timing

        sim = Simulator()
        channel = AcousticChannel(sim)
        node = Node(sim, 0, Position(0, 0, 100), channel)
        timing = make_slot_timing(12_000.0, 64, 1500.0, 1500.0)
        mac = EwMac(sim, node, channel, timing)
        node.neighbors.observe(1, 0.5, 0.0)
        report = network_overhead([mac])
        assert report.memory_units == MEMORY_BITS_PER_ENTRY

    def test_ratio_vs_baseline(self):
        sim = Simulator()
        base_macs = build_macs(sim, n=1)
        base_macs[0].stats.ctrl_sent_bits = 100
        baseline = network_overhead(base_macs)
        sim2 = Simulator()
        heavy_macs = build_macs(sim2, n=1)
        heavy_macs[0].stats.ctrl_sent_bits = 250
        heavy = network_overhead(heavy_macs)
        assert overhead_ratio(heavy, baseline) == pytest.approx(2.5)

    def test_zero_baseline_rejected(self):
        sim = Simulator()
        report = network_overhead(build_macs(sim, n=1))
        with pytest.raises(ValueError):
            overhead_ratio(report, report)


class TestEfficiency:
    def test_eq4_value(self):
        index = EfficiencyIndex(throughput_kbps=0.3, power_mw=150.0)
        assert index.value == pytest.approx(0.002)

    def test_relative_to_baseline(self):
        sfama = EfficiencyIndex(0.29, 100.0)
        ewmac = EfficiencyIndex(0.37, 95.0)
        assert ewmac.relative_to(sfama) > 1.0
        assert sfama.relative_to(sfama) == pytest.approx(1.0)

    def test_zero_power_is_zero_efficiency(self):
        assert EfficiencyIndex(0.5, 0.0).value == 0.0

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            EfficiencyIndex(0.3, 100.0).relative_to(EfficiencyIndex(0.0, 100.0))

    def test_from_reports(self):
        throughput = ThroughputReport(total_bits=90_000, duration_s=300.0, per_node_bits=[])
        energy = EnergyReport(total_j=30.0, duration_s=300.0, per_node_j=[1.0])
        index = efficiency_index(throughput, energy)
        assert index.throughput_kbps == pytest.approx(0.3)
        assert index.power_mw == pytest.approx(100.0)


class TestDelay:
    def test_mean_delivery_delay(self):
        sim = Simulator()
        macs = build_macs(sim, n=2)
        macs[0].node.app_stats.delivery_delay_total_s = 10.0
        macs[0].node.app_stats.sent = 2
        macs[1].node.app_stats.delivery_delay_total_s = 5.0
        macs[1].node.app_stats.sent = 3
        nodes = [m.node for m in macs]
        assert mean_delivery_delay_s(nodes) == pytest.approx(3.0)

    def test_no_sends_is_zero(self):
        sim = Simulator()
        nodes = [m.node for m in build_macs(sim, n=1)]
        assert mean_delivery_delay_s(nodes) == 0.0
