"""Post-run invariant audit: wedged-handshake detection and MAC hardening.

The acceptance scenario for the robustness work lives here: a 20% crash
wave (plus outages, a clock fault, and a noise burst) must complete for
every protocol under the *strict* audit — a peer dying mid-exchange may
cost throughput, never wedge a state machine.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.experiments.chaos import CHAOS_PROTOCOLS, chaos_plan
from repro.experiments.config import table2_config
from repro.experiments.scenario import run_scenario
from repro.faults.audit import FaultAuditError, audit_mac, audit_macs
from repro.faults.plan import CrashWave, FaultPlan
from repro.mac.base import MacState
from repro.mac.registry import get_protocol
from repro.mac.slots import make_slot_timing
from repro.net.node import Node
from repro.phy.channel import AcousticChannel

from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator


def build_mac(protocol="S-FAMA"):
    sim = Simulator(seed=1)
    channel = AcousticChannel(sim)
    node = Node(sim, 0, Position(0.0, 0.0, 100.0), channel)
    timing = make_slot_timing(
        bitrate_bps=12_000.0, control_bits=64, max_range_m=1500.0, speed_mps=1500.0
    )
    mac = get_protocol(protocol)(sim, node, channel, timing)
    return sim, mac


def quick_config(protocol, fraction=0.2, strict=True, seed=1):
    base = table2_config(n_sensors=20, sim_time_s=60.0, protocol=protocol, seed=seed)
    plan = chaos_plan(fraction, base.warmup_s, base.sim_time_s, base.n_sensors)
    return base.with_(faults=dataclasses.replace(plan, strict_audit=strict))


class TestAuditMechanics:
    def test_unstarted_mac_is_exempt(self):
        _, mac = build_mac()
        mac.state = MacState.WAIT_CTS  # never started: frozen state is fine
        assert audit_mac(mac) == []

    def test_dead_mac_is_exempt(self):
        _, mac = build_mac()
        mac.node.fail()
        assert audit_mac(mac) == []

    def test_dead_slot_engine_reported_first(self):
        sim, mac = build_mac()
        mac.start()
        sim.run(until=10.0)
        mac.sim.cancel(mac._slot_event)
        violations = audit_mac(mac)
        assert violations == [f"{mac.name} node 0: slot engine not running"]

    @pytest.mark.parametrize(
        "state, expect",
        [
            (MacState.WAIT_CTS, "WAIT_CTS without a live CTS timeout"),
            (MacState.WAIT_ACK, "WAIT_ACK without a live Ack timeout"),
            (MacState.WAIT_SEND_DATA, "WAIT_SEND_DATA without a data due slot"),
            (MacState.WAIT_DATA, "WAIT_DATA without a live data timeout"),
        ],
    )
    def test_orphaned_wait_states_detected(self, state, expect):
        sim, mac = build_mac()
        mac.start()
        sim.run(until=10.0)
        mac.state = state  # wedge it: no escape event was scheduled
        violations = audit_mac(mac)
        assert len(violations) == 1
        assert expect in violations[0]

    def test_wait_cts_with_live_timeout_is_clean(self):
        sim, mac = build_mac()
        mac.start()
        sim.run(until=10.0)
        mac.state = MacState.WAIT_CTS
        mac._cts_timeout = sim.schedule(5.0, lambda: None)
        assert audit_mac(mac) == []

    def test_audit_macs_aggregates(self):
        sim, mac = build_mac()
        mac.start()
        sim.run(until=10.0)
        mac.state = MacState.WAIT_CTS
        violations = audit_macs([mac, mac])
        assert len(violations) == 2

    def test_error_message_counts_violations(self):
        err = FaultAuditError(["a wedged", "b wedged"])
        assert "2 wedged handshake(s)" in str(err)
        assert err.violations == ("a wedged", "b wedged")


class TestRestartCleansState:
    @pytest.mark.parametrize("protocol", CHAOS_PROTOCOLS)
    def test_restart_returns_to_auditable_idle(self, protocol):
        sim, mac = build_mac(protocol)
        mac.start()
        sim.run(until=10.0)
        mac.state = MacState.WAIT_CTS  # simulate a wedge...
        mac.restart()  # ...then the crash/recover path
        sim.run(until=20.0)
        assert mac.state is MacState.IDLE
        assert audit_mac(mac) == []


class TestAcceptanceScenario:
    """The ISSUE's 20%-crash bar, per protocol, under the strict audit."""

    @pytest.mark.parametrize("protocol", CHAOS_PROTOCOLS)
    def test_crash_wave_run_completes_clean(self, protocol):
        result = run_scenario(quick_config(protocol))
        report = result.faults
        assert report is not None
        assert report.wedged_handshakes == 0
        assert report.audit_violations == ()
        assert report.crashes > 0
        assert report.recoveries > 0
        assert 0.0 < result.delivery_ratio
        # Recovered nodes resumed application-level work.
        assert report.recovery_times_s
        assert report.mean_recovery_time_s > 0.0

    def test_same_seed_reproduces_the_result_and_fault_log(self):
        first = run_scenario(quick_config("EW-MAC"))
        second = run_scenario(quick_config("EW-MAC"))
        assert first.to_dict() == second.to_dict()
        assert first.faults.events == second.faults.events

    def test_strict_audit_raises_on_a_wedge(self, monkeypatch):
        # Force a violation to prove the strict path actually raises.
        monkeypatch.setattr(
            "repro.experiments.scenario.audit_macs",
            lambda macs: ["synthetic wedge"],
        )
        with pytest.raises(FaultAuditError, match="synthetic wedge"):
            run_scenario(quick_config("S-FAMA"))

    def test_lax_audit_reports_instead_of_raising(self, monkeypatch):
        monkeypatch.setattr(
            "repro.experiments.scenario.audit_macs",
            lambda macs: ["synthetic wedge"],
        )
        result = run_scenario(quick_config("S-FAMA", strict=False))
        assert result.faults.wedged_handshakes == 1
        assert result.faults.audit_violations == ("synthetic wedge",)


class TestFaultlessScenario:
    def test_fraction_zero_plan_reports_nothing(self):
        base = table2_config(n_sensors=10, sim_time_s=20.0)
        plan = chaos_plan(0.0, base.warmup_s, base.sim_time_s, base.n_sensors)
        assert plan.empty
        result = run_scenario(base.with_(faults=plan))
        assert result.faults is None

    def test_full_wave_with_recovery_still_audits_clean(self):
        base = table2_config(n_sensors=10, sim_time_s=40.0, protocol="EW-MAC")
        plan = FaultPlan(
            waves=(CrashWave(at_s=base.warmup_s + 10.0, fraction=1.0, recover_after_s=10.0),)
        )
        result = run_scenario(base.with_(faults=plan))
        assert result.faults.crashes == 10  # every non-sink died
        assert result.faults.recoveries == 10
        assert result.faults.wedged_handshakes == 0
