"""Unit tests for the declarative fault plans."""

from __future__ import annotations

import pickle

import pytest

from repro.experiments.cache import cell_key
from repro.experiments.config import table2_config
from repro.faults.plan import (
    ClockFault,
    CrashWave,
    FaultPlan,
    ModemOutage,
    NodeCrash,
    NoiseBurst,
)


class TestValidation:
    def test_crash_rejects_negative_time(self):
        with pytest.raises(ValueError):
            NodeCrash(node_id=1, at_s=-1.0)

    def test_crash_rejects_nonpositive_recovery(self):
        with pytest.raises(ValueError):
            NodeCrash(node_id=1, at_s=10.0, recover_after_s=0.0)

    def test_wave_fraction_bounds(self):
        with pytest.raises(ValueError):
            CrashWave(at_s=10.0, fraction=0.0)
        with pytest.raises(ValueError):
            CrashWave(at_s=10.0, fraction=1.5)
        CrashWave(at_s=10.0, fraction=1.0)  # inclusive upper bound

    def test_wave_rejects_negative_jitter(self):
        with pytest.raises(ValueError):
            CrashWave(at_s=10.0, fraction=0.2, jitter_s=-1.0)

    def test_outage_direction_checked(self):
        with pytest.raises(ValueError):
            ModemOutage(node_id=1, at_s=5.0, duration_s=2.0, direction="sideways")
        for direction in ("tx", "rx", "both"):
            ModemOutage(node_id=1, at_s=5.0, duration_s=2.0, direction=direction)

    def test_outage_duration_positive(self):
        with pytest.raises(ValueError):
            ModemOutage(node_id=1, at_s=5.0, duration_s=0.0)

    def test_clock_fault_must_do_something(self):
        with pytest.raises(ValueError):
            ClockFault(node_id=1, at_s=5.0)
        ClockFault(node_id=1, at_s=5.0, offset_jump_s=0.01)
        ClockFault(node_id=1, at_s=5.0, drift_ppm=2.0)

    def test_noise_burst_rejects_zero_db(self):
        with pytest.raises(ValueError):
            NoiseBurst(at_s=5.0, duration_s=2.0, extra_noise_db=0.0)
        NoiseBurst(at_s=5.0, duration_s=2.0, extra_noise_db=-3.0)  # quieting ok


class TestPlan:
    def test_empty_plan_is_falsy(self):
        plan = FaultPlan()
        assert plan.empty
        assert not plan

    def test_any_fault_makes_it_truthy(self):
        plan = FaultPlan(crashes=(NodeCrash(node_id=1, at_s=10.0),))
        assert not plan.empty
        assert plan

    def test_sequences_coerced_to_tuples(self):
        plan = FaultPlan(crashes=[NodeCrash(node_id=1, at_s=10.0)])
        assert isinstance(plan.crashes, tuple)
        hash(plan)  # hashable only because the coercion happened

    def test_pickle_round_trip(self):
        plan = FaultPlan(
            crashes=(NodeCrash(node_id=1, at_s=10.0, recover_after_s=5.0),),
            waves=(CrashWave(at_s=20.0, fraction=0.2),),
            outages=(ModemOutage(node_id=2, at_s=5.0, duration_s=3.0),),
            clock_faults=(ClockFault(node_id=3, at_s=8.0, drift_ppm=5.0),),
            noise_bursts=(NoiseBurst(at_s=12.0, duration_s=4.0, extra_noise_db=6.0),),
        )
        assert pickle.loads(pickle.dumps(plan)) == plan


class TestCacheKey:
    """The result-cache key must separate configs by their fault plan."""

    def test_default_and_explicit_empty_plan_share_a_key(self):
        base = table2_config()
        explicit = base.with_(faults=FaultPlan())
        assert cell_key(base, None) == cell_key(explicit, None)

    def test_differing_plans_hash_differently(self):
        base = table2_config()
        plan_a = FaultPlan(waves=(CrashWave(at_s=85.0, fraction=0.2),))
        plan_b = FaultPlan(waves=(CrashWave(at_s=85.0, fraction=0.3),))
        keys = {
            cell_key(base, None),
            cell_key(base.with_(faults=plan_a), None),
            cell_key(base.with_(faults=plan_b), None),
        }
        assert len(keys) == 3

    def test_equal_plans_hash_equally(self):
        base = table2_config()
        plan = FaultPlan(waves=(CrashWave(at_s=85.0, fraction=0.2),))
        assert cell_key(base.with_(faults=plan), None) == cell_key(
            base.with_(faults=FaultPlan(waves=(CrashWave(at_s=85.0, fraction=0.2),))),
            None,
        )

    def test_strict_audit_is_part_of_the_key(self):
        base = table2_config()
        wave = (CrashWave(at_s=85.0, fraction=0.2),)
        strict = base.with_(faults=FaultPlan(waves=wave, strict_audit=True))
        lax = base.with_(faults=FaultPlan(waves=wave, strict_audit=False))
        assert cell_key(strict, None) != cell_key(lax, None)
