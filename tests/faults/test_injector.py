"""Unit tests for the fault injector (plan -> scheduled DES events)."""

from __future__ import annotations

import pytest

from repro.acoustic.geometry import Position
from repro.des.simulator import Simulator
from repro.faults.injector import FaultInjector
from repro.faults.plan import (
    ClockFault,
    CrashWave,
    FaultPlan,
    ModemOutage,
    NodeCrash,
    NoiseBurst,
)
from repro.net.node import Node
from repro.phy.channel import AcousticChannel


def build_network(sim, count=5, sinks=(0,)):
    """A channel plus ``count`` bare nodes (no MAC) on a 500 m line."""
    channel = AcousticChannel(sim)
    nodes = [
        Node(
            sim,
            node_id,
            Position(node_id * 500.0, 0.0, 100.0),
            channel,
            is_sink=node_id in sinks,
        )
        for node_id in range(count)
    ]
    return channel, nodes


def run_injector(sim, channel, nodes, plan, until=100.0):
    injector = FaultInjector(sim, nodes, channel, plan)
    injector.arm()
    sim.schedule_at(until, lambda: None)  # keep the horizon fixed
    sim.run(until=until)
    return injector


class TestLifecycle:
    def test_empty_plan_refused(self):
        sim = Simulator(seed=1)
        channel, nodes = build_network(sim)
        with pytest.raises(ValueError):
            FaultInjector(sim, nodes, channel, FaultPlan())

    def test_double_arm_refused(self):
        sim = Simulator(seed=1)
        channel, nodes = build_network(sim)
        plan = FaultPlan(crashes=(NodeCrash(node_id=1, at_s=10.0),))
        injector = FaultInjector(sim, nodes, channel, plan)
        injector.arm()
        with pytest.raises(RuntimeError):
            injector.arm()

    def test_unknown_node_id_rejected_at_arm(self):
        sim = Simulator(seed=1)
        channel, nodes = build_network(sim)
        plan = FaultPlan(crashes=(NodeCrash(node_id=99, at_s=10.0),))
        injector = FaultInjector(sim, nodes, channel, plan)
        with pytest.raises(ValueError, match="node 99"):
            injector.arm()


class TestCrashAndRecovery:
    def test_crash_then_recover(self):
        sim = Simulator(seed=1)
        channel, nodes = build_network(sim)
        victim = nodes[2]
        victim.enqueue_data(0, 1024)
        plan = FaultPlan(
            crashes=(NodeCrash(node_id=2, at_s=10.0, recover_after_s=20.0),)
        )
        timeline = []
        sim.schedule_at(15.0, lambda: timeline.append(victim.alive))
        sim.schedule_at(40.0, lambda: timeline.append(victim.alive))
        injector = run_injector(sim, channel, nodes, plan)
        assert timeline == [False, True]
        assert not victim.queue  # queued data died with the node
        assert victim.recovered_at == pytest.approx(30.0)
        assert injector.counts.crashes == 1
        assert injector.counts.recoveries == 1
        assert [(e.time_s, e.kind) for e in injector.events] == [
            (10.0, "crash"),
            (30.0, "recover"),
        ]

    def test_permanent_crash_never_recovers(self):
        sim = Simulator(seed=1)
        channel, nodes = build_network(sim)
        plan = FaultPlan(crashes=(NodeCrash(node_id=3, at_s=10.0),))
        injector = run_injector(sim, channel, nodes, plan)
        assert not nodes[3].alive
        assert injector.counts.recoveries == 0

    def test_overlapping_crashes_counted_once(self):
        sim = Simulator(seed=1)
        channel, nodes = build_network(sim)
        plan = FaultPlan(
            crashes=(
                NodeCrash(node_id=2, at_s=10.0),
                NodeCrash(node_id=2, at_s=12.0),
            )
        )
        injector = run_injector(sim, channel, nodes, plan)
        assert injector.counts.crashes == 1


class TestWave:
    def test_wave_spares_sinks_and_kills_the_fraction(self):
        sim = Simulator(seed=7)
        channel, nodes = build_network(sim, count=11, sinks=(0,))
        plan = FaultPlan(waves=(CrashWave(at_s=10.0, fraction=0.5),))
        run_injector(sim, channel, nodes, plan)
        dead = [n.node_id for n in nodes if not n.alive]
        assert len(dead) == 5  # round(0.5 * 10 eligible)
        assert 0 not in dead  # the sink survives by construction

    def test_same_seed_kills_the_same_nodes(self):
        victims = []
        for _ in range(2):
            sim = Simulator(seed=7)
            channel, nodes = build_network(sim, count=11, sinks=(0,))
            plan = FaultPlan(
                waves=(CrashWave(at_s=10.0, fraction=0.3, jitter_s=5.0),)
            )
            injector = run_injector(sim, channel, nodes, plan)
            victims.append(tuple(injector.events))
        assert victims[0] == victims[1]

    def test_different_seed_differs(self):
        victims = []
        for seed in (7, 8):
            sim = Simulator(seed=seed)
            channel, nodes = build_network(sim, count=11, sinks=(0,))
            plan = FaultPlan(waves=(CrashWave(at_s=10.0, fraction=0.3),))
            injector = run_injector(sim, channel, nodes, plan)
            victims.append(tuple(e.node_id for e in injector.events))
        assert victims[0] != victims[1]


class TestOutages:
    def test_tx_outage_window(self):
        sim = Simulator(seed=1)
        channel, nodes = build_network(sim)
        modem = nodes[1].modem
        plan = FaultPlan(
            outages=(ModemOutage(node_id=1, at_s=10.0, duration_s=5.0, direction="tx"),)
        )
        snapshots = []
        sim.schedule_at(12.0, lambda: snapshots.append((modem.tx_enabled, modem.rx_enabled)))
        injector = run_injector(sim, channel, nodes, plan)
        assert snapshots == [(False, True)]
        assert modem.tx_enabled and modem.rx_enabled  # restored at 15 s
        assert injector.counts.tx_outages == 1
        assert injector.counts.rx_outages == 0

    def test_both_outage_counts_both_chains(self):
        sim = Simulator(seed=1)
        channel, nodes = build_network(sim)
        plan = FaultPlan(
            outages=(
                ModemOutage(node_id=2, at_s=10.0, duration_s=5.0, direction="both"),
            )
        )
        injector = run_injector(sim, channel, nodes, plan)
        assert injector.counts.tx_outages == 1
        assert injector.counts.rx_outages == 1
        kinds = [e.kind for e in injector.events]
        assert kinds == ["outage_start", "outage_end"]


class TestClockAndNoise:
    def test_clock_fault_applied(self):
        sim = Simulator(seed=1)
        channel, nodes = build_network(sim)
        clock = nodes[3].clock
        plan = FaultPlan(
            clock_faults=(
                ClockFault(node_id=3, at_s=10.0, offset_jump_s=0.05, drift_ppm=5.0),
            )
        )
        injector = run_injector(sim, channel, nodes, plan)
        assert clock.drift_ppm == 5.0
        # Continuity: local(10 s) jumped by exactly the injected offset.
        assert clock.to_local(10.0) == pytest.approx(10.05)
        assert injector.counts.clock_faults == 1

    def test_noise_burst_raises_then_restores_the_floor(self):
        sim = Simulator(seed=1)
        channel, nodes = build_network(sim)
        plan = FaultPlan(
            noise_bursts=(NoiseBurst(at_s=10.0, duration_s=5.0, extra_noise_db=6.0),)
        )
        levels = []
        sim.schedule_at(12.0, lambda: levels.append(channel.extra_noise_db))
        injector = run_injector(sim, channel, nodes, plan)
        assert levels == [6.0]
        assert channel.extra_noise_db == 0.0
        assert injector.counts.noise_bursts == 1

    def test_overlapping_bursts_stack(self):
        sim = Simulator(seed=1)
        channel, nodes = build_network(sim)
        plan = FaultPlan(
            noise_bursts=(
                NoiseBurst(at_s=10.0, duration_s=10.0, extra_noise_db=6.0),
                NoiseBurst(at_s=15.0, duration_s=10.0, extra_noise_db=3.0),
            )
        )
        levels = []
        sim.schedule_at(17.0, lambda: levels.append(channel.extra_noise_db))
        run_injector(sim, channel, nodes, plan)
        assert levels == [pytest.approx(9.0)]
        assert channel.extra_noise_db == pytest.approx(0.0)


class TestReport:
    def test_report_carries_counters_and_violations(self):
        sim = Simulator(seed=1)
        channel, nodes = build_network(sim)
        plan = FaultPlan(
            crashes=(NodeCrash(node_id=1, at_s=10.0, recover_after_s=5.0),)
        )
        injector = run_injector(sim, channel, nodes, plan)
        report = injector.build_report(["node 4: wedged"])
        assert report.crashes == 1
        assert report.recoveries == 1
        assert report.wedged_handshakes == 1
        assert report.audit_violations == ("node 4: wedged",)
        assert report.events == tuple(injector.events)
        assert report.to_dict()["fault_crashes"] == 1

    def test_mean_recovery_time_defaults_to_zero(self):
        sim = Simulator(seed=1)
        channel, nodes = build_network(sim)
        plan = FaultPlan(crashes=(NodeCrash(node_id=1, at_s=10.0),))
        injector = run_injector(sim, channel, nodes, plan)
        report = injector.build_report([])
        assert report.recovery_times_s == ()
        assert report.mean_recovery_time_s == 0.0
