"""Fig. 8 benchmark: execution time (batch drain) vs offered load.

Paper expectation: drain time grows with the batch size; protocols that
exploit waiting resources drain faster than S-FAMA, with differences
insignificant below ~20 packets per 300 s.
"""

from conftest import check_figure, emit

from repro.experiments.figures import fig8


def test_fig8_execution_time_vs_load(one_shot):
    data = one_shot(fig8, quick=True)
    emit(data)
    check_figure(data, "fig8")
    for protocol, series in data.series.items():
        # larger batches take longer to drain
        assert series[-1] > series[0], f"{protocol} drain time did not grow"
        assert all(v > 0 for v in series)
