"""Fig. 7 benchmark: throughput vs sensor density at 0.8 kbps.

Paper expectation: denser deployments shorten links, shrinking the
exploitable waiting time — the opportunistic protocols decline toward the
(density-invariant) S-FAMA line.
"""

from conftest import check_figure, emit

from repro.experiments.figures import fig7


def test_fig7_throughput_vs_density(one_shot):
    data = one_shot(fig7, quick=True)
    emit(data)
    check_figure(data, "fig7")
    # every series stays within the paper's qualitative band: positive
    # throughput at every density, and the spread between the best
    # opportunistic protocol and S-FAMA narrows or stays bounded.
    sfama = data.series["S-FAMA"]
    for protocol in ("ROPA", "CS-MAC", "EW-MAC"):
        series = data.series[protocol]
        assert all(v > 0 for v in series)
        gap_first = series[0] - sfama[0]
        gap_last = series[-1] - sfama[-1]
        # quick mode is noisy; require only that the gap does not explode
        assert gap_last <= max(gap_first * 2.0, gap_first + 0.25)
