"""Fig. 11 benchmark: Eq. (4) efficiency index, S-FAMA normalized to 1.

Paper expectation: EW-MAC posts the best efficiency (throughput per unit
power); the baseline is 1 by construction.
"""

from conftest import check_figure, emit

from repro.experiments.figures import fig11


def test_fig11_efficiency_index(one_shot):
    data = one_shot(fig11, quick=True)
    emit(data)
    check_figure(data, "fig11")
    for i in range(len(data.x_values)):
        assert data.series["S-FAMA"][i] == 1.0
    # EW-MAC's efficiency advantage (higher throughput at comparable power)
    top = len(data.x_values) - 1
    assert data.series["EW-MAC"][top] > 0.9
