"""Ablation benchmarks: the design-choice studies DESIGN.md calls out.

These are our experiments (the paper does not publish them); each checks
the qualitative claim its docstring states, at quick-mode scale.
"""

from conftest import emit

from repro.experiments.ablations import (
    ablation_aloha_anchor,
    ablation_clock_skew,
    ablation_deployment_density,
    ablation_interference_range,
    ablation_packet_size,
)


def test_ablation_packet_size(one_shot):
    """Paper Sec. 2: larger packets amortize the slot cost for everyone."""
    data = one_shot(ablation_packet_size, quick=True)
    emit(data)
    for protocol, series in data.series.items():
        assert series[-1] > series[0] * 0.9, f"{protocol} lost from larger packets"


def test_ablation_clock_skew(one_shot):
    """Slot misalignment must not *improve* a slotted protocol."""
    data = one_shot(ablation_clock_skew, quick=True)
    emit(data)
    for protocol, series in data.series.items():
        assert series[-1] <= series[0] * 1.15, f"{protocol} improved under skew"


def test_ablation_interference_range(one_shot):
    """Wider interference lowers everyone's throughput ceiling."""
    data = one_shot(ablation_interference_range, quick=True)
    emit(data)
    for protocol, series in data.series.items():
        assert series[-1] <= series[0] * 1.2, protocol


def test_ablation_deployment_density(one_shot):
    """Small volumes are contention-limited: lower ceiling than Table 2's."""
    data = one_shot(ablation_deployment_density, quick=True)
    emit(data)
    sfama = data.series["S-FAMA"]
    assert sfama[0] <= sfama[-1] * 1.5  # dense <= sparse (with slack)


def test_ablation_aloha_anchor(one_shot):
    """The no-negotiation anchor runs and carries traffic at every load."""
    data = one_shot(ablation_aloha_anchor, quick=True)
    emit(data)
    assert all(v > 0 for v in data.series["ALOHA"])
