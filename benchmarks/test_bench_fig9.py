"""Fig. 9 benchmarks: power consumption vs load (a) and node count (b).

Paper expectation: EW-MAC draws the least power (no two-hop upkeep, fast
transfers); ROPA and CS-MAC pay for maintaining and transmitting two-hop
neighbour information, increasingly so as the network densifies.
"""

from conftest import check_figure, emit

from repro.experiments.figures import fig9a, fig9b


def test_fig9a_power_vs_load(one_shot):
    data = one_shot(fig9a, quick=True)
    emit(data)
    check_figure(data, "fig9a")
    for protocol, series in data.series.items():
        assert all(v > 0 for v in series)
    # the two-hop protocols pay a visible power premium over EW-MAC
    top = len(data.x_values) - 1
    assert data.series["ROPA"][top] > data.series["EW-MAC"][top]
    assert data.series["CS-MAC"][top] > data.series["EW-MAC"][top]


def test_fig9b_power_vs_node_count(one_shot):
    data = one_shot(fig9b, quick=True)
    emit(data)
    check_figure(data, "fig9b")
    # power grows with node count for every protocol...
    for protocol, series in data.series.items():
        assert series[-1] > series[0], protocol
    # ...but the two-hop protocols grow faster than EW-MAC (paper Fig. 9b)
    ew_growth = data.series["EW-MAC"][-1] - data.series["EW-MAC"][0]
    ropa_growth = data.series["ROPA"][-1] - data.series["ROPA"][0]
    cs_growth = data.series["CS-MAC"][-1] - data.series["CS-MAC"][0]
    assert ropa_growth > ew_growth
    assert cs_growth > ew_growth
