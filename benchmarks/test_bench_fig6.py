"""Fig. 6 benchmark: throughput vs offered load, four protocols.

Paper expectation: throughput rises with offered load and saturates;
waiting-resource protocols (ROPA / CS-MAC / EW-MAC) sit at or above the
S-FAMA baseline once the network is loaded.
"""

from conftest import check_figure, emit

from repro.experiments.figures import fig6


def test_fig6_throughput_vs_offered_load(one_shot, sweep_workers):
    data = one_shot(fig6, quick=True, workers=sweep_workers)
    emit(data)
    check_figure(data, "fig6")
    # throughput does not shrink from the lightest to the heaviest load
    # (quick mode runs one seed; a saturated protocol may plateau exactly)
    for protocol, series in data.series.items():
        assert series[-1] >= series[0] * 0.95, f"{protocol} shrank with load"
    # at the highest load the idle-exploiting protocols are not below the
    # conservative baseline (paper Fig. 6 ordering, loose quick-mode form)
    top = len(data.x_values) - 1
    assert data.series["EW-MAC"][top] >= data.series["S-FAMA"][top] * 0.9
