#!/usr/bin/env python
"""Gate pytest-benchmark results against a committed baseline.

Usage::

    python benchmarks/check_regression.py CURRENT.json BASELINE.json \
        [--threshold 0.25]

Compares each benchmark's mean wall time in ``CURRENT.json`` (a
``pytest --benchmark-json`` export) against the same benchmark in
``BASELINE.json``.  Exits non-zero if any benchmark's mean regressed by
more than ``--threshold`` (default 25%).  A missing baseline file, or a
benchmark absent from the baseline, is reported and *skipped* rather than
failed, so the gate cannot block the PR that introduces a new benchmark —
commit a refreshed baseline to arm it.  The reverse direction is a
failure: a baseline benchmark **missing from the candidate** export means
a benchmark silently stopped running (deleted, renamed, or collected
away), and the gate reports it with a clear FAIL instead of pretending
the suite still passes.  Malformed entries in either export are skipped
with a warning rather than crashing the gate with a KeyError.

Baselines are machine-dependent: refresh the committed file from the CI
runner class it gates (see docs/reproduction_guide.md, "Performance").
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path
from typing import Dict, List, Optional

DEFAULT_THRESHOLD = 0.25


def load_means(path: Path) -> Dict[str, float]:
    """Benchmark name -> mean seconds from a pytest-benchmark JSON export."""
    data = json.loads(path.read_text())
    means: Dict[str, float] = {}
    for bench in data.get("benchmarks", []):
        try:
            means[bench["fullname"]] = float(bench["stats"]["mean"])
        except (KeyError, TypeError, ValueError):
            label = bench.get("fullname", "<unnamed>") if isinstance(bench, dict) else bench
            print(f"SKIP  {label}: malformed benchmark entry in {path}")
    return means


def compare(
    current: Dict[str, float],
    baseline: Dict[str, float],
    threshold: float,
    failures: Optional[List[str]] = None,
) -> int:
    """Print a verdict per benchmark; return the number of regressions.

    When ``failures`` is given, one line per regressed/missing benchmark —
    including the measured-over-baseline ratio — is appended to it, so the
    caller's final failure message can name how far over baseline each
    offender landed (CI logs truncate the per-benchmark section when the
    export is long, but the summary always survives).
    """
    regressions = 0
    missing = sorted(name for name in baseline if name not in current)
    for name in missing:
        print(
            f"FAIL  {name}: present in baseline but missing from the "
            "candidate export (benchmark deleted or not collected?)"
        )
        if failures is not None:
            failures.append(f"{name}: missing from the candidate export")
    regressions += len(missing)
    for name, mean in sorted(current.items()):
        base = baseline.get(name)
        if base is None:
            print(f"SKIP  {name}: not in baseline (commit a refreshed one)")
            continue
        if base <= 0:
            print(f"SKIP  {name}: baseline mean is {base} (unusable)")
            continue
        ratio = mean / base
        verdict = "FAIL" if ratio > 1.0 + threshold else "ok"
        print(
            f"{verdict:4s}  {name}: {mean:.3f}s vs baseline {base:.3f}s "
            f"({ratio - 1.0:+.1%})"
        )
        if ratio > 1.0 + threshold:
            regressions += 1
            if failures is not None:
                failures.append(
                    f"{name}: {ratio:.2f}x baseline "
                    f"({ratio - 1.0:+.1%}, {mean:.3f}s vs {base:.3f}s)"
                )
    return regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("current", type=Path, help="fresh --benchmark-json export")
    parser.add_argument("baseline", type=Path, help="committed baseline export")
    parser.add_argument(
        "--threshold",
        type=float,
        default=DEFAULT_THRESHOLD,
        help="allowed fractional slowdown before failing (default 0.25)",
    )
    args = parser.parse_args(argv)
    if not args.current.exists():
        print(f"error: current results {args.current} not found", file=sys.stderr)
        return 2
    if not args.baseline.exists():
        print(
            f"SKIP  baseline {args.baseline} not found; benchmark gate is "
            "unarmed until a baseline is committed"
        )
        return 0
    current = load_means(args.current)
    baseline = load_means(args.baseline)
    if not current:
        print("error: current export contains no benchmarks", file=sys.stderr)
        return 2
    failures: List[str] = []
    regressions = compare(current, baseline, args.threshold, failures=failures)
    if regressions:
        print(
            f"\n{regressions} benchmark(s) regressed more than "
            f"{args.threshold:.0%} or went missing; if intentional, "
            "refresh the baseline."
        )
        for line in failures:
            print(f"  {line}")
        return 1
    print("\nno benchmark regressed beyond the threshold")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
