"""Shared helpers for the benchmark suite.

Every benchmark regenerates one of the paper's evaluation artifacts
(Table 2 or Figs. 6-11) in *quick* mode — coarser sweep axis, single seed,
shorter measurement window — so the whole suite runs in minutes.  The full
fidelity runs are available via the CLI: ``repro-uasn <figure>``.

pytest-benchmark measures the wall-clock cost of regenerating each
artifact; the generated series themselves are printed so the run doubles
as a reproduction report (captured with ``-s`` or in the benchmark log).
"""

from __future__ import annotations

import inspect

import pytest

from repro.experiments.engine import observe_sweeps
from repro.experiments.figures import FigureData
from repro.experiments.report import format_figure


def pytest_addoption(parser):
    parser.addoption(
        "--workers",
        type=int,
        default=1,
        help="run figure sweeps through the parallel engine with N worker "
        "processes (0 = CPU count; default 1 = serial)",
    )
    parser.addoption(
        "--use-cache",
        action="store_true",
        help="reuse the on-disk result cache ($REPRO_CACHE_DIR or "
        "./.repro-cache) and print hit/miss counts; only sensible with "
        "--benchmark-disable, since cached cells skip the work being timed",
    )


@pytest.fixture
def sweep_workers(request):
    """Worker count for benchmarks that route through the sweep engine.

    ``--workers 0`` maps to None (CPU count) per the engine's convention.
    """
    workers = request.config.getoption("--workers")
    return None if workers == 0 else workers


def emit(data: FigureData) -> FigureData:
    """Print a regenerated figure (visible with ``pytest -s``)."""
    print()
    print(format_figure(data))
    return data


def check_figure(data: FigureData, figure_id: str) -> None:
    """Structural sanity shared by every figure benchmark."""
    assert data.figure_id == figure_id
    assert data.x_values == sorted(data.x_values)
    assert set(data.series) == {"S-FAMA", "ROPA", "CS-MAC", "EW-MAC"}
    for protocol, series in data.series.items():
        assert len(series) == len(data.x_values), protocol
        assert all(v >= 0.0 for v in series), protocol


@pytest.fixture
def one_shot(benchmark, request):
    """Run the expensive artifact generation exactly once under timing.

    With ``--use-cache`` the figure runners reuse the on-disk result
    cache (the CI smoke jobs warm it across runs) and the cache traffic
    is printed after the run.
    """
    use_cache = request.config.getoption("--use-cache")

    def run(fn, *args, **kwargs):
        if use_cache and "cache" in inspect.signature(fn).parameters:
            kwargs.setdefault("cache", True)
        with observe_sweeps() as observer:
            result = benchmark.pedantic(
                fn, args=args, kwargs=kwargs, rounds=1, iterations=1
            )
        if use_cache:
            print(f"\n{observer.cache_line()}")
        return result

    return run
