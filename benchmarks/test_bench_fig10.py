"""Fig. 10 benchmarks: overhead ratio vs node count (a) and load (b).

Paper expectation (S-FAMA = 1): ROPA ~1.5x; CS-MAC and EW-MAC 2-3x with
CS-MAC above EW-MAC (its control packets carry *two-hop* digests), and
EW-MAC's overhead growing flattest with node count.
"""

from conftest import check_figure, emit

from repro.experiments.figures import fig10a, fig10b


def _check_ordering(data):
    for i in range(len(data.x_values)):
        assert data.series["S-FAMA"][i] == 1.0
        assert data.series["ROPA"][i] > 1.0
        assert data.series["EW-MAC"][i] > 1.0
        assert data.series["CS-MAC"][i] > data.series["EW-MAC"][i]


def test_fig10a_overhead_vs_node_count(one_shot):
    data = one_shot(fig10a, quick=True)
    emit(data)
    check_figure(data, "fig10a")
    _check_ordering(data)


def test_fig10b_overhead_vs_load(one_shot):
    data = one_shot(fig10b, quick=True)
    emit(data)
    check_figure(data, "fig10b")
    _check_ordering(data)
