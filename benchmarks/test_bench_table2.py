"""Table 2 benchmark: one full default-parameter scenario run.

Validates that the scenario builder realizes exactly the paper's published
simulation parameters and measures the cost of one 300 s, 60-sensor,
EW-MAC simulation at those defaults.
"""

import pytest

from repro.experiments import Scenario, table2_config
from repro.experiments.config import TABLE2


def run_table2_scenario():
    config = table2_config(protocol="EW-MAC", offered_load_kbps=0.5)
    scenario = Scenario(config)
    result = scenario.run_steady_state()
    return scenario, result


def test_table2_defaults_and_run(one_shot):
    scenario, result = one_shot(run_table2_scenario)
    config = scenario.config
    # Table 2 row by row
    assert config.n_sensors == TABLE2["number_of_sensors"]
    assert (config.side_m / 1000.0) ** 3 == pytest.approx(TABLE2["deployment_area_km3"])
    assert config.bitrate_bps == TABLE2["bandwidth_kbps"] * 1000.0
    assert config.comm_range_m == TABLE2["communication_range_km"] * 1000.0
    assert config.sound_speed_mps == TABLE2["acoustic_speed_km_s"] * 1000.0
    assert config.sim_time_s == TABLE2["simulation_time_s"]
    assert config.control_bits == TABLE2["control_packet_bits"]
    lo, hi = TABLE2["data_packet_bits_range"]
    assert lo <= config.data_packet_bits <= hi
    # the run produced traffic under those parameters
    assert result.throughput_kbps > 0
    print(
        f"\nTable 2 run: throughput={result.throughput_kbps:.3f} kbps, "
        f"power={result.power_mw:.0f} mW, collisions={result.collisions}, "
        f"extras={result.extra_completed}"
    )
