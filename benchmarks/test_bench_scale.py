"""Scale benchmark: one quick 300-node mobile cell of the scale sweep.

Times the same tiled, constant-density deployment the ``repro-uasn scale``
sweep runs at its quick upper node count, with every cull and the bulk
fan-out enabled — the configuration whose wall time the spatial grid,
delta-epoch bounds and batched arrival scheduling are supposed to protect.
The run is also a liveness check on the new machinery: a mobile 300-node
cell must actually exercise the in-reach skip and the bulk push path, not
just tolerate them.
"""

from repro.experiments.scale import QUICK_NODES, scale_config
from repro.experiments.scenario import run_scenario


def test_scale_quick_mobile_cell(one_shot):
    n = QUICK_NODES[-1]  # 300 nodes: the largest quick-sweep cell
    config = scale_config(n, sim_time_s=8.0, seed=1)
    result = one_shot(run_scenario, config)
    perf = result.perf
    assert perf is not None
    assert perf.events > 0
    print(
        f"\nscale n={n}: {perf.events:,} events, "
        f"{perf.events_per_second:,.0f} ev/s, "
        f"cache hit {perf.cache_hit_rate:.1%}, "
        f"{perf.rows_skipped_delta:,} delta skips, "
        f"{perf.rows_skipped_inreach:,} in-reach skips, "
        f"{perf.bulk_pushes:,} bulk pushes ({perf.bulk_events:,} events)"
    )
    # The mobile cell must drive the new fast paths, not merely allow them.
    assert perf.rows_skipped_inreach > 0
    assert perf.bulk_pushes > 0
    assert perf.bulk_events >= perf.bulk_pushes
