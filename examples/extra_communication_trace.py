#!/usr/bin/env python3
"""Reproduce the paper's Figs. 2, 4 and 5 as an event timeline.

Three sensors — a hub *j* and two contenders *i* and *k* — contend for the
same receiver in the same slot.  The winner runs a normal four-way
handshake; the loser exploits the waiting periods with EW-MAC's extra
communication (EXR -> EXC -> EXData -> EXAck, timed by the paper's Eq. 6).
The script prints the full over-the-air timeline with slot annotations so
the exploited idle windows are visible.

Run:
    python examples/extra_communication_trace.py
"""

from repro.acoustic.geometry import Position
from repro.core.ewmac import EwMac
from repro.des.simulator import Simulator
from repro.des.trace import Tracer
from repro.mac.slots import make_slot_timing
from repro.net.node import Node
from repro.phy.channel import AcousticChannel


def build_and_run(seed: int):
    sim = Simulator(seed=seed, tracer=Tracer())
    channel = AcousticChannel(sim)
    timing = make_slot_timing(12_000.0, 64, 1500.0, 1500.0)
    positions = {
        "j (hub)": Position(0, 0, 100),
        "i (loser)": Position(0, 450, 100),   # tau_ij = 0.30 s
        "k (winner)": Position(600, 0, 100),  # tau_jk = 0.40 s
    }
    nodes = []
    for node_id, (label, pos) in enumerate(positions.items()):
        node = Node(sim, node_id, pos, channel)
        mac = EwMac(sim, node, channel, timing)
        mac.config.hello_window_s = 2.0
        nodes.append((label, node, mac))
    # both contenders want to send 2048-bit packets to the hub
    nodes[1][1].enqueue_data(0, 2048)
    nodes[2][1].enqueue_data(0, 2048)
    for _, _, mac in nodes:
        mac.start()
    sim.run(until=120.0)
    return sim, nodes, timing


def main() -> None:
    # some seeds resolve by plain backoff; scan for one where the loser
    # completes an extra communication (like the paper's Figs. 4-5 example)
    for seed in range(60):
        sim, nodes, timing = build_and_run(seed)
        if sum(mac.extra_stats.completed for _, _, mac in nodes) >= 1:
            break
    else:
        raise SystemExit("no seed exercised the extra path — unexpected")

    from repro.experiments.timeline import (
        extra_exploitation_summary,
        extract_timeline,
        format_timeline,
    )

    labels = {node.node_id: label for label, node, _ in nodes}
    print(f"seed {seed}: extra communication completed\n")
    print(f"slot duration |ts| = {timing.slot_s:.4f} s "
          f"(omega {timing.omega_s * 1000:.2f} ms + tau_max {timing.tau_max_s:.2f} s)\n")
    entries = extract_timeline(sim, timing)
    print(format_timeline(entries, labels=labels))
    summary = extra_exploitation_summary(entries)
    print(f"\non-grid negotiated frames : {summary['negotiated_on_grid']}")
    print(f"off-grid extra frames     : {summary['extra_off_grid']}")
    print()
    for label, node, mac in nodes:
        es = mac.extra_stats
        print(
            f"{label:12s} sent={node.app_stats.sent} delivered={node.app_stats.delivered} "
            f"extra: requested={es.requested} granted={es.grants_issued} "
            f"completed={es.completed}"
        )
    print("\nNote how EXR/EXC/EXDATA/EXACK start *off* the slot grid — they")
    print("ride the idle waiting periods (paper Fig. 2, blocks I-VII) that")
    print("slotted protocols normally waste.")


if __name__ == "__main__":
    main()
