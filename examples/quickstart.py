#!/usr/bin/env python3
"""Quickstart: run one EW-MAC simulation at the paper's Table 2 defaults.

Builds a 60-sensor underwater network in a 1000 km^3 volume, drives it
with 0.5 kbps of Poisson sensing traffic for 300 simulated seconds, and
prints the paper's headline metrics (Eqs. 2-4).

Run:
    python examples/quickstart.py
"""

from repro.experiments import run_scenario, table2_config


def main() -> None:
    config = table2_config(
        protocol="EW-MAC",
        offered_load_kbps=0.5,
        seed=7,
    )
    print("Building and running the Table 2 scenario "
          f"({config.n_sensors} sensors, {config.sim_time_s:.0f} s)...")
    result = run_scenario(config)

    print()
    print(f"protocol            : {result.protocol}")
    print(f"offered load        : {config.offered_load_kbps} kbps")
    print(f"throughput (Eq. 3)  : {result.throughput_kbps:.3f} kbps")
    print(f"power consumption   : {result.power_mw:.0f} mW (network total)")
    print(f"efficiency (Eq. 4)  : {result.efficiency.value:.6f} kbps/mW")
    print(f"mean delivery delay : {result.mean_delay_s:.1f} s")
    print(f"collisions observed : {result.collisions}")
    print(f"extra communications: {result.extra_completed} completed")
    print()
    print("Try other protocols with table2_config(protocol='S-FAMA' | 'ROPA'")
    print("| 'CS-MAC'), or regenerate a paper figure: repro-uasn fig6 --quick")


if __name__ == "__main__":
    main()
