#!/usr/bin/env python3
"""Protocol shoot-out: all four MACs on identical topology and traffic.

Runs S-FAMA, ROPA, CS-MAC and EW-MAC with the *same seed* — the same
deployment, the same mobility trajectories, the same packet arrival times
— so differences are attributable to the protocols alone (a paired
comparison, the method behind the paper's Figs. 6-11).

Run:
    python examples/protocol_shootout.py [--load 0.8] [--seeds 3]
"""

import argparse

from repro.experiments import run_scenario, table2_config
from repro.experiments.sweeps import PAPER_PROTOCOLS, mean


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--load", type=float, default=0.8, help="offered load (kbps)")
    parser.add_argument("--seeds", type=int, default=3, help="replications")
    parser.add_argument("--time", type=float, default=300.0, help="sim window (s)")
    args = parser.parse_args()

    rows = []
    for protocol in PAPER_PROTOCOLS:
        throughputs, powers, efficiencies, delays = [], [], [], []
        for seed in range(1, args.seeds + 1):
            result = run_scenario(
                table2_config(
                    protocol=protocol,
                    offered_load_kbps=args.load,
                    sim_time_s=args.time,
                    seed=seed,
                )
            )
            throughputs.append(result.throughput_kbps)
            powers.append(result.power_mw)
            efficiencies.append(result.efficiency.value)
            delays.append(result.mean_delay_s)
        rows.append(
            (protocol, mean(throughputs), mean(powers), mean(efficiencies), mean(delays))
        )

    print(f"\nOffered load {args.load} kbps, {args.seeds} seed(s), "
          f"{args.time:.0f} s window (Table 2 defaults otherwise)\n")
    header = f"{'protocol':10s} {'tput kbps':>10s} {'power mW':>10s} {'eff kbps/mW':>12s} {'delay s':>8s}"
    print(header)
    print("-" * len(header))
    baseline_eff = rows[0][3]
    for protocol, tput, power, eff, delay in rows:
        rel = f"({eff / baseline_eff:4.2f}x)" if baseline_eff else ""
        print(f"{protocol:10s} {tput:10.3f} {power:10.0f} {eff:12.6f} {delay:8.1f}  {rel}")
    print("\n(x) = efficiency index relative to S-FAMA, the paper's Fig. 11 view")


if __name__ == "__main__":
    main()
