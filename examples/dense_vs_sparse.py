#!/usr/bin/env python3
"""Density study: how deployment density changes the waiting resources.

The paper's Fig. 7 insight: packing more sensors into the same volume
shortens links, which shrinks propagation delays — and with them the idle
waiting periods that ROPA, CS-MAC and EW-MAC exploit.  This script makes
the mechanism visible: it prints the deployment geometry (mean link length,
mean degree, mean one-hop delay) alongside each protocol's throughput for
a sparse and a dense network.

Run:
    python examples/dense_vs_sparse.py
"""

from repro.experiments import Scenario, table2_config
from repro.experiments.sweeps import PAPER_PROTOCOLS, mean


def describe(n_sensors: int, seed: int = 9):
    scenario = Scenario(table2_config(n_sensors=n_sensors, seed=seed))
    dep = scenario.deployment
    link = dep.mean_link_distance_m()
    return {
        "mean_link_m": link,
        "mean_degree": dep.mean_degree(),
        "mean_delay_s": link / 1500.0,
    }


def throughput(protocol: str, n_sensors: int, seeds=(9, 10, 11)) -> float:
    values = []
    for seed in seeds:
        result = Scenario(
            table2_config(
                protocol=protocol,
                n_sensors=n_sensors,
                offered_load_kbps=0.8,
                sim_time_s=200.0,
                seed=seed,
            )
        ).run_steady_state()
        values.append(result.throughput_kbps)
    return mean(values)


def main() -> None:
    for n_sensors, label in ((60, "sparse (Table 2 default)"), (140, "dense")):
        geo = describe(n_sensors)
        print(f"--- {n_sensors} sensors — {label}")
        print(f"  mean link length : {geo['mean_link_m']:7.0f} m")
        print(f"  mean degree      : {geo['mean_degree']:7.1f} neighbours")
        print(f"  mean 1-hop delay : {geo['mean_delay_s']:7.3f} s "
              f"(of tau_max = 1.000 s)")
        for protocol in PAPER_PROTOCOLS:
            tput = throughput(protocol, n_sensors)
            print(f"  {protocol:10s} throughput at 0.8 kbps: {tput:.3f} kbps")
        print()
    print("Denser networks leave less waiting time to exploit — the paper's")
    print("Fig. 7: the opportunistic protocols drift toward the S-FAMA line.")


if __name__ == "__main__":
    main()
