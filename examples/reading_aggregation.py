#!/usr/bin/env python3
"""Packet-size strategy: send readings raw vs aggregate into large packets.

Paper Sec. 2: "Due to long propagation delay, large packets are more
efficient than multiple small packets ... data should be collected and
then transmitted when the amount of data is sufficient."

This script drives the same sensing process (256-bit readings, Poisson
per sensor) through two application strategies on EW-MAC:

* **raw** — every reading becomes its own MAC packet;
* **aggregated** — a :class:`~repro.net.aggregation.ReadingAggregator`
  coalesces readings into ~2048-bit packets (with an age bound so data
  never goes stale for more than two minutes).

Run:
    python examples/reading_aggregation.py
"""

from repro.des.process import Process
from repro.experiments import Scenario, table2_config
from repro.net.aggregation import ReadingAggregator

READING_BITS = 256
READING_PERIOD_S = 12.0  # per-sensor mean sensing interval


def drive(strategy: str, seed: int = 13):
    config = table2_config(
        protocol="EW-MAC",
        n_sensors=40,
        sim_time_s=300.0,
        offered_load_kbps=0.0,  # traffic comes from the sensing process below
        seed=seed,
    )
    scenario = Scenario(config)
    sim = scenario.sim
    aggregators = {}
    for node in scenario.nodes:
        if node.is_sink:
            continue
        if strategy == "aggregated":
            aggregators[node.node_id] = ReadingAggregator(
                sim,
                node,
                next_hop_fn=lambda nid=node.node_id: scenario.routing.next_hop(nid),
                flush_bits=2048,
                max_age_s=120.0,
            )

        def sensing(node=node):
            rng = sim.streams.get(f"sensing.{node.node_id}")
            while True:
                yield float(rng.exponential(READING_PERIOD_S))
                if strategy == "aggregated":
                    aggregators[node.node_id].add_reading(READING_BITS)
                else:
                    next_hop = scenario.routing.next_hop(node.node_id)
                    if next_hop is not None:
                        node.enqueue_data(next_hop, READING_BITS)

        Process(sim, sensing())
    result = scenario.run_steady_state()
    return scenario, result, aggregators


def main() -> None:
    print("Sensing process: 256-bit readings, ~1 reading / 12 s / sensor, "
          "40 sensors, EW-MAC\n")
    for strategy in ("raw", "aggregated"):
        scenario, result, aggregators = drive(strategy)
        sink = scenario.nodes[scenario.deployment.sink_ids[0]]
        handshakes = sum(m.stats.handshakes_completed for m in scenario.macs)
        print(f"--- {strategy}")
        print(f"  MAC packets completed : {handshakes}")
        print(f"  bits at the buoy      : {sink.app_stats.delivered_bits}")
        print(f"  network power         : {result.power_mw:.0f} mW")
        print(f"  energy per delivered kbit: "
              f"{result.energy.total_j / max(sink.app_stats.delivered_bits / 1000.0, 1e-9):.1f} J")
        if aggregators:
            flushes = sum(a.stats.flushes for a in aggregators.values())
            mean_bits = (
                sum(a.stats.flushed_bits for a in aggregators.values()) / flushes
                if flushes
                else 0
            )
            print(f"  aggregator flushes    : {flushes} "
                  f"(mean packet {mean_bits:.0f} bits)")
        print()
    print("Aggregation moves the same information in far fewer exchanges —")
    print("each 4-slot handshake is amortized over ~8 readings instead of 1.")


if __name__ == "__main__":
    main()
