#!/usr/bin/env python3
"""Domain scenario: a coastal pollution-monitoring UASN.

One of the paper's motivating applications ("pollution monitoring"): a
dense field of sensors at the bottom of a shallow coastal shelf samples
water quality and reports readings to a surface buoy.  Readings are
batched into large data packets (the paper's Sec. 2 guidance: "data should
be collected and then transmitted when the amount of data is sufficient")
and relayed hop by hop toward the surface.

The script compares EW-MAC against S-FAMA on this workload and reports
sink-side delivery statistics — what an operator of the monitoring array
would actually care about.

Run:
    python examples/pollution_monitoring.py
"""

from repro.experiments import Scenario, table2_config


def run(protocol: str, seed: int = 11):
    config = table2_config(
        protocol=protocol,
        n_sensors=80,              # dense shelf deployment
        side_m=6000.0,             # 6 x 6 x 6 km shallow shelf
        offered_load_kbps=0.6,     # periodic batched readings
        data_packet_bits=4096,     # large packets (paper Sec. 2)
        sim_time_s=300.0,
        seed=seed,
    )
    scenario = Scenario(config)
    result = scenario.run_steady_state()
    sink = scenario.nodes[scenario.deployment.sink_ids[0]]
    return scenario, result, sink


def main() -> None:
    print("Coastal pollution-monitoring array: 80 sensors, 6 km shelf, "
          "4096-bit batched readings at 0.6 kbps\n")
    rows = []
    for protocol in ("S-FAMA", "EW-MAC"):
        scenario, result, sink = run(protocol)
        readings = sink.app_stats.delivered
        rows.append((protocol, result, sink, readings))
        print(f"--- {protocol}")
        print(f"  readings at the buoy     : {readings} "
              f"({sink.app_stats.delivered_bits / 8000:.1f} kB)")
        print(f"  MAC throughput (Eq. 3)   : {result.throughput_kbps:.3f} kbps")
        print(f"  mean hop delay           : {result.mean_delay_s:.1f} s")
        print(f"  network power            : {result.power_mw:.0f} mW")
        print(f"  collisions               : {result.collisions}")
        if protocol == "EW-MAC":
            print(f"  extra communications     : {result.extra_completed}")
        print()
    base, ew = rows[0], rows[1]
    if base[3] > 0:
        gain = (ew[3] - base[3]) / base[3] * 100.0
        print(f"EW-MAC delivered {gain:+.0f}% readings to the buoy vs S-FAMA "
              "on the identical deployment and sensing schedule.")


if __name__ == "__main__":
    main()
