#!/usr/bin/env python3
"""Domain scenario: disaster-warning burst drain.

Another of the paper's motivating applications ("disaster warning"): a
seismic event triggers a burst of alarm reports from many sensors at once,
and what matters is how fast the network can *drain* the burst to the
surface — the paper's Fig. 8 "execution time" metric, here on an
operationally-framed workload.

Run:
    python examples/disaster_warning_drain.py
"""

from repro.experiments import Scenario, table2_config
from repro.experiments.sweeps import PAPER_PROTOCOLS


def main() -> None:
    n_alarms = 60
    print(f"Seismic event: {n_alarms} alarm packets injected across the "
          "array; measuring time to drain them to the surface.\n")
    print(f"{'protocol':10s} {'drain s':>9s} {'completed':>10s} {'energy J':>10s}")
    print("-" * 44)
    for protocol in PAPER_PROTOCOLS:
        config = table2_config(
            protocol=protocol,
            n_sensors=60,
            sim_time_s=300.0,
            data_packet_bits=1024,   # short urgent alarms
            seed=23,
            max_retries=100,         # alarms must get through
        )
        scenario = Scenario(config)
        result = scenario.run_batch(n_packets=n_alarms, max_time_s=1800.0)
        execution = result.execution
        status = "TIMEOUT" if execution.timed_out else f"{execution.drain_time_s:9.1f}"
        print(
            f"{protocol:10s} {status:>9s} {execution.completed:10d} "
            f"{result.energy.total_j:10.0f}"
        )
    print("\nProtocols that exploit waiting resources clear the alarm burst")
    print("sooner and with less energy spent idling (paper Figs. 8-9).")


if __name__ == "__main__":
    main()
