"""Ambient ocean noise (Wenz curves, empirical approximation).

Total noise is the power sum of four components — turbulence, distant
shipping, wind-driven surface agitation and thermal noise — each given by
the standard empirical formulas (Stojanovic, "On the relationship between
capacity and distance in an underwater acoustic communication channel").
All levels are dB re 1 uPa per Hz at frequency f in kHz.
"""

from __future__ import annotations

import math
from dataclasses import dataclass


def turbulence_noise_db(frequency_khz: float) -> float:
    """N_t(f) = 17 - 30 log10 f."""
    return 17.0 - 30.0 * math.log10(max(frequency_khz, 1e-6))


def shipping_noise_db(frequency_khz: float, shipping: float) -> float:
    """N_s(f) = 40 + 20(s - 0.5) + 26 log f - 60 log(f + 0.03); s in [0,1]."""
    f = max(frequency_khz, 1e-6)
    return 40.0 + 20.0 * (shipping - 0.5) + 26.0 * math.log10(f) - 60.0 * math.log10(f + 0.03)


def wind_noise_db(frequency_khz: float, wind_mps: float) -> float:
    """N_w(f) = 50 + 7.5 sqrt(w) + 20 log f - 40 log(f + 0.4)."""
    f = max(frequency_khz, 1e-6)
    return 50.0 + 7.5 * math.sqrt(max(wind_mps, 0.0)) + 20.0 * math.log10(f) - 40.0 * math.log10(f + 0.4)


def thermal_noise_db(frequency_khz: float) -> float:
    """N_th(f) = -15 + 20 log10 f."""
    return -15.0 + 20.0 * math.log10(max(frequency_khz, 1e-6))


def _db_to_power(db: float) -> float:
    return 10.0 ** (db / 10.0)


def _power_to_db(power: float) -> float:
    return 10.0 * math.log10(max(power, 1e-30))


@dataclass(frozen=True)
class AmbientNoiseModel:
    """Combined Wenz-style ambient noise.

    Attributes:
        shipping: Shipping activity factor in [0, 1] (0.5 = moderate).
        wind_mps: Surface wind speed in m/s.
    """

    shipping: float = 0.5
    wind_mps: float = 5.0

    def _memo(self) -> dict:
        """Per-instance memo table (lazily attached despite frozen=True).

        Every term is a pure function of (frequency, this instance's frozen
        parameters), yet the link budget queries the same carrier tens of
        thousands of times per simulation — one dict lookup replaces four
        ``log10`` chains on the SINR hot path.  The table never appears in
        the dataclass fields, so equality/hash/pickle are unaffected.
        """
        memo = self.__dict__.get("_level_memo")
        if memo is None:
            memo = {}
            object.__setattr__(self, "_level_memo", memo)
        return memo

    def spectral_density_db(self, frequency_khz: float) -> float:
        """Total noise PSD N(f) in dB re 1 uPa / Hz (power sum of terms)."""
        memo = self._memo()
        level = memo.get(frequency_khz)
        if level is None:
            total = (
                _db_to_power(turbulence_noise_db(frequency_khz))
                + _db_to_power(shipping_noise_db(frequency_khz, self.shipping))
                + _db_to_power(wind_noise_db(frequency_khz, self.wind_mps))
                + _db_to_power(thermal_noise_db(frequency_khz))
            )
            level = _power_to_db(total)
            memo[frequency_khz] = level
        return level

    def band_level_db(self, frequency_khz: float, bandwidth_hz: float) -> float:
        """Noise level integrated over a (narrow) band: N(f) + 10 log10 B."""
        if bandwidth_hz <= 0:
            raise ValueError("bandwidth must be positive")
        memo = self._memo()
        key = (frequency_khz, bandwidth_hz)
        level = memo.get(key)
        if level is None:
            level = self.spectral_density_db(frequency_khz) + 10.0 * math.log10(bandwidth_hz)
            memo[key] = level
        return level
