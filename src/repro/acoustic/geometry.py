"""3-D positions and distances for underwater deployments.

Coordinates are metres.  ``z`` is **depth**, positive downward, so the sea
surface is ``z == 0`` and sinks float at or near it (paper Fig. 1).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable, Tuple


@dataclass(frozen=True)
class Position:
    """An immutable point in the water column (metres; z = depth, +down).

    ``__slots__`` is declared manually (rather than ``slots=True``, which
    needs Python >= 3.10): positions are created per mobility step and per
    geometry query across the whole deployment, and the slotted layout
    both shrinks them and speeds attribute access in ``distance_to``.
    """

    __slots__ = ("x", "y", "z")

    x: float
    y: float
    z: float

    def __getstate__(self) -> Tuple[float, float, float]:
        """Explicit pickle support: frozen + manual ``__slots__`` breaks the
        default slot-state protocol (unpickling would route through the
        frozen ``__setattr__``), and positions sit in every checkpointed
        scenario graph."""
        return (self.x, self.y, self.z)

    def __setstate__(self, state: Tuple[float, float, float]) -> None:
        object.__setattr__(self, "x", state[0])
        object.__setattr__(self, "y", state[1])
        object.__setattr__(self, "z", state[2])

    def distance_to(self, other: "Position") -> float:
        """Euclidean distance in metres.

        Squares are written as explicit multiplications rather than ``** 2``:
        both the scalar hot path and the vectorized broadcast kernel
        (:mod:`repro.phy.vectorized`) must produce bit-identical distances,
        and ``float.__pow__`` routes through libm ``pow`` which does not
        always round identically to ``x * x`` — multiplication is exact IEEE
        arithmetic in both NumPy and CPython (and is faster).
        """
        dx = self.x - other.x
        dy = self.y - other.y
        dz = self.z - other.z
        return math.sqrt(dx * dx + dy * dy + dz * dz)

    def horizontal_distance_to(self, other: "Position") -> float:
        """Distance ignoring depth (useful for mobility models)."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def midpoint(self, other: "Position") -> "Position":
        return Position(
            (self.x + other.x) / 2.0,
            (self.y + other.y) / 2.0,
            (self.z + other.z) / 2.0,
        )

    def translated(self, dx: float = 0.0, dy: float = 0.0, dz: float = 0.0) -> "Position":
        """Return a copy shifted by the given offsets."""
        return Position(self.x + dx, self.y + dy, self.z + dz)

    def clamped(
        self,
        x_range: Tuple[float, float],
        y_range: Tuple[float, float],
        z_range: Tuple[float, float],
    ) -> "Position":
        """Return a copy clamped into the axis-aligned box."""
        return Position(
            min(max(self.x, x_range[0]), x_range[1]),
            min(max(self.y, y_range[0]), y_range[1]),
            min(max(self.z, z_range[0]), z_range[1]),
        )

    def as_tuple(self) -> Tuple[float, float, float]:
        return (self.x, self.y, self.z)


def bounding_box(
    positions: Iterable[Position],
) -> Tuple[Tuple[float, float], Tuple[float, float], Tuple[float, float]]:
    """Axis-aligned bounding box of a non-empty collection of positions."""
    pts = list(positions)
    if not pts:
        raise ValueError("bounding_box of empty collection")
    xs = [p.x for p in pts]
    ys = [p.y for p in pts]
    zs = [p.z for p in pts]
    return ((min(xs), max(xs)), (min(ys), max(ys)), (min(zs), max(zs)))
