"""Propagation-delay models — the Bellhop substitution.

The paper runs NS-3's UAN module with the *Bellhop* ray-tracing propagation
model.  Bellhop is a Fortran binary driven by measured environment files,
neither of which is available offline, so this module provides the closest
synthetic equivalents (documented in DESIGN.md):

* :class:`StraightLinePropagation` — delay = distance / c with the paper's
  nominal c = 1500 m/s.  This is what the paper's protocol math assumes
  (tau = distance * 0.67 s/km) and is the default for all experiments.
* :class:`SspRayPropagation` — delay along the straight path but using the
  harmonic-mean sound speed of a depth-dependent profile (Mackenzie), plus
  an optional random multipath *excess delay* drawn per link.  This
  reproduces the two Bellhop behaviours the MAC layer is sensitive to:
  heterogeneous per-pair delays and slight deviation from the nominal
  distance/1500 estimate.

Both models are deterministic per (pair, epoch): the excess delay is hashed
from the node pair so repeated queries agree, which the protocols require
("stably related propagation delays", paper Sec. 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Tuple

import numpy as np

from ..des.rng import derive_seed
from .geometry import Position
from .soundspeed import NOMINAL_SPEED_MPS, MackenzieProfile, SoundSpeedModel, UniformSoundSpeed


class PropagationModel:
    """Interface: propagation delay between two positions, in seconds."""

    def delay_s(self, a: Position, b: Position, pair: Tuple[int, int] = (0, 0)) -> float:
        raise NotImplementedError

    def delay_s_batch(
        self,
        origin: Position,
        xs: "np.ndarray",
        ys: "np.ndarray",
        zs: "np.ndarray",
        distances_m: "np.ndarray",
        origin_id: int,
        ids: "np.ndarray",
    ) -> "np.ndarray":
        """Delays from ``origin`` to every target, as one array.

        The base implementation loops the scalar :meth:`delay_s` per target
        pair — bit-identical with the scalar path by construction, so any
        subclass (e.g. :class:`SspRayPropagation`, whose per-pair hashed
        multipath draw cannot be vectorized) is automatically correct under
        the vectorized broadcast kernel.  Models whose delay is a pure
        function of geometry should override this with a true vector form
        (see :class:`StraightLinePropagation`).

        Args:
            origin: Transmitter position.
            xs / ys / zs: Target coordinate arrays (one element per target).
            distances_m: Precomputed origin→target distances, bit-identical
                with ``origin.distance_to(target)`` per element.
            origin_id: Transmitting node id (the scalar path's ``pair[0]``).
            ids: Target node ids, aligned with the coordinate arrays.
        """
        out = np.empty(len(ids), dtype=np.float64)
        for k in range(len(ids)):
            out[k] = self.delay_s(
                origin,
                Position(float(xs[k]), float(ys[k]), float(zs[k])),
                pair=(origin_id, int(ids[k])),
            )
        return out

    def speed_mps(self) -> float:
        """Nominal speed used for slot sizing (tau_max computation)."""
        raise NotImplementedError


@dataclass(frozen=True)
class StraightLinePropagation(PropagationModel):
    """Constant-speed straight-ray delay (the paper's nominal physics)."""

    speed: float = NOMINAL_SPEED_MPS

    def delay_s(self, a: Position, b: Position, pair: Tuple[int, int] = (0, 0)) -> float:
        return a.distance_to(b) / self.speed

    def delay_s_batch(
        self,
        origin: Position,
        xs: "np.ndarray",
        ys: "np.ndarray",
        zs: "np.ndarray",
        distances_m: "np.ndarray",
        origin_id: int,
        ids: "np.ndarray",
    ) -> "np.ndarray":
        """One vectorized division: bit-identical with ``distance / speed``
        per element because IEEE division rounds identically in NumPy and
        CPython and ``distances_m`` already matches the scalar distances."""
        return distances_m / self.speed

    def speed_mps(self) -> float:
        return self.speed


@dataclass(frozen=True)
class SspRayPropagation(PropagationModel):
    """Depth-dependent sound-speed ray model with multipath excess delay.

    Delay = L / v_harm(a.z, b.z) * (1 + excess), where ``excess`` is a
    per-pair deterministic draw from a half-normal with scale
    ``multipath_excess_std`` (0 disables it).  Bellhop's eigenray arrival
    spread at these ranges is on the order of a few percent of the direct
    delay, so the default scale is 2%.
    """

    profile: SoundSpeedModel = field(default_factory=MackenzieProfile)
    multipath_excess_std: float = 0.02
    seed: int = 0
    ssp_samples: int = 16

    def delay_s(self, a: Position, b: Position, pair: Tuple[int, int] = (0, 0)) -> float:
        distance = a.distance_to(b)
        if distance <= 0:
            return 0.0
        speed = self.profile.mean_speed(a.z, b.z, samples=self.ssp_samples)
        base = distance / speed
        if self.multipath_excess_std <= 0:
            return base
        lo, hi = min(pair), max(pair)
        rng = np.random.default_rng(derive_seed(self.seed, f"mp/{lo}/{hi}"))
        excess = abs(rng.normal(0.0, self.multipath_excess_std))
        return base * (1.0 + excess)

    def speed_mps(self) -> float:
        # Conservative nominal speed for tau_max: the slowest point of the
        # profile in the usual operating depths, so slots never undershoot.
        speeds = [self.profile.speed_at(d) for d in np.linspace(0.0, 10_000.0, 64)]
        return float(min(speeds)) / (1.0 + 3.0 * self.multipath_excess_std)


def nominal_propagation_delay_s(distance_m: float, speed_mps: float = NOMINAL_SPEED_MPS) -> float:
    """The paper's headline figure: 0.67 s/km at 1.5 km/s."""
    if distance_m < 0:
        raise ValueError("distance must be non-negative")
    return distance_m / speed_mps


__all__ = [
    "PropagationModel",
    "StraightLinePropagation",
    "SspRayPropagation",
    "nominal_propagation_delay_s",
    "UniformSoundSpeed",
]
