"""Underwater acoustic channel substrate.

Physics-based substitute for NS-3 UAN + Bellhop (see DESIGN.md,
"Substitutions"): geometry, sound-speed profiles, Thorp attenuation, Wenz
ambient noise, SINR link budgets, PER models and propagation-delay models.
"""

from .fading import (
    FadingProcess,
    NoFading,
    RayleighBlockFading,
    RicianBlockFading,
)
from .attenuation import (
    CYLINDRICAL_SPREADING,
    PRACTICAL_SPREADING,
    SPHERICAL_SPREADING,
    PathLossModel,
    thorp_absorption_db_per_km,
)
from .geometry import Position, bounding_box
from .noise import AmbientNoiseModel
from .per import DefaultPerModel, PerModel, RayleighBerPerModel
from .propagation import (
    PropagationModel,
    SspRayPropagation,
    StraightLinePropagation,
    nominal_propagation_delay_s,
)
from .sinr import DEFAULT_SOURCE_LEVEL_DB, LinkBudget, db_to_linear, linear_to_db
from .soundspeed import (
    NOMINAL_SPEED_MPS,
    MackenzieProfile,
    SoundSpeedModel,
    UniformSoundSpeed,
)

__all__ = [
    "AmbientNoiseModel",
    "CYLINDRICAL_SPREADING",
    "DEFAULT_SOURCE_LEVEL_DB",
    "DefaultPerModel",
    "FadingProcess",
    "LinkBudget",
    "NoFading",
    "RayleighBlockFading",
    "RicianBlockFading",
    "MackenzieProfile",
    "NOMINAL_SPEED_MPS",
    "PRACTICAL_SPREADING",
    "PathLossModel",
    "PerModel",
    "Position",
    "PropagationModel",
    "RayleighBerPerModel",
    "SPHERICAL_SPREADING",
    "SoundSpeedModel",
    "SspRayPropagation",
    "StraightLinePropagation",
    "UniformSoundSpeed",
    "bounding_box",
    "db_to_linear",
    "linear_to_db",
    "nominal_propagation_delay_s",
    "thorp_absorption_db_per_km",
]
