"""Sound-speed models for the water column.

The paper uses a nominal 1.5 km/s everywhere ("the sound speed in the water
is 1.5 km/s") but notes that real speed depends on the water column and
temperature.  We provide:

* :class:`UniformSoundSpeed` — the paper's nominal constant model, the
  default for all experiments (so slot arithmetic matches the paper), and
* :class:`MackenzieProfile` — the standard 9-term Mackenzie (1981) equation
  as a function of temperature, salinity and depth, used by the
  Bellhop-substitute propagation model to produce *realistic heterogeneous*
  delays for the robustness ablations.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Paper's nominal acoustic speed (m/s).
NOMINAL_SPEED_MPS = 1500.0


class SoundSpeedModel:
    """Interface: speed (m/s) at a given depth (m, positive down)."""

    def speed_at(self, depth_m: float) -> float:
        raise NotImplementedError

    def mean_speed(self, depth_a_m: float, depth_b_m: float, samples: int = 16) -> float:
        """Harmonic-mean speed along a straight path between two depths.

        The harmonic mean is the correct average for travel time:
        ``t = L / v_harm`` when speed varies along the path.
        """
        if samples < 2:
            raise ValueError("need at least 2 samples")
        lo, hi = sorted((depth_a_m, depth_b_m))
        if hi - lo < 1e-9:
            return self.speed_at(lo)
        step = (hi - lo) / (samples - 1)
        inv_sum = sum(1.0 / self.speed_at(lo + i * step) for i in range(samples))
        return samples / inv_sum


@dataclass(frozen=True)
class UniformSoundSpeed(SoundSpeedModel):
    """Constant sound speed, the paper's default 1500 m/s."""

    speed_mps: float = NOMINAL_SPEED_MPS

    def speed_at(self, depth_m: float) -> float:
        return self.speed_mps


@dataclass(frozen=True)
class MackenzieProfile(SoundSpeedModel):
    """Mackenzie (1981) nine-term sound-speed equation.

    ``c(T, S, D)`` with temperature T in deg C, salinity S in parts per
    thousand, depth D in metres.  Valid for T in [2, 30], S in [25, 40],
    D in [0, 8000].  Temperature decays exponentially with depth from
    ``surface_temp_c`` toward ``deep_temp_c`` with scale ``thermocline_m``,
    a standard single-thermocline idealization.
    """

    surface_temp_c: float = 20.0
    deep_temp_c: float = 4.0
    thermocline_m: float = 500.0
    salinity_ppt: float = 35.0

    def temperature_at(self, depth_m: float) -> float:
        """Idealized exponential thermocline temperature (deg C)."""
        depth_m = max(depth_m, 0.0)
        return self.deep_temp_c + (self.surface_temp_c - self.deep_temp_c) * math.exp(
            -depth_m / self.thermocline_m
        )

    def speed_at(self, depth_m: float) -> float:
        t = self.temperature_at(depth_m)
        s = self.salinity_ppt
        d = max(depth_m, 0.0)
        return (
            1448.96
            + 4.591 * t
            - 5.304e-2 * t**2
            + 2.374e-4 * t**3
            + 1.340 * (s - 35.0)
            + 1.630e-2 * d
            + 1.675e-7 * d**2
            - 1.025e-2 * t * (s - 35.0)
            - 7.139e-13 * t * d**3
        )
