"""Packet-error-rate (PER) models.

Two models mirroring the paper's PHY choices ("the Default PER model and
Default SINR are chosen for PHY model" in NS-3 UAN):

* :class:`DefaultPerModel` — NS-3 UAN's default behaviour: a packet is
  received iff its SINR stays above a threshold; otherwise it is lost
  (all-or-nothing).  Overlapping arrivals therefore collide unless one
  captures the channel.
* :class:`RayleighBerPerModel` — a physically richer alternative: BER for
  non-coherent BFSK over a Rayleigh fading channel, ``ber = 1/(2 + snr)``
  (linear snr), with ``PER = 1 - (1 - ber)^bits``.  Used in robustness
  ablations.
"""

from __future__ import annotations

from dataclasses import dataclass

from .sinr import db_to_linear


class PerModel:
    """Interface: probability a packet of ``bits`` is lost at ``sinr_db``."""

    def packet_error_rate(self, sinr_db: float, bits: int) -> float:
        raise NotImplementedError

    def is_successful(self, sinr_db: float, bits: int, uniform_draw: float) -> bool:
        """Decide success given a pre-drawn uniform [0,1) variate.

        Taking the draw as an argument keeps channel randomness inside the
        channel's own RNG stream (determinism across protocol variants).
        """
        return uniform_draw >= self.packet_error_rate(sinr_db, bits)


@dataclass(frozen=True)
class DefaultPerModel(PerModel):
    """Threshold model: PER is 0 above ``threshold_db``, 1 below.

    This is the NS-3 UAN "default" used by the paper: any overlap that
    pushes SINR below threshold destroys the packet.
    """

    threshold_db: float = 10.0

    def packet_error_rate(self, sinr_db: float, bits: int) -> float:
        if bits < 0:
            raise ValueError("bits must be non-negative")
        return 0.0 if sinr_db >= self.threshold_db else 1.0


@dataclass(frozen=True)
class RayleighBerPerModel(PerModel):
    """Non-coherent BFSK over Rayleigh fading: ber = 1 / (2 + snr_linear)."""

    def packet_error_rate(self, sinr_db: float, bits: int) -> float:
        if bits < 0:
            raise ValueError("bits must be non-negative")
        if bits == 0:
            return 0.0
        snr = db_to_linear(sinr_db)
        ber = 1.0 / (2.0 + snr)
        # (1-ber)^bits via log to avoid underflow for large packets.
        if ber >= 1.0:
            return 1.0
        ok = (1.0 - ber) ** bits
        return 1.0 - ok
