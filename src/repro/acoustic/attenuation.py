"""Acoustic path loss: Thorp absorption plus geometric spreading.

Implements the standard Urick/Thorp channel model used by NS-3's UAN
module (the paper's simulator):

* Thorp's absorption coefficient ``a(f)`` in dB/km for frequency f in kHz,
* total path loss ``A(l, f) [dB] = k * 10 log10(l) + l_km * a(f)``, where
  ``k`` is the spreading factor (1 cylindrical, 2 spherical, 1.5 practical).
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from functools import lru_cache

import numpy as np

#: Practical spreading factor commonly used for UASN link budgets.
PRACTICAL_SPREADING = 1.5
SPHERICAL_SPREADING = 2.0
CYLINDRICAL_SPREADING = 1.0


@lru_cache(maxsize=256)
def thorp_absorption_db_per_km(frequency_khz: float) -> float:
    """Thorp's absorption coefficient in dB/km.

    Uses the full Thorp formula for f >= 0.4 kHz and the low-frequency
    variant below that (Urick, *Principles of Underwater Sound*).

    The coefficient is pure in the frequency, and the channel hot path
    evaluates it for the same carrier on every path-loss query, so the
    result is memoized.
    """
    if frequency_khz <= 0:
        raise ValueError("frequency must be positive")
    f2 = frequency_khz**2
    if frequency_khz >= 0.4:
        return (
            0.11 * f2 / (1.0 + f2)
            + 44.0 * f2 / (4100.0 + f2)
            + 2.75e-4 * f2
            + 0.003
        )
    return 0.002 + 0.11 * (f2 / (1 + f2)) + 0.011 * f2


@dataclass(frozen=True)
class PathLossModel:
    """Thorp + spreading path loss.

    Attributes:
        frequency_khz: Carrier frequency (paper: ~10 kHz band).
        spreading: Spreading factor k (1.5 = practical).
    """

    frequency_khz: float = 10.0
    spreading: float = PRACTICAL_SPREADING

    def _absorption_db_per_km(self) -> float:
        """Thorp coefficient for this model's carrier, computed once."""
        cached = self.__dict__.get("_absorption_cache")
        if cached is None:
            cached = thorp_absorption_db_per_km(self.frequency_khz)
            object.__setattr__(self, "_absorption_cache", cached)
        return cached

    def path_loss_db(self, distance_m: float) -> float:
        """Total transmission loss A(l, f) in dB at ``distance_m`` metres.

        Distances below 1 m are clamped to 1 m (loss 0 dB at the reference
        distance, as in NS-3).
        """
        distance_m = max(distance_m, 1.0)
        distance_km = distance_m / 1000.0
        absorption = self._absorption_db_per_km()
        return self.spreading * 10.0 * math.log10(distance_m) + distance_km * absorption

    def received_level_db(self, source_level_db: float, distance_m: float) -> float:
        """Received level RL = SL - A(l, f) in dB re 1 uPa."""
        return source_level_db - self.path_loss_db(distance_m)

    def path_loss_db_batch(self, distances_m: np.ndarray) -> np.ndarray:
        """Vector form of :meth:`path_loss_db` over an array of distances.

        Bit-identical with the scalar method for every element: the
        spreading and absorption terms use the same operations in the same
        order, and the ``log10`` stays on libm (``math.log10`` per element)
        because NumPy's SIMD ``np.log10`` is allowed up to 4 ulp of error
        and would break the scalar/vector equivalence the broadcast kernel
        is gated on.  The loop runs only when link geometry actually
        changed, never per delivery.
        """
        clamped = np.maximum(distances_m, 1.0)
        logs = np.fromiter(
            map(math.log10, clamped), dtype=np.float64, count=len(clamped)
        )
        absorption = self._absorption_db_per_km()
        return self.spreading * 10.0 * logs + (clamped / 1000.0) * absorption

    def received_level_db_batch(
        self, source_level_db: float, distances_m: np.ndarray
    ) -> np.ndarray:
        """Vector form of :meth:`received_level_db` (bit-identical)."""
        return source_level_db - self.path_loss_db_batch(distances_m)

    def max_range_m(
        self,
        source_level_db: float,
        min_received_level_db: float,
        upper_bound_m: float = 100_000.0,
    ) -> float:
        """Largest range at which RL >= ``min_received_level_db``.

        Solved by bisection; path loss is strictly increasing in distance.
        """
        if self.received_level_db(source_level_db, 1.0) < min_received_level_db:
            return 0.0
        lo, hi = 1.0, upper_bound_m
        if self.received_level_db(source_level_db, hi) >= min_received_level_db:
            return hi
        for _ in range(60):
            mid = (lo + hi) / 2.0
            if self.received_level_db(source_level_db, mid) >= min_received_level_db:
                lo = mid
            else:
                hi = mid
        return lo
