"""Small-scale fading processes for the acoustic channel.

The default channel model is deterministic (level = link budget at the
current distance).  Real underwater links exhibit slow, correlated
small-scale fading from surface motion and multipath recombination.  This
module provides per-link block-fading processes that modulate received
levels, used by the robustness ablations and available to users who want
a harsher channel:

* :class:`RayleighBlockFading` — Rayleigh-distributed amplitude per
  coherence block (no line-of-sight), the pessimistic choice;
* :class:`RicianBlockFading` — Rician fading with a K-factor (dominant
  direct path plus scattered energy), the common UASN assumption.

Fades are deterministic per (link, block index): repeated queries within
one coherence time agree, and a given seed reproduces the whole process.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Tuple

import numpy as np

from ..des.rng import derive_seed


class FadingProcess:
    """Interface: fade (dB, signed) for a link at a given time."""

    def fade_db(self, pair: Tuple[int, int], time_s: float) -> float:
        raise NotImplementedError


def _block_rng(seed: int, pair: Tuple[int, int], block: int) -> np.random.Generator:
    lo, hi = min(pair), max(pair)
    return np.random.default_rng(derive_seed(seed, f"fade/{lo}/{hi}/{block}"))


@dataclass(frozen=True)
class RayleighBlockFading(FadingProcess):
    """Rayleigh amplitude fading, constant within a coherence block.

    Attributes:
        coherence_s: Coherence time of the channel (block length).
        seed: Process seed.
    """

    coherence_s: float = 2.0
    seed: int = 0

    def fade_db(self, pair: Tuple[int, int], time_s: float) -> float:
        if self.coherence_s <= 0:
            raise ValueError("coherence time must be positive")
        block = int(time_s // self.coherence_s)
        rng = _block_rng(self.seed, pair, block)
        # unit-mean-power Rayleigh amplitude: power ~ Exp(1)
        power = float(rng.exponential(1.0))
        return 10.0 * math.log10(max(power, 1e-12))


@dataclass(frozen=True)
class RicianBlockFading(FadingProcess):
    """Rician fading with K-factor (direct-to-scattered power ratio)."""

    k_factor: float = 5.0
    coherence_s: float = 2.0
    seed: int = 0

    def fade_db(self, pair: Tuple[int, int], time_s: float) -> float:
        if self.coherence_s <= 0:
            raise ValueError("coherence time must be positive")
        if self.k_factor < 0:
            raise ValueError("K-factor must be non-negative")
        block = int(time_s // self.coherence_s)
        rng = _block_rng(self.seed, pair, block)
        k = self.k_factor
        # unit-mean-power Rician: direct component sqrt(k/(k+1)), scatter
        # variance 1/(2(k+1)) per quadrature component
        sigma = math.sqrt(1.0 / (2.0 * (k + 1.0)))
        direct = math.sqrt(k / (k + 1.0))
        in_phase = direct + sigma * float(rng.normal())
        quadrature = sigma * float(rng.normal())
        power = in_phase**2 + quadrature**2
        return 10.0 * math.log10(max(power, 1e-12))


@dataclass(frozen=True)
class NoFading(FadingProcess):
    """The default: a transparent fading process."""

    def fade_db(self, pair: Tuple[int, int], time_s: float) -> float:
        return 0.0
