"""Link budget: source level, received level, SNR and SINR.

Mirrors the structure of NS-3 UAN's "Default SINR" model: the SINR of a
reception is computed from the received signal power, the band-integrated
ambient noise and the summed power of every overlapping interfering
arrival, all in the linear (power) domain.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterable

import numpy as np

from .attenuation import PathLossModel
from .noise import AmbientNoiseModel

#: Typical acoustic modem source level (dB re 1 uPa @ 1 m).
DEFAULT_SOURCE_LEVEL_DB = 160.0


def db_to_linear(db: float) -> float:
    """Convert decibels to linear power ratio."""
    return 10.0 ** (db / 10.0)


def linear_to_db(linear: float) -> float:
    """Convert linear power ratio to decibels (floors at -300 dB)."""
    return 10.0 * math.log10(max(linear, 1e-30))


@dataclass(frozen=True)
class LinkBudget:
    """Combines path loss and ambient noise into SNR/SINR computations.

    Attributes:
        path_loss: The Thorp/spreading path loss model.
        noise: Ambient noise model.
        source_level_db: Transmit source level (dB re 1 uPa @ 1 m).
        bandwidth_hz: Receiver band for noise integration.
    """

    path_loss: PathLossModel = PathLossModel()
    noise: AmbientNoiseModel = AmbientNoiseModel()
    source_level_db: float = DEFAULT_SOURCE_LEVEL_DB
    bandwidth_hz: float = 10_000.0

    def received_level_db(self, distance_m: float) -> float:
        """RL = SL - A(l, f) in dB re 1 uPa."""
        return self.path_loss.received_level_db(self.source_level_db, distance_m)

    def received_level_db_batch(self, distances_m: np.ndarray) -> np.ndarray:
        """Vector form of :meth:`received_level_db` over a distance array.

        Bit-identical with the scalar method per element (see
        :meth:`PathLossModel.path_loss_db_batch`); used by the vectorized
        broadcast kernel to fill whole link-state rows at once.
        """
        return self.path_loss.received_level_db_batch(
            self.source_level_db, distances_m
        )

    def noise_level_db(self) -> float:
        """Band-integrated ambient noise level in dB re 1 uPa.

        Constant for a frozen instance (carrier and bandwidth are fields),
        so it is computed exactly once and memoized outside the dataclass
        fields — SINR is evaluated for every arrival at every modem.
        """
        cached = self.__dict__.get("_noise_level_cache")
        if cached is None:
            cached = self.noise.band_level_db(self.path_loss.frequency_khz, self.bandwidth_hz)
            object.__setattr__(self, "_noise_level_cache", cached)
        return cached

    def noise_power_linear(self) -> float:
        """The band noise as linear power (memoized alongside the dB level)."""
        cached = self.__dict__.get("_noise_linear_cache")
        if cached is None:
            cached = db_to_linear(self.noise_level_db())
            object.__setattr__(self, "_noise_linear_cache", cached)
        return cached

    def snr_db(self, distance_m: float) -> float:
        """Signal-to-(ambient)-noise ratio in dB at ``distance_m``."""
        return self.received_level_db(distance_m) - self.noise_level_db()

    def sinr_db(
        self, signal_distance_m: float, interferer_distances_m: Iterable[float]
    ) -> float:
        """SINR with interferers summed in the linear power domain."""
        signal = db_to_linear(self.received_level_db(signal_distance_m))
        noise = self.noise_power_linear()
        interference = sum(
            db_to_linear(self.received_level_db(d)) for d in interferer_distances_m
        )
        return linear_to_db(signal / (noise + interference))

    def sinr_db_from_levels(
        self,
        signal_level_db: float,
        interferer_levels_db: Iterable[float],
        extra_noise_db: float = 0.0,
    ) -> float:
        """SINR when received levels (dB) are already known.

        ``extra_noise_db`` raises the ambient noise floor by that many dB
        (transient impairment bursts from fault injection); 0.0 — the
        clean-run value — takes the exact pre-existing arithmetic path.

        This runs once per arrival (the single hottest arithmetic in a
        simulation), so the dB conversions are inlined rather than routed
        through :func:`db_to_linear` / :func:`linear_to_db`, and the empty
        interferer case — the overwhelming majority — skips the generator
        sum.  Both shortcuts are exact: the expressions are identical and
        ``noise + 0.0`` is the IEEE identity for the positive noise power.
        """
        signal = 10.0 ** (signal_level_db / 10.0)
        noise = self.noise_power_linear()
        if extra_noise_db:
            noise *= 10.0 ** (extra_noise_db / 10.0)
        if interferer_levels_db:
            noise += sum(10.0 ** (level / 10.0) for level in interferer_levels_db)
        return 10.0 * math.log10(max(signal / noise, 1e-30))

    def communication_range_m(self, min_snr_db: float) -> float:
        """Maximum range at which SNR >= ``min_snr_db`` (no interference)."""
        return self.path_loss.max_range_m(
            self.source_level_db, self.noise_level_db() + min_snr_db
        )
