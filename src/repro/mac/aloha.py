"""Slotted ALOHA baseline (extension beyond the paper).

Not part of the paper's comparison set, but a useful lower anchor: no
negotiation at all — a node with queued data transmits the data packet
directly at a slot boundary (with persistence probability ``p_tx``) and
waits for an Ack in the Eq. (5) slot.  Underwater, the lack of a
reservation means data packets collide at rates that grow quickly with
load, which is exactly why the literature (and the paper) builds on
RTS/CTS handshakes; the benchmark suite includes ALOHA in the ablation
sweeps to make that trade-off measurable.
"""

from __future__ import annotations

from typing import Optional

from ..phy.frame import Frame, FrameType, data_frame
from ..phy.modem import Arrival
from .base import MacConfig, MacState, SlottedMac


def _default_aloha_config() -> MacConfig:
    return MacConfig(piggyback_bits=0, maintenance_period_s=None)


class SlottedAloha(SlottedMac):
    """Direct-data slotted ALOHA with Ack + binary exponential backoff."""

    name = "ALOHA"
    uses_two_hop_info = False
    requires_neighbor_info = False

    #: Persistence probability for a head-of-line packet each slot.
    p_tx = 0.5

    def __init__(self, sim, node, channel, timing, config: Optional[MacConfig] = None):
        super().__init__(sim, node, channel, timing, config or _default_aloha_config())

    def _slot_tick(self, index: int) -> None:  # noqa: D102 - engine override
        self._slot_event = self.sim.schedule_at(
            self.timing.slot_start(index + 1), self._slot_tick, index + 1
        )
        if self._ack_due_slot == index:
            self._send_ack()
            return
        if self.state is not MacState.IDLE or not self.node.has_pending_data:
            return
        if self.node.modem.transmitting:
            return
        if self._backoff_slots > 0:
            self._backoff_slots -= 1
            return
        if float(self._rng.random()) > self.p_tx:
            return
        self._transmit_head(index)

    def _transmit_head(self, index: int) -> None:
        request = self.node.peek_request()
        assert request is not None
        self._current_request = request
        self._target = request.dst
        request.attempts += 1
        frame = data_frame(
            self.node.node_id,
            request.dst,
            self.sim.now,
            size_bits=request.size_bits,
            req_uid=request.uid,
        )
        self.node.modem.transmit(frame)
        self.stats.data_sent += 1
        self.stats.data_sent_bits += request.size_bits
        if request.attempts > 1:
            self.stats.retransmissions += 1
            self.stats.retransmitted_bits += request.size_bits
        self.state = MacState.WAIT_ACK
        tau = self.node.neighbors.delay_to(request.dst)
        tau = tau if tau is not None else self.timing.tau_max_s
        duration = request.size_bits / self.channel.bitrate_bps
        ack_slot = self.timing.ack_slot(index, duration, tau)
        deadline = (
            self.timing.slot_start(ack_slot)
            + self.timing.omega_s
            + self.timing.tau_max_s
            + self.config.guard_s
        )
        self._ack_timeout = self.sim.schedule_at(deadline, self._on_ack_timeout)

    def _handle_addressed(self, frame: Frame, arrival: Arrival) -> None:  # noqa: D102
        if frame.ftype is FrameType.DATA:
            # accept direct data while idle (an own exchange in flight would
            # be clobbered by the ack bookkeeping; the sender just retries)
            if self._ack_due_slot is None and self.state is MacState.IDLE:
                if self.register_data_reception(frame):
                    self.stats.data_received += 1
                    self.stats.data_received_bits += frame.size_bits
                    self.node.note_delivered(frame.size_bits)
                    if self.on_data_delivered is not None:
                        self.on_data_delivered(self.node, frame.src, frame.size_bits)
                data_slot = self.timing.slot_index(frame.timestamp)
                duration = frame.size_bits / self.channel.bitrate_bps
                self._ack_due_slot = self.timing.ack_slot(
                    data_slot, duration, arrival.delay_s
                )
                self._ack_dst = frame.src
            return
        if frame.ftype is FrameType.ACK:
            if self.state is MacState.WAIT_ACK and frame.src == self._target:
                self._complete_send()
            return
        # ALOHA ignores RTS/CTS and friends entirely

    def _handle_overheard(self, frame: Frame, arrival: Arrival) -> None:  # noqa: D102
        pass  # no NAV: ALOHA does not defer to anyone
