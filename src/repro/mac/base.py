"""Shared slotted four-way-handshake MAC engine.

All four evaluated protocols (S-FAMA, ROPA, CS-MAC, EW-MAC) are slotted
RTS/CTS/Data/Ack protocols over the same grid (paper Sec. 5: "we rewrite
the MAC model based on CW-MAC which is a slotted contention MAC protocol").
This module implements that common engine once:

* slot ticks on the synchronized grid ``|ts| = omega + tau_max``;
* sender side: contention with binary-exponential backoff, RTS carrying the
  paper's random priority value ``rp``, CTS wait, Data at ``rts_slot + 2``,
  Ack wait, retransmission and drop policy;
* receiver side: RTS collection over a slot, highest-``rp`` grant (paper
  Sec. 3.1), Data wait, Ack at the Eq. (5) slot;
* overhearing: quiet (NAV) bookkeeping from others' negotiation frames, and
  passive one-hop delay maintenance from every frame's timestamp (paper
  Sec. 4.3);
* hello-phase initialization.

Subclasses specialize via hooks: :meth:`on_contention_lost` (EW-MAC's extra
communications), :meth:`on_overheard` (ROPA appending, CS-MAC stealing),
:meth:`on_slot_idle` (maintenance broadcasts), and the off-slot frame
handler :meth:`handle_protocol_frame`.
"""

from __future__ import annotations

from collections import deque
from dataclasses import dataclass
from enum import Enum
from typing import Callable, Deque, List, Optional, Set, Tuple

from ..des.events import Event
from ..des.simulator import Simulator
from ..net.node import DataRequest, Node
from ..phy.channel import AcousticChannel
from ..phy.frame import (
    BROADCAST,
    CONTROL_PACKET_BITS,
    Frame,
    FrameType,
    control_frame,
    data_frame,
    safe_bits,
    safe_float,
)
from ..phy.modem import Arrival, RxOutcome
from .slots import SlotTiming


def _event_live(event: Optional[Event]) -> bool:
    """True iff ``event`` exists and is still pending in the kernel."""
    return event is not None and event.pending


class MacState(Enum):
    """Core handshake states (subset of the paper's Fig. 3)."""

    IDLE = "idle"
    WAIT_CTS = "wait_cts"
    WAIT_SEND_DATA = "wait_send_data"
    WAIT_ACK = "wait_ack"
    WAIT_DATA = "wait_data"
    EXTRA = "extra"  # EW-MAC asking/asked extra communication


@dataclass
class MacConfig:
    """Tunables shared by every slotted protocol.

    Attributes:
        max_retries: Contention/data attempts per packet before dropping.
        cw_min / cw_max: Binary-exponential backoff window, in slots.
        rp_wait_weight: Weight of accumulated wait slots in the RTS priority
            value ``rp`` (paper: rp "related to the contention and wait
            times of the sending sensor").
        guard_s: Safety margin for off-slot (extra/steal/append) timing.
        hello_window_s: Hello broadcasts are staggered over this window.
        maintenance_period_s: Period of NEIGH broadcasts (None = never;
            EW-MAC and S-FAMA never broadcast, ROPA/CS-MAC do).
        piggyback_bits: Extra neighbour-info bits accounted per control
            frame (overhead bookkeeping; on-air size stays 64 bits so the
            slot grid matches the paper's Table 2).
    """

    max_retries: int = 12
    cw_min: int = 1
    cw_max: int = 4
    rp_wait_weight: float = 0.25
    guard_s: float = 2.0e-3
    hello_window_s: float = 5.0
    maintenance_period_s: Optional[float] = None
    piggyback_bits: int = 0


@dataclass
class MacStats:
    """Per-node MAC counters (inputs to the paper's metrics)."""

    # transmit side
    rts_sent: int = 0
    cts_sent: int = 0
    ack_sent: int = 0
    data_sent: int = 0
    data_sent_bits: int = 0
    ctrl_sent_bits: int = 0
    hello_sent: int = 0
    # opportunistic traffic (EW extra / ROPA append / CS-MAC steal)
    opportunistic_ctrl: int = 0
    opportunistic_data: int = 0
    opportunistic_data_bits: int = 0
    opportunistic_attempts: int = 0
    # receive side
    data_received: int = 0
    data_received_bits: int = 0
    opportunistic_received: int = 0
    opportunistic_received_bits: int = 0
    duplicate_data: int = 0
    # outcomes
    handshakes_started: int = 0
    handshakes_completed: int = 0
    contention_failures: int = 0
    retransmissions: int = 0
    retransmitted_bits: int = 0
    drops: int = 0
    rx_collisions_seen: int = 0
    # overhead accounting
    maintenance_tx_bits: int = 0
    piggyback_bits: int = 0
    computation_units: float = 0.0
    # residency
    wait_slots: int = 0

    @property
    def total_data_bits_received(self) -> int:
        return self.data_received_bits + self.opportunistic_received_bits


class SlottedMac:
    """Base class: the slotted four-way handshake engine.

    Subclasses must set :attr:`name` and may override the protocol hooks.
    """

    name = "slotted-base"
    #: Whether this protocol maintains two-hop neighbour state (overhead).
    uses_two_hop_info = False
    #: Whether the protocol *requires* per-neighbour propagation delays.
    #: S-FAMA does not (it reserves tau_max everywhere), so the paper uses
    #: it as the zero-additional-storage overhead baseline (Sec. 5.3).
    requires_neighbor_info = True

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        channel: AcousticChannel,
        timing: SlotTiming,
        config: Optional[MacConfig] = None,
    ) -> None:
        self.sim = sim
        self.node = node
        self.channel = channel
        self.timing = timing
        self.config = config if config is not None else MacConfig()
        self.stats = MacStats()
        self.state = MacState.IDLE
        self.quiet_until = 0.0
        # contention
        self._cw = self.config.cw_min
        self._backoff_slots = 0
        self._current_request: Optional[DataRequest] = None
        self._target: Optional[int] = None
        self._rts_slot: Optional[int] = None
        self._data_was_sent = False
        # receiver side
        self._rts_candidates: List[Frame] = []
        self._grant_src: Optional[int] = None
        self._grant_data_bits: int = 0
        self._grant_tau: float = 0.0
        self._ack_due_slot: Optional[int] = None
        self._ack_dst: Optional[int] = None
        # sender side data timing
        self._data_due_slot: Optional[int] = None
        # timeouts
        self._cts_timeout: Optional[Event] = None
        self._ack_timeout: Optional[Event] = None
        self._data_timeout: Optional[Event] = None
        # duplicate suppression (sequence numbers): a retransmission whose
        # Ack was lost must not count twice toward Eq. (2) throughput
        self._seen_data: Set[Tuple[int, int]] = set()
        self._seen_order: Deque[Tuple[int, int]] = deque()
        # callbacks
        self.on_data_delivered: Optional[Callable[[Node, int, int], None]] = None
        self._rng = sim.streams.get(f"mac.{node.node_id}")
        # wiring
        node.mac = self
        node.modem.on_receive = self._on_modem_receive
        node.modem.on_rx_failure = self._on_modem_failure
        self._slot_event: Optional[Event] = None
        # Random phase so the network's maintenance broadcasts don't
        # synchronize into periodic collision storms.
        period = self.config.maintenance_period_s or 0.0
        self._next_maintenance = (
            sim.now
            + self.config.hello_window_s
            + (float(self._rng.uniform(0.5, 1.5)) * period if period else 0.0)
        )
        self._started = False

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def start(self) -> None:
        """Broadcast Hello (staggered) and begin slot ticks.

        Slot boundaries are computed in the node's *local* clock (paper:
        nodes are synchronized by an external protocol).  With the default
        perfect clock this is the global grid; tests and ablations inject
        offsets to measure how slot misalignment degrades the protocols.
        """
        if self._started:
            raise RuntimeError("MAC already started")
        self._started = True
        hello_at = float(self._rng.uniform(0.0, self.config.hello_window_s))
        self.sim.schedule(hello_at, self._send_hello)
        first_slot = self.timing.next_slot_index(
            self.node.clock.now() + self.config.hello_window_s + self.timing.tau_max_s
        )
        self._slot_event = self.sim.schedule_at(
            max(self.node.clock.to_true(self.timing.slot_start(first_slot)), self.sim.now),
            self._slot_tick,
            first_slot,
        )

    def stop(self) -> None:
        """Cancel all pending activity (end of experiment or node crash)."""
        for event in (self._slot_event, self._cts_timeout, self._ack_timeout, self._data_timeout):
            self.sim.cancel(event)
        self._slot_event = None
        self._cts_timeout = None
        self._ack_timeout = None
        self._data_timeout = None

    def restart(self) -> None:
        """Reboot the MAC after a node recovery: wipe state, start fresh.

        A recovered node does not remember an in-flight handshake — it
        rejoins like a newly deployed sensor: Hello, then slot ticks.
        """
        self.stop()
        self._reset_protocol_state()
        self._started = False
        self.start()

    def _reset_protocol_state(self) -> None:
        """Drop every pending handshake context (crash/reboot semantics).

        Subclasses extend this to clear their protocol-specific contexts
        (EW-MAC asking/asked, ROPA append, CS-MAC steal); they must call
        ``super()._reset_protocol_state()``.
        """
        for event in (self._cts_timeout, self._ack_timeout, self._data_timeout):
            self.sim.cancel(event)
        self._cts_timeout = None
        self._ack_timeout = None
        self._data_timeout = None
        self.state = MacState.IDLE
        self._current_request = None
        self._target = None
        self._rts_slot = None
        self._data_due_slot = None
        self._data_was_sent = False
        self._rts_candidates = []
        self._grant_src = None
        self._grant_data_bits = 0
        self._grant_tau = 0.0
        self._ack_due_slot = None
        self._ack_dst = None
        self._backoff_slots = 0
        self._cw = self.config.cw_min

    # ------------------------------------------------------------------
    # Post-run invariant audit (fault injection)
    # ------------------------------------------------------------------
    def audit_pending_state(self) -> List[str]:
        """Check for wedged handshake state; returns violation strings.

        A non-IDLE state is legitimate only while a live timeout (or a
        scheduled due-slot action) guarantees forward progress.  A state
        that nothing will ever advance — typically left behind when a peer
        died mid-exchange — is a wedge, and each one is reported.  Stopped
        or failed MACs are exempt: their state is frozen by design.
        """
        if not self._started or not self.node.modem.enabled:
            return []
        violations: List[str] = []
        prefix = f"{self.name} node {self.node.node_id}"
        if not _event_live(self._slot_event):
            violations.append(f"{prefix}: slot engine not running")
            return violations
        if self.state is MacState.WAIT_CTS and not _event_live(self._cts_timeout):
            violations.append(f"{prefix}: WAIT_CTS without a live CTS timeout")
        if self.state is MacState.WAIT_SEND_DATA and self._data_due_slot is None:
            violations.append(f"{prefix}: WAIT_SEND_DATA without a data due slot")
        if self.state is MacState.WAIT_ACK and not _event_live(self._ack_timeout):
            violations.append(f"{prefix}: WAIT_ACK without a live Ack timeout")
        if (
            self.state is MacState.WAIT_DATA
            and not _event_live(self._data_timeout)
            and self._ack_due_slot is None
        ):
            violations.append(
                f"{prefix}: WAIT_DATA without a live data timeout or pending Ack"
            )
        self._audit_protocol_state(violations)
        return violations

    def _audit_protocol_state(self, violations: List[str]) -> None:
        """Subclass hook: append protocol-specific wedge findings."""

    def notify_queue(self) -> None:
        """Node enqueued data; the next slot tick will pick it up."""

    # ------------------------------------------------------------------
    # Slot engine
    # ------------------------------------------------------------------
    def _slot_tick(self, index: int) -> None:
        self._slot_event = self.sim.schedule_at(
            max(
                self.node.clock.to_true(self.timing.slot_start(index + 1)),
                self.sim.now,
            ),
            self._slot_tick,
            index + 1,
        )
        now = self.sim.now
        # An opportunistic (mid-slot) transmission may still be on the air
        # at the boundary; slot actions must then be skipped, not crash.
        busy_tx = self.node.modem.transmitting
        # 1. Ack due this slot (receiver side, Eq. 5).  _send_ack itself
        # skips the transmission (sender will retry) if the modem is busy.
        if self._ack_due_slot == index:
            self._send_ack()
            return
        # 2. Grant decision for RTSs collected in the previous slot.
        if self._rts_candidates:
            candidates, self._rts_candidates = self._rts_candidates, []
            if self.state is MacState.IDLE and now >= self.quiet_until and not busy_tx:
                self._grant(candidates, index)
                return
        # 3. Data send due (sender side, slot rts+2).
        if self._data_due_slot == index and self.state is MacState.WAIT_SEND_DATA:
            if busy_tx:
                # Cannot launch the negotiated Data: abandon the exchange;
                # the receiver's data timeout will release it.
                self._reset_to_idle(backoff=True)
                return
            self._send_data(index)
            return
        # 4. Contention.
        if self.state is MacState.IDLE and self.node.has_pending_data:
            self.stats.wait_slots += 1
            if now < self.quiet_until or busy_tx:
                return
            if self._backoff_slots > 0:
                self._backoff_slots -= 1
                return
            self._send_rts(index)
            return
        # 5. Idle slot: let subclasses do maintenance.
        if self.state is MacState.IDLE and now >= self.quiet_until:
            self.on_slot_idle(index)

    # ------------------------------------------------------------------
    # Sender side
    # ------------------------------------------------------------------
    def _send_rts(self, index: int) -> None:
        request = self.node.peek_request()
        assert request is not None
        self._current_request = request
        self._target = request.dst
        self._rts_slot = index
        request.attempts += 1
        rp = self._priority_value()
        pair_delay = self.node.neighbors.delay_to(request.dst)
        frame = control_frame(
            FrameType.RTS,
            self.node.node_id,
            request.dst,
            self.sim.now,
            pair_delay_s=pair_delay,
            rp=rp,
            data_bits=request.size_bits,
        )
        self._transmit_control(frame)
        self.stats.rts_sent += 1
        self.stats.handshakes_started += 1
        if request.attempts > 1:
            self.stats.retransmitted_bits += CONTROL_PACKET_BITS
        self.state = MacState.WAIT_CTS
        # CTS must be granted in slot index+1; give up at the start of +2.
        self._cts_timeout = self.sim.schedule_at(
            self.timing.slot_start(index + 2), self._on_cts_timeout
        )

    def _priority_value(self) -> float:
        """The paper's rp: random, boosted by accumulated wait time."""
        base = float(self._rng.random())
        waited = self._current_request.attempts if self._current_request else 0
        return base * (1.0 + self.config.rp_wait_weight * (waited + 0.1 * self.stats.wait_slots))

    def _on_cts_timeout(self) -> None:
        self._cts_timeout = None
        if self.state is not MacState.WAIT_CTS:
            return
        self.stats.contention_failures += 1
        self.contention_failed()

    def contention_failed(self) -> None:
        """Default failure policy: exponential backoff and retry later."""
        request = self._current_request
        if request is not None and request.attempts > self.config.max_retries:
            self._drop_current()
        self._reset_to_idle(backoff=True)

    def _send_data(self, index: int) -> None:
        request = self._current_request
        assert request is not None and self._target is not None
        frame = data_frame(
            self.node.node_id,
            self._target,
            self.sim.now,
            size_bits=request.size_bits,
            req_uid=request.uid,
        )
        self.node.modem.transmit(frame)
        self.stats.data_sent += 1
        self.stats.data_sent_bits += request.size_bits
        if self._data_was_sent:
            self.stats.retransmissions += 1
            self.stats.retransmitted_bits += request.size_bits
        self._data_was_sent = True
        self.state = MacState.WAIT_ACK
        self._data_due_slot = None
        tau = self.node.neighbors.delay_to(self._target)
        tau = tau if tau is not None else self.timing.tau_max_s
        data_duration = request.size_bits / self.channel.bitrate_bps
        ack_slot = self.timing.ack_slot(index, data_duration, tau)
        deadline = self.timing.slot_start(ack_slot) + self.timing.omega_s + self.timing.tau_max_s
        self._ack_timeout = self.sim.schedule_at(
            deadline + self.config.guard_s, self._on_ack_timeout
        )

    def _on_ack_timeout(self) -> None:
        self._ack_timeout = None
        if self.state is not MacState.WAIT_ACK:
            return
        request = self._current_request
        if request is not None and request.attempts > self.config.max_retries:
            self._drop_current()
        self._reset_to_idle(backoff=True)

    def _complete_send(self) -> None:
        """Ack received: the head-of-line packet is done."""
        request = self._current_request
        if request is not None:
            self.node.remove_request(request)
            self.node.note_sent(request)
        self.stats.handshakes_completed += 1
        self._cw = self.config.cw_min
        self._reset_to_idle(backoff=False)

    def _drop_current(self) -> None:
        request = self._current_request
        if request is not None:
            self.node.remove_request(request)
            self.stats.drops += 1
        self._current_request = None
        self._data_was_sent = False

    def _reset_to_idle(self, backoff: bool) -> None:
        self.sim.cancel(self._cts_timeout)
        self.sim.cancel(self._ack_timeout)
        self._cts_timeout = None
        self._ack_timeout = None
        self.state = MacState.IDLE
        self._target = None
        self._rts_slot = None
        self._data_due_slot = None
        if self._current_request is None:
            self._data_was_sent = False
        if backoff:
            self._start_backoff()

    def _start_backoff(self) -> None:
        self._backoff_slots = int(self._rng.integers(1, self._cw + 1))
        self._cw = min(self._cw * 2, self.config.cw_max)

    # ------------------------------------------------------------------
    # Receiver side
    # ------------------------------------------------------------------
    def _grant(self, candidates: List[Frame], index: int) -> None:
        """Choose the highest-rp RTS from the last slot and send CTS."""
        winner = max(
            candidates, key=lambda f: safe_float(f.info.get("rp")) or 0.0
        )
        tau = self.node.neighbors.delay_to(winner.src)
        if tau is None:
            tau = self.timing.tau_max_s
        self._grant_src = winner.src
        self._grant_data_bits = safe_bits(winner.info.get("data_bits"), default=0, minimum=0)
        self._grant_tau = tau
        frame = control_frame(
            FrameType.CTS,
            self.node.node_id,
            winner.src,
            self.sim.now,
            pair_delay_s=tau,
            data_bits=self._grant_data_bits,
            rts_slot=index - 1,
        )
        self._transmit_control(frame)
        self.stats.cts_sent += 1
        self.state = MacState.WAIT_DATA
        # Data should be fully received by the Eq. 5 ack slot; allow one
        # extra slot of slack before declaring the exchange dead.
        data_duration = max(self._grant_data_bits, 1) / self.channel.bitrate_bps
        ack_slot = self.timing.ack_slot(index + 1, data_duration, tau)
        self._data_timeout = self.sim.schedule_at(
            self.timing.slot_start(ack_slot) + self.config.guard_s,
            self._on_data_timeout,
        )

    def _on_data_timeout(self) -> None:
        self._data_timeout = None
        if self.state is not MacState.WAIT_DATA:
            return
        self._grant_src = None
        self.state = MacState.IDLE

    def _receive_data(self, frame: Frame, arrival: Arrival) -> None:
        """Expected negotiated Data arrived intact: schedule the Eq. 5 Ack."""
        self.sim.cancel(self._data_timeout)
        self._data_timeout = None
        if self.register_data_reception(frame):
            self.stats.data_received += 1
            self.stats.data_received_bits += frame.size_bits
            self.node.note_delivered(frame.size_bits)
            if self.on_data_delivered is not None:
                self.on_data_delivered(self.node, frame.src, frame.size_bits)
        data_slot = self.timing.slot_index(frame.timestamp)
        duration = frame.size_bits / self.channel.bitrate_bps
        self._ack_due_slot = self.timing.ack_slot(data_slot, duration, arrival.delay_s)
        self._ack_dst = frame.src
        self.state = MacState.WAIT_DATA  # remains committed until Ack goes out

    def _send_ack(self) -> None:
        dst = self._ack_dst
        self._ack_due_slot = None
        self._ack_dst = None
        self._grant_src = None
        self.state = MacState.IDLE
        if dst is None:
            return
        if self.node.modem.transmitting:
            return  # cannot ack; sender will retransmit
        frame = control_frame(FrameType.ACK, self.node.node_id, dst, self.sim.now)
        self._transmit_control(frame)
        self.stats.ack_sent += 1
        self.after_ack_sent(dst)

    def register_data_reception(self, frame: Frame) -> bool:
        """Sequence-number dedup: True iff this data was not seen before.

        Duplicates (retransmissions after a lost Ack) are still
        acknowledged by callers, but must not count again toward Eq. (2)
        throughput nor be forwarded a second time.
        """
        uid = frame.info.get("req_uid")
        if uid is None:
            return True
        try:
            key = (frame.src, int(uid))
        except (TypeError, ValueError, OverflowError):
            return True  # malformed uid from a hostile frame: cannot dedup
        if key in self._seen_data:
            self.stats.duplicate_data += 1
            return False
        self._seen_data.add(key)
        self._seen_order.append(key)
        if len(self._seen_order) > 8192:
            self._seen_data.discard(self._seen_order.popleft())
        return True

    # ------------------------------------------------------------------
    # Frame reception and overhearing
    # ------------------------------------------------------------------
    def _on_modem_receive(self, frame: Frame, arrival: Arrival) -> None:
        if not self.node.modem.enabled:
            return  # decoded just as the node died: a dead MAC reacts to nothing
        # Passive one-hop delay maintenance from every frame (paper 4.3).
        measured = arrival.start - frame.timestamp
        if frame.src != self.node.node_id and measured >= 0:
            self.node.neighbors.observe(frame.src, measured, self.sim.now)
        if frame.ftype is FrameType.HELLO:
            return
        if frame.ftype is FrameType.NEIGH:
            self.handle_neigh(frame, arrival)
            return
        if frame.dst == self.node.node_id:
            self._handle_addressed(frame, arrival)
        else:
            self._handle_overheard(frame, arrival)

    def _on_modem_failure(self, arrival: Arrival, outcome: RxOutcome) -> None:
        if outcome is RxOutcome.COLLISION:
            self.stats.rx_collisions_seen += 1

    def _handle_addressed(self, frame: Frame, arrival: Arrival) -> None:
        ftype = frame.ftype
        if ftype is FrameType.RTS:
            if (
                self.state is MacState.IDLE
                and self.sim.now >= self.quiet_until
                and self._ack_due_slot is None
            ):
                self._rts_candidates.append(frame)
            return
        if ftype is FrameType.CTS:
            if self.state is MacState.WAIT_CTS and frame.src == self._target:
                self.sim.cancel(self._cts_timeout)
                self._cts_timeout = None
                assert self._rts_slot is not None
                self._data_due_slot = self._rts_slot + 2
                self.state = MacState.WAIT_SEND_DATA
            return
        if ftype is FrameType.DATA:
            if self.state is MacState.WAIT_DATA and frame.src == self._grant_src:
                self._receive_data(frame, arrival)
            else:
                self.handle_unexpected_data(frame, arrival)
            return
        if ftype is FrameType.ACK:
            if self.state is MacState.WAIT_ACK and frame.src == self._target:
                self._complete_send()
            return
        # Protocol-specific frames (EXR/EXC/EXDATA/EXACK/RTA).
        self.handle_protocol_frame(frame, arrival)

    def _handle_overheard(self, frame: Frame, arrival: Arrival) -> None:
        ftype = frame.ftype
        # Contention-lost detection (paper Sec. 4.1): while waiting for a
        # CTS from j, any negotiation frame *from* j for someone else means
        # we lost this contention round.
        if (
            self.state is MacState.WAIT_CTS
            and self._target is not None
            and frame.src == self._target
            and ftype in (FrameType.RTS, FrameType.CTS)
        ):
            self.sim.cancel(self._cts_timeout)
            self._cts_timeout = None
            self.stats.contention_failures += 1
            self.on_contention_lost(self._target, frame, arrival)
            self._apply_quiet(frame, arrival)
            return
        self.on_overheard(frame, arrival)
        self._apply_quiet(frame, arrival)

    def _apply_quiet(self, frame: Frame, arrival: Arrival) -> None:
        """NAV bookkeeping from an overheard negotiation frame."""
        ftype = frame.ftype
        slot = self.timing.slot_index(frame.timestamp)
        if ftype is FrameType.RTS:
            # Cover the CTS reply slot; extend if the CTS is then heard.
            self._set_quiet(self.timing.slot_start(slot + 2))
        elif ftype is FrameType.CTS:
            tau = safe_float(frame.pair_delay_s)
            tau = tau if tau is not None and tau >= 0 else self.timing.tau_max_s
            data_bits = safe_bits(frame.info.get("data_bits"), default=0, minimum=0)
            duration = max(data_bits, CONTROL_PACKET_BITS) / self.channel.bitrate_bps
            ack_slot = self.timing.ack_slot(slot + 1, duration, tau)
            self._set_quiet(
                self.timing.slot_start(ack_slot) + self.timing.omega_s + self.timing.tau_max_s
            )
        elif ftype is FrameType.DATA:
            duration = frame.size_bits / self.channel.bitrate_bps
            ack_slot = self.timing.ack_slot(slot, duration, self.timing.tau_max_s)
            self._set_quiet(
                self.timing.slot_start(ack_slot) + self.timing.omega_s + self.timing.tau_max_s
            )
        elif ftype is FrameType.EXC:
            # Paper Sec. 4.2: "when a sensor receives any extra control
            # packet from its neighbor ... the sensor will be quiet to
            # avoid interfering with the extra communication".  The EXC is
            # the *grant* and announces the scheduled EXData start and
            # size, so overhearers stay quiet through the whole extra
            # transfer (EXData + EXAck).
            exdata_start = safe_float(frame.info.get("exdata_start"))
            if exdata_start is not None and exdata_start >= 0.0:
                bits = safe_bits(frame.info.get("data_bits"))
                duration = bits / self.channel.bitrate_bps
                end = (
                    float(exdata_start)
                    + self.timing.tau_max_s  # EXData propagation
                    + duration
                    + self.timing.omega_s    # EXAck transmission
                    + self.timing.tau_max_s  # EXAck propagation
                )
                self._set_quiet(end)
            else:
                self._set_quiet(self.sim.now + self.timing.slot_s)
        elif ftype.is_extra:
            # An EXR is only a request (it may be denied); a brief hold is
            # enough to protect the EXC round trip.
            self._set_quiet(self.sim.now + self.timing.slot_s)

    def _set_quiet(self, until: float) -> None:
        if until > self.quiet_until:
            self.quiet_until = until

    # ------------------------------------------------------------------
    # Hello / maintenance
    # ------------------------------------------------------------------
    def _send_hello(self) -> None:
        if not self.node.modem.enabled:
            return
        if self.node.modem.transmitting:
            self.sim.schedule(self.timing.omega_s, self._send_hello)
            return
        frame = control_frame(FrameType.HELLO, self.node.node_id, BROADCAST, self.sim.now)
        self._transmit_control(frame)
        self.stats.hello_sent += 1

    def maintenance_frame_bits(self) -> int:
        """On-air size of a NEIGH broadcast for this protocol."""
        entries = self.node.neighbors.memory_entries()
        per_entry = 32  # id + quantized delay
        return CONTROL_PACKET_BITS + entries * per_entry

    def _maybe_send_maintenance(self, index: int) -> None:
        period = self.config.maintenance_period_s
        if period is None or self.sim.now < self._next_maintenance:
            return
        # Jittered period keeps broadcasts de-phased over long runs, and the
        # random in-slot offset below stops quiet periods from re-syncing
        # overdue broadcasters into a collision burst at the slot boundary.
        self._next_maintenance = self.sim.now + period * float(self._rng.uniform(0.75, 1.25))
        offset = float(self._rng.uniform(0.0, 0.5 * self.timing.tau_max_s))
        self.sim.schedule(offset, self._send_maintenance)

    def _send_maintenance(self) -> None:
        if not self.node.modem.enabled:
            return
        if self.node.modem.transmitting or self.state is not MacState.IDLE:
            return
        bits = self.maintenance_frame_bits()
        links = [
            (nid, self.node.neighbors.delay_to(nid) or 0.0)
            for nid in self.node.neighbors.neighbors()
        ]
        frame = Frame(
            ftype=FrameType.NEIGH,
            src=self.node.node_id,
            dst=BROADCAST,
            size_bits=bits,
            timestamp=self.sim.now,
            info={"links": links},
        )
        self.node.modem.transmit(frame)
        self.stats.maintenance_tx_bits += bits

    # ------------------------------------------------------------------
    # Transmit helper
    # ------------------------------------------------------------------
    def _transmit_control(self, frame: Frame) -> None:
        self.node.modem.transmit(frame)
        self.stats.ctrl_sent_bits += frame.size_bits
        if self.config.piggyback_bits:
            self.stats.piggyback_bits += self.config.piggyback_bits

    # ------------------------------------------------------------------
    # Hooks for subclasses
    # ------------------------------------------------------------------
    def on_contention_lost(self, target: int, frame: Frame, arrival: Arrival) -> None:
        """Called when a WAIT_CTS sender learns its target chose another.

        Default (S-FAMA): give up and back off.  EW-MAC overrides to start
        the extra-communication request phase.
        """
        self.contention_failed()

    def on_overheard(self, frame: Frame, arrival: Arrival) -> None:
        """Called for every overheard frame before quiet bookkeeping."""

    def on_slot_idle(self, index: int) -> None:
        """Called at a slot boundary when idle; default runs maintenance."""
        self._maybe_send_maintenance(index)

    def after_ack_sent(self, data_src: int) -> None:
        """Called right after the negotiated Ack went out (EW-MAC hook)."""

    def handle_protocol_frame(self, frame: Frame, arrival: Arrival) -> None:
        """Addressed frames beyond the base set (EXR/EXC/.../RTA)."""

    def handle_unexpected_data(self, frame: Frame, arrival: Arrival) -> None:
        """Addressed DATA outside a negotiated exchange (CS-MAC steals)."""

    def handle_neigh(self, frame: Frame, arrival: Arrival) -> None:
        """NEIGH broadcast received (two-hop protocols override)."""
