"""Protocol registry: name -> MAC factory.

The experiment harness selects protocols by name; registering here makes a
protocol available to every figure sweep and to the CLI.
"""

from __future__ import annotations

from typing import Dict, List, Type

from .base import SlottedMac
from .csmac import CsMac
from .ropa import Ropa
from .sfama import SFama

_REGISTRY: Dict[str, Type[SlottedMac]] = {}


def _ensure_builtins() -> None:
    """Register built-in protocols, importing EW-MAC lazily.

    EW-MAC lives in :mod:`repro.core.ewmac`, which itself imports
    :mod:`repro.mac.base`; importing it at module scope would be circular.
    """
    if _REGISTRY:
        return
    from ..core.ewmac import EwMac  # local import breaks the cycle
    from .aloha import SlottedAloha

    for cls in (SFama, Ropa, CsMac, EwMac, SlottedAloha):
        register(cls)


def register(cls: Type[SlottedMac]) -> Type[SlottedMac]:
    """Register a protocol class under its :attr:`name`."""
    key = cls.name.lower()
    if key in _REGISTRY and _REGISTRY[key] is not cls:
        raise ValueError(f"protocol name {cls.name!r} already registered")
    _REGISTRY[key] = cls
    return cls


def get_protocol(name: str) -> Type[SlottedMac]:
    """Look up a protocol class by (case-insensitive) name."""
    _ensure_builtins()
    key = name.lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown protocol {name!r}; known: {known}")
    return _REGISTRY[key]


def protocol_names() -> List[str]:
    """Registered protocol display names, paper order first."""
    _ensure_builtins()
    paper_order = ["s-fama", "ropa", "cs-mac", "ew-mac"]
    ordered = [k for k in paper_order if k in _REGISTRY]
    ordered += sorted(k for k in _REGISTRY if k not in paper_order)
    return [_REGISTRY[k].name for k in ordered]
