"""MAC protocols: the shared slotted engine and the paper's baselines.

The paper's own contribution, EW-MAC, lives in :mod:`repro.core.ewmac`
(re-exported here for convenience and via the registry).
"""

from .base import MacConfig, MacState, MacStats, SlottedMac
from .csmac import CsMac
from .registry import get_protocol, protocol_names, register
from .ropa import Ropa
from .sfama import SFama
from .slots import SlotTiming, make_slot_timing

__all__ = [
    "CsMac",
    "MacConfig",
    "MacState",
    "MacStats",
    "Ropa",
    "SFama",
    "SlotTiming",
    "SlottedMac",
    "get_protocol",
    "make_slot_timing",
    "protocol_names",
    "register",
]
