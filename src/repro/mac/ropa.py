"""ROPA — Reverse Opportunistic Packet Appending (Ng, Soh & Motani 2013).

As characterized by the paper (Secs. 2 and 5): "each sender sends the RTS
packet including the propagation delay time between the sender and
receiver.  If a neighbor of the sender intends to communicate with the
sender, then the neighbor can send an RTA packet, i.e. extra RTS, during
the wait time of the sender if the RTA packet does not interfere with the
arrival of the CTS packet."  ROPA exploits only the *sender's* waiting
resources (not the receiver's) — which is why the paper ranks its
throughput gain below CS-MAC's and EW-MAC's — and it must maintain and
periodically broadcast two-hop neighbour information, which the paper
charges to its energy and overhead accounts.

Implementation (two-phase, as in the original protocol):

1. *Request*: a neighbour *n* that overhears ``RTS(s, r)`` and has a queued
   packet whose next hop is *s* transmits ``RTA(n, s)`` timed to land
   inside s's idle window (RTS end -> CTS arrival) without touching the
   CTS.  The waiting sender records the first RTA it hears.
2. *Appended transfer*: when s's own exchange finishes (Ack received, or
   the contention failed), s polls the appender with ``ATA`` (an ACK-typed
   grant), the appender sends its DATA immediately, and s acknowledges.
   The appended transfer extends the busy period rather than running in
   parallel with it — the structural reason ROPA trails CS-MAC/EW-MAC.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..des.events import Event
from ..net.neighbors import TwoHopTable
from ..phy.frame import (
    Frame,
    FrameType,
    control_frame,
    data_frame,
    safe_bits,
    safe_float,
    safe_links,
)
from ..phy.modem import Arrival
from .base import MacConfig, MacState, SlottedMac


def _default_ropa_config() -> MacConfig:
    # ROPA broadcasts two-hop maintenance periodically (it needs fresh info
    # to time appends) and piggybacks neighbour info on control packets.
    return MacConfig(piggyback_bits=64, maintenance_period_s=90.0)


@dataclass
class AppendOffer:
    """Pending reverse-append state on the *waiting sender* s."""

    appender: int
    data_bits: int
    expiry: Optional[Event] = None


@dataclass
class AppendRequest:
    """Pending reverse-append state on the *appending neighbour* n."""

    target: int
    request: object
    rta_event: Optional[Event] = None
    ata_timeout: Optional[Event] = None
    ack_timeout: Optional[Event] = None


class Ropa(SlottedMac):
    """ROPA: slotted handshake + two-phase reverse appending."""

    name = "ROPA"
    uses_two_hop_info = True

    def __init__(self, sim, node, channel, timing, config: Optional[MacConfig] = None):
        super().__init__(sim, node, channel, timing, config or _default_ropa_config())
        self.two_hop = TwoHopTable(node.node_id)
        self._offer: Optional[AppendOffer] = None       # sender side
        self._appending: Optional[AppendRequest] = None  # appender side
        self.appends_attempted = 0
        self.appends_completed = 0

    # ------------------------------------------------------------------
    # Two-hop maintenance
    # ------------------------------------------------------------------
    def handle_neigh(self, frame: Frame, arrival: Arrival) -> None:
        links = safe_links(frame.info.get("links"))
        # Sec. 5.3: processing a two-hop announcement costs per stored link.
        self.stats.computation_units += 2.0 * len(links)
        self.two_hop.record_announcement(frame.src, links, self.sim.now)

    #: ROPA announces at most this many one-hop links per maintenance
    #: broadcast: appending decisions only need the strongest (nearest)
    #: neighbours, so the digest is capped and its overhead stays the
    #: lowest of the two-hop protocols (paper Fig. 10: ROPA ~1.5x).
    DIGEST_CAP = 8

    def maintenance_frame_bits(self) -> int:
        entries = min(self.node.neighbors.memory_entries(), self.DIGEST_CAP)
        return 64 + 48 * entries

    def _send_maintenance(self) -> None:  # noqa: D102 - cap announced links
        if not self.node.modem.enabled:
            return
        if self.node.modem.transmitting or self.state is not MacState.IDLE:
            return
        from ..phy.frame import BROADCAST, Frame, FrameType

        neighbors = self.node.neighbors.neighbors()
        nearest = sorted(
            neighbors, key=lambda nid: self.node.neighbors.delay_to(nid) or 1e9
        )[: self.DIGEST_CAP]
        links = [(nid, self.node.neighbors.delay_to(nid) or 0.0) for nid in nearest]
        bits = self.maintenance_frame_bits()
        frame = Frame(
            ftype=FrameType.NEIGH,
            src=self.node.node_id,
            dst=BROADCAST,
            size_bits=bits,
            timestamp=self.sim.now,
            info={"links": links},
        )
        self.node.modem.transmit(frame)
        self.stats.maintenance_tx_bits += bits

    # ------------------------------------------------------------------
    # Appender side: RTA into the sender's wait window
    # ------------------------------------------------------------------
    def on_overheard(self, frame: Frame, arrival: Arrival) -> None:
        if frame.ftype is FrameType.RTS:
            self._maybe_request_append(frame)

    def _maybe_request_append(self, rts: Frame) -> None:
        self.stats.computation_units += 4.0  # append feasibility check
        if self._appending is not None or self.state is not MacState.IDLE:
            return
        if self.node.modem.transmitting:
            return
        sender = rts.src
        tau_sr = safe_float(rts.pair_delay_s)
        tau_ns = self.node.neighbors.delay_to(sender)
        if tau_sr is None or tau_sr < 0.0 or tau_ns is None:
            return
        request = self.node.pending_for(sender)
        if request is None:
            return
        omega = self.timing.omega_s
        guard = self.config.guard_s
        slot = self.timing.slot_index(rts.timestamp)
        # Sender's idle window: RTS tx end -> CTS(r,s) arrival.
        window_start = self.timing.slot_start(slot) + omega + guard
        window_end = self.timing.slot_start(slot + 1) + tau_sr - guard
        earliest = max(self.sim.now + 1e-6, window_start - tau_ns)
        latest = window_end - omega - tau_ns
        if latest < earliest:
            return
        self.appends_attempted += 1
        self.stats.opportunistic_attempts += 1
        context = AppendRequest(target=sender, request=request)
        context.rta_event = self.sim.schedule_at(earliest, self._send_rta)
        # The grant arrives only after s's whole exchange; allow that span.
        deadline = self.sim.now + 6.0 * self.timing.slot_s
        context.ata_timeout = self.sim.schedule_at(deadline, self._on_ata_timeout)
        self._appending = context

    def _send_rta(self) -> None:
        context = self._appending
        if context is None:
            return
        context.rta_event = None
        if self.node.modem.transmitting or self.state is not MacState.IDLE:
            self._abort_append()
            return
        rta = control_frame(
            FrameType.RTA,
            self.node.node_id,
            context.target,
            self.sim.now,
            data_bits=context.request.size_bits,
        )
        self._transmit_control(rta)
        self.stats.opportunistic_ctrl += 1

    def _on_ata_timeout(self) -> None:
        if self._appending is None:
            return
        self._appending.ata_timeout = None
        self._abort_append()

    def _abort_append(self) -> None:
        context = self._appending
        if context is not None:
            for event in (context.rta_event, context.ata_timeout, context.ack_timeout):
                self.sim.cancel(event)
        self._appending = None

    def _on_ata_received(self, frame: Frame) -> None:
        """Grant arrived: transmit the appended DATA right away."""
        context = self._appending
        if context is None or frame.src != context.target:
            return
        self.sim.cancel(context.ata_timeout)
        context.ata_timeout = None
        if (
            self.state is not MacState.IDLE
            or self.node.modem.transmitting
            or context.request not in self.node.queue
        ):
            self._abort_append()
            return
        data = data_frame(
            self.node.node_id,
            context.target,
            self.sim.now,
            size_bits=context.request.size_bits,
            appended=True,
            req_uid=context.request.uid,
        )
        self.node.modem.transmit(data)
        self.stats.opportunistic_data += 1
        self.stats.opportunistic_data_bits += context.request.size_bits
        tau = self.node.neighbors.delay_to(context.target) or self.timing.tau_max_s
        duration = context.request.size_bits / self.channel.bitrate_bps
        deadline = (
            self.sim.now + duration + 2.0 * tau
            + 3.0 * self.timing.omega_s + 4.0 * self.config.guard_s
        )
        context.ack_timeout = self.sim.schedule_at(deadline, self._on_append_ack_timeout)

    def _on_append_ack_timeout(self) -> None:
        if self._appending is None:
            return
        self._appending.ack_timeout = None
        self._abort_append()

    def _on_append_ack(self, frame: Frame) -> None:
        context = self._appending
        if context is None or frame.src != context.target:
            return
        self.sim.cancel(context.ack_timeout)
        self.node.remove_request(context.request)
        self.node.note_sent(context.request)
        self.appends_completed += 1
        self.stats.handshakes_completed += 1
        self._appending = None

    # ------------------------------------------------------------------
    # Waiting-sender side: record RTA, grant after the primary exchange
    # ------------------------------------------------------------------
    def handle_protocol_frame(self, frame: Frame, arrival: Arrival) -> None:
        if frame.ftype is FrameType.RTA:
            if self._offer is None and self.state in (
                MacState.WAIT_CTS,
                MacState.WAIT_SEND_DATA,
                MacState.WAIT_ACK,
            ):
                offer = AppendOffer(
                    appender=frame.src,
                    data_bits=safe_bits(frame.info.get("data_bits"), default=0, minimum=0),
                )
                offer.expiry = self.sim.schedule(
                    8.0 * self.timing.slot_s, self._expire_offer
                )
                self._offer = offer
            return
        if frame.ftype is FrameType.ACK and frame.info.get("ata"):
            self._on_ata_received(frame)
            return
        if frame.ftype is FrameType.ACK and frame.info.get("appended"):
            self._on_append_ack(frame)

    def _handle_addressed(self, frame: Frame, arrival: Arrival) -> None:  # noqa: D102
        if frame.ftype is FrameType.ACK and frame.info.get("ata"):
            self._on_ata_received(frame)
            return
        if frame.ftype is FrameType.ACK and frame.info.get("appended"):
            self._on_append_ack(frame)
            return
        super()._handle_addressed(frame, arrival)

    def _expire_offer(self) -> None:
        self._offer = None

    def _grant_offer_if_any(self) -> None:
        """Primary exchange over: poll the recorded appender."""
        offer = self._offer
        if offer is None:
            return
        self._offer = None
        self.sim.cancel(offer.expiry)
        if self.node.modem.transmitting:
            return
        ata = control_frame(
            FrameType.ACK, self.node.node_id, offer.appender, self.sim.now, ata=True
        )
        self._transmit_control(ata)
        self.stats.opportunistic_ctrl += 1

    def _complete_send(self) -> None:  # noqa: D102
        super()._complete_send()
        self._grant_offer_if_any()

    def contention_failed(self) -> None:  # noqa: D102
        super().contention_failed()
        self._grant_offer_if_any()

    def handle_unexpected_data(self, frame: Frame, arrival: Arrival) -> None:
        """The appended DATA arrived after our ATA poll: deliver and ack."""
        if not frame.info.get("appended"):
            return
        if self.register_data_reception(frame):
            self.stats.opportunistic_received += 1
            self.stats.opportunistic_received_bits += frame.size_bits
            self.node.note_delivered(frame.size_bits)
            if self.on_data_delivered is not None:
                self.on_data_delivered(self.node, frame.src, frame.size_bits)
        if self.node.modem.transmitting:
            return  # appender retries through the normal path
        ack = control_frame(
            FrameType.ACK, self.node.node_id, frame.src, self.sim.now, appended=True
        )
        self._transmit_control(ack)
        self.stats.ack_sent += 1
        self.stats.opportunistic_ctrl += 1

    def stop(self) -> None:  # noqa: D102
        super().stop()
        self._abort_append()
        if self._offer is not None:
            self.sim.cancel(self._offer.expiry)
            self._offer = None

    def _reset_protocol_state(self) -> None:  # noqa: D102 - crash/reboot wipe
        super()._reset_protocol_state()
        self._abort_append()
        if self._offer is not None:
            self.sim.cancel(self._offer.expiry)
            self._offer = None

    def _audit_protocol_state(self, violations) -> None:  # noqa: D102
        prefix = f"{self.name} node {self.node.node_id}"
        context = self._appending
        if context is not None and not any(
            event is not None and event.pending
            for event in (context.rta_event, context.ata_timeout, context.ack_timeout)
        ):
            violations.append(
                f"{prefix}: append request (target {context.target}) with no live event"
            )
        if self._offer is not None and not (
            self._offer.expiry is not None and self._offer.expiry.pending
        ):
            violations.append(
                f"{prefix}: append offer (appender {self._offer.appender}) with no live expiry"
            )
