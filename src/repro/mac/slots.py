"""Slot arithmetic shared by all slotted UASN MAC protocols.

The paper (Sec. 3.1): "the duration of each time slot is tau_max + omega"
where tau_max is the maximal propagation delay and omega the control-packet
transmit time.  All negotiated packets (RTS/CTS/Data/Ack) start exactly at
slot boundaries; EW-MAC's extra packets (EXR/EXC/EXData/EXAck) generally do
not.

Two equations from the paper live here:

* Eq. (5) — Ack slot for variable-size data:
  ``ts(Ack) = ts(Data) + ceil((TD + tau_sr) / |ts|)``
* Eq. (6) — EXData start time so it reaches j right after j sends Ack(j,k):
  ``t(EXData_ij) = ts(Ack_jk) * (omega + tau_max) + omega - tau_ij``
"""

from __future__ import annotations

import math
from dataclasses import dataclass

#: Tolerance for boundary comparisons (floating-point slot arithmetic).
EPS = 1e-9


@dataclass(frozen=True)
class SlotTiming:
    """Slot grid parameters.

    Attributes:
        omega_s: Control packet on-air time (64 bits / 12 kbps = 5.33 ms).
        tau_max_s: Maximum one-hop propagation delay (1.5 km / 1.5 km/s = 1 s).
    """

    omega_s: float
    tau_max_s: float

    def __post_init__(self) -> None:
        if self.omega_s <= 0 or self.tau_max_s <= 0:
            raise ValueError("omega and tau_max must be positive")
        # Slot width is derived state queried on every slot computation
        # (tens of thousands of times per run via quiet rules and schedule
        # tracking), so it is computed once here; object.__setattr__ is the
        # frozen-dataclass idiom for caches, and non-field attributes stay
        # out of equality/hash.
        object.__setattr__(self, "_slot_s", self.omega_s + self.tau_max_s)

    @property
    def slot_s(self) -> float:
        """|ts| = omega + tau_max."""
        return self._slot_s

    # ------------------------------------------------------------------
    # Grid navigation
    # ------------------------------------------------------------------
    def slot_start(self, index: int) -> float:
        """Absolute start time of slot ``index`` (grid anchored at t=0)."""
        if index < 0:
            raise ValueError("slot index must be non-negative")
        return index * self._slot_s

    def slot_index(self, time: float) -> int:
        """Index of the slot containing ``time``."""
        if time < 0:
            raise ValueError("time must be non-negative")
        return int(math.floor((time + EPS) / self._slot_s))

    def next_slot_index(self, time: float) -> int:
        """Index of the first slot starting at or after ``time``."""
        index = self.slot_index(time)
        if abs(self.slot_start(index) - time) <= EPS:
            return index
        return index + 1

    def next_slot_start(self, time: float) -> float:
        """First slot boundary at or after ``time``."""
        return self.slot_start(self.next_slot_index(time))

    def time_into_slot(self, time: float) -> float:
        """Offset of ``time`` from its slot's start."""
        return time - self.slot_start(self.slot_index(time))

    # ------------------------------------------------------------------
    # Paper equations
    # ------------------------------------------------------------------
    def data_slots(self, data_duration_s: float, tau_sr_s: float) -> int:
        """Number of slots the receiver spends on a data packet, Eq. (5).

        ``ceil((TD + tau_sr) / |ts|)``, at least 1.
        """
        if data_duration_s <= 0:
            raise ValueError("data duration must be positive")
        if tau_sr_s < 0:
            raise ValueError("tau must be non-negative")
        return max(1, math.ceil((data_duration_s + tau_sr_s) / self.slot_s - EPS))

    def ack_slot(self, data_slot: int, data_duration_s: float, tau_sr_s: float) -> int:
        """Eq. (5): the slot in which the receiver transmits the Ack."""
        return data_slot + self.data_slots(data_duration_s, tau_sr_s)

    def exdata_start_time(self, ack_slot: int, tau_ij_s: float) -> float:
        """Eq. (6): when sensor i starts EXData so it reaches j post-Ack.

        ``t = ts(Ack_jk) * (omega + tau_max) + omega - tau_ij``:
        the EXData's leading edge arrives at j exactly when j finishes
        transmitting its Ack (slot start + omega).
        """
        if tau_ij_s < 0:
            raise ValueError("tau must be non-negative")
        return self.slot_start(ack_slot) + self.omega_s - tau_ij_s

    # ------------------------------------------------------------------
    # Handshake span helpers (used for quiet/NAV bookkeeping)
    # ------------------------------------------------------------------
    def exchange_ack_slot(
        self, rts_slot: int, data_duration_s: float, tau_sr_s: float
    ) -> int:
        """Ack slot of a standard handshake whose RTS went out in ``rts_slot``.

        RTS at t, CTS at t+1, Data at t+2 (paper Sec. 4.1), Ack per Eq. (5).
        """
        return self.ack_slot(rts_slot + 2, data_duration_s, tau_sr_s)

    def exchange_end_time(
        self, rts_slot: int, data_duration_s: float, tau_sr_s: float
    ) -> float:
        """Time by which the whole exchange (incl. Ack propagation) is over.

        Conservative: Ack slot start + omega + tau_max, so every neighbour
        of either endpoint has heard the last bit.
        """
        ack = self.exchange_ack_slot(rts_slot, data_duration_s, tau_sr_s)
        return self.slot_start(ack) + self.omega_s + self.tau_max_s


def make_slot_timing(
    bitrate_bps: float,
    control_bits: int,
    max_range_m: float,
    speed_mps: float,
) -> SlotTiming:
    """Build the paper's slot grid from channel parameters."""
    return SlotTiming(
        omega_s=control_bits / bitrate_bps,
        tau_max_s=max_range_m / speed_mps,
    )
