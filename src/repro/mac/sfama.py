"""Slotted FAMA (Molins & Stojanovic 2006) — the paper's baseline.

S-FAMA is exactly the shared slotted engine with no opportunistic reuse:
every handshake reserves whole ``tau_max + omega`` slots, overhearers stay
quiet for the full reserved span, and a failed contention simply backs off.
It keeps no neighbour state beyond what the engine learns passively and
never broadcasts maintenance frames — the paper uses it as the overhead
baseline ("S-FAMA does not require additional computation or storage").
"""

from __future__ import annotations

from .base import SlottedMac


class SFama(SlottedMac):
    """Slotted FAMA: the unmodified four-way handshake engine."""

    name = "S-FAMA"
    uses_two_hop_info = False
    requires_neighbor_info = False
