"""CS-MAC — Channel Stealing MAC (Chen et al., OCEANS 2011).

As characterized by the paper (Secs. 2 and 5): "sensors do not send more
control packets to negotiate but send data packets directly after
determining that the packet will arrive at the receiver before the
negotiated packet", and crucially, CS-MAC "exploits the wait time of
sensors without assessing how transmission will interfere with other
neighbors; thus, additional transmission will increase the interference
effect" — which is why its throughput collapses at high offered load
(paper Fig. 6, beyond 0.8 kbps).

Implementation: a node that overhears a negotiation (CTS) and has queued
data *steals* the waiting period by transmitting its DATA immediately —
no RTS/CTS — provided (a) its intended receiver is not itself part of a
negotiation the stealer knows about, and (b) the data transmission fits
inside the stolen waiting window.  No check is made against any *other*
neighbour's reception (the paper's stated weakness).  The receiver of a
stolen DATA acknowledges immediately.  CS-MAC maintains two-hop neighbour
state via periodic broadcasts and carries two-hop digests in its control
packets, both charged to overhead (paper Sec. 5.3: CS-MAC's overhead
exceeds EW-MAC's because of the two-hop information).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

from ..des.events import Event
from ..net.neighbors import TwoHopTable
from ..phy.frame import (
    CONTROL_PACKET_BITS,
    Frame,
    FrameType,
    control_frame,
    data_frame,
    safe_bits,
    safe_float,
    safe_links,
)
from ..phy.modem import Arrival
from .base import MacConfig, MacState, SlottedMac


def _default_csmac_config() -> MacConfig:
    # Two-hop digests ride on every control packet (large piggyback) and a
    # periodic two-hop maintenance broadcast keeps neighbour state fresh.
    return MacConfig(piggyback_bits=128, maintenance_period_s=120.0)


@dataclass
class StealContext:
    """State of an in-flight channel steal on the stealing node."""

    target: int
    request: object
    ack_timeout: Optional[Event] = None


class CsMac(SlottedMac):
    """CS-MAC: slotted handshake + direct data stealing of waiting periods."""

    name = "CS-MAC"
    uses_two_hop_info = True

    def __init__(self, sim, node, channel, timing, config: Optional[MacConfig] = None):
        super().__init__(sim, node, channel, timing, config or _default_csmac_config())
        self.two_hop = TwoHopTable(node.node_id)
        self._steal: Optional[StealContext] = None
        self._busy_until: Dict[int, float] = {}
        self.steals_attempted = 0
        self.steals_completed = 0

    # ------------------------------------------------------------------
    # Two-hop maintenance
    # ------------------------------------------------------------------
    def handle_neigh(self, frame: Frame, arrival: Arrival) -> None:
        links = safe_links(frame.info.get("links"))
        # Sec. 5.3: processing a two-hop announcement costs per stored link.
        self.stats.computation_units += 2.0 * len(links)
        self.two_hop.record_announcement(frame.src, links, self.sim.now)

    def maintenance_frame_bits(self) -> int:
        # CS-MAC announces its *two-hop* view, roughly quadratic in degree.
        base = super().maintenance_frame_bits()
        return base + 16 * self.two_hop.memory_entries()

    # ------------------------------------------------------------------
    # Stealing
    # ------------------------------------------------------------------
    def on_overheard(self, frame: Frame, arrival: Arrival) -> None:
        self._note_busy(frame)
        # Any overheard negotiation opens a waiting period worth stealing
        # (an RTS reserves the grant slot; a CTS reserves the data span).
        if frame.ftype in (FrameType.CTS, FrameType.RTS):
            self._maybe_steal(frame)

    def _note_busy(self, frame: Frame) -> None:
        """Track which neighbours are committed, and until when."""
        if frame.ftype not in (FrameType.RTS, FrameType.CTS, FrameType.DATA):
            return
        self.stats.computation_units += 4.0  # schedule bookkeeping
        slot = self.timing.slot_index(frame.timestamp)
        if frame.ftype is FrameType.RTS:
            until = self.timing.slot_start(slot + 2)
        else:
            tau = safe_float(frame.pair_delay_s)
            tau = tau if tau is not None and tau >= 0 else self.timing.tau_max_s
            bits = safe_bits(frame.info.get("data_bits"), default=frame.size_bits)
            duration = max(bits, CONTROL_PACKET_BITS) / self.channel.bitrate_bps
            data_slot = slot + 1 if frame.ftype is FrameType.CTS else slot
            ack_slot = self.timing.ack_slot(data_slot, duration, tau)
            until = self.timing.slot_start(ack_slot) + self.timing.omega_s + self.timing.tau_max_s
        for node_id in (frame.src, frame.dst):
            if node_id >= 0:
                self._busy_until[node_id] = max(self._busy_until.get(node_id, 0.0), until)

    def _is_known_busy(self, node_id: int) -> bool:
        return self._busy_until.get(node_id, 0.0) > self.sim.now

    def _maybe_steal(self, overheard: Frame) -> None:
        self.stats.computation_units += 8.0  # steal feasibility check
        if self._steal is not None or self.state is not MacState.IDLE:
            return
        if self.node.modem.transmitting:
            return
        request = self.node.peek_request()
        if request is None:
            return
        target = request.dst
        # CS-MAC only reasons about the negotiation it overheard: the
        # stealer avoids the pair itself but does NOT know (or check)
        # whether the target is engaged in some other exchange — the
        # paper's "without assessing how transmission will interfere with
        # other neighbors".  At high load this is what breaks it.
        if target in (overheard.src, overheard.dst):
            return
        tau_target = self.node.neighbors.delay_to(target)
        if tau_target is None:
            return
        # The stolen window: from now until the overheard negotiation wakes
        # the neighbourhood — an RTS reserves through the grant slot, a CTS
        # through the data transfer (the span quiet neighbours observe).
        slot = self.timing.slot_index(overheard.timestamp)
        if overheard.ftype is FrameType.RTS:
            window_end = self.timing.slot_start(slot + 2)
        else:
            tau = safe_float(overheard.pair_delay_s)
            tau = tau if tau is not None and tau >= 0 else self.timing.tau_max_s
            bits = safe_bits(overheard.info.get("data_bits"))
            peer_duration = max(bits, CONTROL_PACKET_BITS) / self.channel.bitrate_bps
            window_end = self.timing.slot_start(
                self.timing.ack_slot(slot + 1, peer_duration, tau)
            )
        duration = request.size_bits / self.channel.bitrate_bps
        # CS-MAC's published condition: the stolen data must *arrive at the
        # receiver before the negotiated packet* wakes the neighbourhood.
        # The Ack round trip is not protected — acks ride on luck, which is
        # exactly the aggressiveness the paper criticizes.
        arrival_end = self.sim.now + duration + tau_target
        if arrival_end + self.config.guard_s > window_end:
            return
        # NOTE: deliberately *no* check against other neighbours' receive
        # windows — the paper's stated CS-MAC weakness.
        self.steals_attempted += 1
        self.stats.opportunistic_attempts += 1
        frame = data_frame(
            self.node.node_id,
            target,
            self.sim.now,
            size_bits=request.size_bits,
            stolen=True,
            req_uid=request.uid,
        )
        self.node.modem.transmit(frame)
        self.stats.opportunistic_data += 1
        self.stats.opportunistic_data_bits += request.size_bits
        context = StealContext(target=target, request=request)
        ack_deadline = (
            arrival_end + tau_target + 2.0 * self.timing.omega_s + 4.0 * self.config.guard_s
        )
        context.ack_timeout = self.sim.schedule_at(ack_deadline, self._on_steal_timeout)
        self._steal = context
        self.state = MacState.EXTRA

    def _on_steal_timeout(self) -> None:
        if self._steal is None:
            return
        # A failed steal consumed one of the packet's delivery attempts —
        # the data went on the air and was lost to interference.
        request = self._steal.request
        request.attempts += 1
        if request.attempts > self.config.max_retries:
            self.node.remove_request(request)
            self.stats.drops += 1
        self.stats.retransmitted_bits += request.size_bits
        self._steal.ack_timeout = None
        self._steal = None
        if self.state is MacState.EXTRA:
            self.state = MacState.IDLE

    # ------------------------------------------------------------------
    # Stolen-data receiver side
    # ------------------------------------------------------------------
    def handle_unexpected_data(self, frame: Frame, arrival: Arrival) -> None:
        if not frame.info.get("stolen"):
            return
        if self.state not in (MacState.IDLE, MacState.WAIT_CTS):
            return  # committed elsewhere; stealer will time out
        if self.node.modem.transmitting:
            return
        if self.register_data_reception(frame):
            self.stats.opportunistic_received += 1
            self.stats.opportunistic_received_bits += frame.size_bits
            self.node.note_delivered(frame.size_bits)
            if self.on_data_delivered is not None:
                self.on_data_delivered(self.node, frame.src, frame.size_bits)
        ack = control_frame(
            FrameType.ACK, self.node.node_id, frame.src, self.sim.now, stolen=True
        )
        self._transmit_control(ack)
        self.stats.ack_sent += 1
        self.stats.opportunistic_ctrl += 1

    def _handle_addressed(self, frame: Frame, arrival: Arrival) -> None:  # noqa: D102
        if frame.ftype is FrameType.ACK and frame.info.get("stolen"):
            self._on_steal_ack(frame)
            return
        super()._handle_addressed(frame, arrival)

    def stop(self) -> None:  # noqa: D102 - cancel steal bookkeeping too
        super().stop()
        if self._steal is not None:
            self.sim.cancel(self._steal.ack_timeout)
            self._steal = None

    def _reset_protocol_state(self) -> None:  # noqa: D102 - crash/reboot wipe
        super()._reset_protocol_state()
        if self._steal is not None:
            self.sim.cancel(self._steal.ack_timeout)
            self._steal = None
        self._busy_until.clear()

    def _audit_protocol_state(self, violations) -> None:  # noqa: D102
        prefix = f"{self.name} node {self.node.node_id}"
        if self.state is MacState.EXTRA and self._steal is None:
            violations.append(f"{prefix}: EXTRA state without a steal context")
        if self._steal is not None and not (
            self._steal.ack_timeout is not None and self._steal.ack_timeout.pending
        ):
            violations.append(
                f"{prefix}: steal context (target {self._steal.target}) with no live Ack timeout"
            )

    def _on_steal_ack(self, frame: Frame) -> None:
        context = self._steal
        if context is None or frame.src != context.target:
            return
        self.sim.cancel(context.ack_timeout)
        self.node.remove_request(context.request)
        self.node.note_sent(context.request)
        self.steals_completed += 1
        self.stats.handshakes_completed += 1
        self._steal = None
        if self.state is MacState.EXTRA:
            self.state = MacState.IDLE
