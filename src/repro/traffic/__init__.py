"""Workload generators: Poisson, CBR and fixed-batch traffic."""

from .generators import (
    BatchWorkload,
    CbrTraffic,
    PoissonTraffic,
    TrafficStats,
    offered_load_to_rate,
)

__all__ = [
    "BatchWorkload",
    "CbrTraffic",
    "PoissonTraffic",
    "TrafficStats",
    "offered_load_to_rate",
]
