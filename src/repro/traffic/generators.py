"""Workload generators.

The paper sweeps *offered load* in kbps (Sec. 5, Figs. 6-11).  Fig. 8's
caption calibrates the unit: "20 packets per 300 s, i.e. offer load of
approximately 0.136 [kbps]" — with 2048-bit packets, 20 * 2048 / 300 =
136.5 bps.  Offered load is therefore **network-wide generated bits per
second**, independent of node count.

Generators:

* :class:`PoissonTraffic` — network-wide Poisson packet arrivals at the
  configured offered load; each packet originates at a uniformly chosen
  sensor and is addressed to that sensor's current depth-routing next hop.
* :class:`CbrTraffic` — per-node constant-bit-rate arrivals (deterministic
  gaps), useful for reproducible single-pair tests.
* :class:`BatchWorkload` — the Fig. 8 "execution time" workload: a fixed
  batch of packets injected at the start; the experiment measures the time
  until the network drains them.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence

import numpy as np

from ..des.simulator import Simulator
from ..net.node import Node
from ..phy.frame import DEFAULT_DATA_PACKET_BITS
from ..topology.routing import DepthRouting


@dataclass
class TrafficStats:
    """What a generator injected."""

    packets: int = 0
    bits: int = 0
    undeliverable: int = 0  # arrivals at momentarily stranded sources


def offered_load_to_rate(offered_load_kbps: float, packet_bits: int) -> float:
    """Packets per second network-wide for a given offered load."""
    if offered_load_kbps < 0:
        raise ValueError("offered load must be non-negative")
    if packet_bits <= 0:
        raise ValueError("packet size must be positive")
    return offered_load_kbps * 1000.0 / packet_bits


class PoissonTraffic:
    """Network-wide Poisson arrivals at a fixed offered load.

    Each arrival picks a source sensor uniformly at random and enqueues one
    packet toward that sensor's current next hop.  If the source has no
    next hop at that instant (stranded by mobility), the arrival is counted
    as undeliverable and skipped — matching a sensor that cannot currently
    report anything.
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[Node],
        routing: DepthRouting,
        offered_load_kbps: float,
        packet_bits: int = DEFAULT_DATA_PACKET_BITS,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        self.sim = sim
        self.sources = [n for n in nodes if not n.is_sink]
        if not self.sources:
            raise ValueError("no traffic sources (all nodes are sinks)")
        self.routing = routing
        self.packet_bits = packet_bits
        self.rate_pps = offered_load_to_rate(offered_load_kbps, packet_bits)
        self._rng = rng if rng is not None else sim.streams.get("traffic")
        self.stats = TrafficStats()
        self._timer = None

    def start(self) -> None:
        """Begin generating (no-op at zero load)."""
        if self.rate_pps > 0:
            self._schedule_next()

    def stop(self) -> None:
        self.sim.cancel(self._timer)
        self._timer = None

    def _schedule_next(self) -> None:
        gap = float(self._rng.exponential(1.0 / self.rate_pps))
        self._timer = self.sim.schedule(gap, self._arrival)

    def _arrival(self) -> None:
        source = self.sources[int(self._rng.integers(0, len(self.sources)))]
        self._inject(source)
        self._schedule_next()

    def _inject(self, source: Node) -> None:
        next_hop = self.routing.next_hop(source.node_id)
        if next_hop is None:
            self.stats.undeliverable += 1
            return
        source.enqueue_data(next_hop, self.packet_bits)
        self.stats.packets += 1
        self.stats.bits += self.packet_bits


class CbrTraffic:
    """Per-node constant-bit-rate arrivals with optional phase stagger."""

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[Node],
        routing: DepthRouting,
        per_node_interval_s: float,
        packet_bits: int = DEFAULT_DATA_PACKET_BITS,
        stagger: bool = True,
    ) -> None:
        if per_node_interval_s <= 0:
            raise ValueError("interval must be positive")
        self.sim = sim
        self.sources = [n for n in nodes if not n.is_sink]
        self.routing = routing
        self.interval_s = per_node_interval_s
        self.packet_bits = packet_bits
        self.stagger = stagger
        self.stats = TrafficStats()
        self._timers: List[object] = []

    def start(self) -> None:
        for index, source in enumerate(self.sources):
            phase = (
                (index / max(len(self.sources), 1)) * self.interval_s
                if self.stagger
                else 0.0
            )
            self._timers.append(self.sim.schedule(phase, self._arrival, source))

    def stop(self) -> None:
        for timer in self._timers:
            self.sim.cancel(timer)
        self._timers.clear()

    def _arrival(self, source: Node) -> None:
        next_hop = self.routing.next_hop(source.node_id)
        if next_hop is None:
            self.stats.undeliverable += 1
        else:
            source.enqueue_data(next_hop, self.packet_bits)
            self.stats.packets += 1
            self.stats.bits += self.packet_bits
        self._timers.append(self.sim.schedule(self.interval_s, self._arrival, source))


class BatchWorkload:
    """Inject a fixed batch of packets; used for Fig. 8 execution time.

    Injections are staggered uniformly over ``inject_window_s`` (the
    paper's "N packets per 300 s" framing) across randomly chosen sources —
    dumping the whole batch at one instant would measure a contention
    stampede rather than the protocols' transfer speed.

    :meth:`all_drained` reports whether every injected packet reached a
    terminal state: acknowledged by its next hop (``note_sent``) or dropped
    after exhausting its retries (reported by the caller via
    :meth:`note_drops`).
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[Node],
        routing: DepthRouting,
        n_packets: int,
        packet_bits: int = DEFAULT_DATA_PACKET_BITS,
        inject_window_s: float = 150.0,
        rng: Optional[np.random.Generator] = None,
    ) -> None:
        if n_packets < 0:
            raise ValueError("n_packets must be non-negative")
        if inject_window_s < 0:
            raise ValueError("inject window must be non-negative")
        self.sim = sim
        self.sources = [n for n in nodes if not n.is_sink]
        self.routing = routing
        self.n_packets = n_packets
        self.packet_bits = packet_bits
        self.inject_window_s = inject_window_s
        self._rng = rng if rng is not None else sim.streams.get("traffic.batch")
        self.stats = TrafficStats()
        self._drops_fn = None
        self._started_at: Optional[float] = None

    def attach_drop_counter(self, drops_fn) -> None:
        """Provide a callable returning the network's packet-drop count."""
        self._drops_fn = drops_fn

    def start(self) -> None:
        """Schedule the staggered batch injections."""
        self._started_at = self.sim.now
        offsets = sorted(
            float(self._rng.uniform(0.0, self.inject_window_s))
            for _ in range(self.n_packets)
        )
        for offset in offsets:
            self.sim.schedule(offset, self._inject_one)

    def _inject_one(self) -> None:
        source = self.sources[int(self._rng.integers(0, len(self.sources)))]
        next_hop = self.routing.next_hop(source.node_id)
        if next_hop is None:
            self.stats.undeliverable += 1
            return
        source.enqueue_data(next_hop, self.packet_bits)
        self.stats.packets += 1
        self.stats.bits += self.packet_bits

    def sent_packets(self) -> int:
        return sum(s.app_stats.sent for s in self.sources)

    def dropped_packets(self) -> int:
        return int(self._drops_fn()) if self._drops_fn is not None else 0

    def all_injected(self) -> bool:
        """True once every scheduled injection has happened."""
        return (
            self._started_at is not None
            and self.sim.now >= self._started_at + self.inject_window_s
        )

    def all_drained(self) -> bool:
        """True once no batch work remains anywhere in the network.

        Terminal condition: every injection happened, every queue (including
        relays') is empty, and every MAC is back in its idle state — i.e.
        each packet was either delivered end to end or dropped.
        """
        if not self.all_injected():
            return False
        for source in self.sources:
            if source.queue:
                return False
            mac = source.mac
            if mac is not None and getattr(mac.state, "value", "idle") != "idle":
                return False
        return True
