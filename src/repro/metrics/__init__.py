"""Metrics layer: the paper's Eqs. (2)-(4) plus overhead and drain time."""

from .efficiency import EfficiencyIndex, efficiency_index
from .execution import ExecutionResult, mean_delivery_delay_s, run_until_drained
from .overhead import (
    MEMORY_BITS_PER_ENTRY,
    OverheadReport,
    network_overhead,
    overhead_ratio,
)
from .throughput import ThroughputReport, network_throughput, offered_vs_carried
from .utilization import UtilizationReport, network_utilization

__all__ = [
    "EfficiencyIndex",
    "ExecutionResult",
    "MEMORY_BITS_PER_ENTRY",
    "OverheadReport",
    "ThroughputReport",
    "UtilizationReport",
    "efficiency_index",
    "network_utilization",
    "mean_delivery_delay_s",
    "network_overhead",
    "network_throughput",
    "offered_vs_carried",
    "overhead_ratio",
    "run_until_drained",
]
