"""Overhead accounting (paper Sec. 5.3).

"The overhead values are calculated by comparing transmission cost, cost of
maintaining neighbors, and retransmission cost of S-FAMA. ... The neighbor
maintenance cost includes the cost of accessing neighboring information,
carrying more information as piggyback, and transmitting messages without
piggyback."

One overhead unit = one bit-equivalent of non-payload cost:

* **control transmission**: control bits put on the air (RTS/CTS/Ack and
  the opportunistic negotiation packets);
* **piggyback**: extra neighbour-info bits riding on control packets
  (one-hop delays for ROPA/EW-MAC, two-hop digests for CS-MAC);
* **maintenance**: NEIGH broadcast bits (periodic two-hop announcements of
  ROPA/CS-MAC; EW-MAC and S-FAMA never broadcast);
* **retransmission**: every bit transmitted more than once;
* **computation**: bit-equivalent charges the MACs record for neighbour
  schedule bookkeeping and opportunity feasibility checks ("the cost of
  accessing neighboring information");
* **memory**: a per-entry charge for stored neighbour state, skipped for
  S-FAMA, which "does not require additional computation or storage".

The paper reports overhead as a *ratio to S-FAMA* (its Fig. 10); use
:func:`overhead_ratio` with the S-FAMA run of the same scenario.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..mac.base import SlottedMac

#: Bit-equivalent charge per stored neighbour-table entry.
MEMORY_BITS_PER_ENTRY = 4.0


@dataclass
class OverheadReport:
    """Decomposed overhead units for one protocol run."""

    control_bits: float
    piggyback_bits: float
    maintenance_bits: float
    retransmitted_bits: float
    computation_units: float
    memory_units: float

    @property
    def total_units(self) -> float:
        return (
            self.control_bits
            + self.piggyback_bits
            + self.maintenance_bits
            + self.retransmitted_bits
            + self.computation_units
            + self.memory_units
        )


def network_overhead(macs: Sequence[SlottedMac]) -> OverheadReport:
    """Aggregate overhead units over every node's MAC counters."""
    control = 0.0
    piggyback = 0.0
    maintenance = 0.0
    retransmitted = 0.0
    computation = 0.0
    memory = 0.0
    for mac in macs:
        control += mac.stats.ctrl_sent_bits
        piggyback += mac.stats.piggyback_bits
        maintenance += mac.stats.maintenance_tx_bits
        retransmitted += mac.stats.retransmitted_bits
        computation += mac.stats.computation_units
        if mac.requires_neighbor_info:
            entries = mac.node.neighbors.memory_entries()
            two_hop = getattr(mac, "two_hop", None)
            if two_hop is not None:
                entries += two_hop.memory_entries()
            memory += entries * MEMORY_BITS_PER_ENTRY
    return OverheadReport(
        control_bits=control,
        piggyback_bits=piggyback,
        maintenance_bits=maintenance,
        retransmitted_bits=retransmitted,
        computation_units=computation,
        memory_units=memory,
    )


def overhead_ratio(report: OverheadReport, baseline: OverheadReport) -> float:
    """Paper Fig. 10 y-axis: overhead relative to the S-FAMA baseline."""
    if baseline.total_units <= 0:
        raise ValueError("baseline overhead must be positive")
    return report.total_units / baseline.total_units
