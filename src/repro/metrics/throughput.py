"""Throughput metrics (paper Eqs. 2-3).

Eq. (2) sums the successfully received data at each sensor k; Eq. (3)
divides the network sum by the observation window T:

    TPT = sum_k dr_k / T

The MAC layer counts every successfully received data bit (negotiated and
opportunistic), so throughput here is MAC-level goodput: a packet relayed
over h hops contributes h times, exactly as Eq. (2) counts it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..mac.base import SlottedMac


@dataclass
class ThroughputReport:
    """Network throughput summary."""

    total_bits: int
    duration_s: float
    per_node_bits: List[int]

    @property
    def kbps(self) -> float:
        """Eq. (3) in the paper's Fig. 6 units."""
        return self.total_bits / self.duration_s / 1000.0

    @property
    def bps(self) -> float:
        return self.total_bits / self.duration_s


def network_throughput(macs: Sequence[SlottedMac], duration_s: float) -> ThroughputReport:
    """Eq. (3): total successfully received data bits over T."""
    if duration_s <= 0:
        raise ValueError("duration must be positive")
    per_node = [mac.stats.total_data_bits_received for mac in macs]
    return ThroughputReport(
        total_bits=sum(per_node), duration_s=duration_s, per_node_bits=per_node
    )


def offered_vs_carried(
    macs: Sequence[SlottedMac], offered_bits: int, duration_s: float
) -> float:
    """Carried/offered ratio in [0, inf) (saturation diagnostic)."""
    if offered_bits <= 0:
        return 0.0
    return network_throughput(macs, duration_s).total_bits / offered_bits
