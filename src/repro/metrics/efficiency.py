"""Efficiency index (paper Eq. 4 and Fig. 11).

``E_A = TPT_A / PC_A`` — throughput per unit power.  The paper plots each
protocol's index normalized so S-FAMA equals 1.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..energy.model import EnergyReport
from .throughput import ThroughputReport


@dataclass(frozen=True)
class EfficiencyIndex:
    """Eq. (4) for one protocol run."""

    throughput_kbps: float
    power_mw: float

    @property
    def value(self) -> float:
        """Raw TPT/PC (kbps per mW); 0 when no power was drawn."""
        if self.power_mw <= 0:
            return 0.0
        return self.throughput_kbps / self.power_mw

    def relative_to(self, baseline: "EfficiencyIndex") -> float:
        """Fig. 11 y-axis: this index with the baseline (S-FAMA) at 1.0."""
        if baseline.value <= 0:
            raise ValueError("baseline efficiency must be positive")
        return self.value / baseline.value


def efficiency_index(
    throughput: ThroughputReport, energy: EnergyReport
) -> EfficiencyIndex:
    """Build Eq. (4) from the throughput and energy reports."""
    return EfficiencyIndex(
        throughput_kbps=throughput.kbps, power_mw=energy.average_power_mw
    )
