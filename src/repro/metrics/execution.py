"""Execution-time metric (paper Fig. 8).

"The time for successful transmission is another important index": inject
a fixed batch of packets and measure how long the network takes to deliver
all of them.  The drain time is the latest ``note_sent`` instant across
sources (recorded by :class:`~repro.net.node.AppStats`).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional, Sequence

from ..des.simulator import Simulator
from ..net.node import Node
from ..traffic.generators import BatchWorkload


@dataclass
class ExecutionResult:
    """Outcome of a batch-drain run."""

    injected: int
    completed: int
    drain_time_s: float
    timed_out: bool

    @property
    def all_completed(self) -> bool:
        return self.completed >= self.injected and self.injected > 0


def run_until_drained(
    sim: Simulator,
    workload: BatchWorkload,
    max_time_s: float,
    check_interval_s: float = 1.0,
) -> ExecutionResult:
    """Advance the simulation until the batch drains (or ``max_time_s``).

    The simulation is advanced in ``check_interval_s`` chunks.  The drain
    time is the last successful completion when that is the terminal event,
    otherwise the (chunk-resolution) instant the network went idle.
    """
    if max_time_s <= 0:
        raise ValueError("max_time_s must be positive")
    return drain_toward_deadline(
        sim,
        workload,
        deadline_s=sim.now + max_time_s,
        max_time_s=max_time_s,
        check_interval_s=check_interval_s,
    )


def drain_toward_deadline(
    sim: Simulator,
    workload: BatchWorkload,
    deadline_s: float,
    max_time_s: float,
    check_interval_s: float = 1.0,
    on_chunk: Optional[Callable[[], None]] = None,
) -> ExecutionResult:
    """Resumable core of :func:`run_until_drained`.

    Takes the deadline as an *absolute* simulation time so a checkpointed
    run can re-enter the loop mid-drain with the original deadline intact.
    ``on_chunk`` fires between chunks (never mid-chunk), so a checkpoint
    taken there lands exactly on a chunk boundary — the resumed loop then
    advances through the same boundaries as the uninterrupted run, which
    keeps the chunk-resolution drain-time estimate bit-identical.
    """
    while sim.now < deadline_s:
        if workload.all_drained():
            break
        sim.run(until=min(sim.now + check_interval_s, deadline_s))
        if on_chunk is not None and sim.now < deadline_s and not workload.all_drained():
            on_chunk()
    drained = workload.all_drained()
    last_sent = max(
        (n.app_stats.last_sent_at for n in workload.sources), default=0.0
    )
    if drained:
        # the network went idle within the last chunk; the last ack is the
        # sharper estimate when it is the terminal event
        drain_time = max(last_sent, sim.now - check_interval_s)
    else:
        drain_time = max_time_s
    return ExecutionResult(
        injected=workload.stats.packets,
        completed=workload.sent_packets(),
        drain_time_s=drain_time,
        timed_out=not drained,
    )


def mean_delivery_delay_s(nodes: Sequence[Node]) -> float:
    """Mean per-packet enqueue-to-ack delay over all source nodes."""
    total_delay = sum(n.app_stats.delivery_delay_total_s for n in nodes)
    total_sent = sum(n.app_stats.sent for n in nodes)
    return total_delay / total_sent if total_sent else 0.0
