"""Bandwidth-utilization metrics.

The paper's abstract frames EW-MAC as "a slotted medium access control
protocol to enhance bandwidth utilization in UASNs".  Utilization here is
measured two ways:

* **data utilization** — successfully received data bits over the
  channel-capacity bits available in the window (``bitrate * T``): how
  much of the raw acoustic capacity carried useful data;
* **airtime utilization** — fraction of the window during which the
  average node's antenna was busy transmitting or receiving: how idle the
  waiting-dominated slotted design leaves the hardware.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from ..mac.base import SlottedMac


@dataclass(frozen=True)
class UtilizationReport:
    """Bandwidth-utilization summary for one run."""

    data_utilization: float
    airtime_utilization: float
    received_bits: int
    capacity_bits: float

    def __post_init__(self) -> None:
        if not 0.0 <= self.data_utilization:
            raise ValueError("utilization cannot be negative")


def network_utilization(
    macs: Sequence[SlottedMac], duration_s: float, bitrate_bps: float
) -> UtilizationReport:
    """Compute both utilization views over every node's counters.

    ``data_utilization`` uses single-channel capacity (``bitrate * T``):
    values above 1.0 are possible in spatially large networks, where
    concurrent exchanges reuse the same band in different places — exactly
    the spatial reuse the related-work section discusses.
    """
    if duration_s <= 0 or bitrate_bps <= 0:
        raise ValueError("duration and bitrate must be positive")
    received = sum(m.stats.total_data_bits_received for m in macs)
    capacity = bitrate_bps * duration_s
    if macs:
        busy = sum(
            m.node.modem.stats.tx_time_s + m.node.modem.stats.rx_busy_time_s
            for m in macs
        )
        airtime = busy / (len(macs) * duration_s)
    else:
        airtime = 0.0
    return UtilizationReport(
        data_utilization=received / capacity,
        airtime_utilization=min(airtime, 1.0),
        received_bits=received,
        capacity_bits=capacity,
    )
