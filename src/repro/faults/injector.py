"""Compile a :class:`~repro.faults.plan.FaultPlan` into scheduled DES events.

The injector is created by :class:`~repro.experiments.scenario.Scenario`
only when the plan is non-empty, and :meth:`FaultInjector.arm` is called
once at scenario start.  Everything it does is deterministic: crash-wave
victims and jitters come from the dedicated ``"faults"`` RNG stream
(derived from the scenario seed, independent of every other stream), the
plan's entries are armed in declaration order, and the executed fault
timeline is logged as a tuple of :class:`FaultEvent`s that lands in the
:class:`FaultReport` — so two runs with the same seed produce identical
fault logs, and the log itself is part of the determinism contract.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Dict, List, Optional, Sequence, Tuple

from ..des.simulator import Simulator
from .plan import ClockFault, CrashWave, FaultPlan, ModemOutage, NoiseBurst

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..net.node import Node
    from ..phy.channel import AcousticChannel


@dataclass(frozen=True)
class FaultEvent:
    """One executed fault action (the unit of the deterministic fault log)."""

    time_s: float
    kind: str  # crash | recover | outage_start | outage_end | clock | noise_start | noise_end
    node_id: Optional[int] = None
    detail: str = ""


@dataclass
class FaultReport:
    """Degradation metrics and the executed fault timeline for one run.

    ``wedged_handshakes`` is the number of post-run invariant violations
    (orphaned pending MAC state); ``recovery_times_s`` holds, per
    recovered node, the time from its return to its first successful
    application-level send or delivery.
    """

    events: Tuple[FaultEvent, ...] = ()
    crashes: int = 0
    recoveries: int = 0
    tx_outages: int = 0
    rx_outages: int = 0
    clock_faults: int = 0
    noise_bursts: int = 0
    wedged_handshakes: int = 0
    audit_violations: Tuple[str, ...] = ()
    recovery_times_s: Tuple[float, ...] = ()

    @property
    def mean_recovery_time_s(self) -> float:
        if not self.recovery_times_s:
            return 0.0
        return sum(self.recovery_times_s) / len(self.recovery_times_s)

    def to_dict(self) -> Dict[str, object]:
        """JSON-friendly summary merged into ``ScenarioResult.to_dict``."""
        return {
            "fault_events": [
                (e.time_s, e.kind, e.node_id, e.detail) for e in self.events
            ],
            "fault_crashes": self.crashes,
            "fault_recoveries": self.recoveries,
            "wedged_handshakes": self.wedged_handshakes,
            "mean_recovery_time_s": self.mean_recovery_time_s,
        }


@dataclass
class _Counters:
    crashes: int = 0
    recoveries: int = 0
    tx_outages: int = 0
    rx_outages: int = 0
    clock_faults: int = 0
    noise_bursts: int = 0


class FaultInjector:
    """Schedules a plan's faults onto the kernel and logs what fired."""

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence["Node"],
        channel: "AcousticChannel",
        plan: FaultPlan,
    ) -> None:
        if not plan:
            raise ValueError("refusing to build an injector for an empty plan")
        self.sim = sim
        self.nodes = list(nodes)
        self.channel = channel
        self.plan = plan
        self._node_by_id: Dict[int, "Node"] = {n.node_id: n for n in self.nodes}
        self.events: List[FaultEvent] = []
        self.counts = _Counters()
        self._armed = False

    # ------------------------------------------------------------------
    def arm(self) -> None:
        """Resolve victims and schedule every fault (call once, at start)."""
        if self._armed:
            raise RuntimeError("fault plan already armed")
        self._armed = True
        for crash in self.plan.crashes:
            node = self._require_node(crash.node_id)
            self.sim.schedule_at(crash.at_s, self._crash, node, crash.recover_after_s)
        for wave in self.plan.waves:
            self._arm_wave(wave)
        for outage in self.plan.outages:
            self._require_node(outage.node_id)
            self.sim.schedule_at(outage.at_s, self._outage_start, outage)
            self.sim.schedule_at(
                outage.at_s + outage.duration_s, self._outage_end, outage
            )
        for fault in self.plan.clock_faults:
            self._require_node(fault.node_id)
            self.sim.schedule_at(fault.at_s, self._clock_fault, fault)
        for burst in self.plan.noise_bursts:
            self.sim.schedule_at(burst.at_s, self._noise_start, burst)
            self.sim.schedule_at(burst.at_s + burst.duration_s, self._noise_end, burst)

    def _require_node(self, node_id: int) -> "Node":
        node = self._node_by_id.get(node_id)
        if node is None:
            raise ValueError(
                f"fault plan targets node {node_id}, which does not exist "
                f"(scenario has ids {sorted(self._node_by_id)[:8]}...)"
            )
        return node

    def _arm_wave(self, wave: CrashWave) -> None:
        rng = self.sim.streams.get("faults")
        eligible = [n for n in self.nodes if not n.is_sink]
        count = int(round(wave.fraction * len(eligible)))
        if count <= 0:
            return
        picks = rng.choice(len(eligible), size=count, replace=False)
        for index in sorted(int(i) for i in picks):
            node = eligible[index]
            at = wave.at_s
            if wave.jitter_s > 0:
                at += float(rng.uniform(0.0, wave.jitter_s))
            self.sim.schedule_at(at, self._crash, node, wave.recover_after_s)

    # ------------------------------------------------------------------
    # Scheduled actions
    # ------------------------------------------------------------------
    def _log(self, kind: str, node_id: Optional[int] = None, detail: str = "") -> None:
        self.events.append(FaultEvent(self.sim.now, kind, node_id, detail))
        self.sim.trace.emit(self.sim.now, f"fault.{kind}", node_id or -1, detail=detail)

    def _crash(self, node: "Node", recover_after_s: Optional[float]) -> None:
        if not node.alive:
            return  # already down (overlapping crash entries)
        node.fail()
        self.counts.crashes += 1
        self._log("crash", node.node_id)
        if recover_after_s is not None:
            self.sim.schedule(recover_after_s, self._recover, node)

    def _recover(self, node: "Node") -> None:
        if node.alive:
            return
        node.recover()
        self.counts.recoveries += 1
        self._log("recover", node.node_id)

    def _outage_start(self, outage: ModemOutage) -> None:
        modem = self._node_by_id[outage.node_id].modem
        if outage.direction in ("tx", "both"):
            modem.tx_enabled = False
            self.counts.tx_outages += 1
        if outage.direction in ("rx", "both"):
            modem.rx_enabled = False
            self.counts.rx_outages += 1
        self._log("outage_start", outage.node_id, outage.direction)

    def _outage_end(self, outage: ModemOutage) -> None:
        modem = self._node_by_id[outage.node_id].modem
        if outage.direction in ("tx", "both"):
            modem.tx_enabled = True
        if outage.direction in ("rx", "both"):
            modem.rx_enabled = True
        self._log("outage_end", outage.node_id, outage.direction)

    def _clock_fault(self, fault: ClockFault) -> None:
        node = self._node_by_id[fault.node_id]
        node.clock.apply_fault(
            offset_jump_s=fault.offset_jump_s, drift_ppm=fault.drift_ppm
        )
        self.counts.clock_faults += 1
        self._log(
            "clock",
            fault.node_id,
            f"jump={fault.offset_jump_s} drift={fault.drift_ppm}",
        )

    def _noise_start(self, burst: NoiseBurst) -> None:
        self.channel.extra_noise_db += burst.extra_noise_db
        self.counts.noise_bursts += 1
        self._log("noise_start", None, f"{burst.extra_noise_db:+g} dB")

    def _noise_end(self, burst: NoiseBurst) -> None:
        self.channel.extra_noise_db -= burst.extra_noise_db
        self._log("noise_end", None, f"{-burst.extra_noise_db:+g} dB")

    # ------------------------------------------------------------------
    def build_report(self, audit_violations: Sequence[str]) -> FaultReport:
        """Assemble the per-run fault report (called by ``Scenario._collect``)."""
        latencies = tuple(
            node.recovery_latency_s
            for node in self.nodes
            if node.recovery_latency_s is not None
        )
        counts = self.counts
        return FaultReport(
            events=tuple(self.events),
            crashes=counts.crashes,
            recoveries=counts.recoveries,
            tx_outages=counts.tx_outages,
            rx_outages=counts.rx_outages,
            clock_faults=counts.clock_faults,
            noise_bursts=counts.noise_bursts,
            wedged_handshakes=len(audit_violations),
            audit_violations=tuple(audit_violations),
            recovery_times_s=latencies,
        )
