"""Deterministic, seed-driven fault injection for scenario runs.

Declare *what fails* with a :class:`FaultPlan` (pure data, hashable,
cache-key-stable), hand it to ``ScenarioConfig(faults=...)``, and the
scenario compiles it into scheduled DES events via :class:`FaultInjector`.
Degradation metrics and the executed fault timeline come back as a
:class:`FaultReport` on the :class:`~repro.experiments.scenario.ScenarioResult`;
the post-run invariant audit (:mod:`repro.faults.audit`) guarantees no MAC
ends wedged by a peer that died mid-exchange.
"""

from .audit import FaultAuditError, audit_mac, audit_macs
from .injector import FaultEvent, FaultInjector, FaultReport
from .plan import (
    ClockFault,
    CrashWave,
    FaultPlan,
    ModemOutage,
    NodeCrash,
    NoiseBurst,
)

__all__ = [
    "ClockFault",
    "CrashWave",
    "FaultAuditError",
    "FaultEvent",
    "FaultInjector",
    "FaultPlan",
    "FaultReport",
    "ModemOutage",
    "NodeCrash",
    "NoiseBurst",
    "audit_mac",
    "audit_macs",
]
