"""Declarative fault plans.

A :class:`FaultPlan` describes *what goes wrong and when* in a scenario:
node crashes (with optional recovery), modem TX/RX chain outages,
clock-synchronization faults (offset jumps and drift steps through
:class:`~repro.net.clock.NodeClock`), and transient channel impairment
bursts (ship noise passing overhead) layered onto the ambient noise model.

Plans are pure data: frozen, hashable, picklable dataclasses with stable
``repr``s, so a plan can ride inside a frozen
:class:`~repro.experiments.config.ScenarioConfig`, cross process
boundaries with sweep cells, and contribute to the result-cache key (two
configs differing only in their fault plan hash differently).  Compiling
a plan into scheduled DES events is the
:class:`~repro.faults.injector.FaultInjector`'s job; an **empty** plan is
falsy and the scenario assembly skips the injector entirely — no events
are scheduled and no RNG stream is created, so an empty plan is
bit-identical to no plan at all.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Tuple

#: Valid :class:`ModemOutage` directions.
OUTAGE_DIRECTIONS = ("tx", "rx", "both")


@dataclass(frozen=True)
class NodeCrash:
    """Kill one specific node at ``at_s`` (optionally recovering later).

    Attributes:
        node_id: The victim (must exist in the scenario).
        at_s: Crash instant in true simulation time.
        recover_after_s: If set, the node comes back (modem re-enabled,
            MAC restarted) this many seconds after the crash.
    """

    node_id: int
    at_s: float
    recover_after_s: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("crash time must be >= 0")
        if self.recover_after_s is not None and self.recover_after_s <= 0:
            raise ValueError("recover_after_s must be positive")


@dataclass(frozen=True)
class CrashWave:
    """Crash a seeded random fraction of the (non-sink) population.

    Victims are drawn from the scenario's dedicated ``"faults"`` RNG
    stream when the plan is armed, so the same seed always kills the same
    nodes.  ``jitter_s`` optionally spreads the individual crash instants
    uniformly over ``[at_s, at_s + jitter_s]`` instead of a simultaneous
    mass failure.
    """

    at_s: float
    fraction: float
    recover_after_s: Optional[float] = None
    jitter_s: float = 0.0

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("wave time must be >= 0")
        if not 0.0 < self.fraction <= 1.0:
            raise ValueError("fraction must be in (0, 1]")
        if self.recover_after_s is not None and self.recover_after_s <= 0:
            raise ValueError("recover_after_s must be positive")
        if self.jitter_s < 0:
            raise ValueError("jitter must be >= 0")


@dataclass(frozen=True)
class ModemOutage:
    """Disable one node's TX and/or RX chain for a window.

    Unlike a crash, the node's MAC keeps running — it just shouts into a
    dead amplifier (``tx``) or misses everything on the air (``rx``).
    Its own retry/timeout machinery must absorb the loss, which is
    exactly what the recovery-hardening tests exercise.
    """

    node_id: int
    at_s: float
    duration_s: float
    direction: str = "both"

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("outage time must be >= 0")
        if self.duration_s <= 0:
            raise ValueError("outage duration must be positive")
        if self.direction not in OUTAGE_DIRECTIONS:
            raise ValueError(
                f"direction must be one of {OUTAGE_DIRECTIONS}, got {self.direction!r}"
            )


@dataclass(frozen=True)
class ClockFault:
    """Degrade one node's clock synchronization at ``at_s``.

    ``offset_jump_s`` shifts the node's local time discontinuously (a
    botched re-sync); ``drift_ppm`` (if not None) replaces the clock's
    drift rate from this instant on.  The change is continuity-preserving
    apart from the jump: local time right before and after the fault
    differs by exactly ``offset_jump_s`` (see
    :meth:`~repro.net.clock.NodeClock.apply_fault`).
    """

    node_id: int
    at_s: float
    offset_jump_s: float = 0.0
    drift_ppm: Optional[float] = None

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("clock fault time must be >= 0")
        if self.offset_jump_s == 0.0 and self.drift_ppm is None:
            raise ValueError("clock fault must jump the offset or set a drift")


@dataclass(frozen=True)
class NoiseBurst:
    """Raise the network-wide noise floor by ``extra_noise_db`` for a window.

    Models a transient wideband interferer (ship passage, biological
    chorus): every decode during the window sees the ambient noise power
    multiplied by ``10^(extra_noise_db/10)``.  Bursts stack additively in
    dB if they overlap.
    """

    at_s: float
    duration_s: float
    extra_noise_db: float

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise ValueError("burst time must be >= 0")
        if self.duration_s <= 0:
            raise ValueError("burst duration must be positive")
        if self.extra_noise_db == 0.0:
            raise ValueError("a 0 dB burst is a no-op; omit it")


@dataclass(frozen=True)
class FaultPlan:
    """A complete, deterministic description of everything that fails.

    Falsy when no fault is scheduled: ``if config.faults:`` is the single
    gate deciding whether a scenario grows an injector at all.

    Attributes:
        strict_audit: When True (default), a run whose post-run invariant
            audit finds orphaned pending MAC state raises
            :class:`~repro.faults.audit.FaultAuditError` instead of
            returning a result — a wedged handshake is a protocol bug.
    """

    crashes: Tuple[NodeCrash, ...] = ()
    waves: Tuple[CrashWave, ...] = ()
    outages: Tuple[ModemOutage, ...] = ()
    clock_faults: Tuple[ClockFault, ...] = ()
    noise_bursts: Tuple[NoiseBurst, ...] = ()
    strict_audit: bool = True

    def __post_init__(self) -> None:
        # Accept any sequence but store tuples: keeps the plan hashable
        # (the frozen ScenarioConfig hashes) and its repr cache-stable.
        for name in ("crashes", "waves", "outages", "clock_faults", "noise_bursts"):
            value = getattr(self, name)
            if not isinstance(value, tuple):
                object.__setattr__(self, name, tuple(value))

    @property
    def empty(self) -> bool:
        return not (
            self.crashes
            or self.waves
            or self.outages
            or self.clock_faults
            or self.noise_bursts
        )

    def __bool__(self) -> bool:
        return not self.empty
