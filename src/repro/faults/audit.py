"""Post-run invariant audit: no node may end with orphaned pending state.

A MAC that is in a non-idle handshake state must always hold a *live*
(scheduled, pending) escape event — a timeout or a slot whose tick will
resolve the state.  If its peer died mid-exchange and every escape timer
is gone, the node is wedged: it will sit in WAIT_* forever, silently
withdrawing from the network.  The audit walks every live MAC after a
faulted run and reports such states; under a strict plan
(:attr:`FaultPlan.strict_audit`) any violation raises
:class:`FaultAuditError` — a wedged handshake is a protocol bug, not a
degraded-but-acceptable outcome.

The per-protocol rules live on the MACs themselves
(:meth:`~repro.mac.base.SlottedMac.audit_pending_state` plus the
``_audit_protocol_state`` hooks); this module is the scenario-facing
aggregation layer.
"""

from __future__ import annotations

from typing import Iterable, List, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..mac.base import SlottedMac


class FaultAuditError(RuntimeError):
    """A faulted scenario ended with orphaned pending MAC state."""

    def __init__(self, violations: Sequence[str]) -> None:
        self.violations = tuple(violations)
        lines = "\n  ".join(self.violations)
        super().__init__(
            f"{len(self.violations)} wedged handshake(s) after the run:\n  {lines}"
        )


def audit_mac(mac: "SlottedMac") -> List[str]:
    """Invariant violations for one MAC (empty list = clean)."""
    return mac.audit_pending_state()


def audit_macs(macs: Iterable["SlottedMac"]) -> List[str]:
    """Aggregate invariant violations across a whole scenario's MACs."""
    violations: List[str] = []
    for mac in macs:
        violations.extend(mac.audit_pending_state())
    return violations
