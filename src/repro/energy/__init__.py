"""Energy accounting (paper Sec. 5.2)."""

from .model import EnergyReport, PowerModel, network_energy

__all__ = ["EnergyReport", "PowerModel", "network_energy"]
