"""Power-consumption model (paper Sec. 5.2).

The paper evaluates "power consumption including the power for waiting,
transmitting, and receiving", plus the cost of *maintaining* neighbour
state (it is the maintenance term that separates ROPA/CS-MAC from
EW-MAC/S-FAMA as node count grows).

Energy for one node over an observation window of length T:

    E = P_tx * t_tx  +  P_rx * t_rx_busy  +  P_idle * (T - t_tx - t_rx_busy)
        + P_entry * (one_hop_entries + two_hop_entries) * T

where ``t_tx`` / ``t_rx_busy`` come from the modem's residency counters and
the last term models the continuous bookkeeping cost of stored neighbour
entries ("memory requirements depend on the amount and complexity of the
computations and the number of neighbors", Sec. 5.3).

Default wattages follow commercial acoustic modems (e.g. the WHOI
micro-modem class): transmit ~2 W, receive ~0.8 W, idle listening ~80 mW.
Only relative ordering matters for reproducing the paper's figure shapes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence

from ..mac.base import SlottedMac


@dataclass(frozen=True)
class PowerModel:
    """Per-state power draws.

    Attributes:
        tx_w: Power while transmitting.
        rx_w: Power while a signal is being received.
        idle_w: Idle-listening power (the "waiting" cost).
        entry_w: Continuous per-table-entry maintenance power.
    """

    tx_w: float = 2.0
    rx_w: float = 0.8
    idle_w: float = 0.08
    entry_w: float = 0.0002

    def node_energy_j(self, mac: SlottedMac, duration_s: float) -> float:
        """Total energy one node consumed over ``duration_s``."""
        if duration_s <= 0:
            raise ValueError("duration must be positive")
        modem = mac.node.modem.stats
        tx_time = min(modem.tx_time_s, duration_s)
        rx_time = min(modem.rx_busy_time_s, max(duration_s - tx_time, 0.0))
        idle_time = max(duration_s - tx_time - rx_time, 0.0)
        entries = mac.node.neighbors.memory_entries()
        two_hop = getattr(mac, "two_hop", None)
        if two_hop is not None:
            entries += two_hop.memory_entries()
        return (
            self.tx_w * tx_time
            + self.rx_w * rx_time
            + self.idle_w * idle_time
            + self.entry_w * entries * duration_s
        )


@dataclass
class EnergyReport:
    """Network-wide energy summary."""

    total_j: float
    duration_s: float
    per_node_j: List[float]

    @property
    def average_power_mw(self) -> float:
        """Network total average power in mW (the paper's Fig. 9 y-axis)."""
        return self.total_j / self.duration_s * 1000.0

    @property
    def mean_node_power_mw(self) -> float:
        if not self.per_node_j:
            return 0.0
        return (self.total_j / len(self.per_node_j)) / self.duration_s * 1000.0


def network_energy(
    macs: Sequence[SlottedMac], duration_s: float, power: PowerModel = PowerModel()
) -> EnergyReport:
    """Aggregate :class:`PowerModel` energy over every node's MAC."""
    per_node = [power.node_energy_j(mac, duration_s) for mac in macs]
    return EnergyReport(total_j=sum(per_node), duration_s=duration_s, per_node_j=per_node)
