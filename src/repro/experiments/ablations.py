"""Ablation studies beyond the paper's published figures.

Each ablation isolates one modelling or design choice that DESIGN.md calls
out, producing :class:`~repro.experiments.figures.FigureData` so the same
reporting/chart machinery applies.  These are *our* experiments — the
paper does not publish them — but each answers a question the paper's
text raises:

* ``packet_size`` — Sec. 2: "larger packets are more efficient than
  multiple small packets"; sweeps the Table 2 packet-size range.
* ``clock_skew`` — Sec. 4.1 assumes synchronized sensors; how fast do the
  slotted protocols degrade when synchronization is imperfect?
* ``interference_range`` — the Bellhop-substitute's key free parameter:
  how far past the decode range transmissions act as jammers.  This is
  the sensitivity analysis for our main documented divergence.
* ``deployment_density`` — contention-limited (small volume) vs
  spatial-reuse (Table 2 volume) regimes; shows where EW-MAC's gains are
  largest and why aggressive protocols win in sprawling deployments.
* ``extra_randomization`` — EW-MAC design choice: randomized vs earliest
  EXR send instants inside the feasible window.
* ``aloha_anchor`` — the no-negotiation lower anchor across loads.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence

from .config import ScenarioConfig, table2_config
from .figures import FigureData, Progress
from .scenario import Scenario
from .engine import PAPER_PROTOCOLS, mean


def _run_cells(
    x_values: Sequence[float],
    protocols: Sequence[str],
    make_config: Callable[[float, str, int], ScenarioConfig],
    metric: Callable,
    seeds: Sequence[int],
    tweak: Optional[Callable[[Scenario, float], None]] = None,
    progress: Progress = None,
) -> Dict[str, List[float]]:
    series: Dict[str, List[float]] = {p: [] for p in protocols}
    for x in x_values:
        for protocol in protocols:
            values = []
            for seed in seeds:
                scenario = Scenario(make_config(x, protocol, seed))
                if tweak is not None:
                    tweak(scenario, x)
                result = scenario.run_steady_state()
                values.append(metric(result, scenario))
                if progress is not None:
                    progress(f"{protocol} x={x} seed={seed}")
            series[protocol].append(mean(values))
    return series


def _tput(result, scenario) -> float:
    return result.throughput_kbps


def ablation_packet_size(
    seeds: Sequence[int] = (1, 2, 3), quick: bool = False, progress: Progress = None
) -> FigureData:
    """Throughput vs data packet size over Table 2's 1024-4096 bit range."""
    sizes = [1024.0, 4096.0] if quick else [1024.0, 2048.0, 3072.0, 4096.0]
    seeds = seeds[:1] if quick else seeds
    series = _run_cells(
        sizes,
        PAPER_PROTOCOLS,
        lambda x, p, s: table2_config(
            protocol=p,
            seed=s,
            data_packet_bits=int(x),
            offered_load_kbps=0.6,
            sim_time_s=100.0 if quick else 300.0,
        ),
        _tput,
        seeds,
        progress=progress,
    )
    return FigureData(
        figure_id="abl-packet-size",
        title="Ablation: throughput vs data packet size (0.6 kbps)",
        x_label="Data packet size (bits)",
        y_label="Throughput (kbps)",
        x_values=list(sizes),
        series=series,
        notes=(
            "Paper Sec. 2: larger packets amortize the per-exchange slot "
            "cost, so throughput should rise with packet size for every "
            "slotted protocol."
        ),
    )


def ablation_clock_skew(
    seeds: Sequence[int] = (1, 2, 3), quick: bool = False, progress: Progress = None
) -> FigureData:
    """Throughput vs clock-offset spread (paper assumes perfect sync)."""
    skews = [0.0, 0.1] if quick else [0.0, 0.005, 0.02, 0.05, 0.1]
    seeds = seeds[:1] if quick else seeds
    protocols = ("S-FAMA", "EW-MAC")
    series = _run_cells(
        skews,
        protocols,
        lambda x, p, s: table2_config(
            protocol=p,
            seed=s,
            clock_offset_std_s=x,
            offered_load_kbps=0.6,
            sim_time_s=100.0 if quick else 300.0,
        ),
        _tput,
        seeds,
        progress=progress,
    )
    return FigureData(
        figure_id="abl-clock-skew",
        title="Ablation: sensitivity to imperfect synchronization",
        x_label="Clock offset std (s)",
        y_label="Throughput (kbps)",
        x_values=list(skews),
        series=series,
        notes=(
            "The slotted design depends on shared slot boundaries (paper "
            "Sec. 4.1, refs [20-22]); throughput should degrade gracefully "
            "for offsets well below omega and visibly beyond it."
        ),
    )


def ablation_interference_range(
    seeds: Sequence[int] = (1, 2, 3), quick: bool = False, progress: Progress = None
) -> FigureData:
    """Sensitivity to the interference-range factor (model calibration)."""
    factors = [1.0, 2.0] if quick else [1.0, 1.4, 2.0, 2.6]
    seeds = seeds[:1] if quick else seeds
    series = _run_cells(
        factors,
        PAPER_PROTOCOLS,
        lambda x, p, s: table2_config(
            protocol=p,
            seed=s,
            interference_range_factor=x,
            offered_load_kbps=0.8,
            sim_time_s=100.0 if quick else 300.0,
        ),
        _tput,
        seeds,
        progress=progress,
    )
    return FigureData(
        figure_id="abl-interference",
        title="Ablation: interference range vs protocol throughput (0.8 kbps)",
        x_label="Interference range factor (x decode range)",
        y_label="Throughput (kbps)",
        x_values=list(factors),
        series=series,
        notes=(
            "Wider interference punishes unprotected mid-slot transmissions "
            "(CS-MAC steals) more than interference-checked ones (EW-MAC "
            "extras) — the key sensitivity behind our documented divergence."
        ),
    )


def ablation_deployment_density(
    seeds: Sequence[int] = (1, 2, 3), quick: bool = False, progress: Progress = None
) -> FigureData:
    """Contention-limited vs spatial-reuse deployment regimes."""
    sides = [3000.0, 10_000.0] if quick else [3000.0, 5000.0, 7000.0, 10_000.0]
    seeds = seeds[:1] if quick else seeds
    series = _run_cells(
        sides,
        PAPER_PROTOCOLS,
        lambda x, p, s: table2_config(
            protocol=p,
            seed=s,
            side_m=x,
            offered_load_kbps=0.8,
            sim_time_s=100.0 if quick else 300.0,
        ),
        _tput,
        seeds,
        progress=progress,
    )
    return FigureData(
        figure_id="abl-density",
        title="Ablation: deployment volume (contention vs spatial reuse)",
        x_label="Region side (m)",
        y_label="Throughput (kbps)",
        x_values=list(sides),
        series=series,
        notes=(
            "Small volumes put every node in one contention domain "
            "(saturation near the paper's ~0.35 kbps); the Table 2 volume "
            "allows parallel exchanges, raising every protocol's ceiling."
        ),
    )


def ablation_extra_randomization(
    seeds: Sequence[int] = (1, 2, 3, 4, 5), quick: bool = False, progress: Progress = None
) -> FigureData:
    """EW-MAC design choice: randomized vs earliest-instant EXR sends."""
    seeds = seeds[:2] if quick else seeds
    loads = [0.6, 1.0] if quick else [0.4, 0.6, 0.8, 1.0]
    series: Dict[str, List[float]] = {"randomized": [], "earliest": []}
    completions: Dict[str, List[float]] = {"randomized": [], "earliest": []}
    for load in loads:
        for variant in ("randomized", "earliest"):
            values, extras = [], []
            for seed in seeds:
                scenario = Scenario(
                    table2_config(
                        protocol="EW-MAC",
                        seed=seed,
                        offered_load_kbps=load,
                        sim_time_s=100.0 if quick else 300.0,
                    )
                )
                for mac in scenario.macs:
                    mac.exr_randomize = variant == "randomized"
                result = scenario.run_steady_state()
                values.append(result.throughput_kbps)
                extras.append(float(result.extra_completed))
                if progress is not None:
                    progress(f"{variant} load={load} seed={seed}")
            series[variant].append(mean(values))
            completions[variant].append(mean(extras))
    return FigureData(
        figure_id="abl-exr-randomization",
        title="Ablation: EXR send-instant randomization (EW-MAC)",
        x_label="Offered load (kbps)",
        y_label="Throughput (kbps)",
        x_values=list(loads),
        series=series,
        notes=(
            "Several losers of one contention round ask the same busy "
            "neighbour; deterministic earliest-instant EXRs collide at it. "
            f"Mean completed extras per run: randomized={completions['randomized']}, "
            f"earliest={completions['earliest']}."
        ),
    )


def ablation_aloha_anchor(
    seeds: Sequence[int] = (1, 2, 3), quick: bool = False, progress: Progress = None
) -> FigureData:
    """The no-negotiation ALOHA anchor across offered loads."""
    loads = [0.2, 1.0] if quick else [0.2, 0.4, 0.6, 0.8, 1.0]
    seeds = seeds[:1] if quick else seeds
    protocols = ("S-FAMA", "EW-MAC", "ALOHA")
    series = _run_cells(
        loads,
        protocols,
        lambda x, p, s: table2_config(
            protocol=p,
            seed=s,
            offered_load_kbps=x,
            sim_time_s=100.0 if quick else 300.0,
        ),
        _tput,
        seeds,
        progress=progress,
    )
    return FigureData(
        figure_id="abl-aloha",
        title="Ablation: slotted ALOHA anchor vs handshake protocols",
        x_label="Offered load (kbps)",
        y_label="Throughput (kbps)",
        x_values=list(loads),
        series=series,
        notes=(
            "In spatially large UASNs direct transmission wins raw "
            "throughput (cf. Chitre et al. on large-delay networks) at the "
            "cost of reliability/energy; handshakes pay for themselves in "
            "contention-limited regimes."
        ),
    )


#: Every ablation runner by id (CLI + benchmarks).
ALL_ABLATIONS: Dict[str, Callable[..., FigureData]] = {
    "abl-packet-size": ablation_packet_size,
    "abl-clock-skew": ablation_clock_skew,
    "abl-interference": ablation_interference_range,
    "abl-density": ablation_deployment_density,
    "abl-exr-randomization": ablation_extra_randomization,
    "abl-aloha": ablation_aloha_anchor,
}
