"""The paper's published figure values, read off the plots.

The paper ships no tables of results, only line plots; the values here
are eyeball reconstructions from the published figures (Sensors 2016,
16, 343, Figs. 6-11), accurate to roughly the marker size.  They exist so
EXPERIMENTS.md can put paper-vs-measured numbers side by side and so the
comparison report can check orderings mechanically.

``None`` marks points the plot does not show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence

#: Protocols in the paper's legend order.
PROTOCOLS = ("S-FAMA", "ROPA", "CS-MAC", "EW-MAC")


@dataclass(frozen=True)
class PaperFigure:
    """One published figure's approximate data."""

    figure_id: str
    x_label: str
    y_label: str
    x_values: Sequence[float]
    series: Dict[str, Sequence[float]]
    claims: Sequence[str]


PAPER_FIGURES: Dict[str, PaperFigure] = {
    "fig6": PaperFigure(
        figure_id="fig6",
        x_label="Offered load (kbps)",
        y_label="Throughput (kbps)",
        x_values=(0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
        series={
            "S-FAMA": (0.05, 0.10, 0.19, 0.26, 0.29, 0.29),
            "ROPA": (0.055, 0.11, 0.21, 0.28, 0.31, 0.315),
            "CS-MAC": (0.06, 0.12, 0.24, 0.31, 0.33, 0.30),
            "EW-MAC": (0.06, 0.115, 0.23, 0.30, 0.35, 0.365),
        },
        claims=(
            "throughput rises with load and saturates",
            "CS-MAC leads below ~0.6 kbps",
            "CS-MAC declines past ~0.8 kbps",
            "EW-MAC leads at >= 0.8 kbps",
            "ROPA >= S-FAMA throughout",
        ),
    ),
    "fig7": PaperFigure(
        figure_id="fig7",
        x_label="Number of nodes",
        y_label="Throughput (kbps)",
        x_values=(60, 80, 100, 120, 140),
        series={
            "S-FAMA": (0.295, 0.295, 0.295, 0.295, 0.295),
            "ROPA": (0.33, 0.325, 0.315, 0.307, 0.30),
            "CS-MAC": (0.36, 0.345, 0.33, 0.31, 0.295),
            "EW-MAC": (0.37, 0.355, 0.345, 0.33, 0.315),
        },
        claims=(
            "S-FAMA is density-invariant",
            "the opportunistic protocols decline toward S-FAMA as density rises",
            "EW-MAC stays best across densities",
        ),
    ),
    "fig8": PaperFigure(
        figure_id="fig8",
        x_label="Offered load (kbps)",
        y_label="Execution time (s)",
        x_values=(0.01, 0.2, 0.4, 0.6, 0.8, 1.0),
        series={
            "S-FAMA": (2.0, 14.0, 28.0, 42.0, 55.0, 65.0),
            "ROPA": (2.0, 12.0, 24.0, 36.0, 47.0, 55.0),
            "CS-MAC": (2.0, 10.0, 20.0, 30.0, 39.0, 45.0),
            "EW-MAC": (2.0, 8.0, 16.0, 24.0, 30.0, 35.0),
        },
        claims=(
            "drain time grows with load",
            "differences insignificant below ~0.136 kbps",
            "ordering: S-FAMA slowest, then ROPA, CS-MAC, EW-MAC fastest",
        ),
    ),
    "fig9a": PaperFigure(
        figure_id="fig9a",
        x_label="Offered load (kbps)",
        y_label="Power consumption (mW)",
        x_values=(0.01, 0.2, 0.4, 0.6, 0.8),
        series={
            "S-FAMA": (80.0, 140.0, 200.0, 255.0, 300.0),
            "ROPA": (100.0, 200.0, 290.0, 380.0, 450.0),
            "CS-MAC": (90.0, 170.0, 250.0, 320.0, 380.0),
            "EW-MAC": (70.0, 120.0, 170.0, 215.0, 250.0),
        },
        claims=(
            "power grows with offered load",
            "ordering: ROPA > CS-MAC > S-FAMA > EW-MAC",
        ),
    ),
    "fig9b": PaperFigure(
        figure_id="fig9b",
        x_label="Number of nodes",
        y_label="Power consumption (mW)",
        x_values=(60, 80, 100, 120),
        series={
            "S-FAMA": (100.0, 125.0, 155.0, 180.0),
            "ROPA": (150.0, 215.0, 285.0, 350.0),
            "CS-MAC": (140.0, 190.0, 245.0, 300.0),
            "EW-MAC": (90.0, 112.0, 135.0, 160.0),
        },
        claims=(
            "ROPA and CS-MAC power grows steeply with node count",
            "S-FAMA and EW-MAC grow slowly",
        ),
    ),
    "fig10a": PaperFigure(
        figure_id="fig10a",
        x_label="Number of nodes",
        y_label="Overhead (ratio to S-FAMA)",
        x_values=(60, 80, 100, 120, 140),
        series={
            "S-FAMA": (1.0, 1.0, 1.0, 1.0, 1.0),
            "ROPA": (1.45, 1.5, 1.5, 1.55, 1.6),
            "CS-MAC": (2.5, 2.7, 2.9, 3.05, 3.2),
            "EW-MAC": (2.2, 2.3, 2.4, 2.5, 2.6),
        },
        claims=(
            "ROPA ~1.5x of S-FAMA",
            "CS-MAC and EW-MAC 2-3x, CS-MAC above EW-MAC",
            "EW-MAC grows flattest with node count",
        ),
    ),
    "fig10b": PaperFigure(
        figure_id="fig10b",
        x_label="Offered load (kbps)",
        y_label="Overhead (ratio to S-FAMA)",
        x_values=(0.4, 0.5, 0.6, 0.7, 0.8),
        series={
            "S-FAMA": (1.0, 1.0, 1.0, 1.0, 1.0),
            "ROPA": (1.45, 1.5, 1.5, 1.55, 1.6),
            "CS-MAC": (2.6, 2.7, 2.8, 2.9, 3.0),
            "EW-MAC": (2.2, 2.3, 2.4, 2.55, 2.7),
        },
        claims=(
            "overhead ratios grow with offered load",
            "ordering: CS-MAC > EW-MAC > ROPA > S-FAMA",
        ),
    ),
    "fig11": PaperFigure(
        figure_id="fig11",
        x_label="Offered load (kbps)",
        y_label="Efficiency index (S-FAMA = 1)",
        x_values=(0.1, 0.2, 0.4, 0.6, 0.8, 1.0),
        series={
            "S-FAMA": (1.0, 1.0, 1.0, 1.0, 1.0, 1.0),
            "ROPA": (1.05, 1.08, 1.12, 1.15, 1.05, 0.95),
            "CS-MAC": (1.1, 1.15, 1.3, 1.35, 1.25, 1.2),
            "EW-MAC": (1.2, 1.25, 1.35, 1.45, 1.5, 1.5),
        },
        claims=(
            "EW-MAC has the highest efficiency index",
            "ROPA falls below 1 past ~0.8 kbps",
        ),
    ),
}


def paper_series(figure_id: str, protocol: str) -> Sequence[float]:
    """Published values for one protocol in one figure."""
    return PAPER_FIGURES[figure_id].series[protocol]


def orderings_at(figure_id: str, x: float) -> List[str]:
    """Protocols sorted by the paper's value at x (ascending)."""
    figure = PAPER_FIGURES[figure_id]
    index = list(figure.x_values).index(x)
    return sorted(PROTOCOLS, key=lambda p: figure.series[p][index])
