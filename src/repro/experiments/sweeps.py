"""Compatibility shim: the sweep machinery now lives in :mod:`.engine`.

The pure engine split moved :class:`SweepSpec`, :func:`run_sweep`, and
the aggregation helpers into :mod:`repro.experiments.engine` so the
CLI, benchmarks, and the job service all share one import-side-effect-free
core.  Existing imports from ``repro.experiments.sweeps`` keep working
through this module.
"""

from .engine import (  # noqa: F401
    GridResults,
    PAPER_PROTOCOLS,
    SweepSpec,
    aggregate,
    aggregate_relative,
    mean,
    run_sweep,
)

__all__ = [
    "GridResults",
    "PAPER_PROTOCOLS",
    "SweepSpec",
    "aggregate",
    "aggregate_relative",
    "mean",
    "run_sweep",
]
