"""Parameter-sweep machinery: run grids of scenarios and aggregate seeds."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from .config import ScenarioConfig
from .scenario import Scenario, ScenarioResult

#: The paper's protocol set, in its legend order.
PAPER_PROTOCOLS: Tuple[str, ...] = ("S-FAMA", "ROPA", "CS-MAC", "EW-MAC")

#: A grid cell: results of every seed for one (x, protocol) pair.
GridResults = Dict[Tuple[float, str], List[ScenarioResult]]


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    return sum(values) / len(values) if values else 0.0


@dataclass
class SweepSpec:
    """One sweep axis: x values and how each x customizes the config.

    Attributes:
        x_values: Sweep axis values (offered loads, node counts, ...).
        configure: Maps (base_config, x, protocol, seed) to the scenario
            config for that grid cell.
        batch: If set, maps x to (n_packets, max_time_s) and scenarios run
            in batch-drain mode instead of steady state (Fig. 8).
    """

    x_values: Sequence[float]
    configure: Callable[[ScenarioConfig, float, str, int], ScenarioConfig]
    batch: Optional[Callable[[float, ScenarioConfig], Tuple[int, float]]] = None


def run_sweep(
    spec: SweepSpec,
    base: ScenarioConfig,
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    seeds: Sequence[int] = (1, 2, 3),
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
) -> GridResults:
    """Run every (x, protocol, seed) cell of a sweep.

    Args:
        workers: ``1`` (default) runs the classic in-process loop;
            ``N > 1`` (or ``None``/``0`` for the CPU count) fans cells out
            over a spawn-safe process pool via
            :class:`~repro.experiments.parallel.ParallelSweepRunner`.
            Cell order, seed pairing, and results are identical either way.
        cache: ``None`` (off), ``True`` (default on-disk location), a
            directory path, or a
            :class:`~repro.experiments.cache.ResultCache` — previously
            computed cells are reused instead of re-simulated.
        cell_timeout_s: Optional per-cell wall-clock budget (pooled runs
            only); cells that exceed it are re-run serially to completion.
    """
    if (workers is None or workers != 1) or cache not in (None, False):
        from .parallel import ParallelSweepRunner

        runner = ParallelSweepRunner(
            workers=workers,
            cache=cache,
            cell_timeout_s=cell_timeout_s,
            progress=progress,
        )
        return runner.run(spec, base, protocols=protocols, seeds=seeds)
    results: GridResults = {}
    for x in spec.x_values:
        for protocol in protocols:
            cell: List[ScenarioResult] = []
            for seed in seeds:
                config = spec.configure(base, x, protocol, seed)
                scenario = Scenario(config)
                if spec.batch is not None:
                    n_packets, max_time = spec.batch(x, config)
                    result = scenario.run_batch(n_packets, max_time)
                else:
                    result = scenario.run_steady_state()
                cell.append(result)
                if progress is not None:
                    progress(f"{protocol} x={x} seed={seed} done")
            results[(x, protocol)] = cell
    return results


def aggregate(
    results: GridResults,
    x_values: Sequence[float],
    protocols: Sequence[str],
    metric: Callable[[ScenarioResult], float],
) -> Dict[str, List[float]]:
    """Seed-average a metric into per-protocol series over the x axis."""
    series: Dict[str, List[float]] = {}
    for protocol in protocols:
        series[protocol] = [
            mean([metric(r) for r in results[(x, protocol)]]) for x in x_values
        ]
    return series


def aggregate_relative(
    results: GridResults,
    x_values: Sequence[float],
    protocols: Sequence[str],
    metric: Callable[[ScenarioResult], float],
    baseline_protocol: str = "S-FAMA",
) -> Dict[str, List[float]]:
    """Like :func:`aggregate` but normalized per-x to a baseline protocol.

    Raises:
        ValueError: If ``baseline_protocol`` is not among ``protocols``
            (the baseline must itself have been swept to normalize to it).
    """
    if baseline_protocol not in protocols:
        raise ValueError(
            f"baseline protocol {baseline_protocol!r} is not among the swept "
            f"protocols {list(protocols)!r}; pass baseline_protocol= one of "
            "those, or add it to the sweep"
        )
    absolute = aggregate(results, x_values, protocols, metric)
    baseline = absolute[baseline_protocol]
    series: Dict[str, List[float]] = {}
    for protocol in protocols:
        series[protocol] = [
            value / base if base > 0 else 0.0
            for value, base in zip(absolute[protocol], baseline)
        ]
    return series
