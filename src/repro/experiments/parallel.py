"""Parallel sweep execution engine.

A figure sweep is a grid of (x, protocol, seed) cells, each an independent
deterministic simulation — exactly the embarrassingly-parallel shape a
process pool wants.  :class:`ParallelSweepRunner` expands a
:class:`~repro.experiments.sweeps.SweepSpec` into picklable
:class:`SweepCell` work items **in the parent** (so the spec's closures
never cross a process boundary), fans the items over a spawn-safe worker
pool, and reassembles results in the exact order the serial loop would
have produced them — ``run_sweep(..., workers=4)`` is bit-identical to
``workers=1`` because every cell derives all randomness from its own
config seed (see :mod:`repro.des.rng`).

Failure handling is two-layered:

* **Per-cell timeout** — workers arm the DES kernel's cooperative
  wall-clock deadline (:meth:`Simulator.set_wall_deadline`), so a runaway
  cell unwinds with :class:`WallClockExceeded` instead of wedging its
  worker.  A parent-side guard window catches workers hung outside the
  event loop.
* **Crashed-worker recovery** — a cell whose worker raises or dies
  (``BrokenProcessPool``) is requeued and re-run *serially* in the parent
  with no deadline, so one bad worker never loses a sweep.

Results can be memoized through :class:`~repro.experiments.cache.ResultCache`;
cache lookups happen in the parent before any work is dispatched, so a
warm-cache rerun performs zero scenario executions.
"""

from __future__ import annotations

import multiprocessing
import os
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple

from ..des.errors import WallClockExceeded
from .cache import ResultCache, cell_key, code_version, resolve_cache
from .config import ScenarioConfig
from .scenario import Scenario, ScenarioResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from .sweeps import GridResults, SweepSpec

Progress = Optional[Callable[[str], None]]


@dataclass(frozen=True)
class CellFailure:
    """A cell that could not produce a result even after the serial retry.

    The sweep keeps going: the failed cell's slot stays ``None`` in the
    ordered result list and its grid entry stays an empty list, so
    aggregation sees "no samples" rather than an exception.
    """

    cell: "SweepCell"
    error: str
    traceback: str = ""


@dataclass(frozen=True)
class SweepCell:
    """One fully-resolved grid cell: a picklable, self-contained work item.

    ``config`` already has the (x, protocol, seed) overrides applied, and
    ``batch`` the evaluated batch parameters, so a worker needs nothing
    from the sweep spec (whose ``configure`` callable may be an
    unpicklable closure).
    """

    index: int
    x: float
    protocol: str
    seed: int
    config: ScenarioConfig
    batch: Optional[Tuple[int, float]] = None

    @property
    def label(self) -> str:
        return f"{self.protocol} x={self.x} seed={self.seed}"


def expand_cells(
    spec: "SweepSpec",
    base: ScenarioConfig,
    protocols: Sequence[str],
    seeds: Sequence[int],
) -> List[SweepCell]:
    """Flatten a sweep grid into work items, in serial-loop order."""
    cells: List[SweepCell] = []
    for x in spec.x_values:
        for protocol in protocols:
            for seed in seeds:
                config = spec.configure(base, x, protocol, seed)
                batch: Optional[Tuple[int, float]] = None
                if spec.batch is not None:
                    n_packets, max_time_s = spec.batch(x, config)
                    batch = (int(n_packets), float(max_time_s))
                cells.append(
                    SweepCell(len(cells), x, protocol, seed, config, batch)
                )
    return cells


def execute_cell(
    cell: SweepCell, wall_budget_s: Optional[float] = None
) -> ScenarioResult:
    """Run one cell to completion (steady-state or batch-drain)."""
    scenario = Scenario(cell.config)
    if wall_budget_s is not None:
        scenario.sim.set_wall_deadline(wall_budget_s)
    if cell.batch is not None:
        n_packets, max_time_s = cell.batch
        return scenario.run_batch(n_packets, max_time_s)
    return scenario.run_steady_state()


def _pool_worker(
    cell: SweepCell, wall_budget_s: Optional[float]
) -> Tuple[int, float, ScenarioResult]:
    """Pool entry point: returns (cell index, wall-clock seconds, result)."""
    started = time.perf_counter()
    result = execute_cell(cell, wall_budget_s)
    return cell.index, time.perf_counter() - started, result


class ParallelSweepRunner:
    """Fan sweep cells over a process pool, with caching and recovery.

    Args:
        workers: Pool size; ``None``/``0`` uses the CPU count, ``1`` runs
            in-process (still honouring the cache).
        cache: ``None``/``False`` (off), ``True`` (default location), a
            path, or a :class:`ResultCache`.
        cell_timeout_s: Cooperative wall-clock budget per cell.  A cell
            that exceeds it is requeued and re-run serially with no
            budget, so the sweep still completes.
        progress: Same callback contract as :func:`run_sweep`; receives a
            line per cell with its wall-clock cost (or ``cached``).
        mp_context: ``multiprocessing`` start method; ``spawn`` (default)
            is safe everywhere and matches what macOS/Windows force.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: object = None,
        cell_timeout_s: Optional[float] = None,
        progress: Progress = None,
        mp_context: str = "spawn",
    ) -> None:
        self.workers = workers if workers else (os.cpu_count() or 1)
        self.cache: Optional[ResultCache] = resolve_cache(cache)  # type: ignore[arg-type]
        self.cell_timeout_s = cell_timeout_s
        self.progress = progress
        self.mp_context = mp_context
        #: Cells whose first (pooled) attempt timed out or crashed and
        #: which were re-run serially — observability for tests and CLIs.
        self.requeued: List[SweepCell] = []
        #: Cells that failed even on the serial retry.  A failure marks
        #: its cell as lost (empty grid entry) instead of aborting the
        #: whole sweep, and is reported through ``progress``.
        self.failures: List[CellFailure] = []

    # ------------------------------------------------------------------
    def _emit(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    def run(
        self,
        spec: "SweepSpec",
        base: ScenarioConfig,
        protocols: Sequence[str],
        seeds: Sequence[int],
    ) -> "GridResults":
        """Run every cell and reassemble the serial-ordered grid."""
        cells = expand_cells(spec, base, protocols, seeds)
        results = self.run_cells(cells)
        grid: Dict[Tuple[float, str], List[ScenarioResult]] = {}
        for cell, result in zip(cells, results):
            # Every (x, protocol) pair gets its grid entry even when all
            # its cells failed, so aggregation can never KeyError — a lost
            # cell shows up as a missing sample, not a crashed sweep.
            bucket = grid.setdefault((cell.x, cell.protocol), [])
            if result is not None:
                bucket.append(result)
        return grid

    def run_cells(self, cells: Sequence[SweepCell]) -> List[Optional[ScenarioResult]]:
        """Execute cells (cache, pool, recovery) and return them in order.

        Slots of cells that failed permanently (recorded in
        :attr:`failures`) are ``None``.
        """
        self.requeued = []
        self.failures = []
        results: List[Optional[ScenarioResult]] = [None] * len(cells)
        keys: Dict[int, str] = {}
        pending: List[SweepCell] = []
        if self.cache is not None:
            version = code_version()
            for cell in cells:
                keys[cell.index] = cell_key(cell.config, cell.batch, version)
        for cell in cells:
            if self.cache is not None:
                hit = self.cache.get(keys[cell.index])
                if hit is not None:
                    results[cell.index] = hit
                    self._emit(f"{cell.label} cached")
                    continue
            pending.append(cell)

        if pending:
            if self.workers <= 1 or len(pending) == 1:
                self._run_serial(pending, results, keys)
            else:
                retry = self._run_pool(pending, results, keys)
                if retry:
                    self.requeued = sorted(retry, key=lambda c: c.index)
                    self._run_serial(self.requeued, results, keys)

        failed_indices = {failure.cell.index for failure in self.failures}
        missing = [
            cell
            for cell in cells
            if results[cell.index] is None and cell.index not in failed_indices
        ]
        for cell in missing:  # pragma: no cover - defensive; recovery fills all
            self.failures.append(
                CellFailure(cell=cell, error="cell never completed (pool lost it)")
            )
        if self.failures:
            labels = ", ".join(f.cell.label for f in self.failures)
            self._emit(
                f"sweep finished with {len(self.failures)} failed cell(s): {labels}"
            )
        return results

    # ------------------------------------------------------------------
    def _finish(
        self,
        cell: SweepCell,
        result: ScenarioResult,
        elapsed_s: float,
        results: List[Optional[ScenarioResult]],
        keys: Dict[int, str],
        note: str = "",
    ) -> None:
        results[cell.index] = result
        if self.cache is not None:
            self.cache.put(keys[cell.index], result)
        self._emit(f"{cell.label} done in {elapsed_s:.2f}s{note}")

    def _run_serial(
        self,
        cells: Sequence[SweepCell],
        results: List[Optional[ScenarioResult]],
        keys: Dict[int, str],
    ) -> None:
        """In-parent execution: the workers=1 path and the recovery path.

        Runs with no wall-clock budget — a requeued cell must be allowed
        to finish, otherwise the sweep could never complete.  A cell that
        raises even here (bad config, protocol bug, failed audit) is
        recorded in :attr:`failures` and the rest of the sweep continues;
        the old behaviour of letting the exception abort every remaining
        cell turned one bad cell into a lost sweep.
        """
        for cell in cells:
            started = time.perf_counter()
            try:
                result = execute_cell(cell)
            except Exception as exc:
                self.failures.append(
                    CellFailure(
                        cell=cell,
                        error=f"{type(exc).__name__}: {exc}",
                        traceback=traceback.format_exc(),
                    )
                )
                self._emit(
                    f"{cell.label} failed permanently "
                    f"({type(exc).__name__}: {exc}); continuing"
                )
                continue
            self._finish(cell, result, time.perf_counter() - started, results, keys)

    def _run_pool(
        self,
        cells: Sequence[SweepCell],
        results: List[Optional[ScenarioResult]],
        keys: Dict[int, str],
    ) -> List[SweepCell]:
        """Pooled execution; returns the cells that need a serial retry."""
        context = multiprocessing.get_context(self.mp_context)
        n_workers = min(self.workers, len(cells))
        retry: List[SweepCell] = []
        # A worker stuck *outside* the event loop never hits the
        # cooperative deadline, so the parent also bounds how long it will
        # wait between completions before declaring the pool hung.
        guard_s = (
            None if self.cell_timeout_s is None else max(2 * self.cell_timeout_s, 30.0)
        )
        pool = ProcessPoolExecutor(max_workers=n_workers, mp_context=context)
        hung = False
        try:
            future_to_cell = {
                pool.submit(_pool_worker, cell, self.cell_timeout_s): cell
                for cell in cells
            }
            waiting = set(future_to_cell)
            while waiting:
                done, waiting = wait(
                    waiting, timeout=guard_s, return_when=FIRST_COMPLETED
                )
                if not done:
                    # Guard window expired with no completions: the pool is
                    # hung.  Abandon it; everything unfinished retries
                    # serially.
                    retry.extend(future_to_cell[f] for f in waiting)
                    hung = True
                    self._emit(
                        f"pool hung ({len(waiting)} cells unfinished), "
                        "requeueing serially"
                    )
                    break
                for future in done:
                    cell = future_to_cell[future]
                    try:
                        _, elapsed_s, result = future.result()
                    except WallClockExceeded:
                        retry.append(cell)
                        self._emit(f"{cell.label} timed out, requeueing serially")
                    except BrokenProcessPool:
                        retry.append(cell)
                        self._emit(f"{cell.label} lost to a dead worker, requeueing")
                    except Exception as exc:  # worker raised: requeue
                        retry.append(cell)
                        self._emit(
                            f"{cell.label} crashed ({type(exc).__name__}: {exc}), "
                            "requeueing serially"
                        )
                    else:
                        self._finish(cell, result, elapsed_s, results, keys)
        finally:
            # cancel_futures keeps a hung/broken pool from blocking exit;
            # Python 3.9+ supports the keyword.
            pool.shutdown(wait=False, cancel_futures=True)
            if hung:
                # A wedged worker would otherwise be joined at interpreter
                # exit; there is no public kill API on the executor.
                for process in getattr(pool, "_processes", {}).values():
                    process.terminate()
        return retry
