"""Parallel sweep execution engine.

A figure sweep is a grid of (x, protocol, seed) cells, each an independent
deterministic simulation — exactly the embarrassingly-parallel shape a
process pool wants.  :class:`ParallelSweepRunner` expands a
:class:`~repro.experiments.sweeps.SweepSpec` into picklable
:class:`SweepCell` work items **in the parent** (so the spec's closures
never cross a process boundary), fans the items over a spawn-safe worker
pool, and reassembles results in the exact order the serial loop would
have produced them — ``run_sweep(..., workers=4)`` is bit-identical to
``workers=1`` because every cell derives all randomness from its own
config seed (see :mod:`repro.des.rng`).

Failure handling is three-layered:

* **Per-cell timeout** — workers arm the DES kernel's cooperative
  wall-clock deadline (:meth:`Simulator.set_wall_deadline`), so a runaway
  cell unwinds with :class:`WallClockExceeded` instead of wedging its
  worker.  A parent-side guard window catches workers hung outside the
  event loop.
* **Crashed-worker recovery** — a cell whose worker raises or dies
  (``BrokenProcessPool``) is requeued and re-run *serially* in the
  parent.  The recovery path is bounded: at most ``max_serial_attempts``
  tries per cell, each under a wall-clock budget derived from
  ``cell_timeout_s``, so a truly wedged cell fails permanently instead of
  blocking the sweep forever.
* **Checkpoint/resume** — with ``checkpoint_every_s`` set, each cell
  periodically snapshots its scenario (:mod:`~repro.experiments.checkpoint`)
  to a per-cell file; a requeued or retried cell restores from its last
  checkpoint instead of rerunning from zero.  Resumed results are
  bit-identical to uninterrupted ones, so recovery never changes a figure.

Results can be memoized through :class:`~repro.experiments.cache.ResultCache`;
cache lookups happen in the parent before any work is dispatched, so a
warm-cache rerun performs zero scenario executions.
"""

from __future__ import annotations

import multiprocessing
import os
import shutil
import tempfile
import time
import traceback
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Dict, List, Optional, Sequence, Tuple, Union

from ..des.errors import WallClockExceeded
from .cache import ResultCache, cell_key, code_version, resolve_cache
from .checkpoint import CheckpointError, read_checkpoint, write_checkpoint
from .config import ScenarioConfig
from .scenario import Scenario, ScenarioResult

if TYPE_CHECKING:  # pragma: no cover - typing only, avoids a circular import
    from .sweeps import GridResults, SweepSpec

Progress = Optional[Callable[[str], None]]


@dataclass(frozen=True)
class CellFailure:
    """A cell that could not produce a result even after the serial retry.

    The sweep keeps going: the failed cell's slot stays ``None`` in the
    ordered result list and its grid entry stays an empty list, so
    aggregation sees "no samples" rather than an exception.
    """

    cell: "SweepCell"
    error: str
    traceback: str = ""


@dataclass(frozen=True)
class SweepCell:
    """One fully-resolved grid cell: a picklable, self-contained work item.

    ``config`` already has the (x, protocol, seed) overrides applied, and
    ``batch`` the evaluated batch parameters, so a worker needs nothing
    from the sweep spec (whose ``configure`` callable may be an
    unpicklable closure).
    """

    index: int
    x: float
    protocol: str
    seed: int
    config: ScenarioConfig
    batch: Optional[Tuple[int, float]] = None

    @property
    def label(self) -> str:
        return f"{self.protocol} x={self.x} seed={self.seed}"


def expand_cells(
    spec: "SweepSpec",
    base: ScenarioConfig,
    protocols: Sequence[str],
    seeds: Sequence[int],
) -> List[SweepCell]:
    """Flatten a sweep grid into work items, in serial-loop order."""
    cells: List[SweepCell] = []
    for x in spec.x_values:
        for protocol in protocols:
            for seed in seeds:
                config = spec.configure(base, x, protocol, seed)
                batch: Optional[Tuple[int, float]] = None
                if spec.batch is not None:
                    n_packets, max_time_s = spec.batch(x, config)
                    batch = (int(n_packets), float(max_time_s))
                cells.append(
                    SweepCell(len(cells), x, protocol, seed, config, batch)
                )
    return cells


def _restore_cell_checkpoint(
    cell: SweepCell, checkpoint_path: Union[str, Path]
) -> Optional[Scenario]:
    """Restore a cell's checkpoint if one exists and is trustworthy.

    Anything less than a perfect match — missing file, corrupt blob, a
    snapshot from different source code, or (paranoia against key
    collisions) a config that is not exactly this cell's config — means
    "no checkpoint": the cell simply reruns from zero, which is always
    correct, just slower.
    """
    if not os.path.exists(checkpoint_path):
        return None
    try:
        scenario = read_checkpoint(checkpoint_path)
    except CheckpointError:
        return None
    if scenario.config != cell.config:
        return None
    return scenario


def execute_cell(
    cell: SweepCell,
    wall_budget_s: Optional[float] = None,
    checkpoint_path: Union[str, Path, None] = None,
    checkpoint_every_s: Optional[float] = None,
) -> ScenarioResult:
    """Run one cell to completion (steady-state or batch-drain).

    With ``checkpoint_path`` set, the cell resumes from that checkpoint
    when a valid one exists, and — if ``checkpoint_every_s`` is also set —
    rewrites it every so many simulated seconds while running.  The file
    is removed on success, so a later rerun of the same cell starts fresh.
    """
    scenario: Optional[Scenario] = None
    if checkpoint_path is not None:
        scenario = _restore_cell_checkpoint(cell, checkpoint_path)
    resumed = scenario is not None
    if scenario is None:
        scenario = Scenario(cell.config)
    if wall_budget_s is not None:
        scenario.sim.set_wall_deadline(wall_budget_s)
    on_checkpoint = None
    if checkpoint_path is not None and checkpoint_every_s:

        def on_checkpoint(snap: Scenario) -> None:
            write_checkpoint(checkpoint_path, snap)

    if resumed:
        result = scenario.resume(checkpoint_every_s, on_checkpoint)
    elif cell.batch is not None:
        n_packets, max_time_s = cell.batch
        result = scenario.run_batch(
            n_packets, max_time_s, checkpoint_every_s, on_checkpoint
        )
    else:
        result = scenario.run_steady_state(checkpoint_every_s, on_checkpoint)
    if checkpoint_path is not None:
        try:
            os.unlink(checkpoint_path)
        except OSError:
            pass
    return result


def _pool_worker(
    cell: SweepCell,
    wall_budget_s: Optional[float],
    checkpoint_path: Union[str, Path, None] = None,
    checkpoint_every_s: Optional[float] = None,
) -> Tuple[int, float, ScenarioResult]:
    """Pool entry point: returns (cell index, wall-clock seconds, result)."""
    started = time.perf_counter()
    # Checkpoint kwargs are only passed when checkpointing is on: tests
    # monkeypatch ``execute_cell`` with the classic two-argument signature.
    if checkpoint_path is not None:
        result = execute_cell(
            cell,
            wall_budget_s,
            checkpoint_path=checkpoint_path,
            checkpoint_every_s=checkpoint_every_s,
        )
    else:
        result = execute_cell(cell, wall_budget_s)
    return cell.index, time.perf_counter() - started, result


class ParallelSweepRunner:
    """Fan sweep cells over a process pool, with caching and recovery.

    Args:
        workers: Pool size; ``None``/``0`` uses the CPU count, ``1`` runs
            in-process (still honouring the cache).
        cache: ``None``/``False`` (off), ``True`` (default location), a
            path, or a :class:`ResultCache`.
        cell_timeout_s: Cooperative wall-clock budget per cell.  A cell
            that exceeds it is requeued and re-run serially (resuming
            from its checkpoint when checkpointing is on).
        progress: Same callback contract as :func:`run_sweep`; receives a
            line per cell with its wall-clock cost (or ``cached``).
        mp_context: ``multiprocessing`` start method; ``spawn`` (default)
            is safe everywhere and matches what macOS/Windows force.
        checkpoint_every_s: Simulated seconds between per-cell
            checkpoints.  ``None`` (default) disables checkpointing
            entirely — cells run exactly as before, zero hot-path cost.
        checkpoint_dir: Where per-cell checkpoint files live.  ``None``
            with checkpointing enabled uses a runner-owned temporary
            directory, removed when :meth:`run_cells` finishes; passing a
            path keeps checkpoints across runner instances (a crashed
            *sweep* can then resume its in-flight cells too).
        max_serial_attempts: Attempt cap for the serial recovery path (a
            requeued cell that keeps failing is recorded in
            :attr:`failures` instead of retrying forever).
        recovery_timeout_s: Per-attempt wall-clock budget for recovery
            re-runs.  ``None`` derives ``2 * cell_timeout_s`` (recovery
            gets more room than the pooled attempt, but stays bounded);
            with no ``cell_timeout_s`` either, recovery runs unbounded
            like before.  The primary ``workers=1`` serial path is never
            budgeted — only recovery re-runs are.
        pool_guard_s: Override for the parent-side hung-pool guard window
            (default ``max(2 * cell_timeout_s, 30.0)``).  Exposed mainly
            so tests can exercise the hung branch quickly.
    """

    def __init__(
        self,
        workers: Optional[int] = None,
        cache: object = None,
        cell_timeout_s: Optional[float] = None,
        progress: Progress = None,
        mp_context: str = "spawn",
        checkpoint_every_s: Optional[float] = None,
        checkpoint_dir: Union[str, Path, None] = None,
        max_serial_attempts: int = 3,
        recovery_timeout_s: Optional[float] = None,
        pool_guard_s: Optional[float] = None,
    ) -> None:
        self.workers = workers if workers else (os.cpu_count() or 1)
        self.cache: Optional[ResultCache] = resolve_cache(cache)  # type: ignore[arg-type]
        self.cell_timeout_s = cell_timeout_s
        self.progress = progress
        self.mp_context = mp_context
        self.checkpoint_every_s = checkpoint_every_s
        self._checkpoint_dir = Path(checkpoint_dir) if checkpoint_dir else None
        self._owns_checkpoint_dir = False
        if max_serial_attempts < 1:
            raise ValueError("max_serial_attempts must be >= 1")
        self.max_serial_attempts = max_serial_attempts
        self.recovery_timeout_s = recovery_timeout_s
        self.pool_guard_s = pool_guard_s
        #: Cells whose first (pooled) attempt timed out or crashed and
        #: which were re-run serially — observability for tests and CLIs.
        self.requeued: List[SweepCell] = []
        #: Cells that failed even on the serial retry.  A failure marks
        #: its cell as lost (empty grid entry) instead of aborting the
        #: whole sweep, and is reported through ``progress``.
        self.failures: List[CellFailure] = []
        #: How many finished cells were completed from a checkpoint
        #: rather than from scratch (summed over pooled + serial runs).
        self.cells_resumed = 0
        #: Total checkpoints taken across every finished cell.
        self.checkpoints_taken = 0

    # ------------------------------------------------------------------
    def _emit(self, message: str) -> None:
        if self.progress is not None:
            self.progress(message)

    @property
    def _checkpointing(self) -> bool:
        return bool(self.checkpoint_every_s and self.checkpoint_every_s > 0)

    def _checkpoint_path_for(self, cell: SweepCell, keys: Dict[int, str]) -> Optional[Path]:
        """Per-cell checkpoint file, content-addressed by the cell key.

        Keyed the same way as the result cache, so a persistent
        ``checkpoint_dir`` can hand a crashed sweep's in-flight cells to
        the rerun that picks them up — and a code edit (new digest, new
        key) can never resume under changed simulation code.
        """
        if not self._checkpointing or self._checkpoint_dir is None:
            return None
        return self._checkpoint_dir / f"{keys[cell.index]}.ckpt"

    def _setup_checkpoint_dir(self) -> None:
        if not self._checkpointing:
            return
        if self._checkpoint_dir is None:
            self._checkpoint_dir = Path(
                tempfile.mkdtemp(prefix="repro-checkpoints-")
            )
            self._owns_checkpoint_dir = True
        else:
            self._checkpoint_dir.mkdir(parents=True, exist_ok=True)

    def _teardown_checkpoint_dir(self) -> None:
        if self._owns_checkpoint_dir and self._checkpoint_dir is not None:
            shutil.rmtree(self._checkpoint_dir, ignore_errors=True)
            self._checkpoint_dir = None
            self._owns_checkpoint_dir = False

    def run(
        self,
        spec: "SweepSpec",
        base: ScenarioConfig,
        protocols: Sequence[str],
        seeds: Sequence[int],
    ) -> "GridResults":
        """Run every cell and reassemble the serial-ordered grid."""
        cells = expand_cells(spec, base, protocols, seeds)
        results = self.run_cells(cells)
        grid: Dict[Tuple[float, str], List[ScenarioResult]] = {}
        for cell, result in zip(cells, results):
            # Every (x, protocol) pair gets its grid entry even when all
            # its cells failed, so aggregation can never KeyError — a lost
            # cell shows up as a missing sample, not a crashed sweep.
            bucket = grid.setdefault((cell.x, cell.protocol), [])
            if result is not None:
                bucket.append(result)
        return grid

    def run_cells(self, cells: Sequence[SweepCell]) -> List[Optional[ScenarioResult]]:
        """Execute cells (cache, pool, recovery) and return them in order.

        Slots of cells that failed permanently (recorded in
        :attr:`failures`) are ``None``.
        """
        self.requeued = []
        self.failures = []
        self.cells_resumed = 0
        self.checkpoints_taken = 0
        results: List[Optional[ScenarioResult]] = [None] * len(cells)
        keys: Dict[int, str] = {}
        pending: List[SweepCell] = []
        if self.cache is not None or self._checkpointing:
            version = code_version()
            for cell in cells:
                keys[cell.index] = cell_key(cell.config, cell.batch, version)
        for cell in cells:
            if self.cache is not None:
                hit = self.cache.get(keys[cell.index])
                if hit is not None:
                    results[cell.index] = hit
                    self._emit(f"{cell.label} cached")
                    continue
            pending.append(cell)

        if pending:
            self._setup_checkpoint_dir()
            try:
                if self.workers <= 1 or len(pending) == 1:
                    self._run_serial(pending, results, keys)
                else:
                    retry = self._run_pool(pending, results, keys)
                    if retry:
                        self.requeued = sorted(retry, key=lambda c: c.index)
                        self._run_serial(self.requeued, results, keys, recovery=True)
            finally:
                self._teardown_checkpoint_dir()

        failed_indices = {failure.cell.index for failure in self.failures}
        missing = [
            cell
            for cell in cells
            if results[cell.index] is None and cell.index not in failed_indices
        ]
        for cell in missing:  # pragma: no cover - defensive; recovery fills all
            self.failures.append(
                CellFailure(cell=cell, error="cell never completed (pool lost it)")
            )
        if self.failures:
            labels = ", ".join(f.cell.label for f in self.failures)
            self._emit(
                f"sweep finished with {len(self.failures)} failed cell(s): {labels}"
            )
        return results

    # ------------------------------------------------------------------
    def _finish(
        self,
        cell: SweepCell,
        result: ScenarioResult,
        elapsed_s: float,
        results: List[Optional[ScenarioResult]],
        keys: Dict[int, str],
        note: str = "",
    ) -> None:
        results[cell.index] = result
        if self.cache is not None:
            self.cache.put(keys[cell.index], result)
        if result.perf is not None:
            if result.perf.resumes > 0:
                self.cells_resumed += 1
            self.checkpoints_taken += result.perf.checkpoints_taken
        self._emit(f"{cell.label} done in {elapsed_s:.2f}s{note}")

    def _recovery_budget_s(self) -> Optional[float]:
        """Per-attempt wall-clock budget for recovery re-runs."""
        if self.recovery_timeout_s is not None:
            return self.recovery_timeout_s
        if self.cell_timeout_s is not None:
            return 2 * self.cell_timeout_s
        return None

    def _run_serial(
        self,
        cells: Sequence[SweepCell],
        results: List[Optional[ScenarioResult]],
        keys: Dict[int, str],
        recovery: bool = False,
    ) -> None:
        """In-parent execution: the workers=1 path and the recovery path.

        The primary (``recovery=False``) path runs each cell once with no
        wall-clock budget, exactly like the classic serial loop.  The
        recovery path is bounded both ways: each re-run gets at most
        :meth:`_recovery_budget_s` of wall clock and each cell at most
        ``max_serial_attempts`` tries — a truly wedged cell becomes a
        :class:`CellFailure` instead of blocking the sweep forever.  With
        checkpointing on, every attempt resumes from the cell's last
        checkpoint, so bounded retries still make monotonic progress.
        A cell that raises a non-timeout error (bad config, protocol bug,
        failed audit) is recorded in :attr:`failures` and the rest of the
        sweep continues.
        """
        attempts = self.max_serial_attempts if recovery else 1
        budget_s = self._recovery_budget_s() if recovery else None
        for cell in cells:
            checkpoint_path = self._checkpoint_path_for(cell, keys)
            started = time.perf_counter()
            result: Optional[ScenarioResult] = None
            error: Optional[BaseException] = None
            error_tb = ""
            for attempt in range(1, attempts + 1):
                try:
                    # Checkpoint kwargs are only passed when checkpointing
                    # is on: tests monkeypatch ``execute_cell`` with the
                    # classic two-argument signature.
                    if checkpoint_path is not None:
                        result = execute_cell(
                            cell,
                            budget_s,
                            checkpoint_path=checkpoint_path,
                            checkpoint_every_s=self.checkpoint_every_s,
                        )
                    else:
                        result = execute_cell(cell, budget_s)
                    break
                except WallClockExceeded as exc:
                    error, error_tb = exc, traceback.format_exc()
                    if attempt < attempts:
                        self._emit(
                            f"{cell.label} retry {attempt}/{attempts} timed out; "
                            "retrying"
                            + (" from checkpoint" if checkpoint_path else "")
                        )
                except Exception as exc:
                    error, error_tb = exc, traceback.format_exc()
                    if attempt < attempts:
                        self._emit(
                            f"{cell.label} retry {attempt}/{attempts} crashed "
                            f"({type(exc).__name__}: {exc}); retrying"
                        )
            if result is None:
                self.failures.append(
                    CellFailure(
                        cell=cell,
                        error=f"{type(error).__name__}: {error}",
                        traceback=error_tb,
                    )
                )
                self._emit(
                    f"{cell.label} failed permanently "
                    f"({type(error).__name__}: {error}); continuing"
                )
                continue
            self._finish(cell, result, time.perf_counter() - started, results, keys)

    def _run_pool(
        self,
        cells: Sequence[SweepCell],
        results: List[Optional[ScenarioResult]],
        keys: Dict[int, str],
    ) -> List[SweepCell]:
        """Pooled execution; returns the cells that need a serial retry."""
        context = multiprocessing.get_context(self.mp_context)
        n_workers = min(self.workers, len(cells))
        retry: List[SweepCell] = []
        # A worker stuck *outside* the event loop never hits the
        # cooperative deadline, so the parent also bounds how long it will
        # wait between completions before declaring the pool hung.
        if self.pool_guard_s is not None:
            guard_s: Optional[float] = self.pool_guard_s
        else:
            guard_s = (
                None
                if self.cell_timeout_s is None
                else max(2 * self.cell_timeout_s, 30.0)
            )
        pool = ProcessPoolExecutor(max_workers=n_workers, mp_context=context)
        hung = False
        try:
            # As in ``_run_serial``: checkpoint arguments only when
            # checkpointing is on, so monkeypatched two-argument workers
            # keep working.
            if self._checkpointing:
                future_to_cell = {
                    pool.submit(
                        _pool_worker,
                        cell,
                        self.cell_timeout_s,
                        self._checkpoint_path_for(cell, keys),
                        self.checkpoint_every_s,
                    ): cell
                    for cell in cells
                }
            else:
                future_to_cell = {
                    pool.submit(_pool_worker, cell, self.cell_timeout_s): cell
                    for cell in cells
                }
            waiting = set(future_to_cell)
            while waiting:
                done, waiting = wait(
                    waiting, timeout=guard_s, return_when=FIRST_COMPLETED
                )
                if not done:
                    # Guard window expired with no completions: the pool is
                    # hung.  Abandon it; everything unfinished retries
                    # serially.
                    retry.extend(future_to_cell[f] for f in waiting)
                    hung = True
                    self._emit(
                        f"pool hung ({len(waiting)} cells unfinished), "
                        "requeueing serially"
                    )
                    break
                for future in done:
                    cell = future_to_cell[future]
                    try:
                        _, elapsed_s, result = future.result()
                    except WallClockExceeded:
                        retry.append(cell)
                        self._emit(f"{cell.label} timed out, requeueing serially")
                    except BrokenProcessPool:
                        retry.append(cell)
                        self._emit(f"{cell.label} lost to a dead worker, requeueing")
                    except Exception as exc:  # worker raised: requeue
                        retry.append(cell)
                        self._emit(
                            f"{cell.label} crashed ({type(exc).__name__}: {exc}), "
                            "requeueing serially"
                        )
                    else:
                        self._finish(cell, result, elapsed_s, results, keys)
        finally:
            if hung:
                # A wedged worker would otherwise be joined at interpreter
                # exit; there is no public kill API on the executor, and
                # the process table must be read *before* shutdown clears
                # it.
                processes = list((getattr(pool, "_processes", None) or {}).values())
                for process in processes:
                    process.terminate()
            # cancel_futures keeps a hung/broken pool from blocking exit;
            # Python 3.9+ supports the keyword.
            pool.shutdown(wait=False, cancel_futures=True)
        return retry
