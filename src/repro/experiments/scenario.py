"""Scenario assembly: wire every substrate into a runnable simulation.

:class:`Scenario` builds, from a :class:`ScenarioConfig`: the DES kernel,
the acoustic channel, a connected water-column deployment, one node +
modem + MAC per sensor, depth routing, mobility, and a traffic source.
It then runs either the Poisson steady-state experiment (Figs. 6/7/9/10/11)
or the batch-drain experiment (Fig. 8), and produces a
:class:`ScenarioResult` with every paper metric.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional

from ..des.rng import derive_seed
from ..des.simulator import Simulator
from ..des.trace import Tracer
from ..energy.model import EnergyReport, PowerModel, network_energy
from ..mac.base import SlottedMac
from ..mac.registry import get_protocol
from ..mac.slots import make_slot_timing
from ..metrics.efficiency import EfficiencyIndex, efficiency_index
from ..metrics.execution import (
    ExecutionResult,
    drain_toward_deadline,
    mean_delivery_delay_s,
)
from ..metrics.overhead import OverheadReport, network_overhead
from ..metrics.throughput import ThroughputReport, network_throughput
from ..metrics.utilization import UtilizationReport, network_utilization
from ..faults.audit import FaultAuditError, audit_macs
from ..faults.injector import FaultInjector, FaultReport
from ..net.clock import NodeClock
from ..net.node import Node
from ..perf import GLOBAL_PERF, PerfReport
from ..phy.channel import AcousticChannel
from ..topology.deployment import (
    DeploymentConfig,
    connected_column_deployment,
    tiled_column_deployment,
)
from ..topology.mobility import MobilityManager
from ..topology.routing import DepthRouting
from ..traffic.generators import BatchWorkload, PoissonTraffic
from .config import ScenarioConfig


@dataclass
class ScenarioResult:
    """Every metric the paper's figures consume, for one run."""

    protocol: str
    config: ScenarioConfig
    throughput: ThroughputReport
    energy: EnergyReport
    overhead: OverheadReport
    efficiency: EfficiencyIndex
    utilization: UtilizationReport
    collisions: int
    mean_delay_s: float
    execution: Optional[ExecutionResult] = None
    extra_completed: int = 0
    offered_bits: int = 0
    #: Degradation report, present iff the scenario ran with a non-empty
    #: fault plan (fault event log, recovery metrics, audit outcome).
    faults: Optional[FaultReport] = None
    #: Counter snapshot for the perf layer.  Deliberately excluded from
    #: :meth:`to_dict`: wall time is machine-dependent, and figure metrics
    #: must stay bit-identical with the link cache on or off.
    perf: Optional[PerfReport] = None

    @property
    def throughput_kbps(self) -> float:
        return self.throughput.kbps

    @property
    def power_mw(self) -> float:
        return self.energy.average_power_mw

    @property
    def overhead_units(self) -> float:
        return self.overhead.total_units

    @property
    def delivery_ratio(self) -> float:
        """Delivered fraction of the offered traffic (degradation metric)."""
        if self.offered_bits <= 0:
            return 0.0
        return self.throughput.total_bits / self.offered_bits

    def to_dict(self) -> Dict[str, object]:
        """Flat JSON-friendly summary (for EXPERIMENTS.md tooling / CI)."""
        summary: Dict[str, object] = {
            "protocol": self.protocol,
            "offered_load_kbps": self.config.offered_load_kbps,
            "n_sensors": self.config.n_sensors,
            "seed": self.config.seed,
            "throughput_kbps": self.throughput_kbps,
            "power_mw": self.power_mw,
            "efficiency": self.efficiency.value,
            "overhead_units": self.overhead_units,
            "data_utilization": self.utilization.data_utilization,
            "airtime_utilization": self.utilization.airtime_utilization,
            "collisions": self.collisions,
            "mean_delay_s": self.mean_delay_s,
            "extra_completed": self.extra_completed,
            "offered_bits": self.offered_bits,
        }
        if self.execution is not None:
            summary["drain_time_s"] = self.execution.drain_time_s
            summary["timed_out"] = self.execution.timed_out
        if self.faults is not None:
            # Fault-free runs add no keys at all: downstream exports stay
            # byte-for-byte identical when no plan was configured.
            summary["delivery_ratio"] = self.delivery_ratio
            summary.update(self.faults.to_dict())
        return summary


@dataclass
class _RunPlan:
    """Where an in-flight run is headed (pickled inside every checkpoint).

    Both experiment kinds reduce to "advance the clock toward an absolute
    simulation time, then collect": storing that target (rather than the
    relative durations the public API takes) is what lets a restored
    scenario finish the run without re-deriving anything.
    """

    mode: str  # "steady" | "batch"
    #: Steady: absolute end of the measurement window.
    end_s: float = 0.0
    #: Steady: measurement duration passed to ``_collect``.
    duration_s: float = 0.0
    #: Batch: absolute drain deadline (sim time).
    deadline_s: float = 0.0
    #: Batch: the relative budget (reported as the drain time on timeout).
    max_time_s: float = 0.0
    #: Batch: drain-loop chunk size.
    check_interval_s: float = 1.0


class Scenario:
    """A fully wired simulation instance."""

    def __init__(self, config: ScenarioConfig, power: Optional[PowerModel] = None):
        self.config = config
        self.power = power if power is not None else PowerModel()
        tracer = Tracer() if config.trace else None
        self.sim = Simulator(seed=config.seed, tracer=tracer)
        deploy = (
            tiled_column_deployment
            if config.deployment == "tiled"
            else connected_column_deployment
        )
        self.deployment = deploy(
            DeploymentConfig(
                n_sensors=config.n_sensors,
                n_sinks=config.n_sinks,
                side_x_m=config.side_m,
                side_y_m=config.side_m,
                depth_m=config.side_m,
                comm_range_m=config.comm_range_m,
                seed=derive_seed(config.seed, "deployment"),
            )
        )
        self.channel = AcousticChannel(
            self.sim,
            bitrate_bps=config.bitrate_bps,
            max_range_m=config.comm_range_m,
            interference_range_factor=config.interference_range_factor,
            use_link_cache=config.link_cache,
            use_spatial_grid=config.spatial_grid,
            use_delta_epochs=config.delta_epochs,
            use_inreach_delta=config.inreach_delta,
            use_bulk_schedule=config.bulk_schedule,
            pool_arrivals=config.arrival_pool,
            arrival_pool_cap=config.arrival_pool_cap,
        )
        self.timing = make_slot_timing(
            bitrate_bps=config.bitrate_bps,
            control_bits=config.control_bits,
            max_range_m=config.comm_range_m,
            speed_mps=config.sound_speed_mps,
        )
        sink_set = set(self.deployment.sink_ids)
        clock_rng = self.sim.streams.get("clocks")

        def _make_clock() -> NodeClock:
            # Draw order (offset, then drift, per node) is part of the
            # reproducibility contract; each draw happens only when its
            # std is nonzero so legacy configs consume identical RNG.
            offset = (
                float(clock_rng.normal(0.0, config.clock_offset_std_s))
                if config.clock_offset_std_s > 0
                else 0.0
            )
            drift = (
                float(clock_rng.normal(0.0, config.clock_drift_ppm_std))
                if config.clock_drift_ppm_std > 0
                else 0.0
            )
            return NodeClock(self.sim, offset_s=offset, drift_ppm=drift)

        self.nodes: List[Node] = [
            Node(
                self.sim,
                node_id,
                position,
                self.channel,
                is_sink=node_id in sink_set,
                queue_limit=config.queue_limit,
                clock=_make_clock(),
            )
            for node_id, position in enumerate(self.deployment.positions)
        ]
        protocol_cls = get_protocol(config.protocol)
        self.macs: List[SlottedMac] = [
            protocol_cls(self.sim, node, self.channel, self.timing)
            for node in self.nodes
        ]
        if config.max_retries is not None:
            for mac in self.macs:
                mac.config.max_retries = config.max_retries
        self.routing = DepthRouting(self.channel, self.deployment.sink_ids)
        if config.forwarding:
            for mac in self.macs:
                mac.on_data_delivered = self._forward
        self.mobility: Optional[MobilityManager] = None
        if config.mobility:
            self.mobility = MobilityManager(
                self.sim,
                self.nodes,
                self.deployment.config,
                rng=self.sim.streams.get("mobility"),
            )
        self.traffic: Optional[PoissonTraffic] = None
        self.batch: Optional[BatchWorkload] = None
        # The injector exists only for a non-empty plan: an empty plan
        # must leave the event heap and RNG stream set untouched so the
        # figure pipeline stays bit-identical to a fault-free build.
        self.injector: Optional[FaultInjector] = None
        if config.faults:
            self.injector = FaultInjector(
                self.sim, self.nodes, self.channel, config.faults
            )
        self._started = False
        self._plan: Optional[_RunPlan] = None
        #: Fault-tolerance counters, surfaced through ``ScenarioResult.perf``.
        self.checkpoints_taken = 0
        self.resumes = 0

    # ------------------------------------------------------------------
    def _count_mac_drops(self) -> int:
        """Batch-workload drop counter (a named method so it pickles)."""
        return sum(m.stats.drops for m in self.macs)

    def _forward(self, node: Node, src: int, size_bits: int) -> None:
        """Multi-hop relay: received data continues toward the surface."""
        if node.is_sink:
            return
        next_hop = self.routing.next_hop(node.node_id)
        if next_hop is not None and next_hop != src:
            node.enqueue_data(next_hop, size_bits)

    def _start_common(self) -> None:
        if self._started:
            raise RuntimeError("scenario already started")
        self._started = True
        for mac in self.macs:
            mac.start()
        if self.mobility is not None:
            self.mobility.start()
        if self.injector is not None:
            self.injector.arm()

    # ------------------------------------------------------------------
    def run_steady_state(
        self,
        checkpoint_every_s: Optional[float] = None,
        on_checkpoint: Optional[Callable[["Scenario"], None]] = None,
    ) -> ScenarioResult:
        """Poisson offered load over the Table 2 window (Figs. 6/7/9/10/11).

        With ``checkpoint_every_s`` set, the run advances in windows of
        that many simulated seconds and invokes ``on_checkpoint(self)``
        between windows (typically to :meth:`snapshot` to disk).  Window
        boundaries are bit-neutral — the kernel pops the same events in
        the same order either way — so checkpointing never changes
        results.  Left at None (the default) the run is a single
        ``sim.run`` call: zero hot-path cost.
        """
        config = self.config
        self._start_common()
        self.traffic = PoissonTraffic(
            self.sim,
            self.nodes,
            self.routing,
            offered_load_kbps=config.offered_load_kbps,
            packet_bits=config.data_packet_bits,
            rng=self.sim.streams.get("traffic"),
        )
        self.sim.schedule_at(config.warmup_s, self.traffic.start)
        self._plan = _RunPlan(
            mode="steady",
            end_s=config.warmup_s + config.sim_time_s,
            duration_s=config.sim_time_s,
        )
        return self.resume(checkpoint_every_s, on_checkpoint)

    def run_batch(
        self,
        n_packets: int,
        max_time_s: float,
        checkpoint_every_s: Optional[float] = None,
        on_checkpoint: Optional[Callable[["Scenario"], None]] = None,
    ) -> ScenarioResult:
        """Fixed batch drained to completion (Fig. 8 execution time).

        Checkpoints (when enabled) are only ever taken on the drain
        loop's chunk boundaries, so a resumed run walks the exact same
        chunk sequence — and therefore reports the exact same
        chunk-resolution drain time — as the uninterrupted run.
        """
        if max_time_s <= 0:
            raise ValueError("max_time_s must be positive")
        config = self.config
        self._start_common()
        self.batch = BatchWorkload(
            self.sim,
            self.nodes,
            self.routing,
            n_packets=n_packets,
            packet_bits=config.data_packet_bits,
            rng=self.sim.streams.get("traffic"),
        )
        self.batch.attach_drop_counter(self._count_mac_drops)
        self.sim.schedule_at(config.warmup_s, self.batch.start)
        self.sim.run(until=config.warmup_s + 1e-6)
        self._plan = _RunPlan(
            mode="batch",
            deadline_s=self.sim.now + max_time_s,
            max_time_s=max_time_s,
        )
        return self.resume(checkpoint_every_s, on_checkpoint)

    def resume(
        self,
        checkpoint_every_s: Optional[float] = None,
        on_checkpoint: Optional[Callable[["Scenario"], None]] = None,
    ) -> ScenarioResult:
        """Finish an in-flight run (fresh or restored from a checkpoint).

        ``run_steady_state`` / ``run_batch`` record where the run is
        headed in an absolute-time :class:`_RunPlan` before the first
        measurement window, then delegate here; a scenario restored via
        :meth:`restore` calls this directly to complete the run and
        collect the result.
        """
        plan = self._plan
        if plan is None:
            raise RuntimeError("no in-flight run to resume (scenario never started)")
        if plan.mode == "steady":
            self._run_windows(plan.end_s, checkpoint_every_s, on_checkpoint)
            return self._collect(duration_s=plan.duration_s)
        on_chunk = None
        if checkpoint_every_s is not None and checkpoint_every_s > 0:
            last_at = [self.sim.now]

            def on_chunk() -> None:
                if self.sim.now - last_at[0] >= checkpoint_every_s:
                    last_at[0] = self.sim.now
                    self._take_checkpoint(on_checkpoint)

        execution = drain_toward_deadline(
            self.sim,
            self.batch,
            deadline_s=plan.deadline_s,
            max_time_s=plan.max_time_s,
            check_interval_s=plan.check_interval_s,
            on_chunk=on_chunk,
        )
        duration = max(execution.drain_time_s - self.config.warmup_s, 1e-6)
        result = self._collect(duration_s=duration)
        result.execution = execution
        return result

    def _run_windows(
        self,
        end_s: float,
        every_s: Optional[float],
        on_checkpoint: Optional[Callable[["Scenario"], None]],
    ) -> None:
        """Advance to ``end_s``, checkpointing between windows if enabled."""
        sim = self.sim
        if every_s is None or every_s <= 0:
            sim.run(until=end_s)
            return
        while sim.now < end_s:
            sim.run(until=min(sim.now + every_s, end_s))
            if sim.now < end_s:
                self._take_checkpoint(on_checkpoint)

    def _take_checkpoint(
        self, on_checkpoint: Optional[Callable[["Scenario"], None]]
    ) -> None:
        self.checkpoints_taken += 1
        if on_checkpoint is not None:
            on_checkpoint(self)

    # ------------------------------------------------------------------
    def snapshot(self) -> bytes:
        """Serialize this mid-run scenario to a versioned checkpoint blob.

        See :mod:`repro.experiments.checkpoint` for the format and the
        bit-identity guarantees.  (Lazy import: the checkpoint module
        reaches back into this package via the source-digest check.)
        """
        from .checkpoint import snapshot_scenario

        return snapshot_scenario(self)

    @staticmethod
    def restore(data: bytes, check_code: bool = True) -> "Scenario":
        """Rebuild a mid-run scenario from :meth:`snapshot` output.

        The returned scenario finishes its run via :meth:`resume`;
        the final result is bit-identical to the uninterrupted run.
        """
        from .checkpoint import restore_scenario

        return restore_scenario(data, check_code=check_code)

    # ------------------------------------------------------------------
    def _collect(self, duration_s: float) -> ScenarioResult:
        throughput = network_throughput(self.macs, duration_s)
        energy = network_energy(self.macs, duration_s, self.power)
        overhead = network_overhead(self.macs)
        collisions = sum(m.node.modem.stats.rx_collision for m in self.macs)
        extra = sum(
            getattr(getattr(m, "extra_stats", None), "completed", 0) for m in self.macs
        )
        offered = 0
        if self.traffic is not None:
            offered = self.traffic.stats.bits
        elif self.batch is not None:
            offered = self.batch.stats.bits
        faults_report: Optional[FaultReport] = None
        if self.injector is not None:
            violations = audit_macs(self.macs)
            faults_report = self.injector.build_report(violations)
            if self.config.faults.strict_audit and violations:
                raise FaultAuditError(violations)
        perf = PerfReport.capture(
            self.sim,
            self.channel.stats,
            duration_s,
            checkpoints_taken=self.checkpoints_taken,
            resumes=self.resumes,
        )
        GLOBAL_PERF.add(perf)
        return ScenarioResult(
            protocol=self.config.protocol,
            config=self.config,
            throughput=throughput,
            energy=energy,
            overhead=overhead,
            efficiency=efficiency_index(throughput, energy),
            utilization=network_utilization(
                self.macs, duration_s, self.config.bitrate_bps
            ),
            collisions=collisions,
            mean_delay_s=mean_delivery_delay_s(self.nodes),
            extra_completed=extra,
            offered_bits=offered,
            faults=faults_report,
            perf=perf,
        )


def run_scenario(config: ScenarioConfig) -> ScenarioResult:
    """Build and run one steady-state scenario."""
    return Scenario(config).run_steady_state()


def run_batch_scenario(
    config: ScenarioConfig, n_packets: int, max_time_s: float
) -> ScenarioResult:
    """Build and run one batch-drain scenario."""
    return Scenario(config).run_batch(n_packets, max_time_s)
