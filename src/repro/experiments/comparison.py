"""Paper-vs-measured comparison reports (EXPERIMENTS.md generation).

Takes the regenerated figure CSVs (written by ``repro-uasn all --csv``)
and the paper's approximate published values
(:mod:`repro.experiments.paper_reference`), and emits per-figure
comparison tables plus a mechanical check of the paper's qualitative
claims — which orderings hold in our substrate, which do not.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from .paper_reference import PAPER_FIGURES, PROTOCOLS, PaperFigure


@dataclass
class MeasuredFigure:
    """Measured series loaded back from a figure CSV."""

    figure_id: str
    x_values: List[float]
    series: Dict[str, List[float]]


def load_measured(csv_path: Path) -> MeasuredFigure:
    """Load a ``repro-uasn --csv`` output file."""
    csv_path = Path(csv_path)
    with open(csv_path) as handle:
        rows = list(csv.reader(handle))
    header = rows[0]
    protocols = header[1:]
    x_values = [float(r[0]) for r in rows[1:]]
    series = {
        protocol: [float(r[1 + i]) for r in rows[1:]]
        for i, protocol in enumerate(protocols)
    }
    return MeasuredFigure(csv_path.stem, x_values, series)


def _nearest_index(values: Sequence[float], x: float) -> Optional[int]:
    if not values:
        return None
    best = min(range(len(values)), key=lambda i: abs(values[i] - x))
    return best if abs(values[best] - x) <= 1e-9 + 0.05 * max(abs(x), 1.0) else None


def comparison_table(paper: PaperFigure, measured: MeasuredFigure) -> str:
    """Markdown table: paper vs measured at each shared x point."""
    lines = [
        "| "
        + paper.x_label
        + " | "
        + " | ".join(f"{p} (paper / ours)" for p in PROTOCOLS)
        + " |",
        "|" + "---|" * (1 + len(PROTOCOLS)),
    ]
    for px, x in enumerate(paper.x_values):
        mi = _nearest_index(measured.x_values, x)
        cells = []
        for protocol in PROTOCOLS:
            paper_value = paper.series[protocol][px]
            if mi is None or protocol not in measured.series:
                cells.append(f"{paper_value:.3g} / –")
            else:
                cells.append(f"{paper_value:.3g} / {measured.series[protocol][mi]:.3g}")
        lines.append(f"| {x:g} | " + " | ".join(cells) + " |")
    return "\n".join(lines)


@dataclass
class ClaimCheck:
    """One qualitative paper claim and whether our data matches it."""

    claim: str
    holds: Optional[bool]  # None = not mechanically checkable
    detail: str = ""


def _series_at_top(measured: MeasuredFigure, protocol: str) -> float:
    return measured.series[protocol][-1]


def check_claims(figure_id: str, measured: MeasuredFigure) -> List[ClaimCheck]:
    """Mechanically verify the ordering-style claims we can check."""
    checks: List[ClaimCheck] = []
    s = measured.series
    if figure_id == "fig6":
        checks.append(
            ClaimCheck(
                "EW-MAC >= S-FAMA at the highest load",
                s["EW-MAC"][-1] >= s["S-FAMA"][-1],
                f"{s['EW-MAC'][-1]:.3f} vs {s['S-FAMA'][-1]:.3f}",
            )
        )
        mid = len(measured.x_values) // 2
        checks.append(
            ClaimCheck(
                "CS-MAC leads at mid loads",
                s["CS-MAC"][mid] >= max(s[p][mid] for p in PROTOCOLS),
                f"CS-MAC {s['CS-MAC'][mid]:.3f} at x={measured.x_values[mid]:g}",
            )
        )
        checks.append(
            ClaimCheck(
                "EW-MAC leads at the highest load",
                s["EW-MAC"][-1] >= max(s[p][-1] for p in PROTOCOLS),
                f"top-load values: "
                + ", ".join(f"{p}={s[p][-1]:.3f}" for p in PROTOCOLS),
            )
        )
    elif figure_id == "fig7":
        spread_first = max(s[p][0] for p in PROTOCOLS) - min(s[p][0] for p in PROTOCOLS)
        spread_last = max(s[p][-1] for p in PROTOCOLS) - min(s[p][-1] for p in PROTOCOLS)
        checks.append(
            ClaimCheck(
                "protocol spread narrows (or stays bounded) as density rises",
                spread_last <= spread_first * 2.0,
                f"spread {spread_first:.3f} -> {spread_last:.3f}",
            )
        )
    elif figure_id == "fig8":
        checks.append(
            ClaimCheck(
                "drain time grows with load for every protocol",
                all(s[p][-1] > s[p][0] for p in PROTOCOLS),
            )
        )
        checks.append(
            ClaimCheck(
                "EW-MAC drains no slower than S-FAMA at the top load",
                s["EW-MAC"][-1] <= s["S-FAMA"][-1] * 1.1,
                f"{s['EW-MAC'][-1]:.0f}s vs {s['S-FAMA'][-1]:.0f}s",
            )
        )
    elif figure_id in ("fig9a", "fig9b"):
        checks.append(
            ClaimCheck(
                "two-hop protocols (ROPA, CS-MAC) draw more power than EW-MAC",
                s["ROPA"][-1] > s["EW-MAC"][-1] and s["CS-MAC"][-1] > s["EW-MAC"][-1],
            )
        )
        checks.append(
            ClaimCheck(
                "EW-MAC <= S-FAMA power",
                s["EW-MAC"][-1] <= s["S-FAMA"][-1] * 1.05,
                f"{s['EW-MAC'][-1]:.0f} vs {s['S-FAMA'][-1]:.0f} mW",
            )
        )
    elif figure_id in ("fig10a", "fig10b"):
        holds = all(
            s["S-FAMA"][i] <= s["ROPA"][i] <= s["EW-MAC"][i] <= s["CS-MAC"][i]
            for i in range(len(measured.x_values))
        )
        checks.append(
            ClaimCheck("ordering S-FAMA < ROPA < EW-MAC < CS-MAC at every x", holds)
        )
    elif figure_id == "fig11":
        checks.append(
            ClaimCheck(
                "EW-MAC has the best efficiency index at high load",
                s["EW-MAC"][-1] >= max(s[p][-1] for p in PROTOCOLS),
            )
        )
        checks.append(
            ClaimCheck(
                "EW-MAC index above 1 at high load",
                s["EW-MAC"][-1] > 1.0,
                f"{s['EW-MAC'][-1]:.2f}",
            )
        )
    return checks


def build_comparison_markdown(results_dir: Path) -> str:
    """Assemble the per-figure paper-vs-measured section of EXPERIMENTS.md."""
    results_dir = Path(results_dir)
    sections = []
    for figure_id, paper in PAPER_FIGURES.items():
        csv_path = results_dir / f"{figure_id}.csv"
        if not csv_path.exists():
            sections.append(f"### {figure_id}\n\n*(no measured data found)*\n")
            continue
        measured = load_measured(csv_path)
        lines = [f"### {figure_id} — {paper.y_label} vs {paper.x_label}", ""]
        lines.append(comparison_table(paper, measured))
        lines.append("")
        lines.append("Paper's claims:")
        mechanical = {c.claim: c for c in check_claims(figure_id, measured)}
        for claim in paper.claims:
            lines.append(f"- {claim}")
        if mechanical:
            lines.append("")
            lines.append("Mechanical checks on our data:")
            for check in mechanical.values():
                mark = "PASS" if check.holds else "FAIL"
                detail = f" ({check.detail})" if check.detail else ""
                lines.append(f"- [{mark}] {check.claim}{detail}")
        sections.append("\n".join(lines) + "\n")
    return "\n".join(sections)
