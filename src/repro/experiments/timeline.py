"""Render traced packet exchanges as human-readable timelines.

Used by the examples and the timeline integration tests to present what
the paper's Figs. 2, 4 and 5 show graphically: which packets flew when,
on or off the slot grid, and which idle periods the extra communications
exploited.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from ..des.simulator import Simulator
from ..mac.slots import SlotTiming


@dataclass(frozen=True)
class TimelineEntry:
    """One transmitted frame in the rendered timeline."""

    time: float
    slot: int
    slot_offset: float
    node: int
    frame: str

    @property
    def on_grid(self) -> bool:
        return self.slot_offset < 1e-6

    @property
    def kind(self) -> str:
        return self.frame.split()[0]


def extract_timeline(
    sim: Simulator,
    timing: SlotTiming,
    skip_kinds: Sequence[str] = ("HELLO", "NEIGH"),
) -> List[TimelineEntry]:
    """Collect every traced transmission as timeline entries.

    Requires the simulation to have run with a real tracer
    (``Simulator(tracer=Tracer())``); returns an empty list otherwise.
    """
    skip = set(skip_kinds)
    entries = []
    for record in sim.trace.select("phy.tx"):
        frame = record.detail["frame"]
        if frame.split()[0] in skip:
            continue
        slot = timing.slot_index(record.time)
        entries.append(
            TimelineEntry(
                time=record.time,
                slot=slot,
                slot_offset=timing.time_into_slot(record.time),
                node=record.node,
                frame=frame,
            )
        )
    return entries


def format_timeline(
    entries: Sequence[TimelineEntry],
    labels: Optional[Dict[int, str]] = None,
) -> str:
    """Render entries as an aligned text table."""
    lines = [f"{'time':>10s} {'slot':>5s} {'offset':>9s}  {'node':12s} event"]
    lines.append("-" * 64)
    for entry in entries:
        grid = "on-grid" if entry.on_grid else f"+{entry.slot_offset:.3f}s"
        label = labels.get(entry.node, f"n{entry.node}") if labels else f"n{entry.node}"
        lines.append(
            f"{entry.time:10.4f} {entry.slot:5d} {grid:>9s}  {label:12s} sends {entry.frame}"
        )
    return "\n".join(lines)


def extra_exploitation_summary(entries: Sequence[TimelineEntry]) -> Dict[str, int]:
    """Count on-grid vs off-grid transmissions by frame family.

    The paper's core claim in one table: negotiated packets ride the slot
    grid; EXR/EXC/EXData/EXAck live strictly *off* it, in the waiting
    periods.
    """
    summary = {
        "negotiated_on_grid": 0,
        "negotiated_off_grid": 0,
        "extra_on_grid": 0,
        "extra_off_grid": 0,
    }
    extra_kinds = {"EXR", "EXC", "EXDATA", "EXACK"}
    for entry in entries:
        family = "extra" if entry.kind in extra_kinds else "negotiated"
        grid = "on_grid" if entry.on_grid else "off_grid"
        summary[f"{family}_{grid}"] += 1
    return summary
