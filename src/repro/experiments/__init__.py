"""Experiment harness: Table 2 configs, scenarios, sweeps, figure runners."""

from ..faults import FaultPlan, FaultReport
from .cache import ResultCache, cell_key, code_version
from .chaos import CHAOS_PROTOCOLS, ChaosSummary, chaos, chaos_figure_plan, chaos_plan
from .engine import (
    EngineError,
    FigurePlan,
    SweepObserver,
    SweepRequest,
    SweepResult,
    apply_overrides,
    observe_sweeps,
    request_key,
    request_plan,
    run_plan,
    run_request,
    service_targets,
)
from .config import TABLE2, ScenarioConfig, table2_config
from .figures import ALL_FIGURES, ALL_PLANS, PAPER_EXPECTATIONS, FigureData
from .parallel import CellFailure, ParallelSweepRunner, SweepCell, expand_cells
from .report import format_figure, write_csv
from .ablations import ALL_ABLATIONS
from .scenario import Scenario, ScenarioResult, run_batch_scenario, run_scenario
from .sweeps import PAPER_PROTOCOLS, SweepSpec, aggregate, aggregate_relative, run_sweep
from .timeline import (
    TimelineEntry,
    extra_exploitation_summary,
    extract_timeline,
    format_timeline,
)

__all__ = [
    "ALL_ABLATIONS",
    "ALL_FIGURES",
    "ALL_PLANS",
    "CHAOS_PROTOCOLS",
    "CellFailure",
    "ChaosSummary",
    "EngineError",
    "FaultPlan",
    "FaultReport",
    "FigureData",
    "FigurePlan",
    "chaos",
    "chaos_figure_plan",
    "chaos_plan",
    "TimelineEntry",
    "extra_exploitation_summary",
    "extract_timeline",
    "format_timeline",
    "PAPER_EXPECTATIONS",
    "PAPER_PROTOCOLS",
    "ParallelSweepRunner",
    "ResultCache",
    "Scenario",
    "ScenarioConfig",
    "ScenarioResult",
    "SweepCell",
    "SweepObserver",
    "SweepRequest",
    "SweepResult",
    "SweepSpec",
    "TABLE2",
    "aggregate",
    "aggregate_relative",
    "apply_overrides",
    "cell_key",
    "code_version",
    "expand_cells",
    "format_figure",
    "observe_sweeps",
    "request_key",
    "request_plan",
    "run_batch_scenario",
    "run_plan",
    "run_request",
    "run_scenario",
    "run_sweep",
    "service_targets",
    "table2_config",
    "write_csv",
]
