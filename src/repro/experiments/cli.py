"""Command-line entry point: regenerate any paper figure, or serve sweeps.

Examples::

    repro-uasn fig6                  # full Fig. 6 sweep, 3 seeds
    repro-uasn fig8 --quick          # scaled-down Fig. 8
    repro-uasn all --quick --csv out # everything, CSVs into ./out
    repro-uasn table2                # print the Table 2 defaults
    repro-uasn serve --port 8642     # REST job service over the engine

Exit codes: ``0`` success, ``1`` engine-level failure (a sweep cell
failed permanently, a chaos audit tripped, the A/B gate diverged),
``2`` bad invocation (invalid config override, malformed arguments).
"""

from __future__ import annotations

import argparse
import ast
import inspect
import sys
from pathlib import Path
from typing import Dict, List, Optional

from .ablations import ALL_ABLATIONS
from .config import TABLE2
from .engine import EngineError, observe_sweeps
from .figures import ALL_FIGURES
from .report import format_figure, write_csv

_RUNNERS = {**ALL_FIGURES, **ALL_ABLATIONS}


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-uasn",
        description="Reproduce the EW-MAC paper's evaluation figures.",
    )
    parser.add_argument(
        "target",
        choices=sorted(_RUNNERS)
        + ["all", "ablations", "chaos", "scale", "serve", "table2", "report"],
        help="figure or ablation to regenerate ('all' = paper figures, "
        "'ablations' = every ablation, 'chaos' = seeded fault-injection "
        "robustness sweep, 'scale' = wall-clock scaling sweep over node "
        "count, 'serve' = run the REST job service, 'report' = rebuild "
        "EXPERIMENTS.md from the --csv directory)",
    )
    parser.add_argument(
        "--out",
        type=str,
        default="EXPERIMENTS.md",
        metavar="FILE",
        help="output path for the 'report' target",
    )
    parser.add_argument(
        "--seeds", type=int, default=3, help="number of replication seeds (default 3)"
    )
    parser.add_argument(
        "--quick", action="store_true", help="scaled-down run (coarse axis, 1 seed)"
    )
    parser.add_argument(
        "--csv", type=str, default=None, metavar="DIR", help="also write CSVs here"
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=1,
        metavar="N",
        help="fan sweep cells over N worker processes (0 = CPU count; "
        "default 1 = serial)",
    )
    parser.add_argument(
        "--no-cache",
        action="store_true",
        help="recompute every cell instead of reusing the on-disk result "
        "cache (default cache dir: ./.repro-cache, override with "
        "$REPRO_CACHE_DIR)",
    )
    parser.add_argument(
        "--cell-timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-cell wall-clock budget for parallel runs; cells over "
        "budget are re-run serially",
    )
    parser.add_argument(
        "--checkpoint-every",
        type=float,
        default=None,
        metavar="SECONDS",
        help="checkpoint each cell's simulation state every SECONDS of "
        "simulated time, so interrupted/timed-out cells resume from the "
        "last checkpoint instead of restarting (default: off; resumed "
        "results are bit-identical to uninterrupted runs)",
    )
    parser.add_argument(
        "--override",
        action="append",
        default=[],
        metavar="FIELD=VALUE",
        help="override a ScenarioConfig field of the target's base config "
        "(repeatable, e.g. --override n_sensors=20 --override "
        "sim_time_s=60.0); an unknown field or invalid value exits 2",
    )
    parser.add_argument(
        "--profile",
        action="store_true",
        help="run under cProfile and print the hottest functions plus "
        "per-subsystem perf counters (forces --workers 1 and --no-cache "
        "so every cell is computed, and profiled, in this process)",
    )
    parser.add_argument(
        "--no-spatial-grid",
        action="store_true",
        help="scale target: disable the spatial-hash reach cull (A/B "
        "profiling; results are bit-identical either way)",
    )
    parser.add_argument(
        "--no-delta-epochs",
        action="store_true",
        help="scale target: disable movement-bounded delta-epoch skips "
        "(A/B profiling; results are bit-identical either way)",
    )
    parser.add_argument(
        "--no-inreach-delta",
        action="store_true",
        help="scale target: disable the symmetric in-reach delta bound "
        "(A/B profiling; results are bit-identical either way)",
    )
    parser.add_argument(
        "--no-bulk-schedule",
        action="store_true",
        help="scale target: disable the batched broadcast fan-out through "
        "the DES core's push_bulk (A/B profiling; results are "
        "bit-identical either way)",
    )
    parser.add_argument(
        "--ab-check",
        action="store_true",
        help="scale target: before sweeping, run the smallest cell with "
        "the grid/delta/in-reach/bulk-schedule mechanisms on and off and "
        "fail unless every figure metric is bit-identical (the CI "
        "equivalence gate)",
    )
    parser.add_argument(
        "--verbose", action="store_true", help="print per-run progress"
    )
    parser.add_argument(
        "--chart", action="store_true", help="also render ASCII line charts"
    )
    service = parser.add_argument_group("serve target")
    service.add_argument(
        "--host", type=str, default="127.0.0.1", help="bind address (serve)"
    )
    service.add_argument(
        "--port",
        type=int,
        default=8642,
        help="bind port (serve; 0 picks a free port, printed on stdout)",
    )
    service.add_argument(
        "--store",
        type=str,
        default=".repro-service.sqlite",
        metavar="FILE",
        help="persistent job store path (serve); jobs leased by a crashed "
        "service are requeued once their lease expires",
    )
    service.add_argument(
        "--service-workers",
        type=int,
        default=1,
        metavar="N",
        help="concurrent job worker threads (serve); each job additionally "
        "fans its cells over --workers processes",
    )
    service.add_argument(
        "--lease-s",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="job claim lease duration (serve); a worker that stops "
        "heartbeating for this long loses its job back to the queue",
    )
    service.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        metavar="N",
        help="retry budget per job (serve); a job whose worker crashes N "
        "times is quarantined instead of requeued",
    )
    service.add_argument(
        "--chaos-kill-after",
        type=int,
        default=None,
        metavar="LINES",
        help="fault injection (serve): SIGKILL this service process after "
        "the N-th progress line of any job, leaving a leased running job "
        "behind (crash-recovery smoke test)",
    )
    service.add_argument(
        "--allow-shutdown",
        action="store_true",
        help="enable POST /shutdown for clean remote stops (CI smoke)",
    )
    service.add_argument(
        "--http-log",
        action="store_true",
        help="log every HTTP request to stderr (serve)",
    )
    return parser


def parse_overrides(pairs: List[str]) -> Dict[str, object]:
    """``FIELD=VALUE`` strings -> typed override mapping.

    Values parse as Python literals (``20``, ``60.0``, ``False``);
    anything unparseable stays a string.  A pair without ``=`` raises
    :class:`~repro.experiments.engine.EngineError` (exit code 2).
    """
    overrides: Dict[str, object] = {}
    for pair in pairs:
        name, sep, raw = pair.partition("=")
        if not sep or not name:
            raise EngineError(
                f"bad --override {pair!r}: expected FIELD=VALUE"
            )
        try:
            value = ast.literal_eval(raw)
        except (ValueError, SyntaxError):
            value = raw
        overrides[name] = value
    return overrides


def _engine_kwargs(runner, args: argparse.Namespace) -> Dict[str, object]:
    """Sweep-engine kwargs for runners that support them.

    The figure runners route through the parallel engine; the ablation
    runners drive scenarios directly (their tweaks are closures) and take
    no engine arguments, so only the parameters a runner declares are
    passed.
    """
    supported = inspect.signature(runner).parameters
    kwargs: Dict[str, object] = {}
    if "workers" in supported:
        kwargs["workers"] = None if args.workers == 0 else args.workers
    if "cache" in supported:
        kwargs["cache"] = not args.no_cache
    if "cell_timeout_s" in supported and args.cell_timeout is not None:
        kwargs["cell_timeout_s"] = args.cell_timeout
    if "checkpoint_every_s" in supported and args.checkpoint_every is not None:
        kwargs["checkpoint_every_s"] = args.checkpoint_every
    if "overrides" in supported and args.override:
        kwargs["overrides"] = parse_overrides(args.override)
    return kwargs


def _print_table2() -> None:
    print("Table 2. Simulation parameters")
    for key, value in TABLE2.items():
        print(f"  {key:28s} {value}")


def _finish_observed(observer, cache_enabled: bool) -> int:
    """Shared epilogue: cache accounting and the failure exit code."""
    if cache_enabled:
        print(f"  {observer.cache_line()}")
    if observer.failures:
        for failure in observer.failures:
            print(
                f"FAIL: cell {failure.cell.label} failed permanently: "
                f"{failure.error}",
                file=sys.stderr,
            )
        return 1
    return 0


def _serve(args: argparse.Namespace) -> int:
    from ..service.api import serve

    run_kwargs: Dict[str, object] = {
        "workers": None if args.workers == 0 else args.workers,
        "cache": not args.no_cache,
    }
    if args.cell_timeout is not None:
        run_kwargs["cell_timeout_s"] = args.cell_timeout
    if args.checkpoint_every is not None:
        run_kwargs["checkpoint_every_s"] = args.checkpoint_every
    return serve(
        host=args.host,
        port=args.port,
        store_path=args.store,
        n_service_workers=args.service_workers,
        run_kwargs=run_kwargs,
        allow_shutdown=args.allow_shutdown,
        quiet=not args.http_log,
        lease_s=args.lease_s,
        max_attempts=args.max_attempts,
        chaos_kill_after=args.chaos_kill_after,
    )


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    try:
        return _dispatch(args)
    except EngineError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    except (ValueError, TypeError) as exc:
        # Engine-level config/validation failures surface as a named
        # error and a nonzero exit, never a silent success.
        print(f"error: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 2


def _dispatch(args: argparse.Namespace) -> int:
    if args.target == "table2":
        _print_table2()
        return 0
    if args.target == "serve":
        return _serve(args)
    if args.target == "report":
        if not args.csv:
            print("report needs --csv DIR (where the figure CSVs live)", file=sys.stderr)
            return 2
        from .experiments_doc import build_experiments_md

        text = build_experiments_md(Path(args.csv))
        Path(args.out).write_text(text)
        print(f"wrote {args.out}")
        return 0
    progress = (lambda msg: print(f"  .. {msg}", file=sys.stderr)) if args.verbose else None
    seeds = tuple(range(1, args.seeds + 1))
    if args.target == "chaos":
        from .chaos import chaos

        kwargs = _engine_kwargs(chaos, args)
        with observe_sweeps() as observer:
            data, summary = chaos(
                seeds=seeds, quick=args.quick, progress=progress, **kwargs
            )
        print(format_figure(data))
        for line in summary.lines():
            print(f"  {line}")
        if args.csv:
            path = write_csv(data, Path(args.csv) / "chaos.csv")
            print(f"  csv: {path}")
        status = _finish_observed(observer, not args.no_cache)
        if status:
            return status
        if summary.wedged_handshakes > 0:
            print(
                f"FAIL: {summary.wedged_handshakes} wedged handshake(s) "
                "survived the post-run audit",
                file=sys.stderr,
            )
            return 1
        if summary.faulted_cells > 0 and summary.recoveries == 0:
            print(
                "FAIL: faulted cells ran but no node ever recovered — "
                "the recovery path is not being exercised",
                file=sys.stderr,
            )
            return 1
        return 0
    if args.target == "scale":
        from .scale import QUICK_NODES, SCALE_NODES, ab_check, scale

        if args.ab_check:
            smallest = (QUICK_NODES if args.quick else SCALE_NODES)[0]
            try:
                ab_check(smallest, seed=seeds[0] if seeds else 1, progress=progress)
            except AssertionError as exc:
                print(f"FAIL: {exc}", file=sys.stderr)
                return 1
        data = scale(
            seeds=seeds,
            quick=args.quick,
            progress=progress,
            spatial_grid=not args.no_spatial_grid,
            delta_epochs=not args.no_delta_epochs,
            inreach_delta=not args.no_inreach_delta,
            bulk_schedule=not args.no_bulk_schedule,
        )
        print(format_figure(data))
        if args.csv:
            path = write_csv(data, Path(args.csv) / "scale.csv")
            print(f"  csv: {path}")
        return 0
    if args.target == "all":
        targets = sorted(ALL_FIGURES)
    elif args.target == "ablations":
        targets = sorted(ALL_ABLATIONS)
    else:
        targets = [args.target]
    profiler = None
    if args.profile:
        # Child processes would escape the profiler and the in-process perf
        # accumulator, and cache hits would skip the work being measured.
        args.workers = 1
        args.no_cache = True
        from ..perf import GLOBAL_PERF

        GLOBAL_PERF.reset()
        import cProfile

        profiler = cProfile.Profile()
        profiler.enable()
    try:
        with observe_sweeps() as observer:
            for target in targets:
                runner = _RUNNERS[target]
                kwargs = _engine_kwargs(runner, args)
                data = runner(seeds=seeds, quick=args.quick, progress=progress, **kwargs)
                print(format_figure(data))
                if args.chart:
                    from ..analysis.charts import figure_chart

                    print(figure_chart(data))
                if args.csv:
                    path = write_csv(data, Path(args.csv) / f"{target}.csv")
                    print(f"  csv: {path}\n")
    finally:
        if profiler is not None:
            profiler.disable()
            _print_profile(profiler)
    return _finish_observed(observer, not args.no_cache)


def _print_profile(profiler: "cProfile.Profile") -> None:
    """Perf-counter summary plus the 25 hottest functions by cumulative time."""
    import io
    import pstats

    from ..perf import GLOBAL_PERF

    print("\n== perf counters " + "=" * 47)
    for line in GLOBAL_PERF.summary_lines():
        print(f"  {line}")
    buffer = io.StringIO()
    stats = pstats.Stats(profiler, stream=buffer)
    stats.strip_dirs().sort_stats("cumulative").print_stats(25)
    print("== cProfile (top 25 by cumulative time) " + "=" * 24)
    print(buffer.getvalue())


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
