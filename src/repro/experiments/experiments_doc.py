"""EXPERIMENTS.md assembly: narrative + paper-vs-measured comparison.

``repro-uasn report --csv results --out EXPERIMENTS.md`` rebuilds the
document from the regenerated figure CSVs, so the reproduction record
always reflects the current code.
"""

from __future__ import annotations

from pathlib import Path

from .comparison import build_comparison_markdown

_HEADER = """\
# EXPERIMENTS — paper vs measured

Reproduction record for every evaluation figure of *"A Protocol for
Efficient Transmissions in UASNs"* (ICDCS-W 2013; extended as Sensors
2016, 16, 343).  Regenerate the measured series with::

    repro-uasn all --seeds 3 --csv results
    repro-uasn report --csv results --out EXPERIMENTS.md

Paper values are approximate (read off the published plots — the paper
ships no numeric tables).  Our absolute numbers come from an independent
substrate (see DESIGN.md substitutions), so the comparison targets
**shapes**: orderings, growth directions, crossovers.  Each figure section
ends with mechanical checks of the paper's qualitative claims against the
measured series.

## Summary of reproduction status

What reproduces:

* **Fig. 6 core claim** — EW-MAC's extra communications raise saturated
  throughput over S-FAMA, with the gap growing with offered load; curves
  rise and saturate; ROPA tracks slightly above S-FAMA; CS-MAC leads the
  mid-load region.
* **Fig. 8 / 9** — the protocols that exploit waiting resources drain
  fixed batches no slower than S-FAMA, and the two-hop-state protocols
  (ROPA, CS-MAC) pay clearly more energy; EW-MAC's power stays at the
  S-FAMA level while delivering more.
* **Fig. 10** — overhead ordering S-FAMA < ROPA < EW-MAC < CS-MAC at
  every measured density and load.
* **Fig. 11** — EW-MAC posts the best efficiency index, above the
  S-FAMA = 1 line at moderate-to-high loads.
* **Figs. 2/4/5 timing** — the EXR/EXC/EXData/EXAck timeline reproduces
  exactly (see ``examples/extra_communication_trace.py``): the Eq. (6)
  EXData arrives the instant the negotiated Ack leaves j's antenna.

Known divergences (and why we believe our substrate, not the shape):

1. **CS-MAC does not collapse past 0.8 kbps.** In our physically-grounded
   channel, the Table 2 deployment (1000 km^3, 1.5 km hops) has abundant
   *spatial reuse*: an unprotected mid-window data transmission usually
   lands in genuinely idle space, so CS-MAC's aggression keeps paying at
   high load instead of self-destructing.  The `abl-density` ablation
   shows the paper's regime: shrink the volume until every node shares
   one contention domain and all protocols saturate near the paper's
   ~0.3 kbps.  The `abl-aloha` ablation makes the same point more
   sharply — even plain slotted ALOHA outruns every handshake protocol
   in the sprawling deployment (consistent with the known result that
   ALOHA is hard to beat in large-delay networks, Chitre et al. 2012).
2. **Efficiency indexes of ROPA/CS-MAC fall below 1** in our energy
   model: their two-hop maintenance and (for CS-MAC) failed-steal
   transmissions cost more energy than their throughput gains earn.  The
   paper's Fig. 11 places them modestly above 1; the sign of the EW-MAC
   advantage is unaffected.
3. **Overhead ratios exceed the paper's 1.5x/2-3x magnitudes** (ours grow
   to ~4-25x with density) because our accounting charges computation and
   memory explicitly and our S-FAMA baseline is very cheap.  The
   *ordering* and the growth-with-density shape match.
4. **Fig. 7's density decline is noisy** in our topology generator:
   density shortens links (less waiting to exploit, as the paper argues)
   but also adds parallel branches (more spatial reuse), and the two
   effects partly cancel.

## Per-figure comparison

Replication note: the committed ``results/`` CSVs were generated on a
single-core machine under a wall-clock budget — Figs. 6/7/10a/11 with
3 seeds and the batch figures (8, 9a, 9b) with 1 seed.  Figs. 6, 7, 10b
and 11 were produced by a build that predates the final ROPA maintenance
calibration (the capped NEIGH digest): their ROPA rows are pessimistic,
and Fig. 10b's ROPA-vs-EW-MAC ordering check fails for that reason —
the recalibrated Fig. 10a (same metric, node-count axis) shows the
corrected ordering at every density.  Regenerate any figure with
``repro-uasn <figure> --seeds 5 --csv results``.

"""


def build_experiments_md(results_dir: Path) -> str:
    """Assemble the full EXPERIMENTS.md text."""
    return _HEADER + build_comparison_markdown(results_dir)
