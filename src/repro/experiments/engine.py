"""Pure sweep engine: specs and requests in, results out.

This module is the computational core of :mod:`repro.experiments`, split
out so every front-end — the CLI, the benchmark suite, and the
:mod:`repro.service` REST API — is a thin caller over the same functions.
The engine keeps a strict purity contract:

* **importing it performs no filesystem access, prints nothing, and
  never touches ``sys.argv``** (verified by a test);
* **running it writes nothing** unless the caller explicitly passes a
  cache — results come back as values, never as files.

Three layers, lowest first:

``run_sweep``
    Grid executor: a :class:`SweepSpec` (x axis + config closure) is
    expanded into (x, protocol, seed) cells and run serially or through
    the spawn-safe process pool (:mod:`repro.experiments.parallel`),
    optionally memoized through the content-addressed
    :mod:`~repro.experiments.cache`.

``run_plan``
    Figure executor: a :class:`FigurePlan` bundles a sweep with its base
    config, protocol set, seeds, and the aggregation that turns the raw
    grid into a :class:`FigureData`.  The declarative plan factories live
    in :mod:`~repro.experiments.figures` and
    :mod:`~repro.experiments.chaos`; they build plans, the engine runs
    them.

``run_request``
    Job executor: a :class:`SweepRequest` is a *serializable* description
    of a figure run (target id, quick flag, seeds, config overrides) —
    the unit of work the job service queues.  :func:`request_key` derives
    a content-addressed job key from the request's cell digests (reusing
    :func:`~repro.experiments.cache.cell_key`), so identical submissions
    dedupe to one run and any source edit re-keys every job.
    :func:`run_request` returns a :class:`SweepResult` whose
    :meth:`~SweepResult.to_dict` is plain JSON.

Observability is ambient rather than threaded through every signature:
wrap engine calls in :func:`observe_sweeps` to collect permanent cell
failures, requeue counts, and cache hit/miss totals without changing any
runner's interface.
"""

from __future__ import annotations

import dataclasses
import hashlib
from contextlib import contextmanager
from contextvars import ContextVar
from dataclasses import dataclass, field
from typing import (
    Callable,
    Dict,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from .config import ScenarioConfig
from .scenario import Scenario, ScenarioResult

#: The paper's protocol set, in its legend order.
PAPER_PROTOCOLS: Tuple[str, ...] = ("S-FAMA", "ROPA", "CS-MAC", "EW-MAC")

#: A grid cell: results of every seed for one (x, protocol) pair.
GridResults = Dict[Tuple[float, str], List[ScenarioResult]]

Progress = Optional[Callable[[str], None]]


class EngineError(ValueError):
    """A request the engine cannot run (unknown target, bad field, ...)."""


def mean(values: Sequence[float]) -> float:
    """Arithmetic mean (0.0 for an empty sequence)."""
    return sum(values) / len(values) if values else 0.0


@dataclass
class SweepSpec:
    """One sweep axis: x values and how each x customizes the config.

    Attributes:
        x_values: Sweep axis values (offered loads, node counts, ...).
        configure: Maps (base_config, x, protocol, seed) to the scenario
            config for that grid cell.
        batch: If set, maps x to (n_packets, max_time_s) and scenarios run
            in batch-drain mode instead of steady state (Fig. 8).
    """

    x_values: Sequence[float]
    configure: Callable[[ScenarioConfig, float, str, int], ScenarioConfig]
    batch: Optional[Callable[[float, ScenarioConfig], Tuple[int, float]]] = None


@dataclass
class FigureData:
    """One regenerated figure: x axis plus a series per protocol."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    x_values: List[float]
    series: Dict[str, List[float]]
    notes: str = ""

    def value(self, protocol: str, x: float) -> float:
        """Series value for a protocol at an x-axis point."""
        return self.series[protocol][self.x_values.index(x)]

    def to_dict(self) -> Dict[str, object]:
        """Plain-JSON form (the service's wire format)."""
        return dataclasses.asdict(self)


# ----------------------------------------------------------------------
# Observability: ambient collection of failures and cache traffic
# ----------------------------------------------------------------------
@dataclass
class SweepObserver:
    """Totals collected across every :func:`run_sweep` in an observed block."""

    #: Cells that failed even on the serial retry (labels + errors).
    failures: List[object] = field(default_factory=list)
    #: Cells whose pooled attempt timed out/crashed and were re-run.
    requeued: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0
    #: Cells completed from a checkpoint instead of from scratch.
    cells_resumed: int = 0
    #: Checkpoints taken across all finished cells.
    checkpoints_taken: int = 0

    def record_runner(self, runner: object) -> None:
        """Fold one finished ``ParallelSweepRunner`` into the totals."""
        self.failures.extend(runner.failures)
        self.requeued += len(runner.requeued)
        self.cells_resumed += getattr(runner, "cells_resumed", 0)
        self.checkpoints_taken += getattr(runner, "checkpoints_taken", 0)
        cache = runner.cache
        if cache is not None:
            self.cache_hits += cache.stats.hits
            self.cache_misses += cache.stats.misses
            self.cache_stores += cache.stats.stores

    def merge(self, other: "SweepObserver") -> None:
        """Fold another observer's totals into this one (nested blocks)."""
        self.failures.extend(other.failures)
        self.requeued += other.requeued
        self.cache_hits += other.cache_hits
        self.cache_misses += other.cache_misses
        self.cache_stores += other.cache_stores
        self.cells_resumed += other.cells_resumed
        self.checkpoints_taken += other.checkpoints_taken

    def cache_line(self) -> str:
        """One-line cache traffic summary for logs."""
        return (
            f"cache: {self.cache_hits} hit(s), {self.cache_misses} miss(es), "
            f"{self.cache_stores} store(s)"
        )


_OBSERVER: ContextVar[Optional[SweepObserver]] = ContextVar(
    "repro_sweep_observer", default=None
)


@contextmanager
def observe_sweeps() -> Iterator[SweepObserver]:
    """Collect failure/cache totals from every sweep run inside the block.

    Front-ends (CLI exit codes, the service's failed-job detection, CI
    cache accounting) use this instead of threading reporting hooks
    through every figure runner's signature.  Blocks nest: an inner
    block's totals fold into the enclosing observer when it exits, so
    :func:`run_request` (which observes its own sweep) stays visible to
    a caller that is also observing.
    """
    observer = SweepObserver()
    parent = _OBSERVER.get()
    token = _OBSERVER.set(observer)
    try:
        yield observer
    finally:
        _OBSERVER.reset(token)
        if parent is not None:
            parent.merge(observer)


# ----------------------------------------------------------------------
# Layer 1: grid execution
# ----------------------------------------------------------------------
def run_sweep(
    spec: SweepSpec,
    base: ScenarioConfig,
    protocols: Sequence[str] = PAPER_PROTOCOLS,
    seeds: Sequence[int] = (1, 2, 3),
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
    checkpoint_every_s: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
) -> GridResults:
    """Run every (x, protocol, seed) cell of a sweep.

    Args:
        workers: ``1`` (default) runs the classic in-process loop;
            ``N > 1`` (or ``None``/``0`` for the CPU count) fans cells out
            over a spawn-safe process pool via
            :class:`~repro.experiments.parallel.ParallelSweepRunner`.
            Cell order, seed pairing, and results are identical either way.
        cache: ``None`` (off), ``True`` (default on-disk location), a
            directory path, or a
            :class:`~repro.experiments.cache.ResultCache` — previously
            computed cells are reused instead of re-simulated.
        cell_timeout_s: Optional per-cell wall-clock budget (pooled runs
            only); cells that exceed it are re-run serially, resuming from
            their last checkpoint when checkpointing is on.
        checkpoint_every_s: Simulated seconds between per-cell scenario
            checkpoints (off by default; resumed cells are bit-identical,
            see :mod:`~repro.experiments.checkpoint`).
        checkpoint_dir: Directory for checkpoint files; ``None`` uses a
            temporary directory scoped to the sweep.
    """
    from .cache import resolve_cache

    resolved = resolve_cache(cache)  # type: ignore[arg-type]
    if (
        (workers is None or workers != 1)
        or resolved is not None
        or checkpoint_every_s is not None
    ):
        from .parallel import ParallelSweepRunner

        runner = ParallelSweepRunner(
            workers=workers,
            cache=resolved,
            cell_timeout_s=cell_timeout_s,
            progress=progress,
            checkpoint_every_s=checkpoint_every_s,
            checkpoint_dir=checkpoint_dir,
        )
        grid = runner.run(spec, base, protocols=protocols, seeds=seeds)
        observer = _OBSERVER.get()
        if observer is not None:
            observer.record_runner(runner)
        return grid
    results: GridResults = {}
    for x in spec.x_values:
        for protocol in protocols:
            cell: List[ScenarioResult] = []
            for seed in seeds:
                config = spec.configure(base, x, protocol, seed)
                scenario = Scenario(config)
                if spec.batch is not None:
                    n_packets, max_time = spec.batch(x, config)
                    result = scenario.run_batch(n_packets, max_time)
                else:
                    result = scenario.run_steady_state()
                cell.append(result)
                if progress is not None:
                    progress(f"{protocol} x={x} seed={seed} done")
            results[(x, protocol)] = cell
    return results


def aggregate(
    results: GridResults,
    x_values: Sequence[float],
    protocols: Sequence[str],
    metric: Callable[[ScenarioResult], float],
) -> Dict[str, List[float]]:
    """Seed-average a metric into per-protocol series over the x axis."""
    series: Dict[str, List[float]] = {}
    for protocol in protocols:
        series[protocol] = [
            mean([metric(r) for r in results[(x, protocol)]]) for x in x_values
        ]
    return series


def aggregate_relative(
    results: GridResults,
    x_values: Sequence[float],
    protocols: Sequence[str],
    metric: Callable[[ScenarioResult], float],
    baseline_protocol: str = "S-FAMA",
) -> Dict[str, List[float]]:
    """Like :func:`aggregate` but normalized per-x to a baseline protocol.

    Raises:
        ValueError: If ``baseline_protocol`` is not among ``protocols``
            (the baseline must itself have been swept to normalize to it).
    """
    if baseline_protocol not in protocols:
        raise ValueError(
            f"baseline protocol {baseline_protocol!r} is not among the swept "
            f"protocols {list(protocols)!r}; pass baseline_protocol= one of "
            "those, or add it to the sweep"
        )
    absolute = aggregate(results, x_values, protocols, metric)
    baseline = absolute[baseline_protocol]
    series: Dict[str, List[float]] = {}
    for protocol in protocols:
        series[protocol] = [
            value / base if base > 0 else 0.0
            for value, base in zip(absolute[protocol], baseline)
        ]
    return series


# ----------------------------------------------------------------------
# Layer 2: figure plans
# ----------------------------------------------------------------------
@dataclass
class FigurePlan:
    """A fully-resolved figure run: sweep, inputs, and aggregation.

    Plan factories (``fig6_plan`` ... in
    :mod:`~repro.experiments.figures`, ``chaos_figure_plan`` in
    :mod:`~repro.experiments.chaos`) are declarative — they decide axes,
    base configs, and metrics but never execute anything, so the same
    plan can be keyed (:func:`request_key`), run locally
    (:func:`run_plan`), or queued by the job service.
    """

    figure_id: str
    spec: SweepSpec
    base: ScenarioConfig
    protocols: Tuple[str, ...]
    seeds: Tuple[int, ...]
    #: Turns the raw grid into the figure (aggregation + labels).
    build: Callable[[GridResults], FigureData]
    #: Optional post-run summary lines (the chaos audit counters).
    summarize: Optional[Callable[[GridResults], List[str]]] = None

    @property
    def n_cells(self) -> int:
        return len(list(self.spec.x_values)) * len(self.protocols) * len(self.seeds)


def run_plan(
    plan: FigurePlan,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
    checkpoint_every_s: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
) -> FigureData:
    """Execute a plan's sweep and build its figure."""
    grid = run_sweep(
        plan.spec,
        plan.base,
        protocols=plan.protocols,
        seeds=plan.seeds,
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
        checkpoint_every_s=checkpoint_every_s,
        checkpoint_dir=checkpoint_dir,
    )
    return plan.build(grid)


def apply_overrides(
    base: ScenarioConfig, overrides: Optional[Mapping[str, object]]
) -> ScenarioConfig:
    """Apply request/CLI config overrides on top of a plan's base config.

    Raises:
        EngineError: On an unknown field or a value the config rejects —
            a clean, named failure instead of a traceback, so front-ends
            can map it to exit code 2 / HTTP 400.
    """
    if not overrides:
        return base
    valid = {f.name for f in dataclasses.fields(ScenarioConfig)}
    unknown = sorted(set(overrides) - valid)
    if unknown:
        raise EngineError(
            f"unknown config override field(s) {unknown}; valid fields: "
            f"{sorted(valid)}"
        )
    try:
        return base.with_(**dict(overrides))
    except (TypeError, ValueError) as exc:
        raise EngineError(f"bad config override: {exc}") from exc


# ----------------------------------------------------------------------
# Layer 3: serializable requests (the job service's unit of work)
# ----------------------------------------------------------------------
#: Scalar types a request override may carry (JSON scalars).
_SCALARS = (bool, int, float, str)


@dataclass(frozen=True)
class SweepRequest:
    """A serializable description of one figure/chaos run.

    Hashable and JSON-round-trippable: the REST API accepts exactly this
    shape, and :func:`request_key` derives the job-store key from it.
    ``overrides`` are ScenarioConfig field overrides applied on top of
    the target's base config (sorted name/value pairs, so two requests
    that differ only in override order are the same request).
    """

    target: str
    quick: bool = False
    seeds: Tuple[int, ...] = (1, 2, 3)
    overrides: Tuple[Tuple[str, object], ...] = ()

    def __post_init__(self) -> None:
        object.__setattr__(self, "seeds", tuple(int(s) for s in self.seeds))
        object.__setattr__(
            self, "overrides", tuple(sorted((str(k), v) for k, v in self.overrides))
        )

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "SweepRequest":
        """Validate and build a request from parsed JSON.

        Raises:
            EngineError: On any malformed field, with a message suitable
                for an HTTP 400 body.
        """
        if not isinstance(payload, Mapping):
            raise EngineError("request body must be a JSON object")
        unknown = sorted(set(payload) - {"target", "quick", "seeds", "overrides"})
        if unknown:
            raise EngineError(f"unknown request field(s): {unknown}")
        target = payload.get("target")
        if not isinstance(target, str) or not target:
            raise EngineError("request needs a string 'target' (e.g. \"fig6\")")
        quick = payload.get("quick", False)
        if not isinstance(quick, bool):
            raise EngineError("'quick' must be a boolean")
        seeds = payload.get("seeds", [1, 2, 3])
        if (
            not isinstance(seeds, (list, tuple))
            or not seeds
            or not all(isinstance(s, int) and not isinstance(s, bool) for s in seeds)
        ):
            raise EngineError("'seeds' must be a non-empty list of integers")
        overrides = payload.get("overrides", {})
        if not isinstance(overrides, Mapping):
            raise EngineError("'overrides' must be an object of config fields")
        for name, value in overrides.items():
            if not isinstance(value, _SCALARS) or value is None:
                raise EngineError(
                    f"override {name!r} must be a JSON scalar, got "
                    f"{type(value).__name__}"
                )
        return cls(
            target=target,
            quick=quick,
            seeds=tuple(seeds),
            overrides=tuple(overrides.items()),
        )

    def to_dict(self) -> Dict[str, object]:
        return {
            "target": self.target,
            "quick": self.quick,
            "seeds": list(self.seeds),
            "overrides": dict(self.overrides),
        }


def _plan_factories() -> Dict[str, Callable[..., FigurePlan]]:
    """Every servable target, by id (lazy: plans live in the front ends)."""
    from .chaos import chaos_figure_plan
    from .figures import ALL_PLANS

    return {**ALL_PLANS, "chaos": chaos_figure_plan}


def service_targets() -> Tuple[str, ...]:
    """Target ids :func:`run_request` accepts, sorted."""
    return tuple(sorted(_plan_factories()))


def request_plan(request: SweepRequest) -> FigurePlan:
    """Resolve a request into its executable plan.

    Raises:
        EngineError: Unknown target or invalid config overrides.
    """
    factories = _plan_factories()
    factory = factories.get(request.target)
    if factory is None:
        raise EngineError(
            f"unknown target {request.target!r}; known targets: "
            f"{sorted(factories)}"
        )
    return factory(
        seeds=request.seeds,
        quick=request.quick,
        overrides=dict(request.overrides) or None,
    )


def request_key(request: SweepRequest) -> str:
    """Content-addressed job key for a request.

    Reuses the result cache's per-cell digests
    (:func:`~repro.experiments.cache.cell_key`, which cover every config
    field, the batch parameters, and the source-tree digest), plus the
    target id — fig6 and fig11 sweep identical cells but aggregate them
    differently, so the target must participate.  Two identical
    submissions always map to the same key; any source edit re-keys
    every job.
    """
    from .cache import cell_key, code_version
    from .parallel import expand_cells

    plan = request_plan(request)
    cells = expand_cells(plan.spec, plan.base, plan.protocols, plan.seeds)
    version = code_version()
    digest = hashlib.sha256()
    digest.update(b"sweep-request\0")
    digest.update(request.target.encode("utf-8") + b"\0")
    digest.update(version.encode("utf-8") + b"\0")
    for cell in cells:
        digest.update(cell_key(cell.config, cell.batch, version).encode("ascii"))
        digest.update(b"\0")
    return digest.hexdigest()


@dataclass
class SweepResult:
    """Everything one request run produced, in a JSON-friendly shape."""

    request: SweepRequest
    figure: FigureData
    summary_lines: List[str] = field(default_factory=list)
    #: Per-cell permanent failures: ``{"cell": label, "error": message}``.
    failures: List[Dict[str, str]] = field(default_factory=list)
    cells_total: int = 0
    cache_hits: int = 0
    cache_misses: int = 0
    cache_stores: int = 0

    def to_dict(self) -> Dict[str, object]:
        return {
            "request": self.request.to_dict(),
            "figure": self.figure.to_dict(),
            "summary_lines": list(self.summary_lines),
            "failures": list(self.failures),
            "cells_total": self.cells_total,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_stores": self.cache_stores,
        }


def run_request(
    request: SweepRequest,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
    checkpoint_every_s: Optional[float] = None,
    checkpoint_dir: Optional[str] = None,
) -> SweepResult:
    """Execute a request end to end and return its :class:`SweepResult`.

    Deterministic for a given request and source tree: the figure dict is
    bit-identical to the corresponding direct figure-runner call (the CI
    service smoke asserts this over HTTP).
    """
    plan = request_plan(request)
    with observe_sweeps() as observer:
        grid = run_sweep(
            plan.spec,
            plan.base,
            protocols=plan.protocols,
            seeds=plan.seeds,
            progress=progress,
            workers=workers,
            cache=cache,
            cell_timeout_s=cell_timeout_s,
            checkpoint_every_s=checkpoint_every_s,
            checkpoint_dir=checkpoint_dir,
        )
    figure = plan.build(grid)
    summary = plan.summarize(grid) if plan.summarize is not None else []
    return SweepResult(
        request=request,
        figure=figure,
        summary_lines=summary,
        failures=[
            {"cell": failure.cell.label, "error": failure.error}
            for failure in observer.failures
        ],
        cells_total=plan.n_cells,
        cache_hits=observer.cache_hits,
        cache_misses=observer.cache_misses,
        cache_stores=observer.cache_stores,
    )
