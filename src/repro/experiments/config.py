"""Experiment configuration (paper Table 2).

:data:`TABLE2` holds the paper's published simulation parameters; a
:class:`ScenarioConfig` starts from those defaults and lets each figure
sweep override its own axis (offered load, node count, packet size, ...).
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Optional

from ..faults.plan import FaultPlan

#: Paper Table 2, verbatim.
TABLE2: Dict[str, object] = {
    "number_of_sensors": 60,
    "deployment_area_km3": 1000.0,
    "bandwidth_kbps": 12.0,
    "communication_range_km": 1.5,
    "acoustic_speed_km_s": 1.5,
    "simulation_time_s": 300.0,
    "control_packet_bits": 64,
    "data_packet_bits_range": (1024, 4096),
    "data_packet_bits_default": 2048,
}


@dataclass(frozen=True)
class ScenarioConfig:
    """Everything needed to build and run one simulation.

    Defaults reproduce Table 2.  ``warmup_s`` precedes the measurement
    window: hellos go out and slot schedules settle; traffic starts at the
    end of warmup and metrics cover exactly ``sim_time_s`` after it.
    """

    protocol: str = "EW-MAC"
    n_sensors: int = 60
    n_sinks: int = 1
    offered_load_kbps: float = 0.5
    data_packet_bits: int = 2048
    sim_time_s: float = 300.0
    warmup_s: float = 10.0
    seed: int = 1
    bitrate_bps: float = 12_000.0
    comm_range_m: float = 1500.0
    sound_speed_mps: float = 1500.0
    control_bits: int = 64
    side_m: float = 10_000.0
    #: Deployment generator: ``"column"`` (paper Fig. 1 — one connected
    #: water column, densifying as n grows) or ``"tiled"`` (one column per
    #: sink tiled over the horizontal plane — constant density as n and
    #: the region grow together; the scale sweep's shape).
    deployment: str = "column"
    mobility: bool = True
    #: Route channel geometry through the epoch-invalidated link-state
    #: cache.  Results are bit-identical either way (enforced by the
    #: equivalence tests); disable only for A/B profiling.
    link_cache: bool = True
    #: Cull broadcast rows to the transmitter's 3x3x3 spatial-hash cell
    #: neighborhood (cell side = reach), so per-broadcast cost tracks
    #: plausible receivers instead of n.  Bit-identical either way
    #: (enforced by the grid equivalence matrix); disable only for A/B
    #: profiling.  No effect when ``link_cache`` is off.
    spatial_grid: bool = True
    #: Movement-bounded delta-epochs: skip recomputing a stale cached pair
    #: when the endpoints' accumulated displacement provably cannot have
    #: brought it back inside delivery reach.  Bit-identical either way;
    #: disable only for A/B profiling.  No effect when ``link_cache`` is off.
    delta_epochs: bool = True
    #: The symmetric in-reach delta bound: a stale pair cached farther
    #: *inside* a mask boundary than its accumulated displacement keeps its
    #: masks without recompute, and its delay/level recompute is deferred
    #: to the next broadcast fan-out build.  Bit-identical either way;
    #: disable only for A/B profiling.  No effect when ``link_cache`` is off.
    inreach_delta: bool = True
    #: Schedule each broadcast's arrivals as one pre-sorted batch through
    #: the DES core's ``push_bulk`` instead of one heap push per receiver.
    #: Bit-identical either way (sequence numbers are assigned in the same
    #: order); disable only for A/B profiling.
    bulk_schedule: bool = True
    #: Recycle Arrival objects through a channel-owned free-list instead of
    #: allocating one per delivery (the top allocation site after events).
    #: Safe here because the MAC layer never retains arrivals past the
    #: receive callback; raw-channel users who do retain them get fresh
    #: allocations by default (the channel-level default is off).
    arrival_pool: bool = True
    #: Upper bound on free-listed Arrival objects (memory guard for
    #: pathological delivery bursts; irrelevant when ``arrival_pool`` is off).
    arrival_pool_cap: int = 4096
    forwarding: bool = True
    queue_limit: int = 1000
    interference_range_factor: float = 2.0
    max_retries: Optional[int] = None  # None = protocol default
    clock_offset_std_s: float = 0.0  # paper assumes perfect sync (= 0)
    #: Std-dev of the per-node clock drift rate (ppm).  0 keeps every
    #: clock drift-free; nonzero draws one rate per node from the same
    #: seeded "clocks" stream the offsets use, so runs stay reproducible.
    clock_drift_ppm_std: float = 0.0
    #: Declarative fault-injection plan.  The default (empty) plan arms
    #: nothing at all: no events, no RNG streams, bit-identical results.
    faults: FaultPlan = field(default_factory=FaultPlan)
    trace: bool = False

    def __post_init__(self) -> None:
        if self.n_sensors <= 0:
            raise ValueError("need at least one sensor")
        if self.deployment not in ("column", "tiled"):
            raise ValueError(f"unknown deployment {self.deployment!r}")
        if self.data_packet_bits <= 0:
            raise ValueError("data packet size must be positive")
        if self.sim_time_s <= 0:
            raise ValueError("simulation time must be positive")
        if self.arrival_pool_cap < 0:
            raise ValueError("arrival_pool_cap must be >= 0")

    def with_(self, **overrides: object) -> "ScenarioConfig":
        """Copy with field overrides (sweep helper)."""
        return replace(self, **overrides)

    @property
    def tau_max_s(self) -> float:
        return self.comm_range_m / self.sound_speed_mps

    @property
    def omega_s(self) -> float:
        return self.control_bits / self.bitrate_bps

    @property
    def slot_s(self) -> float:
        return self.tau_max_s + self.omega_s


def table2_config(**overrides: object) -> ScenarioConfig:
    """A :class:`ScenarioConfig` at exactly the Table 2 defaults."""
    return ScenarioConfig().with_(**overrides) if overrides else ScenarioConfig()
