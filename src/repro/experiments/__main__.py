"""``python -m repro.experiments <figure>`` — see :mod:`repro.experiments.cli`."""

from .cli import main

if __name__ == "__main__":
    raise SystemExit(main())
