"""Rendering figure data as ASCII tables and CSV files."""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Union

from .figures import FigureData


def format_figure(data: FigureData, precision: int = 4) -> str:
    """Render a :class:`FigureData` as a readable ASCII table."""
    protocols = list(data.series.keys())
    header = [data.x_label] + protocols
    rows = []
    for index, x in enumerate(data.x_values):
        row = [_fmt(x, precision)] + [
            _fmt(data.series[p][index], precision) for p in protocols
        ]
        rows.append(row)
    widths = [
        max(len(header[col]), *(len(r[col]) for r in rows)) for col in range(len(header))
    ]
    out = io.StringIO()
    out.write(f"{data.figure_id}: {data.title}\n")
    out.write(f"  y: {data.y_label}\n")
    divider = "-+-".join("-" * w for w in widths)
    out.write("  " + " | ".join(h.ljust(w) for h, w in zip(header, widths)) + "\n")
    out.write("  " + divider + "\n")
    for row in rows:
        out.write("  " + " | ".join(c.rjust(w) for c, w in zip(row, widths)) + "\n")
    if data.notes:
        out.write(f"  paper: {data.notes}\n")
    return out.getvalue()


def _fmt(value: float, precision: int) -> str:
    if value == int(value) and abs(value) >= 1:
        return str(int(value))
    return f"{value:.{precision}g}"


def write_csv(data: FigureData, path: Union[str, Path]) -> Path:
    """Write the figure's series as a CSV file; returns the path written."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    protocols = list(data.series.keys())
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow([data.x_label] + protocols)
        for index, x in enumerate(data.x_values):
            writer.writerow([x] + [data.series[p][index] for p in protocols])
    return path
