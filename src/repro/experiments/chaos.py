"""Chaos sweep: protocol robustness under seeded fault injection.

The ``repro-uasn chaos`` target sweeps the crash fraction over all five
protocols (the paper's four plus the ALOHA floor) and reports the
delivery ratio under faults — the headline degradation curve — plus the
aggregate fault/recovery counters.  Every fault is deterministic: the
crash-wave victims come from the scenario seed's ``"faults"`` stream, so
the same command line always kills the same nodes at the same instants.

The x = 0 column runs an **empty** fault plan and therefore doubles as a
live equivalence check: its cells are the untouched baseline scenarios.

The post-run audit runs inside every faulted cell
(:mod:`repro.faults.audit`); its wedged-handshake count is aggregated
into the :class:`ChaosSummary`, and the CLI exits nonzero if any MAC was
left wedged by a dead peer — the smoke job's assertion.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Optional, Sequence, Tuple

from typing import Mapping

from ..faults.plan import ClockFault, CrashWave, FaultPlan, ModemOutage, NoiseBurst
from .config import ScenarioConfig, table2_config
from .engine import (
    PAPER_PROTOCOLS,
    FigureData,
    FigurePlan,
    GridResults,
    SweepSpec,
    aggregate,
    apply_overrides,
    run_sweep,
)
from .scenario import ScenarioResult

#: The chaos sweep adds the ALOHA floor to the paper's protocol set.
CHAOS_PROTOCOLS: Tuple[str, ...] = PAPER_PROTOCOLS + ("ALOHA",)


def chaos_plan(
    fraction: float,
    warmup_s: float,
    sim_time_s: float,
    n_sensors: int,
) -> FaultPlan:
    """The standard chaos fault mix for one crash fraction.

    ``fraction <= 0`` returns the empty plan (the baseline column).  A
    positive fraction schedules, inside the measurement window:

    * a crash wave killing ``fraction`` of the sensors a quarter of the
      way in, each victim recovering after 30% of the window;
    * a TX outage on node 1 and an RX outage on node 2 (earlier, disjoint
      from the crash window) to exercise the half-duplex chains;
    * a clock fault on node 3 (offset jump + 5 ppm drift) at mid-window;
    * a +6 dB noise burst at 65% of the window.
    """
    if fraction <= 0:
        return FaultPlan()
    crashes = (
        CrashWave(
            at_s=warmup_s + 0.25 * sim_time_s,
            fraction=fraction,
            recover_after_s=0.3 * sim_time_s,
        ),
    )
    outages: Tuple[ModemOutage, ...] = ()
    if n_sensors > 2:
        outages = (
            ModemOutage(
                node_id=1,
                at_s=warmup_s + 0.1 * sim_time_s,
                duration_s=0.1 * sim_time_s,
                direction="tx",
            ),
            ModemOutage(
                node_id=2,
                at_s=warmup_s + 0.1 * sim_time_s,
                duration_s=0.1 * sim_time_s,
                direction="rx",
            ),
        )
    clock_faults: Tuple[ClockFault, ...] = ()
    if n_sensors > 3:
        clock_faults = (
            ClockFault(
                node_id=3,
                at_s=warmup_s + 0.5 * sim_time_s,
                offset_jump_s=0.002,
                drift_ppm=5.0,
            ),
        )
    noise_bursts = (
        NoiseBurst(
            at_s=warmup_s + 0.65 * sim_time_s,
            duration_s=0.1 * sim_time_s,
            extra_noise_db=6.0,
        ),
    )
    # strict_audit=False: the sweep *counts* wedged handshakes instead of
    # raising mid-cell, so the chaos CLI can finish the grid, print the
    # degradation curve, and fail with a named reason (exit 1) if any MAC
    # ended wedged.  The unit tests exercise the strict (raising) mode.
    return FaultPlan(
        waves=crashes,
        outages=outages,
        clock_faults=clock_faults,
        noise_bursts=noise_bursts,
        strict_audit=False,
    )


@dataclass
class ChaosSummary:
    """Aggregate fault/recovery counters over the whole chaos grid."""

    cells: int = 0
    faulted_cells: int = 0
    crashes: int = 0
    recoveries: int = 0
    wedged_handshakes: int = 0
    recovery_times_s: List[float] = field(default_factory=list)

    @property
    def mean_recovery_time_s(self) -> float:
        if not self.recovery_times_s:
            return 0.0
        return sum(self.recovery_times_s) / len(self.recovery_times_s)

    def add(self, result: ScenarioResult) -> None:
        self.cells += 1
        report = result.faults
        if report is None:
            return
        self.faulted_cells += 1
        self.crashes += report.crashes
        self.recoveries += report.recoveries
        self.wedged_handshakes += report.wedged_handshakes
        self.recovery_times_s.extend(report.recovery_times_s)

    def lines(self) -> List[str]:
        return [
            f"cells run:          {self.cells} ({self.faulted_cells} faulted)",
            f"crashes injected:   {self.crashes}",
            f"recoveries:         {self.recoveries}",
            f"wedged handshakes:  {self.wedged_handshakes}",
            f"mean time-to-recover: {self.mean_recovery_time_s:.1f} s",
        ]


def chaos_figure_plan(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    overrides: Optional[Mapping[str, object]] = None,
) -> FigurePlan:
    """Declarative plan for the chaos sweep (the engine's ``chaos`` target).

    ``summarize`` carries the audit counters, so the job service and the
    CLI report the same wedge/recovery lines from the same grid.
    """
    if quick:
        fractions: Tuple[float, ...] = (0.0, 0.2)
        base = table2_config(n_sensors=20, sim_time_s=60.0)
        seeds = tuple(seeds)[:1]
    else:
        fractions = (0.0, 0.1, 0.2, 0.3)
        base = table2_config()
    base = apply_overrides(base, overrides)

    def configure(
        cfg: ScenarioConfig, x: float, protocol: str, seed: int
    ) -> ScenarioConfig:
        return cfg.with_(
            protocol=protocol,
            seed=seed,
            faults=chaos_plan(x, cfg.warmup_s, cfg.sim_time_s, cfg.n_sensors),
        )

    def build(results: GridResults) -> FigureData:
        series = aggregate(
            results, fractions, CHAOS_PROTOCOLS, lambda r: r.delivery_ratio
        )
        return FigureData(
            figure_id="chaos",
            title="Delivery ratio under seeded fault injection",
            x_label="Crashed fraction of sensors",
            y_label="Delivery ratio (delivered bits / offered bits)",
            x_values=list(fractions),
            series=series,
            notes=(
                "Chaos sweep (not a paper figure): each faulted cell injects a "
                "seeded crash wave with recovery, TX/RX modem outages, a clock "
                "fault, and a +6 dB noise burst; x = 0 is the fault-free "
                "baseline.  Post-run audits count wedged MACs; any makes the "
                "chaos CLI exit nonzero."
            ),
        )

    def summarize(results: GridResults) -> List[str]:
        return summarize_grid(results).lines()

    return FigurePlan(
        figure_id="chaos",
        spec=SweepSpec(x_values=fractions, configure=configure),
        base=base,
        protocols=CHAOS_PROTOCOLS,
        seeds=tuple(int(s) for s in seeds),
        build=build,
        summarize=summarize,
    )


def summarize_grid(results: GridResults) -> ChaosSummary:
    """Aggregate every cell's fault report into one :class:`ChaosSummary`."""
    summary = ChaosSummary()
    for cell_results in results.values():
        for result in cell_results:
            summary.add(result)
    return summary


def chaos(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    progress: Optional[Callable[[str], None]] = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
    overrides: Optional[Mapping[str, object]] = None,
) -> Tuple[FigureData, ChaosSummary]:
    """Delivery ratio vs crash fraction for all five protocols."""
    plan = chaos_figure_plan(seeds, quick, overrides)
    results = run_sweep(
        plan.spec,
        plan.base,
        protocols=plan.protocols,
        seeds=plan.seeds,
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
    )
    return plan.build(results), summarize_grid(results)
