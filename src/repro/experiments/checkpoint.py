"""Versioned checkpoint/resume for in-flight scenarios.

A checkpoint is a pickle of the *entire* :class:`~repro.experiments.scenario.Scenario`
object graph mid-run: the event heap (including its sequence counter), the
simulation clock, every named RNG stream, and all MAC/modem/channel/node
state.  NumPy ``Generator`` objects pickle bit-exactly and the DES heap is
plain tuples, so a run resumed from a checkpoint is bit-identical to the
uninterrupted run — that equivalence is enforced by the checkpoint test
matrix (``tests/experiments/test_checkpoint.py`` and the integration
matrix).

Two details make cross-process resume safe:

* **Versioning.** The blob starts with a magic prefix and carries both a
  snapshot format version and the :func:`~repro.experiments.cache.code_version`
  source digest.  Restoring under different simulation code would silently
  produce non-reproducible results, so a digest mismatch is an error (the
  sweep layer treats it as "no checkpoint" and reruns from zero).

* **Uid floors.** Request and frame uids come from module-global
  ``itertools.count`` counters that restart at 1 in a fresh process.  Only
  *uniqueness within a run* matters (they feed dedup/tracing keys, never
  arithmetic), so the snapshot records a floor from each counter and
  restore advances the counters past it — a resumed run can never re-issue
  a uid the snapshot already used.
"""

from __future__ import annotations

import os
import pickle
import tempfile
from pathlib import Path
from typing import TYPE_CHECKING, Union

from ..net.node import advance_request_uids, sample_request_uid_floor
from ..phy.frame import advance_frame_uids, sample_frame_uid_floor

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (scenario -> here)
    from .scenario import Scenario

#: File/blob prefix; reject anything else before unpickling.
MAGIC = b"REPRO-CKPT\x00"

#: Bump when the payload layout changes (old checkpoints become invalid).
SNAPSHOT_VERSION = 1


class CheckpointError(RuntimeError):
    """A checkpoint could not be taken, parsed, or safely restored."""


def _code_version() -> str:
    # Local import: cache imports scenario, scenario lazily imports this
    # module — importing cache at module top would close the cycle.
    from .cache import code_version

    return code_version()


def snapshot_scenario(scenario: "Scenario") -> bytes:
    """Serialize a mid-run scenario to a restorable blob."""
    payload = {
        "version": SNAPSHOT_VERSION,
        "code": _code_version(),
        "request_uid_floor": sample_request_uid_floor(),
        "frame_uid_floor": sample_frame_uid_floor(),
        "scenario": scenario,
    }
    try:
        blob = pickle.dumps(payload, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise CheckpointError(f"scenario is not picklable: {exc!r}") from exc
    return MAGIC + blob


def restore_scenario(data: bytes, check_code: bool = True) -> "Scenario":
    """Rebuild a scenario from :func:`snapshot_scenario` output.

    Args:
        data: The checkpoint blob.
        check_code: When True (the default), refuse to restore a snapshot
            taken under a different source digest — resumed results would
            not be reproducible against the current code.

    Raises:
        CheckpointError: bad magic, wrong version, code drift, or an
            unpicklable/corrupt payload.
    """
    if not isinstance(data, (bytes, bytearray)) or not bytes(data).startswith(MAGIC):
        raise CheckpointError("not a repro checkpoint (bad magic prefix)")
    try:
        payload = pickle.loads(bytes(data)[len(MAGIC):])
    except Exception as exc:
        raise CheckpointError(f"corrupt checkpoint payload: {exc!r}") from exc
    if not isinstance(payload, dict) or payload.get("version") != SNAPSHOT_VERSION:
        raise CheckpointError(
            f"unsupported snapshot version {payload.get('version')!r} "
            f"(expected {SNAPSHOT_VERSION})"
        )
    if check_code and payload.get("code") != _code_version():
        raise CheckpointError(
            "checkpoint was taken under different simulation code "
            f"({payload.get('code')!r} != {_code_version()!r})"
        )
    advance_request_uids(int(payload["request_uid_floor"]))
    advance_frame_uids(int(payload["frame_uid_floor"]))
    scenario = payload["scenario"]
    scenario.resumes += 1
    return scenario


def write_checkpoint(path: Union[str, Path], scenario: "Scenario") -> None:
    """Atomically write a checkpoint file (tempfile + rename).

    A crash mid-write can never leave a half-written file that a later
    restore trusts: the magic/pickle checks reject partial tempfiles, and
    the rename is atomic on POSIX.
    """
    path = Path(path)
    blob = snapshot_scenario(scenario)
    path.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(dir=str(path.parent), suffix=".ckpt.tmp")
    try:
        with os.fdopen(fd, "wb") as handle:
            handle.write(blob)
        os.replace(tmp_name, path)
    except BaseException:
        try:
            os.unlink(tmp_name)
        except OSError:
            pass
        raise


def read_checkpoint(path: Union[str, Path], check_code: bool = True) -> "Scenario":
    """Restore a scenario from a checkpoint file.

    Raises:
        CheckpointError: the file is missing, unreadable, or invalid.
    """
    try:
        data = Path(path).read_bytes()
    except OSError as exc:
        raise CheckpointError(f"cannot read checkpoint {path}: {exc}") from exc
    return restore_scenario(data, check_code=check_code)
