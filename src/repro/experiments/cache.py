"""Content-addressed on-disk cache for sweep cell results.

A sweep cell is fully determined by its :class:`ScenarioConfig` (which
carries the seed), its optional batch parameters, and the simulation code
itself — the substrate is deterministic by construction (see
:mod:`repro.des.rng`).  Caching therefore keys each cell on a SHA-256
digest of (config fields, batch params, code version): re-running a figure
after editing only its axis recomputes just the new cells, and re-running
an unchanged figure recomputes nothing.

The code version is a digest over every ``repro`` source file, so any
edit to the simulator, protocols, or metrics invalidates the whole cache
— stale results can never leak into a regenerated figure.  Entries are
pickles, written atomically; a corrupt or unreadable entry is treated as
a miss and discarded.
"""

from __future__ import annotations

import dataclasses
import hashlib
import os
import pickle
import tempfile
from dataclasses import dataclass
from pathlib import Path
from typing import Optional, Tuple, Union

from .config import ScenarioConfig
from .scenario import ScenarioResult

#: Bump to invalidate every existing cache entry (entry format changes).
#: 2: ScenarioConfig grew clock_drift_ppm_std + faults (FaultPlan), and
#: ScenarioResult grew the faults report.
CACHE_FORMAT = 2

#: Environment variable overriding the default cache location.
CACHE_DIR_ENV = "REPRO_CACHE_DIR"

#: Default cache directory (relative to the working directory).
DEFAULT_CACHE_DIR = ".repro-cache"

_code_version_memo: Optional[str] = None


def code_version() -> str:
    """Digest of every ``repro`` source file (memoized per process).

    Any change to the package — kernel, channel, MAC, metrics — yields a
    new version string and therefore a cold cache.
    """
    global _code_version_memo
    if _code_version_memo is None:
        package_root = Path(__file__).resolve().parent.parent
        digest = hashlib.sha256()
        for path in sorted(package_root.rglob("*.py")):
            digest.update(str(path.relative_to(package_root)).encode("utf-8"))
            digest.update(b"\0")
            digest.update(path.read_bytes())
            digest.update(b"\0")
        _code_version_memo = digest.hexdigest()[:16]
    return _code_version_memo


def cell_key(
    config: ScenarioConfig,
    batch: Optional[Tuple[int, float]] = None,
    version: Optional[str] = None,
) -> str:
    """Stable content hash for one sweep cell.

    The key covers every config field (sorted by name, so field order is
    irrelevant), the batch parameters, the cache format, and the code
    version.  Two processes on the same checkout always derive the same
    key for the same cell.
    """
    parts = [f"format={CACHE_FORMAT}", f"code={version or code_version()}"]
    for field in sorted(dataclasses.fields(config), key=lambda f: f.name):
        parts.append(f"{field.name}={getattr(config, field.name)!r}")
    if batch is not None:
        n_packets, max_time_s = batch
        parts.append(f"batch=({int(n_packets)},{float(max_time_s)!r})")
    blob = "\n".join(parts).encode("utf-8")
    return hashlib.sha256(blob).hexdigest()


@dataclass
class CacheStats:
    """Hit/miss/store counters for one :class:`ResultCache` instance."""

    hits: int = 0
    misses: int = 0
    stores: int = 0


class ResultCache:
    """Filesystem-backed pickle store addressed by :func:`cell_key`.

    Entries live two levels deep (``root/ab/<key>.pkl``) to keep
    directories small for large sweeps.  Writes are atomic
    (tempfile + rename) so a crashed or parallel writer can never leave a
    half-written entry that a later reader trusts.
    """

    def __init__(self, root: Union[str, Path, None] = None) -> None:
        if root is None:
            root = os.environ.get(CACHE_DIR_ENV) or DEFAULT_CACHE_DIR
        self.root = Path(root)
        self.stats = CacheStats()

    def _path(self, key: str) -> Path:
        return self.root / key[:2] / f"{key}.pkl"

    def get(self, key: str) -> Optional[ScenarioResult]:
        """Return the cached result for ``key``, or None on a miss."""
        path = self._path(key)
        try:
            with open(path, "rb") as handle:
                result = pickle.load(handle)
        except FileNotFoundError:
            self.stats.misses += 1
            return None
        except (OSError, pickle.UnpicklingError, EOFError, AttributeError,
                ImportError, IndexError):
            # Corrupt / stale entry: drop it and treat as a miss.
            try:
                path.unlink()
            except OSError:
                pass
            self.stats.misses += 1
            return None
        if not isinstance(result, ScenarioResult):
            self.stats.misses += 1
            return None
        self.stats.hits += 1
        return result

    def put(self, key: str, result: ScenarioResult) -> None:
        """Store ``result`` under ``key`` (atomic, last writer wins)."""
        path = self._path(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "wb") as handle:
                pickle.dump(result, handle, protocol=pickle.HIGHEST_PROTOCOL)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise
        self.stats.stores += 1

    def clear(self) -> int:
        """Delete every entry; return how many were removed."""
        removed = 0
        if self.root.exists():
            for path in self.root.rglob("*.pkl"):
                try:
                    path.unlink()
                    removed += 1
                except OSError:
                    pass
        return removed

    def __len__(self) -> int:
        if not self.root.exists():
            return 0
        return sum(1 for _ in self.root.rglob("*.pkl"))


def resolve_cache(
    cache: Union[None, bool, str, Path, ResultCache]
) -> Optional[ResultCache]:
    """Normalize a user-facing ``cache=`` argument.

    ``None``/``False`` disable caching, ``True`` uses the default
    location (honouring ``$REPRO_CACHE_DIR``), a path opens a cache
    there, and a :class:`ResultCache` passes through.
    """
    if cache is None or cache is False:
        return None
    if cache is True:
        return ResultCache()
    if isinstance(cache, (str, Path)):
        return ResultCache(cache)
    return cache
