"""Per-figure experiment runners (paper Sec. 5, Figs. 6-11).

Each ``figN`` function regenerates the corresponding paper figure's data:
the same x axis, the same four protocol series, the same metric.  Every
function accepts ``quick=True`` for a scaled-down run (shorter window,
single seed, coarser axis) used by the benchmark suite, and ``seeds`` for
replication control.

:data:`PAPER_EXPECTATIONS` records what the original figure shows, so the
reports (and EXPERIMENTS.md) can place measured series next to the paper's
claims.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence

from .config import ScenarioConfig, table2_config
from .sweeps import (
    PAPER_PROTOCOLS,
    SweepSpec,
    aggregate,
    aggregate_relative,
    run_sweep,
)

Progress = Optional[Callable[[str], None]]


@dataclass
class FigureData:
    """One regenerated figure: x axis plus a series per protocol."""

    figure_id: str
    title: str
    x_label: str
    y_label: str
    x_values: List[float]
    series: Dict[str, List[float]]
    notes: str = ""

    def value(self, protocol: str, x: float) -> float:
        """Series value for a protocol at an x-axis point."""
        return self.series[protocol][self.x_values.index(x)]


#: What the paper's figures show (orderings, crossovers, magnitudes).
PAPER_EXPECTATIONS: Dict[str, str] = {
    "fig6": (
        "Throughput rises with offered load and saturates ~0.29-0.37 kbps. "
        "EW-MAC highest at high load; CS-MAC competitive below ~0.6 kbps "
        "but degrades past ~0.8 kbps; ROPA > S-FAMA throughout."
    ),
    "fig7": (
        "At 0.8 kbps offered load, increasing node density shrinks the "
        "exploitable waiting time: EW-MAC/CS-MAC/ROPA decline toward the "
        "flat S-FAMA line; EW-MAC stays best, S-FAMA is density-invariant."
    ),
    "fig8": (
        "Batch drain time grows with offered load; S-FAMA slowest, then "
        "ROPA, then CS-MAC, EW-MAC fastest; indistinguishable below ~20 "
        "packets per 300 s (0.136 kbps)."
    ),
    "fig9a": (
        "Average network power vs offered load (80 sensors): ROPA highest, "
        "then CS-MAC, then S-FAMA; EW-MAC lowest."
    ),
    "fig9b": (
        "Power vs node count (0.3 kbps): ROPA and CS-MAC grow steeply with "
        "density (two-hop upkeep); S-FAMA and EW-MAC grow slowly."
    ),
    "fig10a": (
        "Overhead ratio to S-FAMA vs node count (0.5 kbps): ROPA ~1.5x; "
        "CS-MAC and EW-MAC 2-3x, with CS-MAC above EW-MAC and EW-MAC "
        "growing flattest with node count."
    ),
    "fig10b": (
        "Overhead ratio vs offered load (dense network): all ratios grow "
        "with load; ordering CS-MAC > EW-MAC > ROPA > S-FAMA(=1)."
    ),
    "fig11": (
        "Efficiency index (S-FAMA = 1): EW-MAC highest; CS-MAC and ROPA "
        "above 1 at moderate load; ROPA falls below 1 past ~0.8 kbps."
    ),
}


def _steady_spec(
    x_values: Sequence[float], field_name: str
) -> SweepSpec:
    """Sweep one ScenarioConfig field over x for steady-state runs."""

    def configure(base: ScenarioConfig, x: float, protocol: str, seed: int) -> ScenarioConfig:
        value = int(x) if field_name == "n_sensors" else x
        return base.with_(**{field_name: value, "protocol": protocol, "seed": seed})

    return SweepSpec(x_values=list(x_values), configure=configure)


# ----------------------------------------------------------------------
# Fig. 6 — throughput vs offered load
# ----------------------------------------------------------------------
def fig6(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
) -> FigureData:
    """Paper Fig. 6: throughput at different offered loads (60 sensors)."""
    loads = [0.2, 0.6, 1.0] if quick else [0.1, 0.2, 0.4, 0.6, 0.8, 1.0]
    base = table2_config(sim_time_s=100.0 if quick else 300.0)
    seeds = seeds[:1] if quick else seeds
    results = run_sweep(
        _steady_spec(loads, "offered_load_kbps"),
        base,
        seeds=seeds,
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
    )
    series = aggregate(results, loads, PAPER_PROTOCOLS, lambda r: r.throughput_kbps)
    return FigureData(
        figure_id="fig6",
        title="Throughput at different offer loads",
        x_label="Offered load (kbps)",
        y_label="Throughput (kbps)",
        x_values=list(loads),
        series=series,
        notes=PAPER_EXPECTATIONS["fig6"],
    )


# ----------------------------------------------------------------------
# Fig. 7 — throughput vs node density
# ----------------------------------------------------------------------
def fig7(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
) -> FigureData:
    """Paper Fig. 7: throughput at different sensor densities (0.8 kbps)."""
    nodes = [60, 100, 140] if quick else [60, 80, 100, 120, 140]
    base = table2_config(
        offered_load_kbps=0.8, sim_time_s=100.0 if quick else 300.0
    )
    seeds = seeds[:1] if quick else seeds
    results = run_sweep(
        _steady_spec(nodes, "n_sensors"),
        base,
        seeds=seeds,
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
    )
    series = aggregate(results, nodes, PAPER_PROTOCOLS, lambda r: r.throughput_kbps)
    return FigureData(
        figure_id="fig7",
        title="Throughput at different network sensor densities",
        x_label="Number of nodes",
        y_label="Throughput (kbps)",
        x_values=[float(n) for n in nodes],
        series=series,
        notes=PAPER_EXPECTATIONS["fig7"],
    )


# ----------------------------------------------------------------------
# Fig. 8 — execution time vs offered load (batch drain)
# ----------------------------------------------------------------------
def fig8(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
) -> FigureData:
    """Paper Fig. 8: time to complete a fixed batch of transmissions."""
    loads = [0.1, 0.6, 1.0] if quick else [0.01, 0.2, 0.4, 0.6, 0.8, 1.0]
    window_s = 300.0  # the paper's load->packets calibration window
    # "Time for successful transmission": every batch packet must complete,
    # so the retry budget is effectively unlimited in batch experiments.
    base = table2_config(sim_time_s=window_s, max_retries=100)
    seeds = seeds[:1] if quick else seeds

    def batch_size(x: float, config: ScenarioConfig):
        n_packets = max(1, round(x * 1000.0 * window_s / config.data_packet_bits))
        if quick:
            n_packets = max(1, n_packets // 4)
        max_time = 1800.0 if quick else 7200.0
        return n_packets, max_time

    spec = SweepSpec(
        x_values=list(loads),
        configure=_steady_spec(loads, "offered_load_kbps").configure,
        batch=batch_size,
    )
    results = run_sweep(
        spec,
        base,
        seeds=seeds,
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
    )
    series = aggregate(
        results,
        loads,
        PAPER_PROTOCOLS,
        lambda r: r.execution.drain_time_s if r.execution else 0.0,
    )
    return FigureData(
        figure_id="fig8",
        title="Relationship between execution time and offer load",
        x_label="Offered load (kbps)",
        y_label="Execution time (s)",
        x_values=list(loads),
        series=series,
        notes=PAPER_EXPECTATIONS["fig8"],
    )


# ----------------------------------------------------------------------
# Fig. 9 — power consumption
# ----------------------------------------------------------------------
#: Fig. 9's fixed normalization window (the Table 2 simulation time): the
#: paper compares "the power consumption of algorithms when they transmit
#: varied amounts of information" (Sec. 5.2), i.e. total energy to deliver
#: a fixed batch, reported as mean power over the 300 s window.
_FIG9_WINDOW_S = 300.0


def _batch_energy_mw(result) -> float:
    """Total drain energy normalized to the Fig. 9 window, in mW."""
    return result.energy.total_j / _FIG9_WINDOW_S * 1000.0


def _fig9_batch(x: float, config: ScenarioConfig, quick: bool):
    n_packets = max(1, round(x * 1000.0 * _FIG9_WINDOW_S / config.data_packet_bits))
    if quick:
        n_packets = max(1, n_packets // 4)
    return n_packets, (1800.0 if quick else 7200.0)


def fig9a(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
) -> FigureData:
    """Paper Fig. 9a: energy to deliver the offered information, 80 sensors.

    Batch-drain experiment (Sec. 5.2 compares protocols "when they transmit
    varied amounts of information"): slower protocols idle-listen longer
    and two-hop protocols pay maintenance, both raising total energy.
    """
    loads = [0.1, 0.4, 0.8] if quick else [0.01, 0.2, 0.4, 0.6, 0.8]
    base = table2_config(n_sensors=80, sim_time_s=_FIG9_WINDOW_S, max_retries=100)
    seeds = seeds[:1] if quick else seeds
    spec = SweepSpec(
        x_values=list(loads),
        configure=_steady_spec(loads, "offered_load_kbps").configure,
        batch=lambda x, config: _fig9_batch(x, config, quick),
    )
    results = run_sweep(
        spec,
        base,
        seeds=seeds,
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
    )
    series = aggregate(results, loads, PAPER_PROTOCOLS, _batch_energy_mw)
    return FigureData(
        figure_id="fig9a",
        title="Power consumption vs offered load (80 sensors)",
        x_label="Offered load (kbps)",
        y_label="Power consumption (mW, drain energy / 300 s)",
        x_values=list(loads),
        series=series,
        notes=PAPER_EXPECTATIONS["fig9a"],
    )


def fig9b(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
) -> FigureData:
    """Paper Fig. 9b: drain energy vs number of sensors at 0.3 kbps."""
    nodes = [60, 90, 120] if quick else [60, 80, 100, 120]
    base = table2_config(
        offered_load_kbps=0.3, sim_time_s=_FIG9_WINDOW_S, max_retries=100
    )
    seeds = seeds[:1] if quick else seeds
    spec = SweepSpec(
        x_values=[float(n) for n in nodes],
        configure=_steady_spec(nodes, "n_sensors").configure,
        batch=lambda x, config: _fig9_batch(0.3, config, quick),
    )
    results = run_sweep(
        spec,
        base,
        seeds=seeds,
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
    )
    series = aggregate(
        results, [float(n) for n in nodes], PAPER_PROTOCOLS, _batch_energy_mw
    )
    return FigureData(
        figure_id="fig9b",
        title="Power consumption vs number of sensors (0.3 kbps)",
        x_label="Number of nodes",
        y_label="Power consumption (mW, drain energy / 300 s)",
        x_values=[float(n) for n in nodes],
        series=series,
        notes=PAPER_EXPECTATIONS["fig9b"],
    )


# ----------------------------------------------------------------------
# Fig. 10 — overhead
# ----------------------------------------------------------------------
def fig10a(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
) -> FigureData:
    """Paper Fig. 10a: overhead ratio vs node count at 0.5 kbps."""
    nodes = [60, 100, 140] if quick else [60, 80, 100, 120, 140]
    base = table2_config(
        offered_load_kbps=0.5, sim_time_s=100.0 if quick else 300.0
    )
    seeds = seeds[:1] if quick else seeds
    results = run_sweep(
        _steady_spec(nodes, "n_sensors"),
        base,
        seeds=seeds,
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
    )
    series = aggregate_relative(
        results, nodes, PAPER_PROTOCOLS, lambda r: r.overhead_units
    )
    return FigureData(
        figure_id="fig10a",
        title="Overhead ratio vs number of sensors (0.5 kbps)",
        x_label="Number of nodes",
        y_label="Overhead (ratio to S-FAMA)",
        x_values=[float(n) for n in nodes],
        series=series,
        notes=PAPER_EXPECTATIONS["fig10a"],
    )


def fig10b(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
) -> FigureData:
    """Paper Fig. 10b: overhead ratio vs offered load (dense network).

    The paper uses 200 sensors; the full runner follows suit, the quick
    variant uses 100 to bound benchmark time.
    """
    loads = [0.4, 0.8] if quick else [0.4, 0.5, 0.6, 0.7, 0.8]
    base = table2_config(
        n_sensors=100 if quick else 200, sim_time_s=100.0 if quick else 300.0
    )
    seeds = seeds[:1] if quick else seeds
    results = run_sweep(
        _steady_spec(loads, "offered_load_kbps"),
        base,
        seeds=seeds,
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
    )
    series = aggregate_relative(
        results, loads, PAPER_PROTOCOLS, lambda r: r.overhead_units
    )
    return FigureData(
        figure_id="fig10b",
        title="Overhead ratio vs offered load (dense deployment)",
        x_label="Offered load (kbps)",
        y_label="Overhead (ratio to S-FAMA)",
        x_values=list(loads),
        series=series,
        notes=PAPER_EXPECTATIONS["fig10b"],
    )


# ----------------------------------------------------------------------
# Fig. 11 — efficiency index
# ----------------------------------------------------------------------
def fig11(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
) -> FigureData:
    """Paper Fig. 11: Eq. (4) efficiency index, S-FAMA normalized to 1."""
    loads = [0.2, 0.6, 1.0] if quick else [0.1, 0.2, 0.4, 0.6, 0.8, 1.0]
    base = table2_config(sim_time_s=100.0 if quick else 300.0)
    seeds = seeds[:1] if quick else seeds
    results = run_sweep(
        _steady_spec(loads, "offered_load_kbps"),
        base,
        seeds=seeds,
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
    )
    series = aggregate_relative(
        results, loads, PAPER_PROTOCOLS, lambda r: r.efficiency.value
    )
    return FigureData(
        figure_id="fig11",
        title="Efficiency indexes for different offered loads",
        x_label="Offered load (kbps)",
        y_label="Efficiency index (S-FAMA = 1)",
        x_values=list(loads),
        series=series,
        notes=PAPER_EXPECTATIONS["fig11"],
    )


#: Every figure runner by id, for the CLI and benchmarks.
ALL_FIGURES: Dict[str, Callable[..., FigureData]] = {
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9a": fig9a,
    "fig9b": fig9b,
    "fig10a": fig10a,
    "fig10b": fig10b,
    "fig11": fig11,
}
