"""Per-figure experiment plans and runners (paper Sec. 5, Figs. 6-11).

Each figure is described *declaratively* by a plan factory
(``fig6_plan`` ...): axes, base config, protocol set, seeds, and the
aggregation that turns a raw sweep grid into a
:class:`~repro.experiments.engine.FigureData`.  The factories never
execute anything — the pure engine does
(:func:`~repro.experiments.engine.run_plan`), so the same plan can be
run by the CLI, keyed and queued by the job service, or benchmarked.

The classic ``figN(...)`` runners remain as thin callers over their
plans with unchanged signatures.  Every runner accepts ``quick=True``
for a scaled-down run (shorter window, single seed, coarser axis) used
by the benchmark suite, ``seeds`` for replication control, and
``overrides`` for ad-hoc base-config tweaks (the CLI's ``--override``
and the service's request overrides).

:data:`PAPER_EXPECTATIONS` records what the original figure shows, so the
reports (and EXPERIMENTS.md) can place measured series next to the paper's
claims.
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping, Optional, Sequence, Tuple

from .config import ScenarioConfig, table2_config
from .engine import (
    PAPER_PROTOCOLS,
    FigureData,
    FigurePlan,
    GridResults,
    SweepSpec,
    aggregate,
    aggregate_relative,
    apply_overrides,
    run_plan,
)

Progress = Optional[Callable[[str], None]]
Overrides = Optional[Mapping[str, object]]


#: What the paper's figures show (orderings, crossovers, magnitudes).
PAPER_EXPECTATIONS: Dict[str, str] = {
    "fig6": (
        "Throughput rises with offered load and saturates ~0.29-0.37 kbps. "
        "EW-MAC highest at high load; CS-MAC competitive below ~0.6 kbps "
        "but degrades past ~0.8 kbps; ROPA > S-FAMA throughout."
    ),
    "fig7": (
        "At 0.8 kbps offered load, increasing node density shrinks the "
        "exploitable waiting time: EW-MAC/CS-MAC/ROPA decline toward the "
        "flat S-FAMA line; EW-MAC stays best, S-FAMA is density-invariant."
    ),
    "fig8": (
        "Batch drain time grows with offered load; S-FAMA slowest, then "
        "ROPA, then CS-MAC, EW-MAC fastest; indistinguishable below ~20 "
        "packets per 300 s (0.136 kbps)."
    ),
    "fig9a": (
        "Average network power vs offered load (80 sensors): ROPA highest, "
        "then CS-MAC, then S-FAMA; EW-MAC lowest."
    ),
    "fig9b": (
        "Power vs node count (0.3 kbps): ROPA and CS-MAC grow steeply with "
        "density (two-hop upkeep); S-FAMA and EW-MAC grow slowly."
    ),
    "fig10a": (
        "Overhead ratio to S-FAMA vs node count (0.5 kbps): ROPA ~1.5x; "
        "CS-MAC and EW-MAC 2-3x, with CS-MAC above EW-MAC and EW-MAC "
        "growing flattest with node count."
    ),
    "fig10b": (
        "Overhead ratio vs offered load (dense network): all ratios grow "
        "with load; ordering CS-MAC > EW-MAC > ROPA > S-FAMA(=1)."
    ),
    "fig11": (
        "Efficiency index (S-FAMA = 1): EW-MAC highest; CS-MAC and ROPA "
        "above 1 at moderate load; ROPA falls below 1 past ~0.8 kbps."
    ),
}


def _steady_spec(
    x_values: Sequence[float], field_name: str
) -> SweepSpec:
    """Sweep one ScenarioConfig field over x for steady-state runs."""

    def configure(base: ScenarioConfig, x: float, protocol: str, seed: int) -> ScenarioConfig:
        value = int(x) if field_name == "n_sensors" else x
        return base.with_(**{field_name: value, "protocol": protocol, "seed": seed})

    return SweepSpec(x_values=list(x_values), configure=configure)


def _plan_seeds(seeds: Sequence[int], quick: bool) -> Tuple[int, ...]:
    """Quick mode runs a single seed; full mode runs them all."""
    seeds = tuple(int(s) for s in seeds)
    return seeds[:1] if quick else seeds


# ----------------------------------------------------------------------
# Fig. 6 — throughput vs offered load
# ----------------------------------------------------------------------
def fig6_plan(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    overrides: Overrides = None,
) -> FigurePlan:
    """Paper Fig. 6: throughput at different offered loads (60 sensors)."""
    loads = [0.2, 0.6, 1.0] if quick else [0.1, 0.2, 0.4, 0.6, 0.8, 1.0]
    base = apply_overrides(
        table2_config(sim_time_s=100.0 if quick else 300.0), overrides
    )

    def build(results: GridResults) -> FigureData:
        series = aggregate(results, loads, PAPER_PROTOCOLS, lambda r: r.throughput_kbps)
        return FigureData(
            figure_id="fig6",
            title="Throughput at different offer loads",
            x_label="Offered load (kbps)",
            y_label="Throughput (kbps)",
            x_values=list(loads),
            series=series,
            notes=PAPER_EXPECTATIONS["fig6"],
        )

    return FigurePlan(
        figure_id="fig6",
        spec=_steady_spec(loads, "offered_load_kbps"),
        base=base,
        protocols=PAPER_PROTOCOLS,
        seeds=_plan_seeds(seeds, quick),
        build=build,
    )


def fig6(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
    overrides: Overrides = None,
    checkpoint_every_s: Optional[float] = None,
) -> FigureData:
    """Paper Fig. 6: throughput at different offered loads (60 sensors)."""
    return run_plan(
        fig6_plan(seeds, quick, overrides),
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
        checkpoint_every_s=checkpoint_every_s,
    )


# ----------------------------------------------------------------------
# Fig. 7 — throughput vs node density
# ----------------------------------------------------------------------
def fig7_plan(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    overrides: Overrides = None,
) -> FigurePlan:
    """Paper Fig. 7: throughput at different sensor densities (0.8 kbps)."""
    nodes = [60, 100, 140] if quick else [60, 80, 100, 120, 140]
    base = apply_overrides(
        table2_config(offered_load_kbps=0.8, sim_time_s=100.0 if quick else 300.0),
        overrides,
    )

    def build(results: GridResults) -> FigureData:
        series = aggregate(results, nodes, PAPER_PROTOCOLS, lambda r: r.throughput_kbps)
        return FigureData(
            figure_id="fig7",
            title="Throughput at different network sensor densities",
            x_label="Number of nodes",
            y_label="Throughput (kbps)",
            x_values=[float(n) for n in nodes],
            series=series,
            notes=PAPER_EXPECTATIONS["fig7"],
        )

    return FigurePlan(
        figure_id="fig7",
        spec=_steady_spec(nodes, "n_sensors"),
        base=base,
        protocols=PAPER_PROTOCOLS,
        seeds=_plan_seeds(seeds, quick),
        build=build,
    )


def fig7(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
    overrides: Overrides = None,
    checkpoint_every_s: Optional[float] = None,
) -> FigureData:
    """Paper Fig. 7: throughput at different sensor densities (0.8 kbps)."""
    return run_plan(
        fig7_plan(seeds, quick, overrides),
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
        checkpoint_every_s=checkpoint_every_s,
    )


# ----------------------------------------------------------------------
# Fig. 8 — execution time vs offered load (batch drain)
# ----------------------------------------------------------------------
def fig8_plan(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    overrides: Overrides = None,
) -> FigurePlan:
    """Paper Fig. 8: time to complete a fixed batch of transmissions."""
    loads = [0.1, 0.6, 1.0] if quick else [0.01, 0.2, 0.4, 0.6, 0.8, 1.0]
    window_s = 300.0  # the paper's load->packets calibration window
    # "Time for successful transmission": every batch packet must complete,
    # so the retry budget is effectively unlimited in batch experiments.
    base = apply_overrides(
        table2_config(sim_time_s=window_s, max_retries=100), overrides
    )

    def batch_size(x: float, config: ScenarioConfig):
        n_packets = max(1, round(x * 1000.0 * window_s / config.data_packet_bits))
        if quick:
            n_packets = max(1, n_packets // 4)
        max_time = 1800.0 if quick else 7200.0
        return n_packets, max_time

    def build(results: GridResults) -> FigureData:
        series = aggregate(
            results,
            loads,
            PAPER_PROTOCOLS,
            lambda r: r.execution.drain_time_s if r.execution else 0.0,
        )
        return FigureData(
            figure_id="fig8",
            title="Relationship between execution time and offer load",
            x_label="Offered load (kbps)",
            y_label="Execution time (s)",
            x_values=list(loads),
            series=series,
            notes=PAPER_EXPECTATIONS["fig8"],
        )

    return FigurePlan(
        figure_id="fig8",
        spec=SweepSpec(
            x_values=list(loads),
            configure=_steady_spec(loads, "offered_load_kbps").configure,
            batch=batch_size,
        ),
        base=base,
        protocols=PAPER_PROTOCOLS,
        seeds=_plan_seeds(seeds, quick),
        build=build,
    )


def fig8(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
    overrides: Overrides = None,
    checkpoint_every_s: Optional[float] = None,
) -> FigureData:
    """Paper Fig. 8: time to complete a fixed batch of transmissions."""
    return run_plan(
        fig8_plan(seeds, quick, overrides),
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
        checkpoint_every_s=checkpoint_every_s,
    )


# ----------------------------------------------------------------------
# Fig. 9 — power consumption
# ----------------------------------------------------------------------
#: Fig. 9's fixed normalization window (the Table 2 simulation time): the
#: paper compares "the power consumption of algorithms when they transmit
#: varied amounts of information" (Sec. 5.2), i.e. total energy to deliver
#: a fixed batch, reported as mean power over the 300 s window.
_FIG9_WINDOW_S = 300.0


def _batch_energy_mw(result) -> float:
    """Total drain energy normalized to the Fig. 9 window, in mW."""
    return result.energy.total_j / _FIG9_WINDOW_S * 1000.0


def _fig9_batch(x: float, config: ScenarioConfig, quick: bool):
    n_packets = max(1, round(x * 1000.0 * _FIG9_WINDOW_S / config.data_packet_bits))
    if quick:
        n_packets = max(1, n_packets // 4)
    return n_packets, (1800.0 if quick else 7200.0)


def fig9a_plan(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    overrides: Overrides = None,
) -> FigurePlan:
    """Paper Fig. 9a: energy to deliver the offered information, 80 sensors.

    Batch-drain experiment (Sec. 5.2 compares protocols "when they transmit
    varied amounts of information"): slower protocols idle-listen longer
    and two-hop protocols pay maintenance, both raising total energy.
    """
    loads = [0.1, 0.4, 0.8] if quick else [0.01, 0.2, 0.4, 0.6, 0.8]
    base = apply_overrides(
        table2_config(n_sensors=80, sim_time_s=_FIG9_WINDOW_S, max_retries=100),
        overrides,
    )

    def build(results: GridResults) -> FigureData:
        series = aggregate(results, loads, PAPER_PROTOCOLS, _batch_energy_mw)
        return FigureData(
            figure_id="fig9a",
            title="Power consumption vs offered load (80 sensors)",
            x_label="Offered load (kbps)",
            y_label="Power consumption (mW, drain energy / 300 s)",
            x_values=list(loads),
            series=series,
            notes=PAPER_EXPECTATIONS["fig9a"],
        )

    return FigurePlan(
        figure_id="fig9a",
        spec=SweepSpec(
            x_values=list(loads),
            configure=_steady_spec(loads, "offered_load_kbps").configure,
            batch=lambda x, config: _fig9_batch(x, config, quick),
        ),
        base=base,
        protocols=PAPER_PROTOCOLS,
        seeds=_plan_seeds(seeds, quick),
        build=build,
    )


def fig9a(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
    overrides: Overrides = None,
    checkpoint_every_s: Optional[float] = None,
) -> FigureData:
    """Paper Fig. 9a: energy to deliver the offered information, 80 sensors."""
    return run_plan(
        fig9a_plan(seeds, quick, overrides),
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
        checkpoint_every_s=checkpoint_every_s,
    )


def fig9b_plan(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    overrides: Overrides = None,
) -> FigurePlan:
    """Paper Fig. 9b: drain energy vs number of sensors at 0.3 kbps."""
    nodes = [60, 90, 120] if quick else [60, 80, 100, 120]
    base = apply_overrides(
        table2_config(
            offered_load_kbps=0.3, sim_time_s=_FIG9_WINDOW_S, max_retries=100
        ),
        overrides,
    )
    x_values = [float(n) for n in nodes]

    def build(results: GridResults) -> FigureData:
        series = aggregate(results, x_values, PAPER_PROTOCOLS, _batch_energy_mw)
        return FigureData(
            figure_id="fig9b",
            title="Power consumption vs number of sensors (0.3 kbps)",
            x_label="Number of nodes",
            y_label="Power consumption (mW, drain energy / 300 s)",
            x_values=x_values,
            series=series,
            notes=PAPER_EXPECTATIONS["fig9b"],
        )

    return FigurePlan(
        figure_id="fig9b",
        spec=SweepSpec(
            x_values=x_values,
            configure=_steady_spec(nodes, "n_sensors").configure,
            batch=lambda x, config: _fig9_batch(0.3, config, quick),
        ),
        base=base,
        protocols=PAPER_PROTOCOLS,
        seeds=_plan_seeds(seeds, quick),
        build=build,
    )


def fig9b(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
    overrides: Overrides = None,
    checkpoint_every_s: Optional[float] = None,
) -> FigureData:
    """Paper Fig. 9b: drain energy vs number of sensors at 0.3 kbps."""
    return run_plan(
        fig9b_plan(seeds, quick, overrides),
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
        checkpoint_every_s=checkpoint_every_s,
    )


# ----------------------------------------------------------------------
# Fig. 10 — overhead
# ----------------------------------------------------------------------
def fig10a_plan(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    overrides: Overrides = None,
) -> FigurePlan:
    """Paper Fig. 10a: overhead ratio vs node count at 0.5 kbps."""
    nodes = [60, 100, 140] if quick else [60, 80, 100, 120, 140]
    base = apply_overrides(
        table2_config(offered_load_kbps=0.5, sim_time_s=100.0 if quick else 300.0),
        overrides,
    )

    def build(results: GridResults) -> FigureData:
        series = aggregate_relative(
            results, nodes, PAPER_PROTOCOLS, lambda r: r.overhead_units
        )
        return FigureData(
            figure_id="fig10a",
            title="Overhead ratio vs number of sensors (0.5 kbps)",
            x_label="Number of nodes",
            y_label="Overhead (ratio to S-FAMA)",
            x_values=[float(n) for n in nodes],
            series=series,
            notes=PAPER_EXPECTATIONS["fig10a"],
        )

    return FigurePlan(
        figure_id="fig10a",
        spec=_steady_spec(nodes, "n_sensors"),
        base=base,
        protocols=PAPER_PROTOCOLS,
        seeds=_plan_seeds(seeds, quick),
        build=build,
    )


def fig10a(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
    overrides: Overrides = None,
    checkpoint_every_s: Optional[float] = None,
) -> FigureData:
    """Paper Fig. 10a: overhead ratio vs node count at 0.5 kbps."""
    return run_plan(
        fig10a_plan(seeds, quick, overrides),
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
        checkpoint_every_s=checkpoint_every_s,
    )


def fig10b_plan(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    overrides: Overrides = None,
) -> FigurePlan:
    """Paper Fig. 10b: overhead ratio vs offered load (dense network).

    The paper uses 200 sensors; the full runner follows suit, the quick
    variant uses 100 to bound benchmark time.
    """
    loads = [0.4, 0.8] if quick else [0.4, 0.5, 0.6, 0.7, 0.8]
    base = apply_overrides(
        table2_config(
            n_sensors=100 if quick else 200, sim_time_s=100.0 if quick else 300.0
        ),
        overrides,
    )

    def build(results: GridResults) -> FigureData:
        series = aggregate_relative(
            results, loads, PAPER_PROTOCOLS, lambda r: r.overhead_units
        )
        return FigureData(
            figure_id="fig10b",
            title="Overhead ratio vs offered load (dense deployment)",
            x_label="Offered load (kbps)",
            y_label="Overhead (ratio to S-FAMA)",
            x_values=list(loads),
            series=series,
            notes=PAPER_EXPECTATIONS["fig10b"],
        )

    return FigurePlan(
        figure_id="fig10b",
        spec=_steady_spec(loads, "offered_load_kbps"),
        base=base,
        protocols=PAPER_PROTOCOLS,
        seeds=_plan_seeds(seeds, quick),
        build=build,
    )


def fig10b(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
    overrides: Overrides = None,
    checkpoint_every_s: Optional[float] = None,
) -> FigureData:
    """Paper Fig. 10b: overhead ratio vs offered load (dense network)."""
    return run_plan(
        fig10b_plan(seeds, quick, overrides),
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
        checkpoint_every_s=checkpoint_every_s,
    )


# ----------------------------------------------------------------------
# Fig. 11 — efficiency index
# ----------------------------------------------------------------------
def fig11_plan(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    overrides: Overrides = None,
) -> FigurePlan:
    """Paper Fig. 11: Eq. (4) efficiency index, S-FAMA normalized to 1."""
    loads = [0.2, 0.6, 1.0] if quick else [0.1, 0.2, 0.4, 0.6, 0.8, 1.0]
    base = apply_overrides(
        table2_config(sim_time_s=100.0 if quick else 300.0), overrides
    )

    def build(results: GridResults) -> FigureData:
        series = aggregate_relative(
            results, loads, PAPER_PROTOCOLS, lambda r: r.efficiency.value
        )
        return FigureData(
            figure_id="fig11",
            title="Efficiency indexes for different offered loads",
            x_label="Offered load (kbps)",
            y_label="Efficiency index (S-FAMA = 1)",
            x_values=list(loads),
            series=series,
            notes=PAPER_EXPECTATIONS["fig11"],
        )

    return FigurePlan(
        figure_id="fig11",
        spec=_steady_spec(loads, "offered_load_kbps"),
        base=base,
        protocols=PAPER_PROTOCOLS,
        seeds=_plan_seeds(seeds, quick),
        build=build,
    )


def fig11(
    seeds: Sequence[int] = (1, 2, 3),
    quick: bool = False,
    progress: Progress = None,
    workers: Optional[int] = 1,
    cache: object = None,
    cell_timeout_s: Optional[float] = None,
    overrides: Overrides = None,
    checkpoint_every_s: Optional[float] = None,
) -> FigureData:
    """Paper Fig. 11: Eq. (4) efficiency index, S-FAMA normalized to 1."""
    return run_plan(
        fig11_plan(seeds, quick, overrides),
        progress=progress,
        workers=workers,
        cache=cache,
        cell_timeout_s=cell_timeout_s,
        checkpoint_every_s=checkpoint_every_s,
    )


#: Every figure runner by id, for the CLI and benchmarks.
ALL_FIGURES: Dict[str, Callable[..., FigureData]] = {
    "fig6": fig6,
    "fig7": fig7,
    "fig8": fig8,
    "fig9a": fig9a,
    "fig9b": fig9b,
    "fig10a": fig10a,
    "fig10b": fig10b,
    "fig11": fig11,
}

#: Every figure plan factory by id, for the engine's request layer.
ALL_PLANS: Dict[str, Callable[..., FigurePlan]] = {
    "fig6": fig6_plan,
    "fig7": fig7_plan,
    "fig8": fig8_plan,
    "fig9a": fig9a_plan,
    "fig9b": fig9b_plan,
    "fig10a": fig10a_plan,
    "fig10b": fig10b_plan,
    "fig11": fig11_plan,
}
