"""Scale sweep: wall-clock scaling of the simulator with network size.

The ``repro-uasn scale`` target runs the Table 2 scenario at increasing
node counts and reports how the vectorized broadcast kernel holds up:
wall-clock seconds per cell, kernel throughput (events per second), and
the link-cache hit rate.  It is a *performance* sweep, not a figure from
the paper — the protocol metrics are computed but only the perf counters
are reported.

Two design choices keep the sweep honest as a scaling measurement:

* **Constant density.**  The deployment cube grows as ``(n / 60)^(1/3)``
  times the Table 2 side *and* the deployment tiles it with one
  Table-2-like connected column (~60 sensors + a sink) per block
  (``deployment="tiled"``), so the average neighbourhood — and therefore
  per-broadcast fan-out — stays at the Table 2 level and the x axis
  isolates the cost of *network size* rather than conflating it with
  density.  (Growing a *single* column does not do this: its link scale
  shrinks as ``n^(-1/3)``, so the cloud stays a couple of communication
  ranges wide and densifies toward an everyone-in-reach clique no matter
  how large the cube around it grows.)
* **Short window.**  Each cell simulates a fixed short window (30 s full,
  8 s quick) — long enough to amortize setup, short enough that the 5000
  node cell stays interactive.

``--quick`` shrinks the axis to small counts for the CI smoke job.
"""

from __future__ import annotations

import json
import time
from typing import Callable, Optional, Sequence, Tuple

from .config import table2_config
from .figures import FigureData
from .scenario import run_scenario

Progress = Optional[Callable[[str], None]]

#: Full sweep axis (node counts).
SCALE_NODES: Tuple[int, ...] = (500, 1000, 2000, 5000)
#: Quick axis for the CI smoke job.
QUICK_NODES: Tuple[int, ...] = (150, 300)

#: Table 2 baseline the cube is scaled from (60 sensors, 10 km side).
_BASE_SENSORS = 60
_BASE_SIDE_M = 10_000.0


def scale_side_m(n_sensors: int) -> float:
    """Cube side holding the Table 2 node density at ``n_sensors`` nodes."""
    return _BASE_SIDE_M * (n_sensors / _BASE_SENSORS) ** (1.0 / 3.0)


def scale_config(
    n_sensors: int,
    sim_time_s: float,
    seed: int = 1,
    protocol: str = "EW-MAC",
    mobility: bool = True,
    spatial_grid: bool = True,
    delta_epochs: bool = True,
    inreach_delta: bool = True,
    bulk_schedule: bool = True,
):
    """One scale-sweep cell config: tiled columns at the Table 2 density."""
    return table2_config(
        protocol=protocol,
        n_sensors=n_sensors,
        n_sinks=max(1, round(n_sensors / _BASE_SENSORS)),
        deployment="tiled",
        sim_time_s=sim_time_s,
        side_m=scale_side_m(n_sensors),
        mobility=mobility,
        seed=seed,
        spatial_grid=spatial_grid,
        delta_epochs=delta_epochs,
        inreach_delta=inreach_delta,
        bulk_schedule=bulk_schedule,
    )


def ab_check(
    n_sensors: int,
    sim_time_s: float = 8.0,
    seed: int = 1,
    protocol: str = "EW-MAC",
    mobility: bool = True,
    progress: Progress = None,
) -> None:
    """Online equivalence gate: all culls on vs off must be bit-identical.

    Runs one cell twice — spatial grid, delta-epochs, the in-reach delta
    bound and the bulk-schedule fan-out all enabled, then all disabled —
    and compares the canonical JSON of every figure metric
    (``result.to_dict()``, which excludes perf counters).  Raises
    AssertionError on any divergence; the CI scale-smoke job runs this so
    an equivalence break is caught on every push, not only when the full
    test matrix runs.
    """
    base = scale_config(
        n_sensors, sim_time_s, seed=seed, protocol=protocol, mobility=mobility
    )
    culled = run_scenario(
        base.with_(
            spatial_grid=True,
            delta_epochs=True,
            inreach_delta=True,
            bulk_schedule=True,
        )
    )
    full = run_scenario(
        base.with_(
            spatial_grid=False,
            delta_epochs=False,
            inreach_delta=False,
            bulk_schedule=False,
        )
    )
    flat_culled = json.dumps(culled.to_dict(), sort_keys=True)
    flat_full = json.dumps(full.to_dict(), sort_keys=True)
    if flat_culled != flat_full:
        raise AssertionError(
            f"scale A/B check failed at n={n_sensors}: grid/delta/bulk run "
            "diverged from the scalar full-scan run"
        )
    if progress is not None:
        progress(
            f"A/B check n={n_sensors}: grid+delta+inreach+bulk on == off "
            "(bit-identical)"
        )


def scale(
    seeds: Sequence[int] = (1,),
    quick: bool = False,
    progress: Progress = None,
    protocol: str = "EW-MAC",
    mobility: bool = True,
    spatial_grid: bool = True,
    delta_epochs: bool = True,
    inreach_delta: bool = True,
    bulk_schedule: bool = True,
) -> FigureData:
    """Run the scale sweep and return perf series keyed by counter name.

    Unlike the figure runners the series are *metrics*, not protocols:
    ``wall_time_s``, ``kevents_per_s`` (thousands of simulator events per
    wall-clock second), ``cache_hit_pct`` and ``grid_candidates_mean``
    (mean spatial-hash candidate-set size per broadcast — ``n - 1`` when
    the grid is off).  Only the first seed is used — replication averages
    wall-clock noise into the signal instead of out of it, and the
    determinism suite already pins the metrics.  ``spatial_grid`` /
    ``delta_epochs`` / ``inreach_delta`` / ``bulk_schedule`` expose the
    culls and the batched fan-out for A/B scaling comparisons.
    """
    nodes = QUICK_NODES if quick else SCALE_NODES
    sim_time_s = 8.0 if quick else 30.0
    seed = int(seeds[0]) if seeds else 1
    wall: list = []
    kevents: list = []
    hit_pct: list = []
    cand_mean: list = []
    for n in nodes:
        config = scale_config(
            n,
            sim_time_s,
            seed=seed,
            protocol=protocol,
            mobility=mobility,
            spatial_grid=spatial_grid,
            delta_epochs=delta_epochs,
            inreach_delta=inreach_delta,
            bulk_schedule=bulk_schedule,
        )
        start = time.perf_counter()
        result = run_scenario(config)
        elapsed = time.perf_counter() - start
        perf = result.perf
        events_per_s = perf.events_per_second if perf is not None else 0.0
        hits = perf.cache_hits if perf is not None else 0
        misses = perf.cache_misses if perf is not None else 0
        lookups = hits + misses
        broadcasts = perf.broadcasts if perf is not None else 0
        candidates = perf.grid_candidates if perf is not None else 0
        wall.append(round(elapsed, 3))
        kevents.append(round(events_per_s / 1e3, 1))
        hit_pct.append(round(100.0 * hits / lookups, 2) if lookups else 0.0)
        cand_mean.append(round(candidates / broadcasts, 1) if broadcasts else 0.0)
        if progress is not None:
            progress(
                f"scale n={n}: {elapsed:.2f}s wall, "
                f"{events_per_s:,.0f} ev/s, hit {hit_pct[-1]:.1f}%, "
                f"candidates {cand_mean[-1]:.0f}/broadcast"
            )
    return FigureData(
        figure_id="scale",
        title=f"Simulator scaling ({protocol}, {sim_time_s:.0f}s window, "
        "constant density)",
        x_label="number of sensors",
        y_label="wall seconds / kilo-events per second / cache hit %",
        x_values=[float(n) for n in nodes],
        series={
            "wall_time_s": wall,
            "kevents_per_s": kevents,
            "cache_hit_pct": hit_pct,
            "grid_candidates_mean": cand_mean,
        },
        notes="Perf sweep (not a paper figure): cube side grows as "
        "(n/60)^(1/3) x 10 km and the region is tiled with one Table-2-like "
        "connected column (~60 sensors + sink) per block, so density — and "
        "thus per-broadcast fan-out — stays at the Table 2 level.",
    )
