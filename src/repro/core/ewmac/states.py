"""The EW-MAC sensor state machine (paper Fig. 3).

The paper specifies nine states and their transitions for a sensor *i* with
neighbours *j* (intended receiver), *k* (the competing winner) and *l*
(another neighbour).  :class:`Fig3StateMachine` encodes exactly the allowed
transitions so the protocol implementation can assert it never leaves the
paper's state graph, and the test suite can exhaustively verify the graph.
"""

from __future__ import annotations

from enum import Enum
from typing import Dict, FrozenSet, List, Tuple


class EwState(Enum):
    """States of paper Fig. 3."""

    IDLE = "Idle"
    QUIET = "Quiet"
    CHECKING_SCHEDULING = "Checking Scheduling"
    WAITING_CTS = "Waiting CTS"
    WAITING_DATA = "Waiting Data"
    CHECKING_DATA = "Checking Data"
    WAITING_ACK = "Waiting Ack"
    ASKING_EXTRA = "Asking Extra Commu"
    ASKED_EXTRA = "Asked Extra Commu"


#: Allowed transitions (from, to) with the triggering event, per Fig. 3.
TRANSITIONS: Dict[Tuple[EwState, EwState], str] = {
    # Idle fan-out
    (EwState.IDLE, EwState.QUIET): "overheard neighbour packet Pkt(l,p)",
    (EwState.IDLE, EwState.CHECKING_SCHEDULING): "received RTS(k,i)",
    (EwState.IDLE, EwState.WAITING_CTS): "sent RTS(i,j)",
    # Quiet
    (EwState.QUIET, EwState.IDLE): "quiet period elapsed",
    (EwState.QUIET, EwState.QUIET): "another neighbour packet",
    # Checking Scheduling
    (EwState.CHECKING_SCHEDULING, EwState.IDLE): "request conflicts with schedule",
    (EwState.CHECKING_SCHEDULING, EwState.WAITING_DATA): "sent CTS(i,k)",
    # Waiting Data
    (EwState.WAITING_DATA, EwState.CHECKING_DATA): "received Data(k,i)",
    (EwState.WAITING_DATA, EwState.ASKED_EXTRA): "received EXR(l,i)",
    (EwState.WAITING_DATA, EwState.IDLE): "data never arrived (timeout)",
    # Checking Data
    (EwState.CHECKING_DATA, EwState.IDLE): "sent Ack(i,k)",
    # Waiting CTS
    (EwState.WAITING_CTS, EwState.WAITING_ACK): "received CTS(j,i), sent Data(i,j)",
    (EwState.WAITING_CTS, EwState.ASKING_EXTRA): "received RTS(j,k) or CTS(j,k)",
    (EwState.WAITING_CTS, EwState.ASKED_EXTRA): "received EXR(l,i)",
    (EwState.WAITING_CTS, EwState.IDLE): "no CTS (timeout)",
    # Waiting Ack
    (EwState.WAITING_ACK, EwState.IDLE): "received Ack(j,i)",
    # Asking Extra Commu
    (EwState.ASKING_EXTRA, EwState.QUIET): "extra denied / EXC timeout",
    (EwState.ASKING_EXTRA, EwState.IDLE): "extra communication completed",
    # Asked Extra Commu
    (EwState.ASKED_EXTRA, EwState.IDLE): "extra communication completed",
    (EwState.ASKED_EXTRA, EwState.QUIET): "extra abandoned",
}


class InvalidTransition(Exception):
    """A transition outside the Fig. 3 graph was attempted."""


class Fig3StateMachine:
    """Runtime guard that EW-MAC only makes Fig. 3 transitions."""

    def __init__(self, strict: bool = True) -> None:
        self.state = EwState.IDLE
        self.strict = strict
        self.history: List[Tuple[float, EwState, EwState]] = []

    def transition(self, to: EwState, time: float = 0.0) -> None:
        """Move to ``to``; raise :class:`InvalidTransition` if not allowed."""
        if to is self.state:
            return
        if (self.state, to) not in TRANSITIONS:
            if self.strict:
                raise InvalidTransition(f"{self.state.value} -> {to.value}")
        self.history.append((time, self.state, to))
        self.state = to

    def can_transition(self, to: EwState) -> bool:
        return to is self.state or (self.state, to) in TRANSITIONS

    @staticmethod
    def reachable_states() -> FrozenSet[EwState]:
        """All states reachable from Idle over the transition graph."""
        reachable = {EwState.IDLE}
        frontier = [EwState.IDLE]
        while frontier:
            current = frontier.pop()
            for (src, dst) in TRANSITIONS:
                if src is current and dst not in reachable:
                    reachable.add(dst)
                    frontier.append(dst)
        return frozenset(reachable)
