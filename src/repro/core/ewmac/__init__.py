"""EW-MAC: the paper's primary contribution (Sec. 4)."""

from .protocol import AskedContext, AskingContext, EwMac, ExtraCase, ExtraStats
from .schedule import NeighborScheduleTracker, ProtectedInterval
from .states import TRANSITIONS, EwState, Fig3StateMachine, InvalidTransition

__all__ = [
    "AskedContext",
    "AskingContext",
    "EwMac",
    "EwState",
    "ExtraCase",
    "ExtraStats",
    "Fig3StateMachine",
    "InvalidTransition",
    "NeighborScheduleTracker",
    "ProtectedInterval",
    "TRANSITIONS",
]
