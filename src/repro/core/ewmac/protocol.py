"""EW-MAC: the paper's "Exploit Waiting" MAC protocol (Sec. 4).

EW-MAC is the shared slotted four-way-handshake engine plus the paper's
contribution: when sensor *i* loses a contention (it sent ``RTS(i,j)`` but
overhears ``CTS(j,k)`` or ``RTS(j,k)``), it negotiates an **extra
communication** inside the waiting periods of j's negotiated exchange:

1. *Request phase* — i sends ``EXR(i,j)`` timed to land in j's idle window
   (after j's CTS and before Data(k,j) arrives, or after j's RTS and before
   CTS(k,j) arrives); j replies ``EXC(j,i)`` iff the extra traffic cannot
   disturb its negotiated exchange or any neighbour j knows to be busy.
2. *Transfer phase* — i sends ``EXData(i,j)`` at the Eq. (6) instant
   ``ts(Ack_jk)·|ts| + ω − τ_ij`` so its leading edge reaches j exactly as
   j finishes transmitting ``Ack(j,k)`` (or, when j was the sender, right
   after j finishes *receiving* its Ack); j closes with ``EXAck(j,i)``.

Every off-slot transmission is checked against the sender's
:class:`~repro.core.ewmac.schedule.NeighborScheduleTracker` so it cannot
hit the protected reception windows of other known-busy neighbours (paper:
"the extra communication must not interfere with negotiated
communications").

EW-MAC maintains only one-hop propagation delays, learned passively from
the timestamp in every frame — its overhead edge over ROPA/CS-MAC.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Dict, List, Optional, Tuple

from ...des.events import Event
from ...mac.base import MacConfig, MacState, SlottedMac
from ...phy.frame import (
    CONTROL_PACKET_BITS,
    Frame,
    FrameType,
    control_frame,
    data_frame,
    safe_bits,
    safe_float,
)
from ...phy.modem import Arrival
from .schedule import NeighborScheduleTracker
from .states import EwState, Fig3StateMachine


class ExtraCase(Enum):
    """Role of the busy target j in its negotiated exchange."""

    TARGET_IS_RECEIVER = "receiver"  # i overheard CTS(j, k)
    TARGET_IS_SENDER = "sender"      # i overheard RTS(j, k)


@dataclass
class AskingContext:
    """State of an in-flight extra request on the asking sensor i."""

    target: int
    case: ExtraCase
    tau_ij: float
    ack_slot: int
    exr_send_time: float
    exdata_start: float
    data_bits: int
    exchange_end: float
    exr_event: Optional[Event] = None
    exc_timeout: Optional[Event] = None
    exack_timeout: Optional[Event] = None
    exdata_event: Optional[Event] = None


@dataclass
class AskedContext:
    """State on the asked sensor j after granting an EXC."""

    peer: int
    exdata_start: float
    data_bits: int
    expiry_event: Optional[Event] = None


@dataclass
class ExtraStats:
    """EW-MAC-specific counters."""

    requested: int = 0
    granted_received: int = 0
    grants_issued: int = 0
    denied: int = 0
    completed: int = 0
    given_up: int = 0
    plan_failures: Dict[str, int] = field(default_factory=dict)
    deny_reasons: Dict[str, int] = field(default_factory=dict)
    give_up_reasons: Dict[str, int] = field(default_factory=dict)

    def note_plan_failure(self, reason: str) -> None:
        self.plan_failures[reason] = self.plan_failures.get(reason, 0) + 1

    def note_denial(self, reason: str) -> None:
        self.denied += 1
        self.deny_reasons[reason] = self.deny_reasons.get(reason, 0) + 1


def _default_ewmac_config() -> MacConfig:
    # Every EW-MAC packet piggybacks the timestamp + pair-delay (+ extra
    # scheduling) fields (paper Sec. 4.3); accounted as 64 bits of overhead
    # per control frame.
    return MacConfig(piggyback_bits=64, maintenance_period_s=None)


class EwMac(SlottedMac):
    """The paper's EW-MAC protocol."""

    name = "EW-MAC"
    uses_two_hop_info = False
    #: Randomize the EXR send instant inside the feasible window (design
    #: choice studied by the abl-exr-randomization ablation; True keeps
    #: same-round losers from colliding at the shared busy neighbour).
    exr_randomize = True

    def __init__(self, sim, node, channel, timing, config: Optional[MacConfig] = None):
        super().__init__(sim, node, channel, timing, config or _default_ewmac_config())
        self.tracker = NeighborScheduleTracker(node.node_id)
        self.fig3 = Fig3StateMachine(strict=False)
        self.extra_stats = ExtraStats()
        self._asking: Optional[AskingContext] = None
        self._asked: Optional[AskedContext] = None
        self._cts_slot: Optional[int] = None  # slot in which we sent our CTS

    # ------------------------------------------------------------------
    # Fig. 3 bookkeeping
    # ------------------------------------------------------------------
    def _fig3(self, to: EwState) -> None:
        if self.fig3.can_transition(to):
            self.fig3.transition(to, self.sim.now)
            return
        # Lenient two-step through Idle (e.g. Quiet -> Idle -> Waiting CTS).
        if self.fig3.can_transition(EwState.IDLE) and to is not EwState.IDLE:
            self.fig3.transition(EwState.IDLE, self.sim.now)
        self.fig3.transition(to, self.sim.now)

    # ------------------------------------------------------------------
    # Base-engine integration points
    # ------------------------------------------------------------------
    def _send_rts(self, index: int) -> None:  # noqa: D102 - engine override
        super()._send_rts(index)
        self._fig3(EwState.WAITING_CTS)

    def _grant(self, candidates, index: int) -> None:  # noqa: D102
        self._fig3(EwState.CHECKING_SCHEDULING)
        super()._grant(candidates, index)
        self._cts_slot = index
        if self.state is MacState.WAIT_DATA:
            self._fig3(EwState.WAITING_DATA)
        else:
            self._fig3(EwState.IDLE)

    def _receive_data(self, frame: Frame, arrival: Arrival) -> None:  # noqa: D102
        super()._receive_data(frame, arrival)
        self._fig3(EwState.CHECKING_DATA)

    def _send_ack(self) -> None:  # noqa: D102
        super()._send_ack()
        if self._asked is None:
            self._fig3(EwState.IDLE)

    def _complete_send(self) -> None:  # noqa: D102
        super()._complete_send()
        self._fig3(EwState.IDLE)

    def _handle_addressed(self, frame: Frame, arrival: Arrival) -> None:  # noqa: D102
        if (
            frame.ftype is FrameType.CTS
            and self.state is MacState.WAIT_CTS
            and frame.src == self._target
        ):
            self._fig3(EwState.WAITING_ACK)
        super()._handle_addressed(frame, arrival)

    def contention_failed(self) -> None:  # noqa: D102
        super().contention_failed()
        self._fig3(EwState.IDLE)

    # ------------------------------------------------------------------
    # Extra communication: asking side (sensor i)
    # ------------------------------------------------------------------
    def on_contention_lost(self, target: int, frame: Frame, arrival: Arrival) -> None:
        """Try the paper's extra-communication path before backing off."""
        self._update_tracker(frame)
        context = self._plan_extra_request(target, frame)
        if context is None:
            self.contention_failed()
            return
        self._asking = context
        self.state = MacState.EXTRA
        self._fig3(EwState.ASKING_EXTRA)
        self.extra_stats.requested += 1
        self.stats.opportunistic_attempts += 1
        context.exr_event = self.sim.schedule_at(context.exr_send_time, self._send_exr)

    def _plan_extra_request(self, target: int, frame: Frame) -> Optional[AskingContext]:
        """Compute EXR/EXData timing; None if the windows are infeasible."""
        self.stats.computation_units += 64.0  # feasibility computation
        request = self._current_request
        if request is None:
            self.extra_stats.note_plan_failure("no_request")
            return None
        tau_ij = self.node.neighbors.delay_to(target)
        tau_jk = safe_float(frame.pair_delay_s)
        if tau_ij is None or tau_jk is None or tau_jk < 0.0:
            self.extra_stats.note_plan_failure("unknown_delay")
            return None
        peer_bits = safe_bits(frame.info.get("data_bits"), default=0, minimum=1)
        if peer_bits <= 0:
            self.extra_stats.note_plan_failure("no_peer_bits")
            return None
        guard = self.config.guard_s
        omega = self.timing.omega_s
        peer_duration = peer_bits / self.channel.bitrate_bps
        frame_slot = self.timing.slot_index(frame.timestamp)
        if frame.ftype is FrameType.CTS:
            case = ExtraCase.TARGET_IS_RECEIVER
            # j's idle window: CTS tx end -> Data(k,j) arrival (period V).
            window_start = self.timing.slot_start(frame_slot) + omega + guard
            window_end = self.timing.slot_start(frame_slot + 1) + tau_jk - guard
            ack_slot = self.timing.ack_slot(frame_slot + 1, peer_duration, tau_jk)
            # Eq. (6): EXData reaches j right as its Ack transmission ends
            # (plus a guard so measurement jitter cannot overlap the Ack).
            exdata_start = self.timing.exdata_start_time(ack_slot, tau_ij) + guard
        elif frame.ftype is FrameType.RTS:
            case = ExtraCase.TARGET_IS_SENDER
            # j's idle window: RTS tx end -> CTS(k,j) arrival (period III).
            window_start = self.timing.slot_start(frame_slot) + omega + guard
            window_end = self.timing.slot_start(frame_slot + 1) + tau_jk - guard
            ack_slot = self.timing.ack_slot(frame_slot + 2, peer_duration, tau_jk)
            # EXData reaches j right after j finishes receiving Ack(k,j).
            exdata_arrival = self.timing.slot_start(ack_slot) + tau_jk + omega + guard
            exdata_start = exdata_arrival - tau_ij
        else:
            return None
        # EXR must fully arrive inside j's idle window, early enough that j
        # can also fit its EXC reply (one more omega) before the window
        # closes — otherwise j would have to deny the request.  The send
        # instant is randomized inside the feasible span: several losers of
        # the same contention round all ask the same j, and deterministic
        # earliest-instant sends would collide at j every time.
        earliest_send = max(self.sim.now + 1e-6, window_start - tau_ij)
        latest_send = window_end - 2.0 * omega - guard - tau_ij
        if latest_send < earliest_send:
            self.extra_stats.note_plan_failure(f"exr_window_{frame.ftype.value}")
            return None
        jitter = float(self._rng.random()) if self.exr_randomize else 0.0
        start = earliest_send + jitter * (latest_send - earliest_send)
        send_time = self._find_safe_send(start, latest_send, omega, target)
        if send_time is None:
            send_time = self._find_safe_send(earliest_send, latest_send, omega, target)
        if send_time is None:
            self.extra_stats.note_plan_failure(f"exr_window_{frame.ftype.value}")
            return None
        if exdata_start <= send_time + omega:
            self.extra_stats.note_plan_failure("exdata_before_exr")
            return None
        # The EXData itself must not hit other busy neighbours either.
        my_duration = request.size_bits / self.channel.bitrate_bps
        if not self.tracker.is_send_safe(
            exdata_start, my_duration, self._known_delays(), exclude=(target,)
        ):
            self.extra_stats.note_plan_failure("exdata_unsafe")
            return None
        exchange_end = (
            self.timing.slot_start(ack_slot) + omega + self.timing.tau_max_s
        )
        return AskingContext(
            target=target,
            case=case,
            tau_ij=tau_ij,
            ack_slot=ack_slot,
            exr_send_time=send_time,
            exdata_start=exdata_start,
            data_bits=request.size_bits,
            exchange_end=exchange_end,
        )

    def _find_safe_send(
        self, earliest: float, latest: float, duration: float, peer: int
    ) -> Optional[float]:
        """First instant in [earliest, latest] that is tracker-safe.

        On a conflict, jumps directly past the latest blocking protected
        window instead of stepping blindly.
        """
        if latest < earliest:
            return None
        self.tracker.purge(self.sim.now)
        delays = self._known_delays()
        candidate = earliest
        for _ in range(8):
            if candidate > latest:
                return None
            conflicts = self.tracker.blocking_conflicts(
                candidate, duration, delays, exclude=(peer,)
            )
            if not conflicts:
                return candidate
            # Send just late enough that the arrival at each conflicting
            # neighbour clears its protected window.
            candidate = max(
                window.end - delays[node_id] for node_id, window in conflicts
            ) + self.config.guard_s
        return None

    def _known_delays(self) -> Dict[int, float]:
        return {
            nid: self.node.neighbors.delay_to(nid)
            for nid in self.node.neighbors.neighbors()
        }

    def _send_exr(self) -> None:
        context = self._asking
        if context is None:
            return
        context.exr_event = None
        if self.node.modem.transmitting:
            self._give_up_extra("modem_busy_at_exr")
            return
        frame = control_frame(
            FrameType.EXR,
            self.node.node_id,
            context.target,
            self.sim.now,
            pair_delay_s=context.tau_ij,
            data_bits=context.data_bits,
            exdata_start=context.exdata_start,
            case=context.case.value,
        )
        self._transmit_control(frame)
        self.stats.opportunistic_ctrl += 1
        # Paper: i waits "twice the propagation time" for the EXC — plus the
        # on-air time of the EXR and EXC themselves and a deferral margin.
        deadline = (
            self.sim.now
            + 2.0 * context.tau_ij
            + 3.0 * self.timing.omega_s
            + 4.0 * self.config.guard_s
        )
        context.exc_timeout = self.sim.schedule_at(deadline, self._on_exc_timeout)

    def _on_exc_timeout(self) -> None:
        if self._asking is None:
            return
        self._asking.exc_timeout = None
        self._give_up_extra("exc_timeout")

    def _give_up_extra(self, reason: str = "unspecified") -> None:
        """Paper: give up the extra transmission and return to Quiet."""
        context = self._asking
        if context is None:
            return
        self.extra_stats.give_up_reasons[reason] = (
            self.extra_stats.give_up_reasons.get(reason, 0) + 1
        )
        for event in (context.exr_event, context.exc_timeout, context.exack_timeout, context.exdata_event):
            self.sim.cancel(event)
        self._asking = None
        self.extra_stats.given_up += 1
        self._set_quiet(context.exchange_end)
        self._fig3(EwState.QUIET)
        self._reset_to_idle(backoff=True)
        self._fig3(EwState.IDLE)

    def _on_exc_received(self, frame: Frame) -> None:
        context = self._asking
        if context is None or frame.src != context.target:
            return
        self.sim.cancel(context.exc_timeout)
        context.exc_timeout = None
        self.extra_stats.granted_received += 1
        # j may have adjusted the transfer instant; trust the grant.
        granted_start = safe_float(frame.info.get("exdata_start"))
        if granted_start is None:
            granted_start = context.exdata_start
        context.exdata_start = max(granted_start, self.sim.now + 1e-6)
        context.exdata_event = self.sim.schedule_at(
            context.exdata_start, self._send_exdata
        )

    def _send_exdata(self) -> None:
        context = self._asking
        if context is None:
            return
        context.exdata_event = None
        request = self._current_request
        if request is None or self.node.modem.transmitting:
            self._give_up_extra("modem_busy_at_exdata")
            return
        frame = data_frame(
            self.node.node_id,
            context.target,
            self.sim.now,
            size_bits=request.size_bits,
            extra=True,
            req_uid=request.uid,
        )
        self.node.modem.transmit(frame)
        self.stats.opportunistic_data += 1
        self.stats.opportunistic_data_bits += request.size_bits
        duration = request.size_bits / self.channel.bitrate_bps
        deadline = (
            self.sim.now + duration + 2.0 * context.tau_ij
            + 3.0 * self.timing.omega_s + 4.0 * self.config.guard_s
        )
        context.exack_timeout = self.sim.schedule_at(deadline, self._on_exack_timeout)

    def _on_exack_timeout(self) -> None:
        if self._asking is None:
            return
        self._asking.exack_timeout = None
        self._give_up_extra("exack_timeout")

    def _on_exack_received(self, frame: Frame) -> None:
        context = self._asking
        if context is None or frame.src != context.target:
            return
        self.sim.cancel(context.exack_timeout)
        request = self._current_request
        if request is not None:
            self.node.remove_request(request)
            self.node.note_sent(request)
        self._current_request = None
        self._asking = None
        self.extra_stats.completed += 1
        self.stats.handshakes_completed += 1
        self._cw = self.config.cw_min
        self._reset_to_idle(backoff=False)
        self._fig3(EwState.IDLE)

    # ------------------------------------------------------------------
    # Extra communication: asked side (sensor j)
    # ------------------------------------------------------------------
    def handle_protocol_frame(self, frame: Frame, arrival: Arrival) -> None:
        if frame.ftype is FrameType.EXR:
            self._on_exr_received(frame, arrival)
        elif frame.ftype is FrameType.EXC:
            self._on_exc_received(frame)
        elif frame.ftype is FrameType.EXDATA:
            self._on_exdata_received(frame, arrival)
        elif frame.ftype is FrameType.EXACK:
            self._on_exack_received(frame)

    def _own_busy_intervals(self) -> List[Tuple[float, float]]:
        """Intervals during which this node's antenna is committed."""
        intervals: List[Tuple[float, float]] = []
        omega = self.timing.omega_s
        bitrate = self.channel.bitrate_bps
        if self.state is MacState.WAIT_DATA and self._cts_slot is not None:
            # Receiver: Data(k,j) arrives tau after slot cts+1; Ack at Eq. 5.
            tau = self._grant_tau
            duration = max(self._grant_data_bits, CONTROL_PACKET_BITS) / bitrate
            data_start = self.timing.slot_start(self._cts_slot + 1) + tau
            intervals.append((data_start, data_start + duration))
            ack_slot = self.timing.ack_slot(self._cts_slot + 1, duration, tau)
            ack_start = self.timing.slot_start(ack_slot)
            intervals.append((ack_start, ack_start + omega))
        if self.state in (MacState.WAIT_CTS, MacState.WAIT_SEND_DATA) and self._rts_slot is not None:
            request = self._current_request
            bits = request.size_bits if request is not None else CONTROL_PACKET_BITS
            duration = bits / bitrate
            tau = self.node.neighbors.delay_to(self._target) if self._target is not None else None
            tau = tau if tau is not None else self.timing.tau_max_s
            cts_start = self.timing.slot_start(self._rts_slot + 1) + tau
            intervals.append((cts_start, cts_start + omega))
            data_start = self.timing.slot_start(self._rts_slot + 2)
            intervals.append((data_start, data_start + duration))
            ack_slot = self.timing.ack_slot(self._rts_slot + 2, duration, tau)
            ack_start = self.timing.slot_start(ack_slot) + tau
            intervals.append((ack_start, ack_start + omega))
        if self._ack_due_slot is not None:
            ack_start = self.timing.slot_start(self._ack_due_slot)
            intervals.append((ack_start, ack_start + omega))
        return intervals

    def _on_exr_received(self, frame: Frame, arrival: Arrival) -> None:
        if self._asked is not None:
            return  # one extra peer at a time
        peer = frame.src
        tau_peer = arrival.delay_s
        bits = safe_bits(frame.info.get("data_bits"), default=0, minimum=1)
        exdata_start = safe_float(frame.info.get("exdata_start"))
        if bits <= 0 or exdata_start is None or exdata_start < self.sim.now - 1e-6:
            return
        guard = self.config.guard_s
        omega = self.timing.omega_s
        duration = bits / self.channel.bitrate_bps
        exdata_window = (exdata_start + tau_peer, exdata_start + tau_peer + duration)
        exack_end = exdata_window[1] + omega + guard
        busy = self._own_busy_intervals()
        # 1. The extra transfer must miss every committed interval.  Strict
        # inequality: Eq. (6) schedules the EXData to start exactly when the
        # Ack transmission ends, and adjacency is safe.
        for start, end in busy:
            if start < exack_end and end > exdata_window[0]:
                self.extra_stats.note_denial("exdata_overlaps_exchange")
                return
        # 2. The EXC reply must fit before our next committed instant and
        #    must not disturb other busy neighbours we know about.
        exc_end = self.sim.now + omega + guard
        for start, end in busy:
            if start < exc_end and end > self.sim.now:
                self.extra_stats.note_denial("no_room_for_exc")
                return
        if self.node.modem.transmitting:
            self.extra_stats.note_denial("modem_busy")
            return
        self.tracker.purge(self.sim.now)
        if not self.tracker.is_send_safe(
            self.sim.now, omega, self._known_delays(), exclude=(peer,)
        ):
            self.extra_stats.note_denial("exc_unsafe_for_neighbors")
            return
        reply = control_frame(
            FrameType.EXC,
            self.node.node_id,
            peer,
            self.sim.now,
            pair_delay_s=tau_peer,
            exdata_start=float(exdata_start),
            data_bits=bits,
        )
        self._transmit_control(reply)
        self.stats.opportunistic_ctrl += 1
        self.extra_stats.grants_issued += 1
        context = AskedContext(peer=peer, exdata_start=float(exdata_start), data_bits=bits)
        context.expiry_event = self.sim.schedule_at(
            exdata_window[1] + self.timing.slot_s, self._on_asked_expired
        )
        self._asked = context
        # Having granted, j must keep its antenna free until the extra
        # transfer (EXData + its EXAck) is over: no new grants or RTSs.
        self._set_quiet(exdata_window[1] + omega + 2.0 * guard)
        self._fig3(EwState.ASKED_EXTRA)

    def _on_asked_expired(self) -> None:
        if self._asked is None:
            return
        self._asked = None
        if self.state is MacState.IDLE:
            self._fig3(EwState.IDLE)

    def _on_exdata_received(self, frame: Frame, arrival: Arrival) -> None:
        context = self._asked
        if context is None or frame.src != context.peer:
            return
        self.sim.cancel(context.expiry_event)
        self._asked = None
        if self.register_data_reception(frame):
            self.stats.opportunistic_received += 1
            self.stats.opportunistic_received_bits += frame.size_bits
            self.node.note_delivered(frame.size_bits)
            if self.on_data_delivered is not None:
                self.on_data_delivered(self.node, frame.src, frame.size_bits)
        self._send_exack(frame.src)

    def _send_exack(self, dst: int) -> None:
        if not self.node.modem.enabled:
            return  # died between the EXData and this (possibly rescheduled) reply
        if self.node.modem.transmitting:
            self.sim.schedule(self.timing.omega_s, self._send_exack, dst)
            return
        frame = control_frame(FrameType.EXACK, self.node.node_id, dst, self.sim.now)
        self._transmit_control(frame)
        self.stats.opportunistic_ctrl += 1
        if self.state is MacState.IDLE:
            self._fig3(EwState.IDLE)

    # ------------------------------------------------------------------
    # Overhearing: schedule tracking + paper's quiet rules
    # ------------------------------------------------------------------
    def on_overheard(self, frame: Frame, arrival: Arrival) -> None:
        self._update_tracker(frame)
        if frame.ftype is FrameType.HELLO:
            return
        if self.fig3.state is EwState.IDLE and not frame.ftype.is_extra:
            self._fig3(EwState.QUIET)

    def _update_tracker(self, frame: Frame) -> None:
        """Derive protected reception windows from an overheard frame."""
        # Sec. 5.3 overhead: "the cost of accessing neighboring information"
        # — every overheard negotiation triggers schedule bookkeeping.
        self.stats.computation_units += 32.0
        self.tracker.purge(self.sim.now)
        omega = self.timing.omega_s
        tau_max = self.timing.tau_max_s
        bitrate = self.channel.bitrate_bps
        slot = self.timing.slot_index(frame.timestamp)
        if frame.ftype is FrameType.RTS:
            # The RTS sender must cleanly receive a CTS during slot+1.
            cts_window_start = self.timing.slot_start(slot + 1)
            self.tracker.protect(
                frame.src, cts_window_start, cts_window_start + tau_max + omega, "cts-rx"
            )
            pair_delay = safe_float(frame.pair_delay_s)
            if pair_delay is not None and pair_delay >= 0.0:
                bits = safe_bits(frame.info.get("data_bits"))
                duration = bits / bitrate
                data_start = self.timing.slot_start(slot + 2) + pair_delay
                self.tracker.protect(frame.dst, data_start, data_start + duration, "data-rx")
        elif frame.ftype is FrameType.CTS:
            tau = safe_float(frame.pair_delay_s)
            tau = tau if tau is not None and tau >= 0 else tau_max
            bits = safe_bits(frame.info.get("data_bits"))
            duration = bits / bitrate
            data_start = self.timing.slot_start(slot + 1) + tau
            self.tracker.protect(frame.src, data_start, data_start + duration, "data-rx")
            ack_slot = self.timing.ack_slot(slot + 1, duration, tau)
            ack_arrival = self.timing.slot_start(ack_slot) + tau
            self.tracker.protect(frame.dst, ack_arrival, ack_arrival + omega, "ack-rx")
        elif frame.ftype is FrameType.DATA:
            duration = frame.size_bits / bitrate
            self.tracker.protect(
                frame.dst, frame.timestamp, frame.timestamp + tau_max + duration, "data-rx"
            )
            ack_slot = self.timing.ack_slot(slot, duration, tau_max)
            ack_arrival = self.timing.slot_start(ack_slot)
            self.tracker.protect(
                frame.src, ack_arrival, ack_arrival + tau_max + omega, "ack-rx"
            )
        elif frame.ftype is FrameType.EXC:
            exdata_start = safe_float(frame.info.get("exdata_start"))
            bits = safe_bits(frame.info.get("data_bits"))
            if exdata_start is not None and exdata_start >= 0.0:
                duration = bits / bitrate
                self.tracker.protect(
                    frame.src,
                    float(exdata_start),
                    float(exdata_start) + tau_max + duration + omega,
                    "exdata-rx",
                )
        elif frame.ftype is FrameType.EXR:
            # The asking sensor must cleanly receive the EXC reply.
            self.tracker.protect(
                frame.src, self.sim.now, self.sim.now + 2.0 * tau_max + omega, "exc-rx"
            )

    def stop(self) -> None:  # noqa: D102 - cancel extra-phase events too
        super().stop()
        for context in (self._asking,):
            if context is not None:
                for event in (
                    context.exr_event,
                    context.exc_timeout,
                    context.exack_timeout,
                    context.exdata_event,
                ):
                    self.sim.cancel(event)
        if self._asked is not None:
            self.sim.cancel(self._asked.expiry_event)

    def _reset_protocol_state(self) -> None:  # noqa: D102 - crash/reboot wipe
        super()._reset_protocol_state()
        context = self._asking
        if context is not None:
            for event in (
                context.exr_event,
                context.exc_timeout,
                context.exack_timeout,
                context.exdata_event,
            ):
                self.sim.cancel(event)
        self._asking = None
        if self._asked is not None:
            self.sim.cancel(self._asked.expiry_event)
        self._asked = None
        self._cts_slot = None
        # A reboot restarts the Fig. 3 machine from Idle.
        self.fig3 = Fig3StateMachine(strict=False)

    def _audit_protocol_state(self, violations: List[str]) -> None:
        prefix = f"{self.name} node {self.node.node_id}"
        if self.state is MacState.EXTRA and self._asking is None:
            violations.append(f"{prefix}: EXTRA state without an asking context")
        context = self._asking
        if context is not None and not any(
            event is not None and event.pending
            for event in (
                context.exr_event,
                context.exc_timeout,
                context.exack_timeout,
                context.exdata_event,
            )
        ):
            violations.append(
                f"{prefix}: asking context (target {context.target}) with no live event"
            )
        if self._asked is not None and not (
            self._asked.expiry_event is not None and self._asked.expiry_event.pending
        ):
            violations.append(
                f"{prefix}: asked context (peer {self._asked.peer}) with no live expiry"
            )
