"""Neighbour-schedule tracking for interference-safe extra communications.

Paper Sec. 4.2: before sending an extra packet, sensor *i* "must consider
its other neighbors ... i should ensure that EXR arrives at those
neighbors in period V" and "EXData arrives at the other neighbors in the
period IV after they send Ack packets".  In other words, off-slot
transmissions are only allowed when their arrival at every known busy
neighbour misses that neighbour's *protected* reception windows.

:class:`NeighborScheduleTracker` stores, per neighbour, the time intervals
during which the neighbour must receive cleanly (derived by the protocol
from overheard RTS/CTS/Data frames).  :meth:`is_send_safe` then checks a
candidate off-slot transmission against every tracked window using the
sender's learned one-hop delays.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Tuple


class ProtectedInterval:
    """A window during which a neighbour must not receive foreign energy.

    A plain slotted class rather than a frozen dataclass: one is created
    per overheard negotiation frame per listener, and the frozen
    ``__setattr__`` detour tripled construction cost on that path.
    """

    __slots__ = ("start", "end", "reason")

    def __init__(self, start: float, end: float, reason: str = "") -> None:
        self.start = start
        self.end = end
        self.reason = reason

    def overlaps(self, start: float, end: float) -> bool:
        return self.start < end and self.end > start

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"ProtectedInterval({self.start!r}, {self.end!r}, {self.reason!r})"


class NeighborScheduleTracker:
    """Protected reception windows of a node's neighbours."""

    def __init__(self, owner_id: int) -> None:
        self.owner_id = owner_id
        self._windows: Dict[int, List[ProtectedInterval]] = {}
        # Earliest end time of any tracked window: purge() is called per
        # overheard frame, and scanning every neighbour's list each time
        # dominated the tracker's cost — nothing can have expired before
        # this watermark, so the common purge is one float compare.
        self._next_expiry = float("inf")

    def protect(self, node_id: int, start: float, end: float, reason: str = "") -> None:
        """Mark [start, end) as a protected reception window of ``node_id``."""
        if node_id == self.owner_id:
            return
        if end <= start:
            return
        self._windows.setdefault(node_id, []).append(ProtectedInterval(start, end, reason))
        if end < self._next_expiry:
            self._next_expiry = end

    def windows_of(self, node_id: int) -> List[ProtectedInterval]:
        return list(self._windows.get(node_id, []))

    def purge(self, now: float) -> None:
        """Drop windows that ended in the past.

        Purely a memory/speed measure: an expired window (``end <= now``)
        can never overlap a future send window, so when it fires has no
        effect on :meth:`is_send_safe` decisions.
        """
        if now < self._next_expiry:
            return
        next_expiry = float("inf")
        for node_id in list(self._windows):
            kept = [w for w in self._windows[node_id] if w.end > now]
            if kept:
                self._windows[node_id] = kept
                for w in kept:
                    if w.end < next_expiry:
                        next_expiry = w.end
            else:
                del self._windows[node_id]
        self._next_expiry = next_expiry

    def is_send_safe(
        self,
        send_time: float,
        duration: float,
        neighbor_delays: Mapping[int, float],
        exclude: Iterable[int] = (),
    ) -> bool:
        """Would an off-slot transmission disturb any tracked neighbour?

        Args:
            send_time: When the transmission starts.
            duration: Its on-air duration.
            neighbor_delays: Learned one-hop delays; only neighbours with a
                known delay can be (and are) checked — the paper's
                protocols can only reason about neighbours they know.
            exclude: Node ids exempt from the check (the extra peer itself,
                whose windows the peer-side grant logic validates).

        Returns:
            True if no known protected window is hit.
        """
        if duration < 0:
            raise ValueError("duration must be non-negative")
        excluded = set(exclude)
        for node_id, windows in self._windows.items():
            if node_id in excluded:
                continue
            delay = neighbor_delays.get(node_id)
            if delay is None:
                continue
            arrive_start = send_time + delay
            arrive_end = arrive_start + duration
            for window in windows:
                if window.overlaps(arrive_start, arrive_end):
                    return False
        return True

    def blocking_conflicts(
        self,
        send_time: float,
        duration: float,
        neighbor_delays: Mapping[int, float],
        exclude: Iterable[int] = (),
    ) -> List[Tuple[int, ProtectedInterval]]:
        """Diagnostic variant of :meth:`is_send_safe`: list every conflict."""
        excluded = set(exclude)
        conflicts = []
        for node_id, windows in self._windows.items():
            if node_id in excluded:
                continue
            delay = neighbor_delays.get(node_id)
            if delay is None:
                continue
            arrive_start = send_time + delay
            arrive_end = arrive_start + duration
            for window in windows:
                if window.overlaps(arrive_start, arrive_end):
                    conflicts.append((node_id, window))
        return conflicts

    def tracked_neighbors(self) -> List[int]:
        return sorted(self._windows.keys())

    def total_windows(self) -> int:
        return sum(len(w) for w in self._windows.values())
