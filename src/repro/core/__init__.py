"""Core contribution package: the EW-MAC protocol."""

from .ewmac import EwMac

__all__ = ["EwMac"]
