"""Performance instrumentation for the simulation hot loop.

The kernel and channel already count everything interesting — events
processed, wall time inside :meth:`Simulator.run`, broadcasts, deliveries,
link-state cache hits/misses.  This module snapshots those counters into a
:class:`PerfReport` per run and merges reports across sweep cells with
:class:`PerfAccumulator`, so the CLI's ``--profile`` flag and the benchmark
suite can print one coherent summary instead of poking subsystems.

None of this affects simulation results: reports are read-only snapshots
taken after a run finishes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover
    from .des.simulator import Simulator
    from .phy.channel import ChannelStats


@dataclass(frozen=True)
class PerfReport:
    """Counter snapshot of one finished simulation run.

    Attributes:
        sim_time_s: Simulated seconds covered by the run.
        wall_time_s: Wall-clock seconds spent inside the event loop.
        events: DES events processed.
        broadcasts: Channel broadcasts (one per transmitted frame).
        deliveries: Arrivals fanned out to in-reach receivers.
        out_of_range_skips: Receivers skipped as unreachable.
        cache_hits: Link-state cache lookups served from cache.
        cache_misses: Link-state cache lookups that recomputed geometry.
        vector_batches: Vectorized kernel passes (row builds + refreshes).
        rows_refreshed: Stale link-state rows partially recomputed (0 on a
            fully static run — every row is built once and stays warm).
        grid_candidates: Summed spatial-hash candidate-set sizes across
            broadcasts (divide by ``broadcasts`` for the mean scan width;
            equals ``broadcasts * (n - 1)`` with the grid disabled).
        rows_skipped_delta: Stale pair recomputes skipped by the
            movement-bounded delta-epoch test.
        rows_skipped_inreach: Stale pair recomputes skipped (or deferred)
            by the symmetric in-reach delta bound.
        bulk_pushes: Batched fan-out calls into the DES core's
            ``push_bulk`` (one per broadcast on the bulk path).
        bulk_events: Arrival events scheduled through those batches.
        grid_cells: Occupied spatial-hash cells at capture time (gauge;
            accumulated via max, not sum).
        checkpoints_taken: Cooperative checkpoints taken during the run
            (0 unless ``checkpoint_every_s`` was armed).
        resumes: How many times this run was restored from a checkpoint
            (0 for an uninterrupted run).
    """

    sim_time_s: float
    wall_time_s: float
    events: int
    broadcasts: int
    deliveries: int
    out_of_range_skips: int
    cache_hits: int
    cache_misses: int
    vector_batches: int = 0
    rows_refreshed: int = 0
    grid_candidates: int = 0
    rows_skipped_delta: int = 0
    grid_cells: int = 0
    rows_skipped_inreach: int = 0
    bulk_pushes: int = 0
    bulk_events: int = 0
    checkpoints_taken: int = 0
    resumes: int = 0

    @property
    def events_per_second(self) -> float:
        """Kernel throughput: events per wall-clock second."""
        return self.events / self.wall_time_s if self.wall_time_s > 0 else 0.0

    @property
    def broadcasts_per_second(self) -> float:
        """Channel throughput: broadcasts per wall-clock second."""
        return self.broadcasts / self.wall_time_s if self.wall_time_s > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float:
        """Fraction of link-state lookups served from cache (0 if none)."""
        lookups = self.cache_hits + self.cache_misses
        return self.cache_hits / lookups if lookups else 0.0

    @property
    def speedup_factor(self) -> float:
        """Simulated seconds per wall-clock second (real-time ratio)."""
        return self.sim_time_s / self.wall_time_s if self.wall_time_s > 0 else 0.0

    @classmethod
    def capture(
        cls,
        sim: "Simulator",
        channel_stats: "ChannelStats",
        sim_time_s: float,
        checkpoints_taken: int = 0,
        resumes: int = 0,
    ) -> "PerfReport":
        """Snapshot kernel + channel counters after a run."""
        return cls(
            checkpoints_taken=checkpoints_taken,
            resumes=resumes,
            sim_time_s=sim_time_s,
            wall_time_s=sim.wall_time_s,
            events=sim.events_processed,
            broadcasts=channel_stats.broadcasts,
            deliveries=channel_stats.deliveries,
            out_of_range_skips=channel_stats.out_of_range_skips,
            cache_hits=channel_stats.cache_hits,
            cache_misses=channel_stats.cache_misses,
            vector_batches=channel_stats.vector_batches,
            rows_refreshed=channel_stats.rows_refreshed,
            grid_candidates=channel_stats.grid_candidates,
            rows_skipped_delta=channel_stats.rows_skipped_delta,
            grid_cells=channel_stats.grid_cells,
            rows_skipped_inreach=channel_stats.rows_skipped_inreach,
            bulk_pushes=channel_stats.bulk_pushes,
            bulk_events=channel_stats.bulk_events,
        )

    def to_dict(self) -> Dict[str, float]:
        """Flat JSON-friendly form (benchmark exports, CI artifacts)."""
        return {
            "sim_time_s": self.sim_time_s,
            "wall_time_s": self.wall_time_s,
            "events": self.events,
            "events_per_second": self.events_per_second,
            "broadcasts": self.broadcasts,
            "broadcasts_per_second": self.broadcasts_per_second,
            "deliveries": self.deliveries,
            "out_of_range_skips": self.out_of_range_skips,
            "cache_hits": self.cache_hits,
            "cache_misses": self.cache_misses,
            "cache_hit_rate": self.cache_hit_rate,
            "vector_batches": self.vector_batches,
            "rows_refreshed": self.rows_refreshed,
            "grid_candidates": self.grid_candidates,
            "rows_skipped_delta": self.rows_skipped_delta,
            "rows_skipped_inreach": self.rows_skipped_inreach,
            "bulk_pushes": self.bulk_pushes,
            "bulk_events": self.bulk_events,
            "grid_cells": self.grid_cells,
            "checkpoints_taken": self.checkpoints_taken,
            "resumes": self.resumes,
            "speedup_factor": self.speedup_factor,
        }

    def summary_lines(self) -> List[str]:
        """Human-readable summary (printed by ``--profile``)."""
        return [
            f"simulated {self.sim_time_s:.1f} s in {self.wall_time_s:.3f} s wall "
            f"({self.speedup_factor:,.0f}x real time)",
            f"events: {self.events:,} ({self.events_per_second:,.0f}/s)",
            f"broadcasts: {self.broadcasts:,} ({self.broadcasts_per_second:,.0f}/s), "
            f"deliveries: {self.deliveries:,}, "
            f"out-of-range skips: {self.out_of_range_skips:,}",
            f"link cache: {self.cache_hits:,} hits / {self.cache_misses:,} misses "
            f"({self.cache_hit_rate:.1%} hit rate)",
            f"vector kernel: {self.vector_batches:,} batches, "
            f"{self.rows_refreshed:,} rows refreshed",
            f"spatial grid: {self.grid_cells:,} cells, "
            f"{self.grid_candidates / self.broadcasts if self.broadcasts else 0.0:,.1f} "
            f"mean candidates/broadcast, "
            f"{self.rows_skipped_delta:,} delta-epoch skips, "
            f"{self.rows_skipped_inreach:,} in-reach skips",
            f"bulk schedule: {self.bulk_pushes:,} pushes, "
            f"{self.bulk_events:,} events "
            f"({self.bulk_events / self.bulk_pushes if self.bulk_pushes else 0.0:,.1f} "
            f"per push)",
            f"fault tolerance: {self.checkpoints_taken:,} checkpoints taken, "
            f"{self.resumes:,} resumes",
        ]


@dataclass
class PerfAccumulator:
    """Merge :class:`PerfReport` snapshots across sweep cells.

    Wall times and counters add; rates are recomputed from the totals, so
    the merged report reads like one long run.
    """

    runs: int = 0
    _totals: Dict[str, float] = field(default_factory=dict)

    def add(self, report: PerfReport) -> None:
        self.runs += 1
        for key in (
            "sim_time_s",
            "wall_time_s",
            "events",
            "broadcasts",
            "deliveries",
            "out_of_range_skips",
            "cache_hits",
            "cache_misses",
            "vector_batches",
            "rows_refreshed",
            "grid_candidates",
            "rows_skipped_delta",
            "rows_skipped_inreach",
            "bulk_pushes",
            "bulk_events",
            "checkpoints_taken",
            "resumes",
        ):
            self._totals[key] = self._totals.get(key, 0) + getattr(report, key)
        # Occupied-cell count is a gauge, not a flow: keep the peak.
        self._totals["grid_cells"] = max(
            self._totals.get("grid_cells", 0), report.grid_cells
        )

    def merged(self) -> PerfReport:
        """Totals as a single report (zeros if nothing was added)."""
        totals = self._totals
        return PerfReport(
            sim_time_s=totals.get("sim_time_s", 0.0),
            wall_time_s=totals.get("wall_time_s", 0.0),
            events=int(totals.get("events", 0)),
            broadcasts=int(totals.get("broadcasts", 0)),
            deliveries=int(totals.get("deliveries", 0)),
            out_of_range_skips=int(totals.get("out_of_range_skips", 0)),
            cache_hits=int(totals.get("cache_hits", 0)),
            cache_misses=int(totals.get("cache_misses", 0)),
            vector_batches=int(totals.get("vector_batches", 0)),
            rows_refreshed=int(totals.get("rows_refreshed", 0)),
            grid_candidates=int(totals.get("grid_candidates", 0)),
            rows_skipped_delta=int(totals.get("rows_skipped_delta", 0)),
            grid_cells=int(totals.get("grid_cells", 0)),
            rows_skipped_inreach=int(totals.get("rows_skipped_inreach", 0)),
            bulk_pushes=int(totals.get("bulk_pushes", 0)),
            bulk_events=int(totals.get("bulk_events", 0)),
            checkpoints_taken=int(totals.get("checkpoints_taken", 0)),
            resumes=int(totals.get("resumes", 0)),
        )

    def summary_lines(self) -> List[str]:
        return [f"runs: {self.runs}"] + self.merged().summary_lines()

    def reset(self) -> None:
        self.runs = 0
        self._totals.clear()


#: Process-global accumulator: every finished scenario adds its report here
#: (a few dict updates per run).  The CLI's ``--profile`` flag forces serial
#: in-process execution, drains this, and prints the merged summary.
GLOBAL_PERF = PerfAccumulator()
