"""One-hop (and, for the baselines, two-hop) neighbour knowledge.

EW-MAC's stated overhead advantage (paper Sec. 4.3 and 5.3) is that each
sensor maintains *only* the propagation delay of its one-hop neighbours,
refreshed opportunistically from the timestamp carried in every received
packet: ``delay = arrival_time - frame.timestamp``.  No periodic two-hop
broadcasts are needed.

ROPA and CS-MAC, by contrast, "must maintain and transmit two-hop neighbor
information"; :class:`TwoHopTable` models that state, and the MAC layers
charge its periodic refresh traffic to the overhead accounting.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, List, Optional, Tuple


@dataclass
class NeighborInfo:
    """What a node knows about one neighbour."""

    node_id: int
    delay_s: float
    last_updated: float
    updates: int = 1


class NeighborTable:
    """Propagation-delay table for one-hop neighbours.

    Args:
        owner_id: The owning node's id (rejects self-entries).
        smoothing: EWMA weight on the newest measurement in (0, 1]; 1.0
            (default) means "trust the latest measurement", appropriate for
            slowly drifting topologies where the newest sample is best.
        staleness_s: Entries older than this are excluded from
            :meth:`fresh_neighbors` (None disables expiry).
    """

    def __init__(
        self,
        owner_id: int,
        smoothing: float = 1.0,
        staleness_s: Optional[float] = None,
    ) -> None:
        if not 0.0 < smoothing <= 1.0:
            raise ValueError("smoothing must be in (0, 1]")
        self.owner_id = owner_id
        self.smoothing = smoothing
        self.staleness_s = staleness_s
        self._entries: Dict[int, NeighborInfo] = {}

    def __len__(self) -> int:
        return len(self._entries)

    def __contains__(self, node_id: int) -> bool:
        return node_id in self._entries

    def observe(self, node_id: int, delay_s: float, now: float) -> None:
        """Record a delay measurement for ``node_id`` taken at ``now``.

        Called for every received frame: measurement = arrival start minus
        the frame's embedded timestamp (paper Sec. 4.3).
        """
        if node_id == self.owner_id:
            raise ValueError("a node is not its own neighbour")
        if delay_s < 0:
            raise ValueError(f"negative measured delay {delay_s!r}")
        entry = self._entries.get(node_id)
        if entry is None:
            self._entries[node_id] = NeighborInfo(node_id, delay_s, now)
        else:
            entry.delay_s += self.smoothing * (delay_s - entry.delay_s)
            entry.last_updated = now
            entry.updates += 1

    def delay_to(self, node_id: int) -> Optional[float]:
        """Known propagation delay to ``node_id``, or None if unknown."""
        entry = self._entries.get(node_id)
        return entry.delay_s if entry is not None else None

    def info(self, node_id: int) -> Optional[NeighborInfo]:
        return self._entries.get(node_id)

    def neighbors(self) -> List[int]:
        """All known neighbour ids (unordered)."""
        return list(self._entries.keys())

    def fresh_neighbors(self, now: float) -> List[int]:
        """Neighbour ids whose entries are within the staleness bound."""
        if self.staleness_s is None:
            return self.neighbors()
        return [
            nid
            for nid, e in self._entries.items()
            if now - e.last_updated <= self.staleness_s
        ]

    def max_delay_s(self) -> float:
        """Largest known neighbour delay (0.0 when table is empty)."""
        if not self._entries:
            return 0.0
        return max(e.delay_s for e in self._entries.values())

    def forget(self, node_id: int) -> None:
        self._entries.pop(node_id, None)

    def memory_entries(self) -> int:
        """Number of stored entries (overhead accounting)."""
        return len(self._entries)


class TwoHopTable:
    """Two-hop neighbourhood state maintained by ROPA and CS-MAC.

    Stores, per one-hop neighbour *n*, the set of *n*'s neighbours together
    with *n*'s delays to them (as last announced by *n*).  The owning MAC
    charges the periodic announcements that keep this fresh to its overhead.
    """

    def __init__(self, owner_id: int) -> None:
        self.owner_id = owner_id
        self._links: Dict[int, Dict[int, float]] = {}
        self._last_announce: Dict[int, float] = {}

    def record_announcement(
        self, neighbor_id: int, links: Iterable[Tuple[int, float]], now: float
    ) -> None:
        """Store neighbour ``neighbor_id``'s announced one-hop link delays.

        An announcement carries the neighbour's *complete current* table, so
        it replaces (not merges with) the previous announcement — otherwise
        mobility would make the stored two-hop state grow without bound.
        """
        table = {
            other: delay for other, delay in links if other != self.owner_id
        }
        self._links[neighbor_id] = table
        self._last_announce[neighbor_id] = now

    def links_of(self, neighbor_id: int) -> Dict[int, float]:
        """Announced link delays of one neighbour (empty dict if none)."""
        return dict(self._links.get(neighbor_id, {}))

    def delay_between(self, a: int, b: int) -> Optional[float]:
        """Announced delay of link a-b, from either endpoint's announcement."""
        if a in self._links and b in self._links[a]:
            return self._links[a][b]
        if b in self._links and a in self._links[b]:
            return self._links[b][a]
        return None

    def two_hop_ids(self) -> List[int]:
        """Every node reachable in exactly two announced hops."""
        seen = set()
        for neighbor_id, links in self._links.items():
            for other in links:
                if other != self.owner_id and other != neighbor_id:
                    seen.add(other)
        return sorted(seen)

    def memory_entries(self) -> int:
        """Stored link count (overhead accounting: CS-MAC/ROPA memory)."""
        return sum(len(links) for links in self._links.values())
