"""Sensor nodes.

A :class:`Node` ties together the pieces one underwater sensor owns: a
position in the water column, a half-duplex modem, a local clock, the
one-hop neighbour table, and a FIFO of application data waiting for the MAC
layer.  Sinks (surface buoys, paper Fig. 1) are ordinary nodes flagged
``is_sink``; they generate no traffic and terminate deliveries.
"""

from __future__ import annotations

import itertools
import threading
from collections import deque
from dataclasses import dataclass, field
from typing import Deque, Optional

_request_uids = itertools.count(1)
_request_uid_lock = threading.Lock()


def sample_request_uid_floor() -> int:
    """Consume and return one request uid as a checkpoint floor.

    Request uids only need to be *unique within one scenario run* (they
    feed the ``(src, uid)`` retransmission dedup key in the MAC layer);
    their absolute values never influence results.  A checkpoint records
    the value returned here so that :func:`advance_request_uids` in a
    fresh process — whose module counter restarted at 1 — can guarantee
    the resumed run never re-issues a uid the snapshot already used.
    """
    with _request_uid_lock:
        return next(_request_uids)


def advance_request_uids(floor: int) -> None:
    """Ensure future request uids are strictly greater than ``floor``."""
    global _request_uids
    with _request_uid_lock:
        current = next(_request_uids)
        _request_uids = itertools.count(max(current, int(floor)) + 1)

from ..acoustic.geometry import Position
from ..des.simulator import Simulator
from ..phy.channel import AcousticChannel
from ..phy.modem import AcousticModem
from .clock import NodeClock
from .neighbors import NeighborTable


@dataclass
class DataRequest:
    """One application packet waiting to be sent.

    Attributes:
        dst: Next-hop destination node id.
        size_bits: Payload size in bits.
        created_at: Enqueue time (for delay metrics).
        attempts: How many contention attempts this request has consumed.
    """

    dst: int
    size_bits: int
    created_at: float
    attempts: int = 0
    uid: int = field(default_factory=lambda: next(_request_uids))


@dataclass
class AppStats:
    """Application-level counters for one node."""

    generated: int = 0
    generated_bits: int = 0
    sent: int = 0
    sent_bits: int = 0
    delivered: int = 0
    delivered_bits: int = 0
    delivery_delay_total_s: float = 0.0
    queue_drops: int = 0
    last_sent_at: float = 0.0


class Node:
    """One sensor (or sink) in the network."""

    def __init__(
        self,
        sim: Simulator,
        node_id: int,
        position: Position,
        channel: AcousticChannel,
        is_sink: bool = False,
        queue_limit: int = 1000,
        clock: Optional[NodeClock] = None,
        neighbor_smoothing: float = 1.0,
    ) -> None:
        self.sim = sim
        self.node_id = node_id
        self._position = position
        self._channel = channel
        self.is_sink = is_sink
        self.queue_limit = queue_limit
        self.clock = clock if clock is not None else NodeClock(sim)
        self.neighbors = NeighborTable(node_id, smoothing=neighbor_smoothing)
        self.queue: Deque[DataRequest] = deque()
        self.app_stats = AppStats()
        self.modem: AcousticModem = channel.create_modem(node_id, self._get_position)
        self.mac = None  # attached by the MAC layer
        #: Fault-recovery bookkeeping: when the node last came back from a
        #: crash, and how long it took to complete its first application-
        #: level send/delivery afterwards (the time-to-recover metric).
        self.recovered_at: Optional[float] = None
        self.recovery_latency_s: Optional[float] = None

    # ------------------------------------------------------------------
    # Position (movement invalidates the channel's link-state cache)
    # ------------------------------------------------------------------
    def _get_position(self) -> Position:
        """Channel-facing position accessor.

        A named method rather than a lambda so the node graph — and with
        it the whole scenario — stays picklable for checkpoint/resume.
        """
        return self._position

    @property
    def position(self) -> Position:
        return self._position

    @position.setter
    def position(self, value: Position) -> None:
        """Move the node, bumping **this node's** position epoch.

        Every movement path (mobility models, tests poking positions)
        funnels through this setter, so cached pairwise link state can
        never go stale.  Passing the node id bumps only this node's epoch
        in the channel's per-node-epoch link cache: every pair not touching
        this node stays warm across the move.  The kernel also accumulates
        this node's *displacement* (distance between the old and new
        coordinates, from its own stored copy — no extra bookkeeping here)
        and re-bins it in the spatial hash, feeding the movement-bounded
        delta-epoch and reach-cull fast paths.  Assigning an equal position
        — e.g. a static-model step re-clamped to the same point — is not a
        move and keeps the cache warm.
        """
        if value != self._position:
            self._position = value
            self._channel.note_position_change(self.node_id)

    # ------------------------------------------------------------------
    # Application-side interface
    # ------------------------------------------------------------------
    def enqueue_data(self, dst: int, size_bits: int) -> bool:
        """Queue an application packet for the MAC; False if queue is full."""
        if dst == self.node_id:
            raise ValueError("cannot send to self")
        if size_bits <= 0:
            raise ValueError("size must be positive")
        self.app_stats.generated += 1
        self.app_stats.generated_bits += size_bits
        if len(self.queue) >= self.queue_limit:
            self.app_stats.queue_drops += 1
            return False
        self.queue.append(DataRequest(dst, size_bits, self.sim.now))
        if self.mac is not None:
            self.mac.notify_queue()
        return True

    def note_sent(self, request: DataRequest) -> None:
        """MAC callback: ``request`` was acknowledged by its next hop."""
        self.app_stats.sent += 1
        self.app_stats.sent_bits += request.size_bits
        self.app_stats.delivery_delay_total_s += self.sim.now - request.created_at
        self.app_stats.last_sent_at = self.sim.now
        self._note_recovery_progress()

    def note_delivered(self, size_bits: int) -> None:
        """MAC callback on the *receiver*: a data packet arrived intact."""
        self.app_stats.delivered += 1
        self.app_stats.delivered_bits += size_bits
        self._note_recovery_progress()

    def _note_recovery_progress(self) -> None:
        """First app-level success after a recovery fixes its latency."""
        if self.recovered_at is not None and self.recovery_latency_s is None:
            self.recovery_latency_s = self.sim.now - self.recovered_at

    # ------------------------------------------------------------------
    # Queue inspection used by MAC layers
    # ------------------------------------------------------------------
    @property
    def has_pending_data(self) -> bool:
        return bool(self.queue)

    def peek_request(self) -> Optional[DataRequest]:
        """Head-of-line request without removing it."""
        return self.queue[0] if self.queue else None

    def pop_request(self) -> DataRequest:
        """Remove and return the head-of-line request."""
        return self.queue.popleft()

    def pending_for(self, dst: int) -> Optional[DataRequest]:
        """First queued request destined to ``dst`` (ROPA reverse traffic)."""
        for request in self.queue:
            if request.dst == dst:
                return request
        return None

    def remove_request(self, request: DataRequest) -> None:
        """Remove a specific request (after out-of-order service)."""
        try:
            self.queue.remove(request)
        except ValueError:
            pass

    # ------------------------------------------------------------------
    # Failure injection
    # ------------------------------------------------------------------
    @property
    def alive(self) -> bool:
        return self.modem.enabled

    def fail(self) -> None:
        """Kill the node: stop its MAC and silence its modem.

        Queued data is lost with the node (it sank, flooded, or ran out of
        battery); the rest of the network must route around it.
        """
        if not self.alive:
            return  # already down; a second fail must not double-stop
        if self.mac is not None:
            self.mac.stop()
        self.modem.enabled = False
        self.queue.clear()

    def recover(self) -> None:
        """Bring a failed node back: re-enable the modem, restart the MAC.

        The node rejoins with an empty queue and wiped handshake state (a
        reboot, not a resume) and re-announces itself with a fresh Hello.
        Time-to-recover is measured from this instant to the node's first
        successful application-level send or delivery.
        """
        if self.alive:
            return
        self.modem.enabled = True
        self.modem.tx_enabled = True
        self.modem.rx_enabled = True
        self.recovered_at = self.sim.now
        self.recovery_latency_s = None
        if self.mac is not None:
            self.mac.restart()

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        kind = "sink" if self.is_sink else "node"
        return f"<{kind} {self.node_id} depth={self.position.z:.0f}m q={len(self.queue)}>"
