"""Network substrate: nodes, clocks, neighbour knowledge, aggregation."""

from .aggregation import AggregationStats, ReadingAggregator
from .clock import NodeClock
from .neighbors import NeighborInfo, NeighborTable, TwoHopTable
from .node import AppStats, DataRequest, Node

__all__ = [
    "AggregationStats",
    "AppStats",
    "DataRequest",
    "NeighborInfo",
    "NeighborTable",
    "Node",
    "NodeClock",
    "ReadingAggregator",
    "TwoHopTable",
]
