"""Per-node clocks.

The paper assumes network-wide synchronization (via protocols such as
DA-Sync, its refs [20-22]).  :class:`NodeClock` defaults to a perfect clock
but supports a constant offset and a drift rate so the test suite and the
robustness ablations can quantify EW-MAC's sensitivity to imperfect sync —
the slotted design depends on nodes agreeing on slot boundaries.
"""

from __future__ import annotations

from typing import Optional

from ..des.simulator import Simulator


class NodeClock:
    """A node's local view of time.

    local = true * (1 + drift_ppm * 1e-6) + offset
    """

    def __init__(self, sim: Simulator, offset_s: float = 0.0, drift_ppm: float = 0.0) -> None:
        self.sim = sim
        self.offset_s = offset_s
        self.drift_ppm = drift_ppm

    @property
    def perfect(self) -> bool:
        return self.offset_s == 0.0 and self.drift_ppm == 0.0

    def now(self) -> float:
        """Current local time."""
        return self.to_local(self.sim.now)

    def to_local(self, true_time: float) -> float:
        """Map a true simulation time to this node's local time."""
        return true_time * (1.0 + self.drift_ppm * 1e-6) + self.offset_s

    def to_true(self, local_time: float) -> float:
        """Map a local time back to true simulation time."""
        return (local_time - self.offset_s) / (1.0 + self.drift_ppm * 1e-6)

    def delay_until_local(self, local_time: float) -> float:
        """Seconds of true time from now until ``local_time`` (>= 0)."""
        return max(0.0, self.to_true(local_time) - self.sim.now)

    def apply_fault(
        self, offset_jump_s: float = 0.0, drift_ppm: Optional[float] = None
    ) -> None:
        """Degrade synchronization mid-run (fault injection).

        Continuity-preserving apart from the jump: local time immediately
        after the fault equals local time immediately before plus
        ``offset_jump_s``, regardless of any drift change — the offset is
        re-anchored so a new drift rate only affects the future, not the
        node's past local timeline.
        """
        local_now = self.to_local(self.sim.now)
        if drift_ppm is not None:
            self.drift_ppm = drift_ppm
        self.offset_s = (
            local_now + offset_jump_s - self.sim.now * (1.0 + self.drift_ppm * 1e-6)
        )
