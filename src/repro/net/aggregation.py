"""Application-layer reading aggregation.

Paper Sec. 2: "to reduce the effect of long propagation delay, the number
of transmissions should be reduced as much as possible.  Thus, data should
be collected and then transmitted when the amount of data is sufficient;
thus, a large packet size may be more suitable for UASNs."

:class:`ReadingAggregator` implements that guidance at the application
layer: small sensor readings accumulate in a buffer and are flushed to the
MAC as one large data packet when either the size threshold is reached or
the age limit expires (monitoring data must not go stale indefinitely).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Optional

from ..des.events import Event
from ..des.simulator import Simulator
from ..net.node import Node


@dataclass
class AggregationStats:
    """Counters for one node's aggregator."""

    readings: int = 0
    reading_bits: int = 0
    flushes: int = 0
    flushed_bits: int = 0
    size_flushes: int = 0
    age_flushes: int = 0

    @property
    def mean_flush_bits(self) -> float:
        return self.flushed_bits / self.flushes if self.flushes else 0.0


class ReadingAggregator:
    """Coalesce small readings into large MAC packets.

    Args:
        sim: Simulation kernel (drives the age timer).
        node: Owning node; flushed packets are enqueued on it.
        next_hop_fn: Resolves the current next hop at flush time (depth
            routing), so buffered data follows topology changes.
        flush_bits: Flush when the buffer reaches this size (paper range:
            1024-4096 bits; headers are included in the flushed packet).
        max_age_s: Flush a non-empty buffer at this age even if small.
        header_bits: Per-packet framing overhead added at flush.
    """

    def __init__(
        self,
        sim: Simulator,
        node: Node,
        next_hop_fn: Callable[[], Optional[int]],
        flush_bits: int = 2048,
        max_age_s: float = 120.0,
        header_bits: int = 64,
    ) -> None:
        if flush_bits <= header_bits:
            raise ValueError("flush size must exceed the header")
        if max_age_s <= 0:
            raise ValueError("max age must be positive")
        self.sim = sim
        self.node = node
        self.next_hop_fn = next_hop_fn
        self.flush_bits = flush_bits
        self.max_age_s = max_age_s
        self.header_bits = header_bits
        self.stats = AggregationStats()
        self._buffered_bits = 0
        self._age_timer: Optional[Event] = None

    @property
    def buffered_bits(self) -> int:
        return self._buffered_bits

    def add_reading(self, bits: int) -> None:
        """Buffer one sensor reading; flush if the threshold is reached."""
        if bits <= 0:
            raise ValueError("reading size must be positive")
        self.stats.readings += 1
        self.stats.reading_bits += bits
        if self._buffered_bits == 0:
            self._age_timer = self.sim.schedule(self.max_age_s, self._on_age)
        self._buffered_bits += bits
        if self._buffered_bits + self.header_bits >= self.flush_bits:
            self._flush(by_age=False)

    def _on_age(self) -> None:
        self._age_timer = None
        if self._buffered_bits > 0:
            self._flush(by_age=True)

    def _flush(self, by_age: bool) -> None:
        self.sim.cancel(self._age_timer)
        self._age_timer = None
        next_hop = self.next_hop_fn()
        if next_hop is None:
            # stranded: keep buffering; retry at the next age expiry
            self._age_timer = self.sim.schedule(self.max_age_s, self._on_age)
            return
        packet_bits = self._buffered_bits + self.header_bits
        self._buffered_bits = 0
        self.node.enqueue_data(next_hop, packet_bits)
        self.stats.flushes += 1
        self.stats.flushed_bits += packet_bits
        if by_age:
            self.stats.age_flushes += 1
        else:
            self.stats.size_flushes += 1

    def flush_now(self) -> None:
        """Force a flush (e.g. an urgent event); no-op on an empty buffer."""
        if self._buffered_bits > 0:
            self._flush(by_age=False)
