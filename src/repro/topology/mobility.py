"""Node mobility.

The paper's simulations use three location models — "non-moved, moved
horizontal, or moved vertical", with each sensor's model chosen at random —
and note that the protocol assumes *stable relations*: positions drift
slowly with currents, so maintained propagation delays stay approximately
valid between refreshes.

Each mobility model is a small stateful stepper; :class:`MobilityManager`
assigns one per node, advances them on a fixed period, and keeps nodes
inside the deployment region and (optionally) within a tether radius of
their deployment point so connectivity is preserved.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Sequence

import numpy as np

from ..acoustic.geometry import Position
from ..des.simulator import Simulator
from ..net.node import Node
from .deployment import DeploymentConfig

#: Typical slow current speed (m/s) used for drifting sensors.
DEFAULT_DRIFT_SPEED_MPS = 0.5
#: Default position-update period (s).
DEFAULT_UPDATE_PERIOD_S = 5.0
#: Default tether radius: how far a node may wander from its anchor (m).
DEFAULT_TETHER_M = 300.0


class MobilityModel:
    """Interface: produce the node's next position after ``dt`` seconds."""

    def step(self, current: Position, dt: float) -> Position:
        raise NotImplementedError


@dataclass
class StaticModel(MobilityModel):
    """The paper's "non-moved" model."""

    def step(self, current: Position, dt: float) -> Position:
        return current


class HorizontalDriftModel(MobilityModel):
    """"Moved horizontal": drift with a slowly rotating current heading."""

    def __init__(self, rng: np.random.Generator, speed_mps: float = DEFAULT_DRIFT_SPEED_MPS):
        self._rng = rng
        self.speed_mps = speed_mps
        self._heading = float(rng.uniform(0.0, 2.0 * math.pi))

    def step(self, current: Position, dt: float) -> Position:
        # Heading performs a slow random walk (current meander).
        self._heading += float(self._rng.normal(0.0, 0.1))
        dx = self.speed_mps * dt * math.cos(self._heading)
        dy = self.speed_mps * dt * math.sin(self._heading)
        return current.translated(dx=dx, dy=dy)


class VerticalOscillationModel(MobilityModel):
    """"Moved vertical": buoyancy-driven sinusoidal depth oscillation."""

    def __init__(
        self,
        rng: np.random.Generator,
        amplitude_m: float = 100.0,
        period_s: float = 120.0,
    ):
        self._rng = rng
        self.amplitude_m = amplitude_m
        self.period_s = period_s
        self._phase = float(rng.uniform(0.0, 2.0 * math.pi))
        self._elapsed = 0.0
        self._last_offset = math.sin(self._phase) * amplitude_m

    def step(self, current: Position, dt: float) -> Position:
        self._elapsed += dt
        offset = (
            math.sin(self._phase + 2.0 * math.pi * self._elapsed / self.period_s)
            * self.amplitude_m
        )
        dz = offset - self._last_offset
        self._last_offset = offset
        return current.translated(dz=dz)


#: Names accepted by :class:`MobilityManager` model mixes.
MODEL_NAMES = ("static", "horizontal", "vertical")


class MobilityManager:
    """Assigns a mobility model per node and advances them periodically.

    Args:
        sim: Simulation kernel (drives the update timer).
        nodes: Nodes to move; sinks are always kept static.
        config: Deployment geometry (for boundary clamping).
        rng: RNG for model assignment and model internals.
        model_mix: Probability of each model, in MODEL_NAMES order.
        update_period_s: How often positions are stepped.
        tether_m: Maximum wander distance from the deployment anchor
            (None disables tethering).
    """

    def __init__(
        self,
        sim: Simulator,
        nodes: Sequence[Node],
        config: DeploymentConfig,
        rng: Optional[np.random.Generator] = None,
        model_mix: Sequence[float] = (1.0 / 3.0, 1.0 / 3.0, 1.0 / 3.0),
        update_period_s: float = DEFAULT_UPDATE_PERIOD_S,
        tether_m: Optional[float] = DEFAULT_TETHER_M,
    ) -> None:
        if len(model_mix) != 3:
            raise ValueError("model_mix needs 3 probabilities (static/horizontal/vertical)")
        total = sum(model_mix)
        if total <= 0:
            raise ValueError("model_mix must sum to a positive value")
        mix = [p / total for p in model_mix]
        self.sim = sim
        self.nodes = list(nodes)
        self.config = config
        self.update_period_s = update_period_s
        self.tether_m = tether_m
        self._rng = rng if rng is not None else sim.streams.get("mobility")
        self._anchors: Dict[int, Position] = {n.node_id: n.position for n in self.nodes}
        self._models: Dict[int, MobilityModel] = {}
        self.assignments: Dict[int, str] = {}
        for node in self.nodes:
            if node.is_sink:
                name = "static"
            else:
                name = MODEL_NAMES[int(self._rng.choice(3, p=mix))]
            self.assignments[node.node_id] = name
            self._models[node.node_id] = self._make_model(name)
        self._timer = None

    def _make_model(self, name: str) -> MobilityModel:
        if name == "static":
            return StaticModel()
        if name == "horizontal":
            return HorizontalDriftModel(self._rng)
        if name == "vertical":
            return VerticalOscillationModel(self._rng)
        raise ValueError(f"unknown mobility model {name!r}")

    def start(self) -> None:
        """Begin periodic position updates."""
        self._timer = self.sim.schedule(self.update_period_s, self._tick)

    def stop(self) -> None:
        self.sim.cancel(self._timer)
        self._timer = None

    def _tick(self) -> None:
        self.step(self.update_period_s)
        self._timer = self.sim.schedule(self.update_period_s, self._tick)

    def step(self, dt: float) -> None:
        """Advance every node once by ``dt`` (public for tests).

        Each assignment to ``node.position`` routes through the node's
        setter, which bumps *that node's* position epoch in the owning
        channel's per-node-epoch link cache — only pairs touching a moved
        node are recomputed, so a tick that drifts a handful of nodes
        leaves the rest of the deployment's link state warm.  Static-model
        nodes are skipped outright: they cannot move, and not touching
        their positions keeps their epochs (and an all-static deployment's
        entire cache) untouched across ticks.
        """
        x_range = (0.0, self.config.side_x_m)
        y_range = (0.0, self.config.side_y_m)
        z_range = (0.0, self.config.depth_m)
        for node in self.nodes:
            model = self._models[node.node_id]
            if type(model) is StaticModel:
                continue
            new_pos = model.step(node.position, dt).clamped(x_range, y_range, z_range)
            anchor = self._anchors[node.node_id]
            if self.tether_m is not None and new_pos.distance_to(anchor) > self.tether_m:
                # Pull back onto the tether sphere: keeps "stable relations"
                # between neighbours, per the paper's applicability note.
                scale = self.tether_m / new_pos.distance_to(anchor)
                new_pos = Position(
                    anchor.x + (new_pos.x - anchor.x) * scale,
                    anchor.y + (new_pos.y - anchor.y) * scale,
                    anchor.z + (new_pos.z - anchor.z) * scale,
                ).clamped(x_range, y_range, z_range)
            node.position = new_pos
