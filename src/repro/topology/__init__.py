"""Deployment, mobility and routing for the paper's Fig. 1 topology."""

from .deployment import (
    DEFAULT_RANGE_M,
    DEFAULT_SIDE_M,
    REFERENCE_NODE_COUNT,
    Deployment,
    DeploymentConfig,
    connected_column_deployment,
    density_link_scale,
    uniform_deployment,
)
from .mobility import (
    DEFAULT_DRIFT_SPEED_MPS,
    DEFAULT_TETHER_M,
    DEFAULT_UPDATE_PERIOD_S,
    MODEL_NAMES,
    HorizontalDriftModel,
    MobilityManager,
    MobilityModel,
    StaticModel,
    VerticalOscillationModel,
)
from .routing import MIN_DEPTH_GAIN_M, DepthRouting

__all__ = [
    "DEFAULT_DRIFT_SPEED_MPS",
    "DEFAULT_RANGE_M",
    "DEFAULT_SIDE_M",
    "DEFAULT_TETHER_M",
    "DEFAULT_UPDATE_PERIOD_S",
    "Deployment",
    "DeploymentConfig",
    "DepthRouting",
    "HorizontalDriftModel",
    "MIN_DEPTH_GAIN_M",
    "MODEL_NAMES",
    "MobilityManager",
    "MobilityModel",
    "REFERENCE_NODE_COUNT",
    "StaticModel",
    "VerticalOscillationModel",
    "connected_column_deployment",
    "density_link_scale",
    "uniform_deployment",
]
