"""Node deployment in the monitored volume.

The paper's environment (Table 2): a 1000 km^3 region with 60-200 sensors,
1.5 km communication range, surface sinks, and the Fig. 1 structure —
"sensors at greater depths transmit packets to sensors closer to the
surface" via multi-hop paths.

Two generators are provided:

* :func:`uniform_deployment` — i.i.d. uniform placement.  At the paper's
  density (60 nodes / 1000 km^3, 1.5 km range) a uniform draw is almost
  surely disconnected, so this is mainly useful for unit tests and for
  studying sparse regimes.
* :func:`connected_column_deployment` — the default for experiments: sinks
  float at the surface and every sensor is placed within communication
  range of (and deeper than) an already-placed node, yielding the connected
  multi-hop water-column topology of Fig. 1.  Link lengths shrink as the
  node count grows (``(n_ref / n)^(1/3)``), reproducing the paper's
  "increasing sensor density will reduce propagation delay between
  sensors" effect that drives Fig. 7.
* :func:`tiled_column_deployment` — the constant-density *scaling* shape:
  one connected column per sink, tiled over the horizontal plane.  The
  single-column generator keeps its cloud within a couple of communication
  ranges of the root regardless of ``n`` (its link scale shrinks as the
  count grows), so growing ``n_sensors`` inside one column *densifies*
  toward a clique instead of covering a larger region.  Monitoring more
  ocean at the same sensor density means deploying more columns, and this
  generator models exactly that — which is also the regime where spatial
  reach culling has structure to exploit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Optional

import numpy as np

from ..acoustic.geometry import Position

#: Paper Table 2: 1000 km^3 volume, modelled as a 10 x 10 x 10 km cube.
DEFAULT_SIDE_M = 10_000.0
DEFAULT_RANGE_M = 1500.0
#: Reference node count for the density scaling (paper's default n).
REFERENCE_NODE_COUNT = 60


@dataclass(frozen=True)
class DeploymentConfig:
    """Geometry of a deployment.

    Attributes:
        n_sensors: Number of sensing nodes (excludes sinks).
        n_sinks: Number of surface sinks.
        side_x_m / side_y_m: Horizontal extent of the region.
        depth_m: Maximum depth of the region.
        comm_range_m: Communication range used for connectivity.
        seed: Seed for the placement RNG.
    """

    n_sensors: int = 60
    n_sinks: int = 1
    side_x_m: float = DEFAULT_SIDE_M
    side_y_m: float = DEFAULT_SIDE_M
    depth_m: float = DEFAULT_SIDE_M
    comm_range_m: float = DEFAULT_RANGE_M
    seed: int = 0

    def volume_km3(self) -> float:
        return (self.side_x_m * self.side_y_m * self.depth_m) / 1e9


@dataclass
class Deployment:
    """A realized deployment: positions plus which ids are sinks.

    Node ids are indices into :attr:`positions`; sinks come first.
    """

    config: DeploymentConfig
    positions: List[Position]
    sink_ids: List[int]

    @property
    def sensor_ids(self) -> List[int]:
        return [i for i in range(len(self.positions)) if i not in set(self.sink_ids)]

    @property
    def n_nodes(self) -> int:
        return len(self.positions)

    def neighbors_of(self, node_id: int, range_m: Optional[float] = None) -> List[int]:
        """Ids within communication range of ``node_id``."""
        reach = range_m if range_m is not None else self.config.comm_range_m
        origin = self.positions[node_id]
        return [
            other
            for other, pos in enumerate(self.positions)
            if other != node_id and origin.distance_to(pos) <= reach
        ]

    def mean_degree(self) -> float:
        """Average one-hop neighbour count (density diagnostic)."""
        if not self.positions:
            return 0.0
        total = sum(len(self.neighbors_of(i)) for i in range(self.n_nodes))
        return total / self.n_nodes

    def mean_link_distance_m(self) -> float:
        """Mean distance over all in-range pairs (drives waiting resources)."""
        distances = []
        for i in range(self.n_nodes):
            origin = self.positions[i]
            for j in self.neighbors_of(i):
                if j > i:
                    distances.append(origin.distance_to(self.positions[j]))
        return float(np.mean(distances)) if distances else 0.0

    def is_connected(self) -> bool:
        """True if every sensor can reach some sink over in-range hops."""
        if not self.sink_ids:
            return False
        reachable = set(self.sink_ids)
        frontier = list(self.sink_ids)
        while frontier:
            current = frontier.pop()
            for other in self.neighbors_of(current):
                if other not in reachable:
                    reachable.add(other)
                    frontier.append(other)
        return len(reachable) == self.n_nodes


def _sink_positions(config: DeploymentConfig, rng: np.random.Generator) -> List[Position]:
    """Sinks float on the surface, spread over the region."""
    sinks = []
    for _ in range(config.n_sinks):
        sinks.append(
            Position(
                float(rng.uniform(0.25, 0.75) * config.side_x_m),
                float(rng.uniform(0.25, 0.75) * config.side_y_m),
                0.0,
            )
        )
    return sinks


def uniform_deployment(config: DeploymentConfig) -> Deployment:
    """I.i.d. uniform sensor placement (sinks still at the surface)."""
    rng = np.random.default_rng(config.seed)
    positions = _sink_positions(config, rng)
    for _ in range(config.n_sensors):
        positions.append(
            Position(
                float(rng.uniform(0, config.side_x_m)),
                float(rng.uniform(0, config.side_y_m)),
                float(rng.uniform(0, config.depth_m)),
            )
        )
    return Deployment(config, positions, list(range(config.n_sinks)))


def density_link_scale(n_sensors: int, reference: int = REFERENCE_NODE_COUNT) -> float:
    """Link-length scale factor for a given sensor count.

    Denser networks pack the same volume with shorter links:
    ``(reference / n)^(1/3)``, the scaling of nearest-neighbour distance in
    a 3-D Poisson process.
    """
    if n_sensors <= 0:
        raise ValueError("n_sensors must be positive")
    return (reference / n_sensors) ** (1.0 / 3.0)


def connected_column_deployment(config: DeploymentConfig) -> Deployment:
    """Connected water-column deployment (paper Fig. 1 shape).

    Every sensor is attached below an already-placed node at a link
    distance in ``[0.45, 0.95] * comm_range * density_scale``, with random
    azimuth and a downward depth bias.  The result is connected by
    construction and gets denser (shorter links) as ``n_sensors`` grows.
    """
    rng = np.random.default_rng(config.seed)
    positions = _sink_positions(config, rng)
    scale = density_link_scale(config.n_sensors)
    x_range = (0.0, config.side_x_m)
    y_range = (0.0, config.side_y_m)
    z_range = (0.0, config.depth_m)
    for _ in range(config.n_sensors):
        parent = positions[int(rng.integers(0, len(positions)))]
        link = float(rng.uniform(0.45, 0.95)) * config.comm_range_m * scale
        link = min(link, config.comm_range_m * 0.98)
        azimuth = float(rng.uniform(0.0, 2.0 * math.pi))
        # Downward bias: polar angle in [15, 75] degrees below horizontal.
        dip = float(rng.uniform(math.radians(15.0), math.radians(75.0)))
        dx = link * math.cos(dip) * math.cos(azimuth)
        dy = link * math.cos(dip) * math.sin(azimuth)
        dz = link * math.sin(dip)
        candidate = parent.translated(dx, dy, dz).clamped(x_range, y_range, z_range)
        # Clamping can push the node out of the parent's range at the region
        # boundary; fall back to a point between parent and the candidate.
        if candidate.distance_to(parent) > config.comm_range_m:
            candidate = parent.midpoint(candidate)
        positions.append(candidate)
    return Deployment(config, positions, list(range(config.n_sinks)))


def tiled_column_deployment(config: DeploymentConfig) -> Deployment:
    """One connected column per sink, tiled over the horizontal plane.

    The region is split into an approximately square ``n_sinks``-block
    horizontal grid; each block gets one surface sink and an equal share of
    the sensors, placed by :func:`connected_column_deployment` inside the
    block (full depth range) and offset to the block's origin.  Sinks keep
    the ids-first contract (ids ``0 .. n_sinks - 1``).

    With ``n_sinks`` scaled as ``n_sensors / 60`` and the region sides as
    ``(n_sensors / 60)^(1/3)``, every column is a Table-2-like 60-node
    cluster and the *global* node density genuinely stays constant as the
    network grows — unlike growing a single column, whose cloud stays put
    and densifies.  Per-column placement draws from independent derived
    seeds, so a column's geometry depends only on the root seed and its
    block index.
    """
    k = max(1, config.n_sinks)
    grid_x = int(math.ceil(math.sqrt(k)))
    grid_y = int(math.ceil(k / grid_x))
    block_x_m = config.side_x_m / grid_x
    block_y_m = config.side_y_m / grid_y
    base, extra = divmod(config.n_sensors, k)
    rng = np.random.default_rng(config.seed)
    sub_seeds = rng.integers(0, 2**31 - 1, size=k)
    sink_positions: List[Position] = []
    sensor_positions: List[Position] = []
    for block in range(k):
        bx = (block % grid_x) * block_x_m
        by = (block // grid_x) * block_y_m
        sub = connected_column_deployment(
            DeploymentConfig(
                n_sensors=base + (1 if block < extra else 0),
                n_sinks=1,
                side_x_m=block_x_m,
                side_y_m=block_y_m,
                depth_m=config.depth_m,
                comm_range_m=config.comm_range_m,
                seed=int(sub_seeds[block]),
            )
        )
        shifted = [Position(p.x + bx, p.y + by, p.z) for p in sub.positions]
        sink_positions.append(shifted[0])
        sensor_positions.extend(shifted[1:])
    return Deployment(
        config, sink_positions + sensor_positions, list(range(k))
    )
