"""Depth-based next-hop selection.

The paper's traffic pattern (Fig. 1): "sensors at greater depths transmit
packets to sensors closer to the surface", hop by hop, until a surface sink
is reached.  Routing is not the paper's contribution, so we implement the
simplest faithful policy: among current in-range neighbours that are
strictly shallower, prefer the one making the most progress toward the
nearest sink; fall back to the shallowest neighbour.

The router reads ground-truth positions from the channel so that mobility
is reflected; the MAC layers themselves only ever use *learned* one-hop
delays, as the paper requires.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..phy.channel import AcousticChannel

#: Minimum depth improvement (m) for a neighbour to count as "shallower";
#: avoids routing loops between nodes at nearly equal depth.
MIN_DEPTH_GAIN_M = 1.0


class DepthRouting:
    """Greedy shallower-neighbour routing toward surface sinks."""

    def __init__(self, channel: AcousticChannel, sink_ids: Sequence[int]) -> None:
        if not sink_ids:
            raise ValueError("at least one sink required")
        self.channel = channel
        self.sink_ids = list(sink_ids)

    def _distance_to_nearest_sink(self, node_id: int) -> float:
        pos = self.channel.position_of(node_id)
        return min(pos.distance_to(self.channel.position_of(s)) for s in self.sink_ids)

    def next_hop(self, node_id: int) -> Optional[int]:
        """Best next hop for ``node_id`` right now, or None if stranded.

        Preference order:
        1. a sink directly in range;
        2. the in-range neighbour that is strictly shallower and closest to
           a sink;
        3. None (no shallower neighbour; the caller should retry later —
           mobility may restore a path).
        """
        neighbors = self.channel.neighbors_of(node_id)
        if not neighbors:
            return None
        in_range_sinks = [n for n in neighbors if n in self.sink_ids]
        if in_range_sinks:
            pos = self.channel.position_of(node_id)
            return min(
                in_range_sinks,
                key=lambda s: pos.distance_to(self.channel.position_of(s)),
            )
        own_depth = self.channel.position_of(node_id).z
        shallower = [
            n
            for n in neighbors
            if self.channel.position_of(n).z <= own_depth - MIN_DEPTH_GAIN_M
        ]
        if not shallower:
            return None
        return min(shallower, key=self._distance_to_nearest_sink)

    def route_to_sink(self, node_id: int, max_hops: int = 256) -> List[int]:
        """Full greedy path from ``node_id`` to a sink (diagnostics only).

        Returns the hop list ending at a sink, or the partial path if the
        greedy walk strands or exceeds ``max_hops``.
        """
        path = [node_id]
        current = node_id
        for _ in range(max_hops):
            if current in self.sink_ids:
                return path
            nxt = self.next_hop(current)
            if nxt is None or nxt in path:
                return path
            path.append(nxt)
            current = nxt
        return path

    def stranded_nodes(self) -> List[int]:
        """Nodes (excluding sinks) that currently have no next hop."""
        return [
            n
            for n in self.channel.node_ids
            if n not in self.sink_ids and self.next_hop(n) is None
        ]
