"""Deterministic per-component random number streams.

Every stochastic component of the simulation (topology placement, traffic
arrivals, MAC backoff, channel fading, mobility, ...) draws from its own
named stream derived from a single root seed.  Adding a new component or
reordering draws inside one component therefore never perturbs the others,
which keeps cross-protocol comparisons paired: S-FAMA and EW-MAC see the
same deployments and the same traffic arrival times for a given seed.
"""

from __future__ import annotations

import hashlib
from typing import Dict

import numpy as np


def derive_seed(root_seed: int, name: str) -> int:
    """Derive a 63-bit child seed from ``root_seed`` and a stream ``name``.

    Uses SHA-256 so the mapping is stable across Python versions and
    processes (``hash()`` is salted and unsuitable).
    """
    digest = hashlib.sha256(f"{root_seed}/{name}".encode("utf-8")).digest()
    return int.from_bytes(digest[:8], "big") >> 1


class RandomStreams:
    """A registry of named, independently seeded NumPy generators.

    Example:
        >>> streams = RandomStreams(seed=7)
        >>> traffic = streams.get("traffic")
        >>> backoff = streams.get("mac.backoff")
        >>> traffic is streams.get("traffic")
        True
    """

    def __init__(self, seed: int) -> None:
        self.seed = int(seed)
        self._streams: Dict[str, np.random.Generator] = {}

    def get(self, name: str) -> np.random.Generator:
        """Return the generator for ``name``, creating it on first use."""
        gen = self._streams.get(name)
        if gen is None:
            gen = np.random.default_rng(derive_seed(self.seed, name))
            self._streams[name] = gen
        return gen

    def spawn(self, name: str) -> "RandomStreams":
        """Return a child registry whose streams are namespaced by ``name``."""
        return RandomStreams(derive_seed(self.seed, f"spawn/{name}"))
