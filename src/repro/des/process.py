"""Generator-based processes on top of the callback kernel.

A process is a Python generator that yields :class:`Delay` (or a plain
number of seconds).  The adapter resumes the generator when the delay
elapses.  This style suits strictly sequential components such as traffic
sources::

    def source(sim, node, mean_gap):
        rng = sim.streams.get(f"traffic.{node.node_id}")
        while True:
            yield Delay(rng.exponential(mean_gap))
            node.enqueue_data()

    Process(sim, source(sim, node, 2.0))

Processes may also yield :class:`WaitSignal` to block on a named
:class:`Signal` that another component fires.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Generator, List, Optional, Union

from .errors import SimulationError
from .events import Event
from .simulator import Simulator


@dataclass(frozen=True)
class Delay:
    """Yield value: resume the process after ``seconds`` of virtual time."""

    seconds: float


class Signal:
    """A broadcast condition processes can wait on.

    :meth:`fire` wakes every currently waiting process with an optional
    payload (delivered as the value of the ``yield``).
    """

    def __init__(self, sim: Simulator, name: str = "") -> None:
        self._sim = sim
        self.name = name
        self._waiters: List["Process"] = []
        self.fire_count = 0

    def fire(self, payload: Any = None) -> int:
        """Wake all waiters; returns how many processes were woken."""
        waiters, self._waiters = self._waiters, []
        self.fire_count += 1
        for proc in waiters:
            # Wake at the current instant; scheduling (rather than resuming
            # inline) keeps the event ordering uniform and re-entrancy safe.
            self._sim.schedule(0.0, proc._resume, payload)
        return len(waiters)


@dataclass(frozen=True)
class WaitSignal:
    """Yield value: block until ``signal`` fires; receives its payload."""

    signal: Signal


YieldValue = Union[Delay, WaitSignal, int, float]


class Process:
    """Drives a generator as a simulation process.

    The process starts at the current simulation time (its first segment
    runs via a zero-delay event).  Terminates when the generator returns or
    :meth:`interrupt` is called.
    """

    def __init__(self, sim: Simulator, generator: Generator[YieldValue, Any, Any]):
        self._sim = sim
        self._gen = generator
        self._pending: Optional[Event] = None
        self.alive = True
        self._pending = sim.schedule(0.0, self._resume, None)

    def interrupt(self) -> None:
        """Stop the process; its generator is closed immediately."""
        if not self.alive:
            return
        self.alive = False
        self._sim.cancel(self._pending)
        self._pending = None
        self._gen.close()

    def _resume(self, payload: Any) -> None:
        if not self.alive:
            return
        self._pending = None
        try:
            yielded = self._gen.send(payload)
        except StopIteration:
            self.alive = False
            return
        if isinstance(yielded, (int, float)):
            yielded = Delay(float(yielded))
        if isinstance(yielded, Delay):
            if yielded.seconds < 0:
                self.alive = False
                raise SimulationError(
                    f"process yielded negative delay {yielded.seconds!r}"
                )
            self._pending = self._sim.schedule(yielded.seconds, self._resume, None)
        elif isinstance(yielded, WaitSignal):
            yielded.signal._waiters.append(self)
        else:
            self.alive = False
            raise SimulationError(f"process yielded unsupported value {yielded!r}")
