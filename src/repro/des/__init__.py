"""Discrete-event simulation kernel.

This subpackage is the substrate every other layer runs on: a deterministic
binary-heap event queue (:mod:`repro.des.events`), the virtual-clock
scheduler (:mod:`repro.des.simulator`), generator-process sugar
(:mod:`repro.des.process`), per-component random streams
(:mod:`repro.des.rng`) and structured tracing (:mod:`repro.des.trace`).

The paper evaluated EW-MAC inside NS-3; this kernel plays NS-3's role for
the reproduction (simpy is not available in the offline environment).
"""

from .errors import (
    EventStateError,
    SchedulingError,
    SimulationError,
    SimulationStopped,
    WallClockExceeded,
)
from .events import PRIORITY_HIGH, PRIORITY_LOW, PRIORITY_NORMAL, Event, EventQueue
from .process import Delay, Process, Signal, WaitSignal
from .rng import RandomStreams, derive_seed
from .simulator import Simulator
from .trace import NullTracer, TraceRecord, Tracer

__all__ = [
    "Delay",
    "Event",
    "EventQueue",
    "EventStateError",
    "NullTracer",
    "PRIORITY_HIGH",
    "PRIORITY_LOW",
    "PRIORITY_NORMAL",
    "Process",
    "RandomStreams",
    "SchedulingError",
    "Signal",
    "SimulationError",
    "SimulationStopped",
    "Simulator",
    "TraceRecord",
    "Tracer",
    "WaitSignal",
    "WallClockExceeded",
    "derive_seed",
]
