"""Event primitives and the pending-event priority queue.

The queue orders events by ``(time, priority, sequence)``.  The sequence
number is a monotonically increasing tie-breaker so that two events scheduled
for the same instant and priority fire in the order they were scheduled.
This determinism is essential for reproducible protocol simulations: MAC
state machines frequently schedule several actions at a slot boundary.
"""

from __future__ import annotations

import heapq
import itertools
from itertools import repeat as _repeat
from typing import Any, Callable, List, Optional, Sequence, Tuple

from .errors import EventStateError

#: Default priority for ordinary events.
PRIORITY_NORMAL = 100
#: Priority for events that must run before normal events at the same time
#: (e.g. channel arrivals must be registered before MAC slot logic runs).
PRIORITY_HIGH = 10
#: Priority for bookkeeping that must run after normal events at a time.
PRIORITY_LOW = 1000


class Event:
    """A single scheduled callback.

    Lifecycle: *pending* -> *fired* or *cancelled*.  Cancellation is lazy:
    the heap entry stays in place and is skipped when popped.

    Attributes:
        time: Absolute simulation time at which the callback fires.
        priority: Lower values fire earlier among same-time events.
        seq: Scheduling sequence number (tie-breaker, unique per queue).
        callback: Callable invoked as ``callback(*args)`` when fired.
    """

    __slots__ = ("time", "priority", "seq", "callback", "args", "_state")

    _PENDING = 0
    _FIRED = 1
    _CANCELLED = 2

    def __init__(
        self,
        time: float,
        priority: int,
        seq: int,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
    ) -> None:
        self.time = time
        self.priority = priority
        self.seq = seq
        self.callback = callback
        self.args = args
        self._state = Event._PENDING

    @property
    def pending(self) -> bool:
        """True while the event has neither fired nor been cancelled."""
        return self._state == Event._PENDING

    @property
    def cancelled(self) -> bool:
        """True once :meth:`cancel` has been called on a pending event."""
        return self._state == Event._CANCELLED

    @property
    def fired(self) -> bool:
        """True once the kernel has invoked the callback."""
        return self._state == Event._FIRED

    def cancel(self) -> None:
        """Cancel a pending event so the kernel will skip it.

        Cancelling an already-cancelled event is a no-op; cancelling a fired
        event raises :class:`EventStateError` because that almost always
        indicates a protocol-logic bug (acting on a handshake that already
        completed).
        """
        if self._state == Event._FIRED:
            raise EventStateError("cannot cancel an event that already fired")
        self._state = Event._CANCELLED

    def _fire(self) -> None:
        if self._state != Event._PENDING:
            raise EventStateError("event is not pending")
        self._state = Event._FIRED
        self.callback(*self.args)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = {0: "pending", 1: "fired", 2: "cancelled"}[self._state]
        name = getattr(self.callback, "__qualname__", repr(self.callback))
        return f"<Event t={self.time:.6f} prio={self.priority} {state} {name}>"

    def _sort_key(self) -> Tuple[float, int, int]:
        return (self.time, self.priority, self.seq)

    def __lt__(self, other: "Event") -> bool:
        return self._sort_key() < other._sort_key()


class EventQueue:
    """Binary-heap priority queue of :class:`Event` objects.

    Heap entries are ``(time, priority, seq, event)`` tuples rather than
    the events themselves: CPython compares tuples of floats/ints entirely
    in C, and the unique ``seq`` guarantees the comparison never falls
    through to the :class:`Event` element.  On a 300 s figure cell the
    kernel performs millions of heap comparisons, so keeping them out of
    Python-level ``__lt__`` is a measurable win.

    Cancelled events are dropped lazily on pop.  The queue periodically
    compacts itself when the fraction of dead entries grows large, keeping
    memory bounded for long simulations with heavy timer cancellation
    (MAC protocols cancel most of their timeout timers).
    """

    #: Compact when more than this fraction of heap entries are cancelled.
    _COMPACT_RATIO = 0.5
    #: Never compact below this size (avoids thrashing for tiny queues).
    _COMPACT_MIN = 64

    def __init__(self) -> None:
        self._heap: List[Tuple[float, int, int, Event]] = []
        self._seq = itertools.count()
        self._live = 0

    def __len__(self) -> int:
        return self._live

    def __bool__(self) -> bool:
        return self._live > 0

    def push(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute ``time``; return handle."""
        seq = next(self._seq)
        event = Event(time, priority, seq, callback, args)
        heapq.heappush(self._heap, (time, priority, seq, event))
        self._live += 1
        return event

    def push_plain(
        self,
        time: float,
        callback: Callable[..., Any],
        args: Tuple[Any, ...] = (),
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Schedule a *non-cancellable* callback with no Event handle.

        The heap entry is ``(time, priority, seq, None, callback, args)``
        — ``None`` in the event slot marks it always-pending.  Arrival
        begin/finish callbacks (the vast majority of all events in a dense
        network) are never cancelled, so they skip the Event allocation
        and the per-pop state checks entirely.  The unique ``seq`` keeps
        heap comparisons from ever reaching the mixed-type tail elements.
        """
        heapq.heappush(
            self._heap, (time, priority, next(self._seq), None, callback, args)
        )
        self._live += 1

    def push_bulk(
        self,
        times: Sequence[float],
        callbacks: Sequence[Callable[..., Any]],
        args: Sequence[Tuple[Any, ...]],
        priority: int = PRIORITY_NORMAL,
    ) -> None:
        """Schedule a batch of non-cancellable callbacks in one pass.

        Exactly equivalent to ``push_plain(times[i], callbacks[i], args[i],
        priority)`` for each ``i`` in order: sequence numbers are assigned
        in batch order (one ``zip`` pass pulls them straight off the shared
        counter), so the pop order — the total order on ``(time, priority,
        seq)`` — is bit-identical to the scalar loop no matter how the heap
        insertions are arranged.  The batch is then sorted ascending before
        insertion, which keeps the per-entry sift-up short and touches the
        heap once per entry with no Python call frame per event on the
        caller's side.

        ``times`` must be plain Python floats (e.g. via ``ndarray.tolist()``):
        heap entry times surface as ``Simulator.now``, and a leaked NumPy
        scalar would slow every downstream float op and break JSON export.

        This is the channel's broadcast fan-out primitive: one call
        schedules every arrival of a transmission.
        """
        heap = self._heap
        # zip stops at the shortest input — times first, so exactly
        # len(times) sequence numbers are consumed, in batch order.
        entries = sorted(
            zip(times, _repeat(priority), self._seq, _repeat(None), callbacks, args)
        )
        push = heapq.heappush
        for entry in entries:
            push(heap, entry)
        self._live += len(entries)

    def pop(self) -> Optional[Event]:
        """Remove and return the earliest pending event, or None if empty.

        Handle-free entries (see :meth:`push_plain`) are materialized into
        an Event on the way out so single-step callers see one interface;
        the kernel's hot loop uses :meth:`pop_entry_until` instead, which
        never allocates.
        """
        heap = self._heap
        while heap:
            entry = heapq.heappop(heap)
            event = entry[3]
            if event is None:
                self._live -= 1
                return Event(entry[0], entry[1], entry[2], entry[4], entry[5])
            if event._state == Event._PENDING:
                self._live -= 1
                return event
        self._live = 0
        return None

    def pop_entry_until(self, until: Optional[float]) -> Optional[Tuple]:
        """Pop the earliest pending heap entry at or before ``until``.

        Returns the raw entry tuple — ``(time, priority, seq, event)`` or
        ``(time, priority, seq, None, callback, args)`` — or None when the
        queue is drained or the next pending entry lies beyond ``until``
        (which is left in the heap).  This is the kernel's per-event
        primitive: one fused heap walk that drops cancelled entries as it
        goes, so the common case costs a single ``heappop`` and two
        attribute compares with no peek/pop double scan.
        """
        heap = self._heap
        pending = Event._PENDING
        while heap:
            head = heap[0]
            event = head[3]
            if event is None or event._state == pending:
                if until is not None and head[0] > until:
                    return None
                self._live -= 1
                return heapq.heappop(heap)
            heapq.heappop(heap)
        self._live = 0
        return None

    def peek_time(self) -> Optional[float]:
        """Return the firing time of the earliest pending event, if any."""
        heap = self._heap
        pending = Event._PENDING
        while heap:
            event = heap[0][3]
            if event is None or event._state == pending:
                return heap[0][0]
            heapq.heappop(heap)
        self._live = 0
        return None

    def note_cancelled(self) -> None:
        """Inform the queue that one live entry was cancelled externally.

        :class:`Event.cancel` does not know its owning queue, so the
        simulator calls this to keep the live count accurate and trigger
        compaction.
        """
        if self._live > 0:
            self._live -= 1
        self._maybe_compact()

    def _maybe_compact(self) -> None:
        dead = len(self._heap) - self._live
        if (
            len(self._heap) > self._COMPACT_MIN
            and dead > len(self._heap) * self._COMPACT_RATIO
        ):
            self._heap = [
                entry
                for entry in self._heap
                if entry[3] is None or entry[3].pending
            ]
            heapq.heapify(self._heap)

    def clear(self) -> None:
        """Drop every pending event (used on simulator reset)."""
        self._heap.clear()
        self._live = 0
