"""The discrete-event simulator core.

:class:`Simulator` advances a virtual clock from event to event.  Components
schedule callbacks with :meth:`Simulator.schedule` (relative delay) or
:meth:`Simulator.schedule_at` (absolute time) and may cancel the returned
:class:`~repro.des.events.Event` handle at any point before it fires.

The kernel is deliberately callback-based rather than coroutine-based: MAC
state machines are clearer as explicit states plus timer callbacks, and a
callback core is ~3x faster than generator trampolining in CPython, which
matters when a single figure sweep runs hundreds of 300-second network
simulations.  A thin generator-process adapter is provided in
:mod:`repro.des.process` for components that read better as sequential code
(e.g. traffic sources).
"""

from __future__ import annotations

from typing import Any, Callable, Optional

import gc as _gc
import time as _time

from .errors import SchedulingError, SimulationStopped, WallClockExceeded
from .events import Event, EventQueue, PRIORITY_NORMAL
from .rng import RandomStreams
from .trace import NullTracer, Tracer


class Simulator:
    """Event-driven virtual-time simulator.

    Args:
        seed: Root seed for all random streams (see :class:`RandomStreams`).
        tracer: Optional :class:`Tracer`; defaults to a no-op tracer.

    Attributes:
        now: Current simulation time in seconds.
        streams: Named deterministic RNG registry.
        trace: The tracer (never None; may be a :class:`NullTracer`).
    """

    def __init__(self, seed: int = 0, tracer: Optional[Tracer] = None) -> None:
        self.now: float = 0.0
        self.streams = RandomStreams(seed)
        self.trace = tracer if tracer is not None else NullTracer()
        self._queue = EventQueue()
        #: Bound fast-path scheduler: ``push_at(time, callback, args_tuple,
        #: priority=PRIORITY_NORMAL)`` — :meth:`EventQueue.push_plain`
        #: without the :meth:`schedule_at` validation frame and without an
        #: Event handle (the entry cannot be cancelled).  For hot callers
        #: (the channel fan-out, arrival completion) whose times are
        #: already known to be >= ``now`` and who never cancel; everything
        #: else should keep using :meth:`schedule` / :meth:`schedule_at`.
        self.push_at = self._queue.push_plain
        #: Bound batch scheduler: ``push_bulk(times, callbacks, args,
        #: priority)`` — one call heap-pushes a whole pre-built batch of
        #: non-cancellable entries (see :meth:`EventQueue.push_bulk`).
        #: Sequence numbers are assigned in batch order, so the pop order
        #: is bit-identical to an equivalent loop of ``push_at`` calls.
        self.push_bulk = self._queue.push_bulk
        self._running = False
        self._stopped = False
        self.events_processed = 0
        #: Wall-clock seconds spent inside :meth:`run` (perf instrumentation).
        self.wall_time_s: float = 0.0
        self._wall_deadline: Optional[float] = None

    def __getstate__(self) -> dict:
        """Pickle support for checkpoint/resume.

        The wall-clock deadline is an *absolute* ``time.monotonic`` value,
        which is meaningless in another process (or even later in this
        one), so a snapshot never carries it: the restoring side re-arms
        its own budget via :meth:`set_wall_deadline` if it wants one.
        """
        state = self.__dict__.copy()
        state["_wall_deadline"] = None
        return state

    # ------------------------------------------------------------------
    # Wall-clock budget (cooperative per-run timeout)
    # ------------------------------------------------------------------
    #: How many events to process between wall-clock checks; a power of
    #: two so the modulo compiles to a mask.  Checking every event would
    #: put a syscall on the hot path.
    _WALL_CHECK_EVERY = 4096

    def set_wall_deadline(self, budget_s: Optional[float]) -> None:
        """Arm (or clear, with None) a real-time budget for :meth:`run`.

        Once armed, :meth:`run` raises :class:`WallClockExceeded` the next
        time it notices ``budget_s`` seconds of wall-clock time have
        elapsed.  The check is cooperative (every ``_WALL_CHECK_EVERY``
        events), so overshoot is bounded by the cost of that many events.
        The deadline survives across multiple :meth:`run` calls — it is a
        budget for the whole scenario, not one run window.
        """
        if budget_s is None:
            self._wall_deadline = None
        else:
            self._wall_deadline = _time.monotonic() + float(budget_s)

    # ------------------------------------------------------------------
    # Scheduling
    # ------------------------------------------------------------------
    def schedule(
        self,
        delay: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` to fire ``delay`` seconds from now."""
        if delay < 0:
            raise SchedulingError(f"negative delay {delay!r}")
        return self._queue.push(self.now + delay, callback, args, priority)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., Any],
        *args: Any,
        priority: int = PRIORITY_NORMAL,
    ) -> Event:
        """Schedule ``callback(*args)`` at absolute simulation ``time``."""
        if time < self.now:
            raise SchedulingError(
                f"cannot schedule at {time!r}, current time is {self.now!r}"
            )
        return self._queue.push(time, callback, args, priority)

    def cancel(self, event: Optional[Event]) -> None:
        """Cancel an event if it is still pending (None and fired are no-ops).

        This is the preferred cancellation path: it keeps the queue's live
        count accurate, enabling heap compaction.
        """
        if event is not None and event.pending:
            event.cancel()
            self._queue.note_cancelled()

    # ------------------------------------------------------------------
    # Running
    # ------------------------------------------------------------------
    def run(self, until: Optional[float] = None) -> float:
        """Process events in time order.

        Args:
            until: Stop once the clock would pass this time; the clock is
                then set exactly to ``until``.  If None, run until the event
                queue drains or :meth:`stop` is called.

        Returns:
            The simulation time at which the run ended.
        """
        self._running = True
        self._stopped = False
        # Hot loop: one fused pop per event (see EventQueue.pop_entry_until),
        # the firing state flip and callback inlined rather than dispatched
        # through Event._fire, and the wall-clock gate a plain countdown —
        # the per-event kernel overhead is one heappop plus bookkeeping.
        pop_entry_until = self._queue.pop_entry_until
        fired = Event._FIRED
        check_every = self._WALL_CHECK_EVERY
        countdown = check_every
        events_processed = 0
        # Pause the cyclic collector for the duration of the loop: the hot
        # allocations (events, heap tuples, arrivals, frames) are acyclic
        # and die by refcount, so generational scans only add per-event
        # overhead.  The caller's collector state is restored on exit.
        gc_was_enabled = _gc.isenabled()
        if gc_was_enabled:
            _gc.disable()
        wall_start = _time.perf_counter()
        try:
            while True:
                entry = pop_entry_until(until)
                if entry is None:
                    if until is not None and until > self.now:
                        self.now = until
                    break
                self.now = entry[0]
                events_processed += 1
                countdown -= 1
                if countdown == 0:
                    countdown = check_every
                    if (
                        self._wall_deadline is not None
                        and _time.monotonic() > self._wall_deadline
                    ):
                        self.events_processed += events_processed
                        events_processed = 0
                        raise WallClockExceeded(
                            f"wall-clock budget exhausted at t={self.now:.3f}s "
                            f"({self.events_processed} events)"
                        )
                event = entry[3]
                if event is None:
                    entry[4](*entry[5])
                else:
                    event._state = fired
                    event.callback(*event.args)
                if self._stopped:
                    break
        except SimulationStopped:
            pass
        finally:
            self._running = False
            self.events_processed += events_processed
            self.wall_time_s += _time.perf_counter() - wall_start
            if gc_was_enabled:
                _gc.enable()
        return self.now

    def step(self) -> bool:
        """Process exactly one event; return False if the queue was empty."""
        event = self._queue.pop()
        if event is None:
            return False
        self.now = event.time
        self.events_processed += 1
        event._fire()
        return True

    def stop(self) -> None:
        """Request the current :meth:`run` loop to stop after this event."""
        self._stopped = True

    @property
    def pending_events(self) -> int:
        """Number of live (non-cancelled, unfired) events in the queue."""
        return len(self._queue)

    @property
    def events_per_second(self) -> float:
        """Observed kernel throughput: events processed per wall-clock second."""
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.events_processed / self.wall_time_s

    def reset(self, seed: Optional[int] = None) -> None:
        """Clear the queue and clock for reuse; optionally reseed streams."""
        self._queue.clear()
        self.now = 0.0
        self.events_processed = 0
        self.wall_time_s = 0.0
        self._stopped = False
        self._wall_deadline = None
        if seed is not None:
            self.streams = RandomStreams(seed)
