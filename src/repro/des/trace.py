"""Structured event tracing for simulations.

A :class:`Tracer` collects :class:`TraceRecord` tuples emitted by any layer
(channel, modem, MAC, application).  Traces power three things:

* integration tests that assert protocol timelines (e.g. the EW-MAC extra
  communication of the paper's Figs. 4-5),
* the example scripts that print human-readable packet timelines, and
* debugging — ``tracer.format()`` renders a readable log.

Tracing is disabled by default (a no-op :class:`NullTracer`) so large
benchmark runs pay nothing for it.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Callable, Dict, Iterator, List, Optional


@dataclass(frozen=True)
class TraceRecord:
    """One traced occurrence.

    Attributes:
        time: Simulation time of the occurrence.
        category: Dotted category string, e.g. ``"mac.tx"`` or ``"phy.collision"``.
        node: Identifier of the node involved (or -1 for global records).
        detail: Free-form payload describing the occurrence.
    """

    time: float
    category: str
    node: int
    detail: Dict[str, Any] = field(default_factory=dict)

    def format(self) -> str:
        parts = ", ".join(f"{k}={v}" for k, v in sorted(self.detail.items()))
        return f"[{self.time:12.6f}] n{self.node:<4d} {self.category:<18s} {parts}"


class Tracer:
    """Collects trace records, optionally filtered by category prefix."""

    def __init__(self, categories: Optional[List[str]] = None) -> None:
        self.records: List[TraceRecord] = []
        self._categories = tuple(categories) if categories else None

    @property
    def enabled(self) -> bool:
        return True

    def emit(self, time: float, category: str, node: int, **detail: Any) -> None:
        """Record an occurrence if its category passes the filter."""
        if self._categories is not None and not category.startswith(self._categories):
            return
        self.records.append(TraceRecord(time, category, node, detail))

    def select(self, category_prefix: str, node: Optional[int] = None) -> List[TraceRecord]:
        """Return records whose category starts with ``category_prefix``."""
        return [
            r
            for r in self.records
            if r.category.startswith(category_prefix)
            and (node is None or r.node == node)
        ]

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(self.records)

    def __len__(self) -> int:
        return len(self.records)

    def format(self, category_prefix: str = "") -> str:
        """Render matching records as a newline-joined readable log."""
        return "\n".join(r.format() for r in self.select(category_prefix))

    def clear(self) -> None:
        self.records.clear()


class NullTracer:
    """No-op tracer with the same interface; the default for benchmarks."""

    records: List[TraceRecord] = []

    @property
    def enabled(self) -> bool:
        return False

    def emit(self, time: float, category: str, node: int, **detail: Any) -> None:
        pass

    def select(self, category_prefix: str, node: Optional[int] = None) -> List[TraceRecord]:
        return []

    def __iter__(self) -> Iterator[TraceRecord]:
        return iter(())

    def __len__(self) -> int:
        return 0

    def format(self, category_prefix: str = "") -> str:
        return ""

    def clear(self) -> None:
        pass


TracerLike = Callable[..., None]
