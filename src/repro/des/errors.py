"""Exceptions raised by the discrete-event simulation kernel."""


class SimulationError(Exception):
    """Base class for all simulation kernel errors."""


class SchedulingError(SimulationError):
    """An event was scheduled at an invalid time (e.g. in the past)."""


class EventStateError(SimulationError):
    """An operation was applied to an event in the wrong lifecycle state."""


class SimulationStopped(SimulationError):
    """Raised internally to unwind the run loop when ``stop()`` is called."""


class WallClockExceeded(SimulationError):
    """The run loop passed its real-time (wall-clock) deadline.

    Raised by :meth:`repro.des.simulator.Simulator.run` when a
    ``wall_deadline`` was armed via
    :meth:`~repro.des.simulator.Simulator.set_wall_deadline`.  Sweep
    workers use this as a cooperative per-cell timeout: a runaway cell
    unwinds cleanly instead of having to be killed from outside.
    """
