"""Exceptions raised by the discrete-event simulation kernel."""


class SimulationError(Exception):
    """Base class for all simulation kernel errors."""


class SchedulingError(SimulationError):
    """An event was scheduled at an invalid time (e.g. in the past)."""


class EventStateError(SimulationError):
    """An operation was applied to an event in the wrong lifecycle state."""


class SimulationStopped(SimulationError):
    """Raised internally to unwind the run loop when ``stop()`` is called."""
