"""Persistent job store for the simulation service.

Jobs are keyed by :func:`repro.experiments.engine.request_key` — a
content-addressed digest over the request's sweep cells and the source
tree — so the store *is* the dedupe layer: submitting a request whose
key already exists attaches to the existing job instead of queueing a
second run.  (The per-cell result cache below the engine additionally
makes any genuine re-run of identical cells free.)

State machine::

                           ┌──heartbeat (lease extended)──┐
                           ▼                              │
    queued ──claim──> running ──finish──> done            │
      ▲  ▲              │  │                              │
      │  │              │  └──────────────────────────────┘
      │  │              ├──fail──> failed ──resubmit──> queued
      │  │              │
      │  └─release──────┤            (graceful drain, attempt refunded)
      │                 │
      │            lease expired
      │                 │
      ├─────────────────┴── attempts < max_attempts
      │                        (backoff: not_before = now + base·2^(n-1))
      │
      └── otherwise ──> quarantined  (terminal; error chain preserved;
                                      only an explicit resubmit revives it)

Ownership is **leased**, not assumed: a claim stamps the job with the
claiming store's ``owner`` id and a lease deadline, workers heartbeat the
lease while running, and only :meth:`JobStore.expire_leases` — never a
blanket requeue — returns crashed workers' jobs to the queue.  A second
service process sharing the store file therefore cannot steal jobs from
a live sibling: its open only reaps leases that actually expired.  Every
transition is one ``BEGIN IMMEDIATE`` sqlite transaction, serialized
through an in-process lock *and* sqlite's own file locking (WAL mode +
``busy_timeout``), so worker threads and sibling processes claim safely.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import sqlite3
import threading
import time
import uuid
from contextlib import contextmanager
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Tuple, Union

log = logging.getLogger("repro.service")

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"
#: Terminal state for poison jobs: the retry budget is exhausted.  Never
#: auto-requeued; an explicit resubmission is the only way back out.
QUARANTINED = "quarantined"

#: Every legal state, in lifecycle order.
STATES = (QUEUED, RUNNING, DONE, FAILED, QUARANTINED)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    key              TEXT PRIMARY KEY,
    request          TEXT NOT NULL,
    state            TEXT NOT NULL,
    submitted_at     REAL NOT NULL,
    started_at       REAL,
    finished_at      REAL,
    attempts         INTEGER NOT NULL DEFAULT 0,
    error            TEXT NOT NULL DEFAULT '',
    result           TEXT,
    owner            TEXT,
    lease_expires_at REAL,
    not_before       REAL NOT NULL DEFAULT 0
);
CREATE TABLE IF NOT EXISTS progress (
    id   INTEGER PRIMARY KEY AUTOINCREMENT,
    key  TEXT NOT NULL,
    at   REAL NOT NULL,
    line TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS progress_by_key ON progress (key, id);
"""

#: Columns added since the v1 schema, for in-place migration of old
#: store files (``ALTER TABLE ADD COLUMN`` is cheap and idempotent-ish:
#: guarded by a ``PRAGMA table_info`` existence check).
_MIGRATIONS: Tuple[Tuple[str, str], ...] = (
    ("owner", "ALTER TABLE jobs ADD COLUMN owner TEXT"),
    ("lease_expires_at", "ALTER TABLE jobs ADD COLUMN lease_expires_at REAL"),
    ("not_before", "ALTER TABLE jobs ADD COLUMN not_before REAL NOT NULL DEFAULT 0"),
)


def default_owner() -> str:
    """A unique-per-store-instance worker identity (host:pid:nonce)."""
    return f"{socket.gethostname()}:{os.getpid()}:{uuid.uuid4().hex[:8]}"


@dataclass
class JobRecord:
    """One job's stored state (a row of the ``jobs`` table)."""

    key: str
    request: Dict[str, object]
    state: str
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    error: str = ""
    result: Optional[Dict[str, object]] = None
    progress: List[str] = field(default_factory=list)
    owner: Optional[str] = None
    lease_expires_at: Optional[float] = None
    not_before: float = 0.0

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED, QUARANTINED)

    def to_dict(self, include_result: bool = False) -> Dict[str, object]:
        """JSON shape served by the API (results are a separate fetch)."""
        payload: Dict[str, object] = {
            "key": self.key,
            "request": self.request,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "error": self.error,
            "owner": self.owner,
            "lease_expires_at": self.lease_expires_at,
            "not_before": self.not_before,
        }
        if include_result:
            payload["result"] = self.result
        return payload


class JobStore:
    """Sqlite-backed job queue with leased claims and retry budgets.

    Args:
        path: Store file (created on first use).  Parent directories are
            created as needed.
        requeue: Reap expired leases as soon as the store opens (the
            crash-recovery path: a worker that died mid-job stops
            heartbeating and its lease times out).  Pass ``False`` when
            opening read-only alongside a live service.  Unlike the old
            blanket requeue, this can never steal a job whose worker is
            alive and heartbeating.
        owner: This store instance's claim identity; defaults to a
            host:pid:nonce string unique per instance.
        lease_s: Default claim lease duration.  Workers must heartbeat
            within this window or lose the job to :meth:`expire_leases`.
        max_attempts: Retry budget — a job whose lease expires on its
            ``max_attempts``-th attempt is quarantined instead of
            requeued.
        backoff_base_s: First-retry backoff; doubles per attempt
            (``not_before = now + backoff_base_s * 2**(attempts-1)``).
        progress_ttl_s: On open, progress lines older than this whose job
            is terminal are pruned (the table otherwise grows without
            bound across restarts).
    """

    def __init__(
        self,
        path: Union[str, Path],
        requeue: bool = True,
        owner: Optional[str] = None,
        lease_s: float = 30.0,
        max_attempts: int = 3,
        backoff_base_s: float = 1.0,
        progress_ttl_s: float = 7 * 24 * 3600.0,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self.owner = owner or default_owner()
        self.lease_s = float(lease_s)
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self.max_attempts = int(max_attempts)
        self.backoff_base_s = float(backoff_base_s)
        self._lock = threading.RLock()
        # Autocommit at the sqlite level; every mutation goes through an
        # explicit BEGIN IMMEDIATE (see _txn) so the write lock is taken
        # up front — a SELECT-then-UPDATE claim can't race a sibling
        # process into double-claiming.
        self._conn = sqlite3.connect(
            str(self.path),
            check_same_thread=False,
            timeout=30.0,
            isolation_level=None,
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock:
            # WAL lets sibling service processes read while one writes,
            # and busy_timeout makes lock contention wait instead of
            # throwing "database is locked".
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA busy_timeout=30000")
            self._conn.executescript(_SCHEMA)
            self._migrate()
        self.pruned_on_open = self._prune_progress(progress_ttl_s)
        #: Jobs whose expired leases were reaped when this store opened
        #: (requeued + quarantined).  Live heartbeated jobs are never
        #: touched.
        self.expired_on_open = self.expire_leases() if requeue else 0

    def _migrate(self) -> None:
        columns = {
            row["name"]
            for row in self._conn.execute("PRAGMA table_info(jobs)").fetchall()
        }
        for column, statement in _MIGRATIONS:
            if column not in columns:
                self._conn.execute(statement)

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    @contextmanager
    def _txn(self) -> Iterator[sqlite3.Connection]:
        """One mutation as a write-locked transaction."""
        with self._lock:
            self._conn.execute("BEGIN IMMEDIATE")
            try:
                yield self._conn
            except BaseException:
                self._conn.rollback()
                raise
            else:
                self._conn.commit()

    # ------------------------------------------------------------------
    def _row_to_record(self, row: sqlite3.Row) -> JobRecord:
        result = row["result"]
        return JobRecord(
            key=row["key"],
            request=json.loads(row["request"]),
            state=row["state"],
            submitted_at=row["submitted_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            attempts=row["attempts"],
            error=row["error"],
            result=json.loads(result) if result else None,
            owner=row["owner"],
            lease_expires_at=row["lease_expires_at"],
            not_before=row["not_before"],
        )

    # ------------------------------------------------------------------
    def submit(
        self, key: str, request: Dict[str, object]
    ) -> Tuple[JobRecord, bool]:
        """Queue a job, or dedupe onto the existing one.

        Returns ``(record, deduped)``.  ``deduped`` is True when the key
        already had a live (queued/running/done) job — the caller gets
        that job's state with **no new run scheduled**.  A previously
        *failed or quarantined* job is requeued instead (resubmission is
        the retry button), reported as ``deduped=False`` — with its
        error, stale partial ``result``, attempt count, and backoff all
        cleared, so the retry starts from a clean slate and can never
        serve the old partial result as if it were fresh.
        """
        now = time.time()
        with self._txn() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                conn.execute(
                    "INSERT INTO jobs (key, request, state, submitted_at) "
                    "VALUES (?, ?, ?, ?)",
                    (key, json.dumps(request), QUEUED, now),
                )
                return self.get(key), False
            if row["state"] in (FAILED, QUARANTINED):
                conn.execute(
                    "UPDATE jobs SET state = ?, error = '', finished_at = NULL, "
                    "result = NULL, attempts = 0, not_before = 0, owner = NULL, "
                    "lease_expires_at = NULL, submitted_at = ? WHERE key = ?",
                    (QUEUED, now, key),
                )
                return self.get(key), False
            return self._row_to_record(row), True

    def claim(
        self, owner: Optional[str] = None, lease_s: Optional[float] = None
    ) -> Optional[JobRecord]:
        """Atomically lease the oldest *eligible* queued job to ``owner``.

        Eligible means ``not_before`` has passed — a job backing off
        after a crashed attempt stays invisible until its retry time.
        The claim stamps the owner id and a lease deadline; the owner
        must :meth:`heartbeat` before the deadline or the job returns to
        the queue via :meth:`expire_leases`.
        """
        now = time.time()
        owner = owner or self.owner
        lease = self.lease_s if lease_s is None else float(lease_s)
        with self._txn() as conn:
            row = conn.execute(
                "SELECT * FROM jobs WHERE state = ? AND not_before <= ? "
                "ORDER BY submitted_at, key LIMIT 1",
                (QUEUED, now),
            ).fetchone()
            if row is None:
                return None
            conn.execute(
                "UPDATE jobs SET state = ?, started_at = ?, owner = ?, "
                "lease_expires_at = ?, attempts = attempts + 1 WHERE key = ?",
                (RUNNING, now, owner, now + lease, row["key"]),
            )
        return self.get(row["key"])

    def heartbeat(
        self, key: str, owner: Optional[str] = None, lease_s: Optional[float] = None
    ) -> bool:
        """Extend a running job's lease; False if the job is no longer ours.

        A False return tells the worker its lease already expired and the
        job was handed to someone else (or settled) — it should abandon
        the run rather than settle a job it no longer owns.
        """
        owner = owner or self.owner
        lease = self.lease_s if lease_s is None else float(lease_s)
        with self._txn() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET lease_expires_at = ? "
                "WHERE key = ? AND state = ? AND owner = ?",
                (time.time() + lease, key, RUNNING, owner),
            )
            return cursor.rowcount > 0

    def finish(
        self, key: str, result: Dict[str, object], owner: Optional[str] = None
    ) -> bool:
        """Mark a running job done and attach its result document.

        With ``owner`` given (the worker path), the update is guarded:
        a worker whose lease expired mid-run — its job already requeued
        and possibly re-leased elsewhere — settles nothing and gets
        False back.  ``owner=None`` skips the guard (administrative use).
        """
        with self._txn() as conn:
            if owner is None:
                cursor = conn.execute(
                    "UPDATE jobs SET state = ?, finished_at = ?, result = ?, "
                    "owner = NULL, lease_expires_at = NULL WHERE key = ?",
                    (DONE, time.time(), json.dumps(result), key),
                )
            else:
                cursor = conn.execute(
                    "UPDATE jobs SET state = ?, finished_at = ?, result = ?, "
                    "owner = NULL, lease_expires_at = NULL "
                    "WHERE key = ? AND state = ? AND owner = ?",
                    (DONE, time.time(), json.dumps(result), key, RUNNING, owner),
                )
            return cursor.rowcount > 0

    def fail(
        self,
        key: str,
        error: str,
        result: Optional[Dict[str, object]] = None,
        owner: Optional[str] = None,
    ) -> bool:
        """Mark a job failed, capturing the error (and any partial result).

        This is the *deliberate* failure path (the run raised, or cells
        failed permanently): the job goes straight to ``failed`` and
        waits for an explicit resubmission.  Crash failures — the worker
        died without calling anything — are detected by lease expiry
        instead, where the retry budget and quarantine apply.  Same
        owner guard as :meth:`finish`.
        """
        with self._txn() as conn:
            params = (
                FAILED,
                time.time(),
                error,
                json.dumps(result) if result is not None else None,
                key,
            )
            if owner is None:
                cursor = conn.execute(
                    "UPDATE jobs SET state = ?, finished_at = ?, error = ?, "
                    "result = ?, owner = NULL, lease_expires_at = NULL "
                    "WHERE key = ?",
                    params,
                )
            else:
                cursor = conn.execute(
                    "UPDATE jobs SET state = ?, finished_at = ?, error = ?, "
                    "result = ?, owner = NULL, lease_expires_at = NULL "
                    "WHERE key = ? AND state = ? AND owner = ?",
                    params + (RUNNING, owner),
                )
            return cursor.rowcount > 0

    def release(self, key: str, owner: Optional[str] = None) -> bool:
        """Hand a claimed-but-unfinished job back to the queue (drain path).

        The attempt is refunded — a graceful shutdown is not a crash, so
        it must not eat into the retry budget — and the job becomes
        immediately claimable by any surviving worker.
        """
        owner = owner or self.owner
        with self._txn() as conn:
            cursor = conn.execute(
                "UPDATE jobs SET state = ?, owner = NULL, lease_expires_at = NULL, "
                "attempts = MAX(attempts - 1, 0), not_before = 0 "
                "WHERE key = ? AND state = ? AND owner = ?",
                (QUEUED, key, RUNNING, owner),
            )
            return cursor.rowcount > 0

    def expire_leases(self) -> int:
        """Reap running jobs whose lease has expired; returns the count.

        Each expired job either requeues with exponential backoff
        (``not_before``), or — when its retry budget is spent —
        quarantines with the full error chain of every crashed attempt
        preserved in ``error``.  Jobs whose workers are alive (lease in
        the future) are never touched, so any number of service
        processes can call this concurrently and only true orphans move.
        """
        now = time.time()
        reaped = 0
        with self._txn() as conn:
            rows = conn.execute(
                "SELECT * FROM jobs WHERE state = ? AND lease_expires_at IS NOT NULL "
                "AND lease_expires_at < ?",
                (RUNNING, now),
            ).fetchall()
            for row in rows:
                attempts = row["attempts"]
                chain = row["error"]
                line = (
                    f"attempt {attempts}: lease expired "
                    f"(owner={row['owner']}, worker presumed dead)"
                )
                chain = f"{chain}\n{line}" if chain else line
                if attempts >= self.max_attempts:
                    conn.execute(
                        "UPDATE jobs SET state = ?, finished_at = ?, error = ?, "
                        "owner = NULL, lease_expires_at = NULL WHERE key = ?",
                        (QUARANTINED, now, chain, row["key"]),
                    )
                else:
                    backoff = self.backoff_base_s * (2 ** (attempts - 1))
                    conn.execute(
                        "UPDATE jobs SET state = ?, error = ?, owner = NULL, "
                        "lease_expires_at = NULL, not_before = ? WHERE key = ?",
                        (QUEUED, chain, now + backoff, row["key"]),
                    )
                reaped += 1
        return reaped

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[JobRecord]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE key = ?", (key,)
            ).fetchone()
        return self._row_to_record(row) if row is not None else None

    def list_jobs(self) -> List[JobRecord]:
        """Every job, newest submission first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs ORDER BY submitted_at DESC, key"
            ).fetchall()
        return [self._row_to_record(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Jobs per state (zero-filled), for /healthz."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        found = {row["state"]: row["n"] for row in rows}
        return {state: found.get(state, 0) for state in STATES}

    # ------------------------------------------------------------------
    def add_progress(self, key: str, line: str) -> None:
        """Append one progress line to a job's stream."""
        with self._txn() as conn:
            conn.execute(
                "INSERT INTO progress (key, at, line) VALUES (?, ?, ?)",
                (key, time.time(), line),
            )

    def progress_since(
        self, key: str, after_id: int = 0, limit: int = 1000
    ) -> List[Tuple[int, str]]:
        """Progress lines with id > ``after_id``, oldest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT id, line FROM progress WHERE key = ? AND id > ? "
                "ORDER BY id LIMIT ?",
                (key, after_id, limit),
            ).fetchall()
        return [(row["id"], row["line"]) for row in rows]

    def _prune_progress(self, ttl_s: float) -> int:
        """Drop progress of terminal jobs older than the TTL; log the count."""
        cutoff = time.time() - ttl_s
        with self._txn() as conn:
            cursor = conn.execute(
                "DELETE FROM progress WHERE at < ? AND key IN "
                "(SELECT key FROM jobs WHERE state IN (?, ?, ?))",
                (cutoff, DONE, FAILED, QUARANTINED),
            )
            pruned = cursor.rowcount
        if pruned:
            log.info("pruned %d stale progress line(s) from %s", pruned, self.path)
        return pruned
