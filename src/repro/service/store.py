"""Persistent job store for the simulation service.

Jobs are keyed by :func:`repro.experiments.engine.request_key` — a
content-addressed digest over the request's sweep cells and the source
tree — so the store *is* the dedupe layer: submitting a request whose
key already exists attaches to the existing job instead of queueing a
second run.  (The per-cell result cache below the engine additionally
makes any genuine re-run of identical cells free.)

State machine::

    queued ──claim──> running ──finish──> done
                        │
                        └──fail──> failed ──resubmit──> queued

A job found ``running`` when the store opens belonged to a worker that
died mid-run (process crash, SIGKILL); it is requeued automatically so a
restarted service resumes exactly where it stopped.  Every transition is
one sqlite transaction, serialized through an in-process lock *and*
sqlite's own file locking, so multiple worker threads — or multiple
service processes sharing the store file — can claim jobs safely.
"""

from __future__ import annotations

import json
import sqlite3
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple, Union

QUEUED = "queued"
RUNNING = "running"
DONE = "done"
FAILED = "failed"

#: Every legal state, in lifecycle order.
STATES = (QUEUED, RUNNING, DONE, FAILED)

_SCHEMA = """
CREATE TABLE IF NOT EXISTS jobs (
    key          TEXT PRIMARY KEY,
    request      TEXT NOT NULL,
    state        TEXT NOT NULL,
    submitted_at REAL NOT NULL,
    started_at   REAL,
    finished_at  REAL,
    attempts     INTEGER NOT NULL DEFAULT 0,
    error        TEXT NOT NULL DEFAULT '',
    result       TEXT
);
CREATE TABLE IF NOT EXISTS progress (
    id   INTEGER PRIMARY KEY AUTOINCREMENT,
    key  TEXT NOT NULL,
    at   REAL NOT NULL,
    line TEXT NOT NULL
);
CREATE INDEX IF NOT EXISTS progress_by_key ON progress (key, id);
"""


@dataclass
class JobRecord:
    """One job's stored state (a row of the ``jobs`` table)."""

    key: str
    request: Dict[str, object]
    state: str
    submitted_at: float
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    attempts: int = 0
    error: str = ""
    result: Optional[Dict[str, object]] = None
    progress: List[str] = field(default_factory=list)

    @property
    def terminal(self) -> bool:
        return self.state in (DONE, FAILED)

    def to_dict(self, include_result: bool = False) -> Dict[str, object]:
        """JSON shape served by the API (results are a separate fetch)."""
        payload: Dict[str, object] = {
            "key": self.key,
            "request": self.request,
            "state": self.state,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "attempts": self.attempts,
            "error": self.error,
        }
        if include_result:
            payload["result"] = self.result
        return payload


class JobStore:
    """Sqlite-backed job queue with content-addressed dedupe.

    Args:
        path: Store file (created on first use).  Parent directories are
            created as needed.
        requeue: Requeue jobs left ``running`` by a crashed worker as
            soon as the store opens (the crash-recovery path).  Pass
            ``False`` when opening read-only alongside a live service.
    """

    def __init__(self, path: Union[str, Path], requeue: bool = True) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.RLock()
        self._conn = sqlite3.connect(
            str(self.path), check_same_thread=False, timeout=30.0
        )
        self._conn.row_factory = sqlite3.Row
        with self._lock, self._conn:
            self._conn.executescript(_SCHEMA)
        self.requeued_on_open = self.requeue_running() if requeue else 0

    def close(self) -> None:
        with self._lock:
            self._conn.close()

    # ------------------------------------------------------------------
    def _row_to_record(self, row: sqlite3.Row) -> JobRecord:
        result = row["result"]
        return JobRecord(
            key=row["key"],
            request=json.loads(row["request"]),
            state=row["state"],
            submitted_at=row["submitted_at"],
            started_at=row["started_at"],
            finished_at=row["finished_at"],
            attempts=row["attempts"],
            error=row["error"],
            result=json.loads(result) if result else None,
        )

    # ------------------------------------------------------------------
    def submit(
        self, key: str, request: Dict[str, object]
    ) -> Tuple[JobRecord, bool]:
        """Queue a job, or dedupe onto the existing one.

        Returns ``(record, deduped)``.  ``deduped`` is True when the key
        already had a live (queued/running/done) job — the caller gets
        that job's state with **no new run scheduled**.  A previously
        *failed* job is requeued instead (resubmission is the retry
        button), reported as ``deduped=False``.
        """
        now = time.time()
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE key = ?", (key,)
            ).fetchone()
            if row is None:
                self._conn.execute(
                    "INSERT INTO jobs (key, request, state, submitted_at) "
                    "VALUES (?, ?, ?, ?)",
                    (key, json.dumps(request), QUEUED, now),
                )
                return self.get(key), False
            if row["state"] == FAILED:
                self._conn.execute(
                    "UPDATE jobs SET state = ?, error = '', finished_at = NULL, "
                    "submitted_at = ? WHERE key = ?",
                    (QUEUED, now, key),
                )
                return self.get(key), False
            return self._row_to_record(row), True

    def claim(self) -> Optional[JobRecord]:
        """Atomically move the oldest queued job to ``running``."""
        now = time.time()
        with self._lock, self._conn:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE state = ? "
                "ORDER BY submitted_at, key LIMIT 1",
                (QUEUED,),
            ).fetchone()
            if row is None:
                return None
            self._conn.execute(
                "UPDATE jobs SET state = ?, started_at = ?, "
                "attempts = attempts + 1 WHERE key = ?",
                (RUNNING, now, row["key"]),
            )
        return self.get(row["key"])

    def finish(self, key: str, result: Dict[str, object]) -> None:
        """Mark a running job done and attach its result document."""
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE jobs SET state = ?, finished_at = ?, result = ? "
                "WHERE key = ?",
                (DONE, time.time(), json.dumps(result), key),
            )

    def fail(self, key: str, error: str, result: Optional[Dict[str, object]] = None) -> None:
        """Mark a job failed, capturing the error (and any partial result)."""
        with self._lock, self._conn:
            self._conn.execute(
                "UPDATE jobs SET state = ?, finished_at = ?, error = ?, "
                "result = ? WHERE key = ?",
                (
                    FAILED,
                    time.time(),
                    error,
                    json.dumps(result) if result is not None else None,
                    key,
                ),
            )

    def requeue_running(self) -> int:
        """Requeue every ``running`` job (crash recovery); returns count."""
        with self._lock, self._conn:
            cursor = self._conn.execute(
                "UPDATE jobs SET state = ? WHERE state = ?", (QUEUED, RUNNING)
            )
            return cursor.rowcount

    # ------------------------------------------------------------------
    def get(self, key: str) -> Optional[JobRecord]:
        with self._lock:
            row = self._conn.execute(
                "SELECT * FROM jobs WHERE key = ?", (key,)
            ).fetchone()
        return self._row_to_record(row) if row is not None else None

    def list_jobs(self) -> List[JobRecord]:
        """Every job, newest submission first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT * FROM jobs ORDER BY submitted_at DESC, key"
            ).fetchall()
        return [self._row_to_record(row) for row in rows]

    def counts(self) -> Dict[str, int]:
        """Jobs per state (zero-filled), for /healthz."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT state, COUNT(*) AS n FROM jobs GROUP BY state"
            ).fetchall()
        found = {row["state"]: row["n"] for row in rows}
        return {state: found.get(state, 0) for state in STATES}

    # ------------------------------------------------------------------
    def add_progress(self, key: str, line: str) -> None:
        """Append one progress line to a job's stream."""
        with self._lock, self._conn:
            self._conn.execute(
                "INSERT INTO progress (key, at, line) VALUES (?, ?, ?)",
                (key, time.time(), line),
            )

    def progress_since(
        self, key: str, after_id: int = 0, limit: int = 1000
    ) -> List[Tuple[int, str]]:
        """Progress lines with id > ``after_id``, oldest first."""
        with self._lock:
            rows = self._conn.execute(
                "SELECT id, line FROM progress WHERE key = ? AND id > ? "
                "ORDER BY id LIMIT ?",
                (key, after_id, limit),
            ).fetchall()
        return [(row["id"], row["line"]) for row in rows]
