"""Stdlib REST/SSE front-end over the job store and sweep engine.

No dependencies beyond ``http.server`` — the service must run anywhere
the simulator does.  Endpoints (all JSON unless noted):

``GET  /healthz``
    Liveness + job counts per state.
``GET  /targets``
    Servable figure targets (``fig6`` ... ``chaos``).
``POST /jobs``
    Submit a sweep request, e.g. ``{"target": "fig6", "quick": true,
    "seeds": [1], "overrides": {"n_sensors": 20}}``.  Responds with the
    job record and ``"deduped": true`` when an identical submission
    (same content-addressed key) already exists — no second run is
    scheduled.
``GET  /jobs``
    All jobs, newest first (without result bodies).
``GET  /jobs/<key>[?wait=SECONDS]``
    One job; with ``wait`` long-polls until the job reaches a terminal
    state or the timeout elapses.
``GET  /jobs/<key>/result``
    The finished job's :class:`~repro.experiments.engine.SweepResult`
    document (409 while queued/running, 500-ish payload for
    failed/quarantined jobs, error chain included).
``GET  /jobs/<key>/events``
    ``text/event-stream`` (SSE): replays the job's progress lines, then
    streams new ones until the job finishes (``event: end``).
``POST /shutdown``
    Clean remote shutdown (only when the server was started with
    ``allow_shutdown=True`` — the CI smoke uses this).
"""

from __future__ import annotations

import json
import os
import re
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Dict, Optional, Tuple

from ..experiments.engine import EngineError, SweepRequest, request_key, service_targets
from .store import DONE, FAILED, QUARANTINED, JobStore
from .worker import ChaosHook, WorkerPool

_JOB_PATH = re.compile(r"^/jobs/([0-9a-f]{16,64})(/result|/events)?$")

#: Cap on one long-poll / SSE wait; clients re-issue to wait longer.
MAX_WAIT_S = 60.0


class ServiceServer(ThreadingHTTPServer):
    """HTTP server bound to a job store and worker pool."""

    daemon_threads = True

    def __init__(
        self,
        address: Tuple[str, int],
        store: JobStore,
        pool: Optional[WorkerPool],
        allow_shutdown: bool = False,
        quiet: bool = True,
    ) -> None:
        super().__init__(address, _Handler)
        self.store = store
        self.pool = pool
        self.allow_shutdown = allow_shutdown
        self.quiet = quiet
        self.started_at = time.time()

    @property
    def url(self) -> str:
        host, port = self.server_address[0], self.server_address[1]
        return f"http://{host}:{port}"

    def shutdown_soon(self) -> None:
        """Stop the pool and the server from a request thread."""

        def _stop() -> None:
            if self.pool is not None:
                self.pool.stop()
            self.shutdown()

        threading.Thread(target=_stop, name="repro-shutdown", daemon=True).start()


class _Handler(BaseHTTPRequestHandler):
    server: ServiceServer
    protocol_version = "HTTP/1.1"

    # ------------------------------------------------------------------
    def log_message(self, format: str, *args: object) -> None:
        if not self.server.quiet:  # pragma: no cover - debug aid
            super().log_message(format, *args)

    def _send_json(self, status: int, payload: Dict[str, object]) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def _error(self, status: int, message: str) -> None:
        self._send_json(status, {"error": message})

    def _read_body(self) -> Optional[Dict[str, object]]:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            return None
        try:
            payload = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError):
            return None
        return payload if isinstance(payload, dict) else None

    def _query(self) -> Dict[str, str]:
        if "?" not in self.path:
            return {}
        query: Dict[str, str] = {}
        for pair in self.path.split("?", 1)[1].split("&"):
            name, _, value = pair.partition("=")
            if name:
                query[name] = value
        return query

    @property
    def _route(self) -> str:
        return self.path.split("?", 1)[0]

    # ------------------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802 - http.server API
        try:
            self._get()
        except (BrokenPipeError, ConnectionResetError):  # client went away
            pass

    def _get(self) -> None:
        route = self._route
        if route == "/healthz":
            self._send_json(
                200,
                {
                    "ok": True,
                    "jobs": self.server.store.counts(),
                    "workers_alive": (
                        self.server.pool.alive if self.server.pool else False
                    ),
                    "uptime_s": round(time.time() - self.server.started_at, 3),
                },
            )
            return
        if route == "/targets":
            self._send_json(200, {"targets": list(service_targets())})
            return
        if route == "/jobs":
            self._send_json(
                200,
                {"jobs": [job.to_dict() for job in self.server.store.list_jobs()]},
            )
            return
        match = _JOB_PATH.match(route)
        if match is None:
            self._error(404, f"no such route: {route}")
            return
        key, tail = match.group(1), match.group(2)
        job = self.server.store.get(key)
        if job is None:
            self._error(404, f"no such job: {key}")
            return
        if tail == "/events":
            self._stream_events(key)
            return
        if tail == "/result":
            if job.state in (FAILED, QUARANTINED):
                self._send_json(
                    500, {"key": key, "state": job.state, "error": job.error,
                          "result": job.result}
                )
            elif job.state != DONE:
                self._error(409, f"job {key} is {job.state}; result not ready")
            else:
                self._send_json(200, {"key": key, "result": job.result})
            return
        wait_s = 0.0
        raw_wait = self._query().get("wait")
        if raw_wait:
            try:
                wait_s = min(float(raw_wait), MAX_WAIT_S)
            except ValueError:
                self._error(400, f"bad wait value: {raw_wait!r}")
                return
        deadline = time.monotonic() + wait_s
        while not job.terminal and time.monotonic() < deadline:
            time.sleep(0.05)
            job = self.server.store.get(key)
        self._send_json(200, {"job": job.to_dict()})

    def _stream_events(self, key: str) -> None:
        """SSE: replay progress, then follow until the job is terminal."""
        self.send_response(200)
        self.send_header("Content-Type", "text/event-stream")
        self.send_header("Cache-Control", "no-cache")
        # SSE is an unbounded stream: no Content-Length, close when done.
        self.send_header("Connection", "close")
        self.end_headers()
        last_id = 0
        deadline = time.monotonic() + MAX_WAIT_S
        while True:
            for line_id, line in self.server.store.progress_since(key, last_id):
                last_id = line_id
                self.wfile.write(f"data: {line}\n\n".encode("utf-8"))
            self.wfile.flush()
            job = self.server.store.get(key)
            if job is None or job.terminal:
                state = job.state if job is not None else "gone"
                self.wfile.write(f"event: end\ndata: {state}\n\n".encode("utf-8"))
                self.wfile.flush()
                return
            if time.monotonic() > deadline:
                self.wfile.write(b"event: timeout\ndata: reconnect\n\n")
                self.wfile.flush()
                return
            time.sleep(0.1)

    # ------------------------------------------------------------------
    def do_POST(self) -> None:  # noqa: N802 - http.server API
        try:
            self._post()
        except (BrokenPipeError, ConnectionResetError):
            pass

    def _post(self) -> None:
        route = self._route
        if route == "/shutdown":
            if not self.server.allow_shutdown:
                self._error(403, "shutdown endpoint disabled")
                return
            self._send_json(202, {"ok": True, "shutting_down": True})
            self.server.shutdown_soon()
            return
        if route != "/jobs":
            self._error(404, f"no such route: {route}")
            return
        payload = self._read_body()
        if payload is None:
            self._error(400, "request body must be a JSON object")
            return
        try:
            request = SweepRequest.from_dict(payload)
            key = request_key(request)
        except EngineError as exc:
            self._error(400, str(exc))
            return
        record, deduped = self.server.store.submit(key, request.to_dict())
        self._send_json(
            200 if deduped else 202,
            {"job": record.to_dict(), "deduped": deduped},
        )


def make_server(
    store: JobStore,
    pool: Optional[WorkerPool],
    host: str = "127.0.0.1",
    port: int = 0,
    allow_shutdown: bool = False,
    quiet: bool = True,
) -> ServiceServer:
    """Bind (but do not start) a service server; ``port=0`` picks a free one."""
    return ServiceServer((host, port), store, pool, allow_shutdown, quiet)


def serve(
    host: str = "127.0.0.1",
    port: int = 8642,
    store_path: str = ".repro-service.sqlite",
    n_service_workers: int = 1,
    run_kwargs: Optional[Dict[str, object]] = None,
    allow_shutdown: bool = False,
    quiet: bool = True,
    lease_s: float = 30.0,
    max_attempts: int = 3,
    chaos_kill_after: Optional[int] = None,
) -> int:
    """Run the service until interrupted (the ``repro-uasn serve`` body).

    Prints exactly one ready line (``listening on <url>``) to stdout so
    wrappers — the CI smoke script — can discover the bound port.

    ``chaos_kill_after=N`` arms the fault-injection hook: the process
    SIGKILLs **itself** after the N-th progress line of any job, leaving
    a leased ``running`` job behind.  The crash-recovery smoke uses this
    to die mid-job deterministically and prove a restarted service picks
    the job up once its lease expires.
    """
    store = JobStore(store_path, lease_s=lease_s, max_attempts=max_attempts)
    chaos_hook: Optional[ChaosHook] = None
    if chaos_kill_after is not None:
        threshold = int(chaos_kill_after)

        def chaos_hook(key: str, lines: int) -> None:
            if lines >= threshold:
                print(f"chaos: killing self mid-job {key[:12]}", flush=True)
                os.kill(os.getpid(), signal.SIGKILL)

    pool = WorkerPool(
        store,
        n_workers=n_service_workers,
        run_kwargs=run_kwargs,
        chaos_hook=chaos_hook,
    )
    server = make_server(store, pool, host, port, allow_shutdown, quiet)
    pool.start()
    if store.expired_on_open:
        print(f"reaped {store.expired_on_open} expired job lease(s)", flush=True)
    print(f"listening on {server.url}", flush=True)
    try:
        server.serve_forever(poll_interval=0.2)
    except KeyboardInterrupt:  # pragma: no cover - interactive stop
        pass
    finally:
        pool.stop()
        server.server_close()
        store.close()
    return 0
