"""Background worker pool: drains the job store through the sweep engine.

Each worker is a daemon thread that claims the oldest queued job under a
**lease**, runs it via :func:`repro.experiments.engine.run_request` (which
fans sweep cells over the spawn-safe *process* pool and the shared
content-addressed result cache), streams per-cell progress lines back
into the store, and settles the terminal state.  A run whose cells failed
permanently marks the job ``failed`` with the cell errors — partial
figures are stored but never silently served as complete.

Liveness is active, not assumed: a single heartbeat thread renews the
lease of every in-flight job (and reaps other processes' expired leases)
every ``lease_s / 3`` seconds.  If this process dies, the heartbeats
stop, the lease times out, and any surviving service process requeues the
job — nothing is lost and nothing is double-run while we are alive.
Settling is owner-guarded end to end: a worker that somehow outlives its
lease cannot overwrite a job that was already handed to someone else.

The engine call is injectable (``runner=``) so the store/API failure
paths can be tested without simulating anything, and ``chaos_hook`` lets
tests (and the crash smoke) deterministically kill or wound a worker
mid-job at an exact progress line.
"""

from __future__ import annotations

import threading
import traceback
from typing import Callable, Dict, List, Optional, Set

from ..experiments.engine import Progress, SweepRequest, SweepResult, run_request
from .store import JobRecord, JobStore

#: Executes one request; the default is the pure engine.
Runner = Callable[[SweepRequest, Progress], SweepResult]

#: Called after each progress line with ``(job_key, lines_so_far)``.  May
#: raise (turning the job into a clean failure) or kill the process
#: outright (exercising the lease-expiry crash path).
ChaosHook = Callable[[str, int], None]


class WorkerPool:
    """Threads that claim, execute, and settle jobs from a :class:`JobStore`.

    Args:
        store: The shared job store.  Claims, heartbeats, and settles all
            use ``store.owner`` as this pool's identity.
        n_workers: Worker threads.  Each worker runs one job at a time;
            within a job the engine may fan out further via
            ``run_kwargs["workers"]`` process workers.
        run_kwargs: Extra keyword arguments for
            :func:`~repro.experiments.engine.run_request`
            (``workers``, ``cache``, ``cell_timeout_s``,
            ``checkpoint_every_s``).
        runner: Test seam replacing the engine call.
        poll_interval_s: Idle sleep between claim attempts.
        chaos_hook: Fault-injection seam; see :data:`ChaosHook`.
    """

    def __init__(
        self,
        store: JobStore,
        n_workers: int = 1,
        run_kwargs: Optional[Dict[str, object]] = None,
        runner: Optional[Runner] = None,
        poll_interval_s: float = 0.1,
        chaos_hook: Optional[ChaosHook] = None,
    ) -> None:
        self.store = store
        self.n_workers = max(1, int(n_workers))
        self.run_kwargs = dict(run_kwargs or {})
        self.poll_interval_s = poll_interval_s
        self.chaos_hook = chaos_hook
        self._runner = runner or self._engine_runner
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        self._heartbeat_thread: Optional[threading.Thread] = None
        self._inflight: Set[str] = set()
        self._inflight_lock = threading.Lock()
        #: Jobs this pool settled (done or failed), for tests/monitoring.
        self.completed = 0
        #: Settle attempts rejected by the owner guard — our lease had
        #: already expired and the job belonged to someone else.
        self.lease_losses = 0

    # ------------------------------------------------------------------
    def _engine_runner(self, request: SweepRequest, progress: Progress) -> SweepResult:
        return run_request(request, progress=progress, **self.run_kwargs)

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("worker pool already started")
        self._stop.clear()
        for index in range(self.n_workers):
            thread = threading.Thread(
                target=self._loop, name=f"repro-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)
        self._heartbeat_thread = threading.Thread(
            target=self._heartbeat_loop, name="repro-heartbeat", daemon=True
        )
        self._heartbeat_thread.start()

    def stop(self, timeout_s: float = 10.0) -> None:
        """Signal every worker to stop, join them, and drain leftovers.

        A worker mid-job gets ``timeout_s`` to finish; any job still
        running after that is **released** — returned to the queue with
        its attempt refunded — so a graceful shutdown never burns retry
        budget or strands work until a lease times out.  The zombie
        thread's eventual settle attempt is rejected by the owner guard.
        """
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout_s)
        if self._heartbeat_thread is not None:
            self._heartbeat_thread.join(timeout=timeout_s)
            self._heartbeat_thread = None
        with self._inflight_lock:
            leftovers = sorted(self._inflight)
            self._inflight.clear()
        for key in leftovers:
            try:
                self.store.release(key)
            except Exception:  # pragma: no cover - store torn down under us
                break
        self._threads = []

    @property
    def alive(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    # ------------------------------------------------------------------
    def _heartbeat_loop(self) -> None:
        """Renew in-flight leases and reap expired ones, every lease/3."""
        interval = max(self.store.lease_s / 3.0, 0.05)
        while not self._stop.wait(interval):
            with self._inflight_lock:
                keys = list(self._inflight)
            try:
                for key in keys:
                    self.store.heartbeat(key)
                self.store.expire_leases()
            except Exception:  # pragma: no cover - store torn down under us
                return

    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                job = self.store.claim()
            except Exception:  # pragma: no cover - store torn down under us
                return
            if job is None:
                self._stop.wait(self.poll_interval_s)
                continue
            self._execute(job)

    def _execute(self, job: JobRecord) -> None:
        key = job.key
        owner = self.store.owner
        with self._inflight_lock:
            self._inflight.add(key)
        lines = [0]

        def progress(line: str) -> None:
            self.store.add_progress(key, line)
            lines[0] += 1
            if self.chaos_hook is not None:
                self.chaos_hook(key, lines[0])

        try:
            try:
                request = SweepRequest.from_dict(job.request)
                result = self._runner(request, progress)
            except Exception as exc:
                self.store.add_progress(key, f"failed: {type(exc).__name__}: {exc}")
                self._settle(
                    self.store.fail(
                        key,
                        f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
                        owner=owner,
                    )
                )
                return
            if result.failures:
                labels = ", ".join(f["cell"] for f in result.failures)
                self.store.add_progress(
                    key, f"finished with {len(result.failures)} failed cell(s)"
                )
                # Keep the partial result for inspection, but the job is
                # failed: a figure with missing cells must never be served
                # as complete.
                self._settle(
                    self.store.fail(
                        key,
                        f"{len(result.failures)} sweep cell(s) failed "
                        f"permanently: {labels}",
                        result=result.to_dict(),
                        owner=owner,
                    )
                )
            else:
                self.store.add_progress(key, "done")
                self._settle(self.store.finish(key, result.to_dict(), owner=owner))
        finally:
            with self._inflight_lock:
                self._inflight.discard(key)

    def _settle(self, settled: bool) -> None:
        if settled:
            self.completed += 1
        else:
            # Our lease expired mid-run and the job was requeued (and
            # possibly re-leased): the guard kept us from clobbering it.
            self.lease_losses += 1
