"""Background worker pool: drains the job store through the sweep engine.

Each worker is a daemon thread that claims the oldest queued job, runs it
via :func:`repro.experiments.engine.run_request` (which fans sweep cells
over the spawn-safe *process* pool and the shared content-addressed
result cache), streams per-cell progress lines back into the store, and
records the terminal state.  A run whose cells failed permanently marks
the job ``failed`` with the cell errors — partial figures are stored but
never silently served as complete.

The engine call itself is injectable (``runner=``) so the store/API
failure paths can be tested without simulating anything.
"""

from __future__ import annotations

import threading
import traceback
from typing import Callable, Dict, List, Optional

from ..experiments.engine import Progress, SweepRequest, SweepResult, run_request
from .store import JobRecord, JobStore

#: Executes one request; the default is the pure engine.
Runner = Callable[[SweepRequest, Progress], SweepResult]


class WorkerPool:
    """Threads that claim, execute, and settle jobs from a :class:`JobStore`.

    Args:
        store: The shared job store.
        n_workers: Worker threads.  Each worker runs one job at a time;
            within a job the engine may fan out further via
            ``run_kwargs["workers"]`` process workers.
        run_kwargs: Extra keyword arguments for
            :func:`~repro.experiments.engine.run_request`
            (``workers``, ``cache``, ``cell_timeout_s``).
        runner: Test seam replacing the engine call.
        poll_interval_s: Idle sleep between claim attempts.
    """

    def __init__(
        self,
        store: JobStore,
        n_workers: int = 1,
        run_kwargs: Optional[Dict[str, object]] = None,
        runner: Optional[Runner] = None,
        poll_interval_s: float = 0.1,
    ) -> None:
        self.store = store
        self.n_workers = max(1, int(n_workers))
        self.run_kwargs = dict(run_kwargs or {})
        self.poll_interval_s = poll_interval_s
        self._runner = runner or self._engine_runner
        self._stop = threading.Event()
        self._threads: List[threading.Thread] = []
        #: Jobs this pool settled (done or failed), for tests/monitoring.
        self.completed = 0

    # ------------------------------------------------------------------
    def _engine_runner(self, request: SweepRequest, progress: Progress) -> SweepResult:
        return run_request(request, progress=progress, **self.run_kwargs)

    def start(self) -> None:
        if self._threads:
            raise RuntimeError("worker pool already started")
        self._stop.clear()
        for index in range(self.n_workers):
            thread = threading.Thread(
                target=self._loop, name=f"repro-worker-{index}", daemon=True
            )
            thread.start()
            self._threads.append(thread)

    def stop(self, timeout_s: float = 10.0) -> None:
        """Signal every worker to stop and join them.

        A worker mid-job finishes (or fails) that job first; a job left
        ``running`` by a worker that never got to finish is requeued the
        next time the store opens.
        """
        self._stop.set()
        for thread in self._threads:
            thread.join(timeout=timeout_s)
        self._threads = []

    @property
    def alive(self) -> bool:
        return any(thread.is_alive() for thread in self._threads)

    # ------------------------------------------------------------------
    def _loop(self) -> None:
        while not self._stop.is_set():
            try:
                job = self.store.claim()
            except Exception:  # pragma: no cover - store torn down under us
                return
            if job is None:
                self._stop.wait(self.poll_interval_s)
                continue
            self._execute(job)

    def _execute(self, job: JobRecord) -> None:
        key = job.key

        def progress(line: str) -> None:
            self.store.add_progress(key, line)

        try:
            request = SweepRequest.from_dict(job.request)
            result = self._runner(request, progress)
        except Exception as exc:
            self.store.add_progress(key, f"failed: {type(exc).__name__}: {exc}")
            self.store.fail(
                key,
                f"{type(exc).__name__}: {exc}\n{traceback.format_exc()}",
            )
            self.completed += 1
            return
        if result.failures:
            labels = ", ".join(f["cell"] for f in result.failures)
            self.store.add_progress(
                key, f"finished with {len(result.failures)} failed cell(s)"
            )
            # Keep the partial result for inspection, but the job is failed:
            # a figure with missing cells must never be served as complete.
            self.store.fail(
                key,
                f"{len(result.failures)} sweep cell(s) failed permanently: {labels}",
                result=result.to_dict(),
            )
        else:
            self.store.add_progress(key, "done")
            self.store.finish(key, result.to_dict())
        self.completed += 1
