"""Simulation-as-a-service: job store, worker pool, and REST front-end.

The service is a thin, stdlib-only shell around the pure sweep engine
(:mod:`repro.experiments.engine`):

* :mod:`~repro.service.store` — a persistent sqlite job store keyed by
  content-addressed request digests, so identical submissions dedupe to
  one run and jobs survive (and requeue across) process crashes;
* :mod:`~repro.service.worker` — background worker threads that drain
  the store through :func:`~repro.experiments.engine.run_request`
  (which itself fans cells over the spawn-safe process pool and the
  shared on-disk result cache);
* :mod:`~repro.service.api` — an ``http.server``-based REST API with
  long-poll and Server-Sent-Events progress streaming, exposed as
  ``repro-uasn serve``.
"""

from .api import ServiceServer, make_server, serve
from .store import (
    DONE,
    FAILED,
    QUEUED,
    RUNNING,
    JobRecord,
    JobStore,
)
from .worker import WorkerPool

__all__ = [
    "DONE",
    "FAILED",
    "QUEUED",
    "RUNNING",
    "JobRecord",
    "JobStore",
    "ServiceServer",
    "WorkerPool",
    "make_server",
    "serve",
]
