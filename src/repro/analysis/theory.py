"""Analytical models of slotted UASN MAC performance.

Closed-form counterparts to the simulator, used three ways:

* **validation** — the simulator must respect the analytical bounds
  (tested in ``tests/analysis``);
* **intuition** — the bounds explain the paper's saturation levels:
  a slotted handshake spends ``4-5`` slots of ``tau_max + omega`` each to
  move one data packet, so a single contention domain cannot exceed
  roughly ``data_bits / (5 * slot)`` bits per second no matter the load;
* **scoping** — quick what-if arithmetic for new parameter choices
  without running the simulator.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..mac.slots import SlotTiming


@dataclass(frozen=True)
class HandshakeModel:
    """Slot accounting for one four-way slotted handshake.

    Attributes:
        timing: The slot grid.
        data_bits: Data packet size.
        bitrate_bps: Channel bitrate.
        tau_s: Propagation delay of the pair (defaults to tau_max).
    """

    timing: SlotTiming
    data_bits: int
    bitrate_bps: float
    tau_s: float | None = None

    @property
    def pair_delay_s(self) -> float:
        return self.tau_s if self.tau_s is not None else self.timing.tau_max_s

    @property
    def data_duration_s(self) -> float:
        return self.data_bits / self.bitrate_bps

    def exchange_slots(self) -> int:
        """Slots consumed by RTS + CTS + Data(+Eq.5) + Ack."""
        data_slots = self.timing.data_slots(self.data_duration_s, self.pair_delay_s)
        # RTS slot, CTS slot, data_slots to cover the transfer, Ack slot
        return 2 + data_slots + 1

    def exchange_duration_s(self) -> float:
        return self.exchange_slots() * self.timing.slot_s

    def single_pair_throughput_bps(self) -> float:
        """Best-case goodput of one isolated pair running back to back."""
        return self.data_bits / self.exchange_duration_s()

    def channel_utilization(self) -> float:
        """Fraction of channel time carrying data bits (the paper's
        bandwidth-utilization notion): data on-air time over exchange time."""
        return self.data_duration_s / self.exchange_duration_s()

    def extra_communication_gain(self) -> float:
        """Upper bound on EW-MAC's per-exchange gain.

        One extra communication moves one more data packet inside the same
        exchange span (the EXData rides the waiting periods), so the ideal
        throughput multiplier is 2.0; realized gain is scaled by how often
        a contention loser exists and the Eq. (6) windows are feasible.
        """
        return 2.0


def contention_domain_capacity_bps(
    timing: SlotTiming, data_bits: int, bitrate_bps: float
) -> float:
    """Saturation throughput of one contention domain (one receiver).

    A granting receiver serializes exchanges; with perfect scheduling it
    completes one handshake per :meth:`HandshakeModel.exchange_slots`.
    """
    model = HandshakeModel(timing, data_bits, bitrate_bps)
    return model.single_pair_throughput_bps()


def slotted_aloha_peak_utilization() -> float:
    """Classic slotted-ALOHA peak channel utilization, 1/e."""
    return 1.0 / math.e


def contention_success_probability(n_contenders: int, n_slots: int) -> float:
    """P(a given contender transmits alone) with uniform slot choice.

    Each of ``n_contenders`` picks one of ``n_slots`` uniformly; a given
    contender succeeds if nobody else picked its slot.
    """
    if n_contenders < 1 or n_slots < 1:
        raise ValueError("need at least one contender and one slot")
    return (1.0 - 1.0 / n_slots) ** (n_contenders - 1)


def expected_contention_rounds(n_contenders: int, n_slots: int) -> float:
    """Expected rounds until a given contender wins (geometric)."""
    p = contention_success_probability(n_contenders, n_slots)
    if p <= 0.0:
        return math.inf
    return 1.0 / p


def propagation_limited_rtt_s(distance_m: float, speed_mps: float = 1500.0) -> float:
    """Round-trip acoustic time — the floor on any handshake at range."""
    if distance_m < 0:
        raise ValueError("distance must be non-negative")
    return 2.0 * distance_m / speed_mps


def offered_load_saturation_point_kbps(
    timing: SlotTiming,
    data_bits: int,
    bitrate_bps: float,
    parallel_domains: float = 1.0,
    mean_hops: float = 1.0,
) -> float:
    """Offered load (kbps) beyond which the network must saturate.

    ``parallel_domains`` approximates spatial reuse (how many exchanges
    can run concurrently); ``mean_hops`` converts MAC-level capacity into
    end-to-end offered load (each offered bit consumes ``mean_hops``
    MAC transmissions).
    """
    if parallel_domains <= 0 or mean_hops <= 0:
        raise ValueError("domains and hops must be positive")
    capacity = contention_domain_capacity_bps(timing, data_bits, bitrate_bps)
    return capacity * parallel_domains / mean_hops / 1000.0
