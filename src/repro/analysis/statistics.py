"""Replication statistics for simulation experiments.

Multi-seed experiment analysis: means, Student-t confidence intervals,
paired protocol comparisons, and a sequential-replication helper that adds
seeds until the confidence interval is tight enough.  Uses scipy when the
exact t quantile matters; falls back to a normal approximation otherwise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

try:  # scipy is available in the reference environment, but optional
    from scipy import stats as _scipy_stats
except ImportError:  # pragma: no cover
    _scipy_stats = None

#: z quantiles for the normal-approximation fallback.
_Z = {0.90: 1.6449, 0.95: 1.9600, 0.99: 2.5758}


def mean(values: Sequence[float]) -> float:
    if not values:
        raise ValueError("mean of empty sequence")
    return sum(values) / len(values)


def sample_std(values: Sequence[float]) -> float:
    """Unbiased (n-1) sample standard deviation; 0.0 for n < 2."""
    n = len(values)
    if n < 2:
        return 0.0
    mu = mean(values)
    return math.sqrt(sum((v - mu) ** 2 for v in values) / (n - 1))


def _t_quantile(confidence: float, dof: int) -> float:
    if _scipy_stats is not None:
        return float(_scipy_stats.t.ppf(0.5 + confidence / 2.0, dof))
    base = _Z.get(round(confidence, 2), 1.96)
    # crude dof correction for the fallback path
    return base * (1.0 + 1.0 / max(dof, 1))


@dataclass(frozen=True)
class Estimate:
    """A replicated measurement: mean with a confidence interval."""

    mean: float
    half_width: float
    n: int
    confidence: float

    @property
    def low(self) -> float:
        return self.mean - self.half_width

    @property
    def high(self) -> float:
        return self.mean + self.half_width

    @property
    def relative_half_width(self) -> float:
        """CI half-width relative to |mean| (inf at mean 0)."""
        if self.mean == 0:
            return math.inf
        return self.half_width / abs(self.mean)

    def overlaps(self, other: "Estimate") -> bool:
        return self.low <= other.high and other.low <= self.high

    def __str__(self) -> str:  # pragma: no cover - formatting
        return f"{self.mean:.4g} ± {self.half_width:.2g} (n={self.n})"


def estimate(values: Sequence[float], confidence: float = 0.95) -> Estimate:
    """Mean with a Student-t confidence interval."""
    if not values:
        raise ValueError("no values")
    if not 0.0 < confidence < 1.0:
        raise ValueError("confidence must be in (0, 1)")
    n = len(values)
    mu = mean(values)
    if n < 2:
        return Estimate(mean=mu, half_width=math.inf, n=n, confidence=confidence)
    half = _t_quantile(confidence, n - 1) * sample_std(values) / math.sqrt(n)
    return Estimate(mean=mu, half_width=half, n=n, confidence=confidence)


@dataclass(frozen=True)
class PairedComparison:
    """Paired-seed comparison of a metric between two protocols."""

    mean_difference: float
    ci: Estimate
    n: int

    @property
    def significant(self) -> bool:
        """True when the CI of the difference excludes zero."""
        return self.ci.low > 0.0 or self.ci.high < 0.0


def paired_comparison(
    a: Sequence[float], b: Sequence[float], confidence: float = 0.95
) -> PairedComparison:
    """Compare per-seed measurements of A vs B (positive = A larger).

    Pairing by seed removes the (large) topology variance — the method
    behind the protocol orderings this reproduction reports.
    """
    if len(a) != len(b):
        raise ValueError("paired samples must have equal length")
    diffs = [x - y for x, y in zip(a, b)]
    est = estimate(diffs, confidence)
    return PairedComparison(mean_difference=est.mean, ci=est, n=len(diffs))


def replicate_until(
    run: Callable[[int], float],
    target_relative_half_width: float = 0.1,
    min_seeds: int = 3,
    max_seeds: int = 20,
    confidence: float = 0.95,
    first_seed: int = 1,
) -> Tuple[Estimate, List[float]]:
    """Add replications until the CI is tighter than the target.

    Args:
        run: Maps a seed to one measurement (runs one simulation).
        target_relative_half_width: Stop when half-width / |mean| is below
            this (default 10%).
        min_seeds / max_seeds: Replication bounds.

    Returns:
        The final estimate and the raw per-seed values.
    """
    if min_seeds < 2:
        raise ValueError("need at least two seeds for an interval")
    values: List[float] = []
    seed = first_seed
    while len(values) < max_seeds:
        values.append(run(seed))
        seed += 1
        if len(values) >= min_seeds:
            est = estimate(values, confidence)
            if est.relative_half_width <= target_relative_half_width:
                return est, values
    return estimate(values, confidence), values
