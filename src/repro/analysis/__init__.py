"""Analysis tools: closed-form models, replication statistics, charts."""

from .charts import ascii_chart, figure_chart
from .statistics import (
    Estimate,
    PairedComparison,
    estimate,
    mean,
    paired_comparison,
    replicate_until,
    sample_std,
)
from .theory import (
    HandshakeModel,
    contention_domain_capacity_bps,
    contention_success_probability,
    expected_contention_rounds,
    offered_load_saturation_point_kbps,
    propagation_limited_rtt_s,
    slotted_aloha_peak_utilization,
)

__all__ = [
    "Estimate",
    "HandshakeModel",
    "PairedComparison",
    "ascii_chart",
    "contention_domain_capacity_bps",
    "contention_success_probability",
    "estimate",
    "expected_contention_rounds",
    "figure_chart",
    "mean",
    "offered_load_saturation_point_kbps",
    "paired_comparison",
    "propagation_limited_rtt_s",
    "replicate_until",
    "sample_std",
    "slotted_aloha_peak_utilization",
]
