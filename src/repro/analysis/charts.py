"""ASCII chart rendering for figure data.

The reproduction is terminal-first: these renderers draw the regenerated
paper figures as Unicode line charts so orderings and crossovers are
visible without matplotlib (which is unavailable offline).
"""

from __future__ import annotations

from typing import Dict, List, Sequence

#: Plot glyph per series, cycled in legend order.
MARKERS = "ox+*#@%&"


def _scale(value: float, lo: float, hi: float, cells: int) -> int:
    if hi <= lo:
        return 0
    ratio = (value - lo) / (hi - lo)
    return min(cells - 1, max(0, int(round(ratio * (cells - 1)))))


def ascii_chart(
    x_values: Sequence[float],
    series: Dict[str, Sequence[float]],
    width: int = 64,
    height: int = 16,
    y_label: str = "",
    x_label: str = "",
) -> str:
    """Render multiple series as a Unicode scatter/line chart.

    Args:
        x_values: Shared x axis.
        series: Mapping of series name to y values (same length as x).
        width/height: Plot area in character cells.
        y_label/x_label: Axis captions.

    Returns:
        The chart as a multi-line string (includes a legend).
    """
    if not x_values:
        raise ValueError("empty x axis")
    for name, ys in series.items():
        if len(ys) != len(x_values):
            raise ValueError(f"series {name!r} length mismatch")
    all_y = [y for ys in series.values() for y in ys]
    if not all_y:
        raise ValueError("no series")
    y_lo, y_hi = min(all_y), max(all_y)
    if y_hi == y_lo:
        y_hi = y_lo + 1.0
    x_lo, x_hi = min(x_values), max(x_values)
    grid: List[List[str]] = [[" "] * width for _ in range(height)]
    for index, (name, ys) in enumerate(series.items()):
        marker = MARKERS[index % len(MARKERS)]
        cols = [_scale(x, x_lo, x_hi, width) for x in x_values]
        rows = [height - 1 - _scale(y, y_lo, y_hi, height) for y in ys]
        # connect consecutive points with interpolated cells
        for (c0, r0), (c1, r1) in zip(zip(cols, rows), zip(cols[1:], rows[1:])):
            steps = max(abs(c1 - c0), abs(r1 - r0), 1)
            for step in range(steps + 1):
                c = round(c0 + (c1 - c0) * step / steps)
                r = round(r0 + (r1 - r0) * step / steps)
                cell = grid[r][c]
                grid[r][c] = marker if cell in (" ", marker) else "+"
        for c, r in zip(cols, rows):
            grid[r][c] = marker
    lines = []
    label_width = 10
    for row_index, row in enumerate(grid):
        if row_index == 0:
            caption = f"{y_hi:10.4g}"
        elif row_index == height - 1:
            caption = f"{y_lo:10.4g}"
        else:
            caption = " " * label_width
        lines.append(f"{caption} |" + "".join(row))
    lines.append(" " * label_width + "+" + "-" * width)
    x_axis = f"{x_lo:<10.4g}" + " " * max(0, width - 20) + f"{x_hi:>10.4g}"
    lines.append(" " * (label_width + 1) + x_axis)
    if x_label:
        lines.append(" " * (label_width + 1) + x_label.center(width))
    legend = "   ".join(
        f"{MARKERS[i % len(MARKERS)]} {name}" for i, name in enumerate(series)
    )
    lines.append("")
    lines.append(" " * (label_width + 1) + legend)
    if y_label:
        lines.insert(0, f"{y_label}")
    return "\n".join(lines)


def figure_chart(data, width: int = 64, height: int = 16) -> str:
    """Render a :class:`~repro.experiments.figures.FigureData` as a chart."""
    header = f"{data.figure_id}: {data.title}"
    chart = ascii_chart(
        data.x_values,
        data.series,
        width=width,
        height=height,
        y_label=data.y_label,
        x_label=data.x_label,
    )
    return f"{header}\n{chart}\n"
