"""repro — reproduction of "A Protocol for Efficient Transmissions in UASNs".

A full-stack underwater acoustic sensor network (UASN) simulator and the
EW-MAC protocol it evaluates, reproduced from Hung & Luo (ICDCS 2013
workshop paper; extended as *Sensors* 2016, 16, 343).

Layering (bottom up):

* :mod:`repro.des` — discrete-event simulation kernel
* :mod:`repro.acoustic` — underwater channel physics (Thorp, Wenz, SINR)
* :mod:`repro.phy` — frames, half-duplex modems, broadcast channel
* :mod:`repro.net` — nodes, clocks, neighbour tables
* :mod:`repro.topology` — deployment, mobility, depth routing
* :mod:`repro.traffic` — workload generators
* :mod:`repro.mac` — slotted MAC engine + S-FAMA / ROPA / CS-MAC baselines
* :mod:`repro.core` — **EW-MAC**, the paper's contribution
* :mod:`repro.energy`, :mod:`repro.metrics` — Eqs. (2)-(4) and overhead
* :mod:`repro.experiments` — Table 2 configs and Figs. 6-11 runners

Quickstart::

    from repro.experiments import run_scenario, table2_config

    result = run_scenario(table2_config(protocol="EW-MAC",
                                        offered_load_kbps=0.6))
    print(result.throughput_kbps, result.power_mw)
"""

from .core.ewmac import EwMac
from .experiments import (
    Scenario,
    ScenarioConfig,
    ScenarioResult,
    run_scenario,
    table2_config,
)
from .mac import CsMac, Ropa, SFama, get_protocol, protocol_names

__version__ = "1.0.0"

__all__ = [
    "CsMac",
    "EwMac",
    "Ropa",
    "SFama",
    "Scenario",
    "ScenarioConfig",
    "ScenarioResult",
    "__version__",
    "get_protocol",
    "protocol_names",
    "run_scenario",
    "table2_config",
]
